(* antlrkit: command-line front end.

     antlrkit analyze grammar.g            decision report (Table-1 style)
     antlrkit dot grammar.g -d 0           lookahead DFA as Graphviz
     antlrkit atn grammar.g -r expr        one rule's ATN as Graphviz
     antlrkit parse grammar.g input.txt    lex + parse + print tree/profile
     antlrkit gen grammar.g -n 5           generate random sentences

   The lexer is the configurable engine from the runtime; flags map the
   common token classes (identifier/int/float/string/char names, comment
   styles).  Literal tokens always come from the grammar itself. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Parse inputs are never slurped: bytes flow through the chunked scanner,
   an optional --max-input-bytes budget is enforced as they arrive, and an
   unreadable path is a clean CLI error rather than an escaping
   [Sys_error]. *)
exception Input_too_large of { path : string; limit : int }

let bounded_reader ?limit path (read : Runtime.Lexer_engine.reader) :
    Runtime.Lexer_engine.reader =
  match limit with
  | None -> read
  | Some limit ->
      let seen = ref 0 in
      fun buf off len ->
        let n = read buf off len in
        seen := !seen + n;
        if !seen > limit then raise (Input_too_large { path; limit });
        n

let with_input ?max_bytes path (f : Runtime.Lexer_engine.reader -> 'a) : 'a =
  match open_in_bin path with
  | exception Sys_error msg ->
      Fmt.epr "error: cannot read input: %s@." msg;
      exit 2
  | ic ->
      let read =
        bounded_reader ?limit:max_bytes path
          (Runtime.Lexer_engine.reader_of_channel ic)
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f read)

(* Chunked lexing to a materialized array: the same tokens as
   [Lexer_engine.tokenize], without ever holding the input bytes. *)
let tokenize_reader ~tracer config sym read :
    (Runtime.Token.t array, Runtime.Lexer_engine.error) result =
  let s = Runtime.Lexer_engine.stream ~tracer config sym read in
  let chunks = ref [] in
  let rec go () =
    match Runtime.Lexer_engine.next_chunk ~max_tokens:4096 s with
    | Error e -> Error e
    | Ok [||] -> Ok (Array.concat (List.rev !chunks))
    | Ok c ->
        chunks := c :: !chunks;
        go ()
  in
  go ()

let grammar_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"GRAMMAR" ~doc:"Grammar file in the ANTLR-like metalanguage.")

let compile_grammar ?cache_dir ?tracer ?pool ?(lazy_ = false) path =
  let strategy =
    if lazy_ then Llstar.Compiled.Lazy else Llstar.Compiled.Eager
  in
  let src = read_file path in
  let result =
    match cache_dir with
    | None -> Llstar.Compiled.of_source ?pool ~strategy src
    | Some dir -> (
        match
          Llstar.Compiled_cache.of_source ?tracer ?pool ~strategy ~dir src
        with
        | Ok (c, outcome) ->
            Fmt.epr "[cache] %s@."
              (match outcome with
              | Llstar.Compiled_cache.Hit -> "hit"
              | Llstar.Compiled_cache.Miss -> "miss");
            Ok c
        | Error e -> Error e)
  in
  match result with
  | Ok c -> c
  | Error e ->
      Fmt.epr "%s: %a@." path Llstar.Compiled.pp_error e;
      exit 2

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~doc:
          "Directory for the persistent compilation cache.  Compilations \
           are keyed by a content hash of the grammar and analysis options; \
           a valid cached blob skips analysis entirely, anything invalid is \
           silently rebuilt.")

let lazy_arg =
  Arg.(
    value & flag
    & info [ "lazy" ]
        ~doc:
          "Build lookahead DFAs lazily at prediction time instead of \
           analyzing every decision up front.")

let jobs_arg =
  (* Validated at the Cmdliner layer so a bad count is a friendly usage
     error, not an [Invalid_argument] escaping from pool construction. *)
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some n ->
          Error
            (`Msg
              (Printf.sprintf
                 "job count must be >= 0 (0 = all available cores), got %d" n))
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel work: lookahead-DFA analysis fans \
           out per decision, batch parsing and fuzzing spread their inputs \
           over a chunk queue.  $(docv)=0 uses every available core.  \
           Results are identical for any job count (including with \
           $(b,--lazy): shared lazy DFA engines synchronize internally); \
           on an OCaml 4.x build this falls back to sequential execution.")

(* --- structured tracing flags ------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write structured prediction-trace events to $(docv).  The \
           default format is the Chrome trace_event JSON array: load it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing to see the parse \
           as a timeline.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "trace-format" ]
        ~doc:
          "Trace file format: $(b,chrome) (trace_event JSON array) or \
           $(b,jsonl) (one JSON object per line).")

(* The tracer for --trace plus a closer that finalizes the file; the closer
   must run before the process exits, including on error paths. *)
let make_tracer trace_file trace_format : Obs.Trace.t * (unit -> unit) =
  match trace_file with
  | None -> (Obs.Trace.null, fun () -> ())
  | Some path -> (
      let oc = open_out path in
      match trace_format with
      | `Chrome ->
          let tr, close = Obs.Trace.chrome_sink oc in
          ( tr,
            fun () ->
              close ();
              close_out oc )
      | `Jsonl ->
          let tr = Obs.Trace.jsonl oc in
          (tr, fun () -> close_out oc))

(* --- lexer configuration flags ---------------------------------------- *)

let lexer_config_term =
  let open Term in
  let ident = Arg.(value & opt string "ID" & info [ "ident" ] ~doc:"Identifier token name.") in
  let int_ = Arg.(value & opt string "INT" & info [ "int" ] ~doc:"Integer token name.") in
  let float_ = Arg.(value & opt (some string) None & info [ "float" ] ~doc:"Float token name.") in
  let string_ = Arg.(value & opt (some string) None & info [ "string" ] ~doc:"String token name.") in
  let char_ = Arg.(value & opt (some string) None & info [ "char" ] ~doc:"Char token name.") in
  let nocase = Arg.(value & flag & info [ "nocase" ] ~doc:"Case-insensitive keywords.") in
  const (fun ident int_ float_ string_ char_ nocase ->
      {
        Runtime.Lexer_engine.default_config with
        ident_token = Some ident;
        int_token = Some int_;
        float_token = float_;
        string_token = string_;
        char_token = char_;
        case_insensitive_keywords = nocase;
      })
  $ ident $ int_ $ float_ $ string_ $ char_ $ nocase

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let run grammar verbose minimize cache_dir lazy_ =
    let c =
      if not minimize then compile_grammar ?cache_dir ~lazy_ grammar
      else begin
        let src = read_file grammar in
        match Grammar.Meta_parser.parse_result src with
        | Error msg ->
            Fmt.epr "%s: %s@." grammar msg;
            exit 2
        | Ok surface -> (
            let opts =
              {
                (Llstar.Analysis.options_of_grammar surface) with
                Llstar.Analysis.minimize = true;
              }
            in
            match
              Llstar.Compiled.compile ~analysis_opts:opts ~grammar_source:src
                surface
            with
            | Ok c -> c
            | Error e ->
                Fmt.epr "%s: %a@." grammar Llstar.Compiled.pp_error e;
                exit 2)
      end
    in
    Fmt.pr "%a" Llstar.Report.pp c.Llstar.Compiled.report;
    Fmt.pr "%a"
      (Llstar.Report.pp_decisions ~only_interesting:(not verbose)
         c.Llstar.Compiled.atn)
      c.Llstar.Compiled.report;
    if verbose then
      Fmt.pr "prepared grammar:@.%s@."
        (Grammar.Pretty.to_string c.Llstar.Compiled.grammar)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show every decision.")
  in
  let minimize =
    Arg.(value & flag & info [ "minimize" ] ~doc:"Minimize the lookahead DFAs.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the LL(*) analysis and print the decision report.")
    Term.(const run $ grammar_arg $ verbose $ minimize $ cache_dir_arg $ lazy_arg)

(* --- dot --------------------------------------------------------------- *)

let dot_cmd =
  let run grammar decision =
    let c = compile_grammar grammar in
    if decision >= Array.length c.Llstar.Compiled.results then begin
      Fmt.epr "decision %d out of range (grammar has %d)@." decision
        (Array.length c.Llstar.Compiled.results);
      exit 2
    end;
    print_string
      (Llstar.Dfa_dot.to_dot
         (Llstar.Compiled.sym c)
         (Llstar.Compiled.dfa c decision))
  in
  let decision =
    Arg.(value & opt int 0 & info [ "d"; "decision" ] ~doc:"Decision number.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a decision's lookahead DFA as Graphviz.")
    Term.(const run $ grammar_arg $ decision)

let atn_cmd =
  let run grammar rule =
    let c = compile_grammar grammar in
    let atn = c.Llstar.Compiled.atn in
    let rule_id =
      match rule with
      | None -> None
      | Some name -> (
          match Atn.rule_by_name atn name with
          | Some r -> Some r
          | None ->
              Fmt.epr "no rule '%s'@." name;
              exit 2)
    in
    print_string (Atn.Dot.to_dot ?rule:rule_id atn)
  in
  let rule =
    Arg.(value & opt (some string) None & info [ "r"; "rule" ] ~doc:"Rule name.")
  in
  Cmd.v
    (Cmd.info "atn" ~doc:"Export the ATN (or one rule's submachine) as Graphviz.")
    Term.(const run $ grammar_arg $ rule)

(* --- parse ------------------------------------------------------------- *)

let parse_cmd =
  (* Single-input mode: the historical behavior (tree printing, tracing,
     lazy re-save). *)
  let run_single grammar input config start show_tree profile_flag verbose
      recover cache_dir lazy_ max_input_bytes trace_file trace_format =
    let tracer, close_trace = make_tracer trace_file trace_format in
    let quit code =
      close_trace ();
      exit code
    in
    let c = compile_grammar ?cache_dir ~tracer ~lazy_ grammar in
    let sym = Llstar.Compiled.sym c in
    match
      with_input ?max_bytes:max_input_bytes input
        (tokenize_reader ~tracer config sym)
    with
    | exception Input_too_large { path; limit } ->
        Fmt.epr "%s: input exceeds --max-input-bytes (%d)@." path limit;
        quit 1
    | Error e ->
        Fmt.epr "%s: lex error: %a@." input Runtime.Lexer_engine.pp_error e;
        quit 1
    | Ok toks -> (
        let profile = Runtime.Profile.create () in
        (* Re-save a lazy compilation after parsing: the blob then carries
           every DFA state this run materialized, warming future loads. *)
        let resave () =
          match cache_dir with
          | Some dir when lazy_ ->
              ignore (Llstar.Compiled_cache.save ~dir c)
          | _ -> ()
        in
        let show_profile () =
          if profile_flag then begin
            Fmt.pr "%a@." Runtime.Profile.pp profile;
            if verbose then Fmt.pr "%a" Runtime.Profile.pp_decisions profile
          end
        in
        match
          Runtime.Interp.parse ~profile ~tracer ~recover ?start c toks
        with
        | Ok tree ->
            Fmt.pr "parsed %d tokens@." (Array.length toks);
            if show_tree then
              Fmt.pr "%s@." (Runtime.Tree.to_string sym tree);
            show_profile ();
            resave ();
            close_trace ()
        | Error errors ->
            List.iter
              (fun e -> Fmt.epr "%a@." (Runtime.Parse_error.pp sym) e)
              errors;
            show_profile ();
            quit 1)
  in
  (* Streaming mode: the chunked lexer feeds a bounded token window and the
     interpreter recognizes as tokens arrive, in O(window) live memory.
     Verdict parity with the materialized path: the whole input is always
     scanned (drain), and a lex error anywhere wins over the parse verdict,
     exactly as tokenize-then-parse would have reported it. *)
  let run_stream grammar input config start profile_flag verbose cache_dir
      lazy_ window max_input_bytes trace_file trace_format =
    let tracer, close_trace = make_tracer trace_file trace_format in
    let quit code =
      close_trace ();
      exit code
    in
    let c = compile_grammar ?cache_dir ~tracer ~lazy_ grammar in
    let sym = Llstar.Compiled.sym c in
    let profile = Runtime.Profile.create () in
    let show_profile () =
      if profile_flag then begin
        Fmt.pr "%a@." Runtime.Profile.pp profile;
        if verbose then Fmt.pr "%a" Runtime.Profile.pp_decisions profile
      end
    in
    let lex_error e =
      Fmt.epr "%s: lex error: %a@." input Runtime.Lexer_engine.pp_error e;
      quit 1
    in
    match
      with_input ?max_bytes:max_input_bytes input (fun read ->
          let ls = Runtime.Lexer_engine.stream ~tracer config sym read in
          let ts =
            Runtime.Token_stream.of_pull ~window
              (Runtime.Lexer_engine.pull ls)
          in
          let verdict =
            Runtime.Interp.recognize_stream ~profile ~tracer ?start c ts
          in
          match Runtime.Lexer_engine.drain ls with
          | Error e -> Error e
          | Ok _ -> Ok (verdict, Runtime.Lexer_engine.produced ls))
    with
    | exception Input_too_large { path; limit } ->
        Fmt.epr "%s: input exceeds --max-input-bytes (%d)@." path limit;
        quit 1
    | exception Runtime.Lexer_engine.Lex_error e -> lex_error e
    | Error e -> lex_error e
    | Ok (Ok (), total) ->
        Fmt.pr "parsed %d tokens@." total;
        show_profile ();
        (match cache_dir with
        | Some dir when lazy_ -> ignore (Llstar.Compiled_cache.save ~dir c)
        | _ -> ());
        close_trace ()
    | Ok (Error errors, _) ->
        List.iter
          (fun e -> Fmt.epr "%a@." (Runtime.Parse_error.pp sym) e)
          errors;
        show_profile ();
        quit 1
  in
  (* Batch mode: many inputs (and/or @manifest expansions), optionally
     sharded across a worker pool. *)
  let run_batch grammar inputs config start profile_flag verbose recover
      cache_dir lazy_ jobs trace_file =
    if trace_file <> None then
      Fmt.epr "warning: --trace is ignored in batch mode@.";
    match Runtime.Batch.load_inputs inputs with
    | Error e ->
        Fmt.epr "error: %s@." e;
        exit 2
    | Ok inputs ->
        Exec.Pool.with_pool ~jobs (fun pool ->
            let c = compile_grammar ?cache_dir ~pool ~lazy_ grammar in
            let sym = Llstar.Compiled.sym c in
            let profile = Runtime.Profile.create () in
            let results =
              Runtime.Batch.run ~pool ~config ~profile ~recover ?start c
                inputs
            in
            let failed = ref 0 in
            Array.iter
              (fun (r : Runtime.Batch.result_) ->
                if not (Runtime.Batch.outcome_ok r.Runtime.Batch.outcome)
                then incr failed;
                Fmt.pr "%a@." Runtime.Batch.pp_outcome (sym, r))
              results;
            (* Re-save a lazy compilation after the batch, as single-input
               mode does: the canonical blob carries every DFA state the
               batch materialized -- identical for any job count. *)
            (match cache_dir with
            | Some dir when lazy_ ->
                ignore (Llstar.Compiled_cache.save ~dir c)
            | _ -> ());
            Fmt.pr "batch: %d/%d inputs parsed, %d tokens total (jobs=%d)@."
              (Array.length results - !failed)
              (Array.length results)
              (Runtime.Batch.total_tokens results)
              (Exec.Pool.jobs pool);
            if profile_flag then begin
              Fmt.pr "%a@." Runtime.Profile.pp profile;
              if verbose then
                Fmt.pr "%a" Runtime.Profile.pp_decisions profile
            end;
            if !failed > 0 then exit 1)
  in
  let run grammar inputs config start show_tree profile_flag verbose recover
      cache_dir lazy_ jobs trace_file trace_format stream window
      max_input_bytes =
    let jobs = Exec.Pool.resolve_jobs jobs in
    let is_manifest a = String.length a > 1 && a.[0] = '@' in
    let usage msg =
      Fmt.epr "error: %s@." msg;
      exit 2
    in
    if stream then begin
      if show_tree then
        usage "--stream is recognize-only and cannot print a tree (--tree)";
      if recover then usage "--stream does not support --recover";
      if window < 1 then usage "--window must be >= 1";
      match inputs with
      | [ input ] when jobs = 1 && not (is_manifest input) ->
          run_stream grammar input config start profile_flag verbose
            cache_dir lazy_ window max_input_bytes trace_file trace_format
      | _ ->
          usage
            "--stream takes exactly one input file (no manifests, batch \
             mode or --jobs)"
    end
    else
      match inputs with
      | [ input ] when jobs = 1 && not (is_manifest input) ->
          run_single grammar input config start show_tree profile_flag
            verbose recover cache_dir lazy_ max_input_bytes trace_file
            trace_format
      | [] -> usage "no input files"
      | inputs ->
          run_batch grammar inputs config start profile_flag verbose recover
            cache_dir lazy_ jobs trace_file
  in
  let input =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"INPUT"
          ~doc:
            "Input files.  An argument of the form @FILE names a manifest: \
             one input path per line, blank lines and #-comments skipped.  \
             More than one input (or --jobs > 1) selects batch mode, which \
             prints a one-line outcome per input.")
  in
  let start =
    Arg.(value & opt (some string) None & info [ "s"; "start" ] ~doc:"Start rule.")
  in
  let tree = Arg.(value & flag & info [ "t"; "tree" ] ~doc:"Print the parse tree.") in
  let profile = Arg.(value & flag & info [ "p"; "profile" ] ~doc:"Print the decision profile.") in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"With --profile, also print the per-decision table.")
  in
  let recover = Arg.(value & flag & info [ "recover" ] ~doc:"Recover from syntax errors.") in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Recognize the input through the streaming pipeline: chunked \
             lexing feeds a bounded token window, speculation memos are \
             evicted behind the window, and live memory stays O(window) \
             regardless of input size.  The verdict, error positions and \
             profile are identical to the materialized path.  \
             Recognize-only: incompatible with $(b,--tree), $(b,--recover) \
             and batch mode.")
  in
  let window =
    Arg.(
      value & opt int 4096
      & info [ "window" ] ~docv:"TOKENS"
          ~doc:
            "Token-window size for $(b,--stream): the number of recent \
             tokens kept live.  The window grows only while an active \
             speculation needs to rewind further back.")
  in
  let max_input_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-input-bytes" ] ~docv:"N"
          ~doc:
            "Fail with a clean error once the input file exceeds $(docv) \
             bytes.  Enforced incrementally as bytes are read, so an \
             oversized input never occupies memory (works with and \
             without $(b,--stream)).")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse an input file with an LL(*) parser for the grammar.")
    Term.(
      const run $ grammar_arg $ input $ lexer_config_term $ start $ tree
      $ profile $ verbose $ recover $ cache_dir_arg $ lazy_arg $ jobs_arg
      $ trace_arg $ trace_format_arg $ stream $ window $ max_input_bytes)

(* --- gen --------------------------------------------------------------- *)

let gen_cmd =
  let run grammar n size seed =
    let src = read_file grammar in
    let g =
      match Grammar.Meta_parser.parse_result src with
      | Ok g -> g
      | Error msg ->
          Fmt.epr "%s: %s@." grammar msg;
          exit 2
    in
    let sg = Grammar.Sentence_gen.prepare g in
    let rng = Random.State.make [| seed |] in
    for i = 1 to n do
      match Grammar.Sentence_gen.generate sg ~rng ~size with
      | exception Grammar.Sentence_gen.Unproductive ->
          Fmt.epr
            "%s: grammar is unproductive: some reachable rule has no \
             finite-yield derivation@."
            grammar;
          exit 2
      | terms ->
          let text =
            Grammar.Sentence_gen.render
              ~sample:(fun name -> Printf.sprintf "<%s%d>" name i)
              terms
          in
          print_endline (String.trim text)
    done
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of sentences.") in
  let size = Arg.(value & opt int 20 & info [ "size" ] ~doc:"Approximate token budget.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate random sentences from the grammar.")
    Term.(const run $ grammar_arg $ n $ size $ seed)

(* --- fuzz -------------------------------------------------------------- *)

let fuzz_cmd =
  let run seed runs grammar mutate corpus_dir size profile_flag json_file
      jobs lazy_ stream_window =
    let jobs = Exec.Pool.resolve_jobs jobs in
    let strategy = if lazy_ then Some Llstar.Compiled.Lazy else None in
    Exec.Pool.with_pool ~jobs @@ fun pool ->
    let t0 = Unix.gettimeofday () in
    let specs =
      match grammar with
      | None -> Fuzz.Driver.all_specs
      | Some name -> (
          match Fuzz.Driver.find_spec name with
          | Some s -> [ s ]
          | None ->
              Fmt.epr "no benchmark grammar '%s' (known: %s)@." name
                (String.concat ", "
                   (List.map
                      (fun (s : Bench_grammars.Workload.spec) ->
                        s.Bench_grammars.Workload.name)
                      Fuzz.Driver.all_specs));
              exit 2)
    in
    let any_failure = ref false in
    let bench_docs = ref [] in
    List.iter
      (fun (spec : Bench_grammars.Workload.spec) ->
        let profile =
          if profile_flag || json_file <> None then
            Some (Runtime.Profile.create ())
          else None
        in
        match
          Fuzz.Driver.run_spec ~size ~mutate ?corpus_dir ?profile ~pool
            ?strategy ?stream_window ~seed ~runs spec
        with
        | Error e ->
            Fmt.epr "%s: %a@." spec.Bench_grammars.Workload.name
              Llstar.Compiled.pp_error e;
            exit 2
        | Ok report ->
            Fmt.pr "%a@." Fuzz.Driver.pp_report report;
            (if profile_flag then
               match profile with
               | Some p -> Fmt.pr "  %a@." Runtime.Profile.pp p
               | None -> ());
            bench_docs :=
              ( spec.Bench_grammars.Workload.name,
                Fuzz.Driver.report_to_json ?profile ~seed report )
              :: !bench_docs;
            List.iter
              (fun (f : Fuzz.Driver.failure) ->
                any_failure := true;
                Fmt.pr "  %a@." Fuzz.Oracle.pp_divergence f.Fuzz.Driver.f_divergence;
                Fmt.pr "  shrunk: %s@."
                  (String.concat " " f.Fuzz.Driver.f_shrunk);
                Option.iter
                  (fun file -> Fmt.pr "  reproducer: %s@." file)
                  f.Fuzz.Driver.f_file)
              report.Fuzz.Driver.r_failures)
      specs;
    (match json_file with
    | Some path ->
        Obs.Telemetry.write_file path
          (Obs.Telemetry.document ~tool:"antlrkit-fuzz"
             ~wall_s:(Unix.gettimeofday () -. t0)
             ~user_s:(Obs.Telemetry.user_time ())
             (List.rev !bench_docs))
    | None -> ());
    if !any_failure then begin
      Fmt.epr "fuzz: unexplained divergences found@.";
      exit 1
    end
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~doc:"Inputs per grammar.")
  in
  let grammar =
    Arg.(
      value
      & opt (some string) None
      & info [ "grammar" ]
          ~doc:"Fuzz only this benchmark grammar (default: all six).")
  in
  let mutate =
    Arg.(
      value & opt bool true
      & info [ "mutate" ]
          ~doc:"Mutate half of the generated sentences (drop/swap/dup/subst).")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) (Some "fuzz-corpus")
      & info [ "corpus-dir" ]
          ~doc:"Directory for shrunk reproducer files (written on failure).")
  in
  let size =
    Arg.(value & opt int 30 & info [ "size" ] ~doc:"Approximate sentence size.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "p"; "profile" ]
          ~doc:"Print the LL(*) decision profile accumulated per grammar.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable telemetry document (per-grammar \
             verdict counts, failures and decision profiles) to $(docv).")
  in
  let stream_window =
    Arg.(
      value
      & opt (some int) None
      & info [ "stream-window" ] ~docv:"TOKENS"
          ~doc:
            "Also run every input through the streaming LL(*) recognizer \
             with a $(docv)-sized token window, and flag any disagreement \
             with the materialized run (verdict, error position, consumed \
             tokens) as a divergence.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generated (and mutated) sentences are run \
          through the LL(*), packrat, Earley and LL(1) recognizers and any \
          unexplained disagreement, crash or hang is reported and shrunk.")
    Term.(
      const run $ seed $ runs $ grammar $ mutate $ corpus_dir $ size $ profile
      $ json $ jobs_arg $ lazy_arg $ stream_window)

(* --- codegen ----------------------------------------------------------- *)

let codegen_cmd =
  let run grammar bench out_dir module_name parser_only standalone
      inline_threshold print_ config =
    let c, lexer, grammar_text, samples =
      match (bench, grammar) with
      | Some name, _ -> (
          match Fuzz.Driver.find_spec name with
          | None ->
              Fmt.epr "unknown bench grammar %S (try: %s)@." name
                (String.concat ", "
                   (List.map
                      (fun (s : Bench_grammars.Workload.spec) ->
                        s.Bench_grammars.Workload.name)
                      Fuzz.Driver.all_specs));
              exit 2
          | Some spec ->
              let cw = Bench_grammars.Workload.compile spec in
              ( cw.Bench_grammars.Workload.c,
                Some spec.Bench_grammars.Workload.lexer_config,
                Some spec.Bench_grammars.Workload.grammar_text,
                spec.Bench_grammars.Workload.samples ))
      | None, Some path -> (
          let src = read_file path in
          match Llstar.Compiled.of_source src with
          | Error e ->
              Fmt.epr "%s: %a@." path Llstar.Compiled.pp_error e;
              exit 2
          | Ok c -> (c, Some config, Some src, []))
      | None, None ->
          Fmt.epr "codegen: need a GRAMMAR file or --bench NAME@.";
          exit 2
    in
    match Codegen.Lower.lower ~inline_threshold ?lexer ?grammar_text c with
    | Error msg ->
        Fmt.epr "codegen: %s@." msg;
        exit 2
    | Ok ir -> (
        if print_ then print_string (Codegen.Emit_ocaml.emit ir)
        else
          match out_dir with
          | None ->
              Fmt.epr "codegen: need -o DIR (or --print)@.";
              exit 2
          | Some dir ->
              let files =
                if parser_only then
                  let stem =
                    match module_name with
                    | Some m -> Codegen.Scaffold.sanitize_module m
                    | None ->
                        Codegen.Scaffold.sanitize_module
                          ir.Codegen.Ir.grammar_name
                        ^ "_parser"
                  in
                  [ (stem ^ ".ml", Codegen.Emit_ocaml.emit ir) ]
                else
                  Codegen.Scaffold.workspace ?module_name ~standalone ~samples
                    ir
              in
              Codegen.Scaffold.write_all ~dir files;
              let s = Codegen.Ir.stats ir in
              Fmt.epr
                "%s: %d rules, %d decisions (%d inline, %d table) -> %d \
                 file(s) in %s@."
                ir.Codegen.Ir.grammar_name s.Codegen.Ir.n_rules
                s.Codegen.Ir.n_decisions s.Codegen.Ir.n_inline
                s.Codegen.Ir.n_table (List.length files) dir)
  in
  let grammar =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"GRAMMAR"
          ~doc:"Grammar file in the ANTLR-like metalanguage.")
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"NAME"
          ~doc:
            "Generate a parser for a built-in bench grammar (MiniJava, \
             RatsC, RatsJava, MiniVB, MiniSQL, MiniCSharp) instead of a \
             grammar file; embeds its lexer configuration and sample \
             inputs.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"Write the generated workspace into $(docv).")
  in
  let module_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "module" ] ~docv:"NAME"
          ~doc:"Module name for the emitted parser (default: grammar name).")
  in
  let parser_only =
    Arg.(
      value & flag
      & info [ "parser-only" ]
          ~doc:
            "Emit only the parser module, without the driver executable and \
             dune scaffolding.")
  in
  let standalone =
    Arg.(
      value & flag
      & info [ "standalone" ]
          ~doc:
            "Also emit a dune-project file so the workspace builds outside \
             an existing dune project.")
  in
  let inline_threshold =
    Arg.(
      value
      & opt int Codegen.Lower.default_inline_threshold
      & info [ "inline-threshold" ] ~docv:"N"
          ~doc:
            "Compile lookahead DFAs with at most $(docv) states to nested \
             match/if chains; larger decisions embed the DFA and walk it \
             generically.")
  in
  let print_ =
    Arg.(
      value & flag
      & info [ "print" ] ~doc:"Print the parser module to stdout and stop.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:
         "Compile a grammar's ATN and lookahead DFAs to a self-contained \
          OCaml recognizer: one recursive function per rule, decisions as \
          match/if chains over token ids (or embedded DFA tables), \
          syntactic predicates as speculation functions over stream marks. \
          The emitted driver's --check mode replays inputs through the \
          ATN/DFA interpreter and fails on any disagreement.")
    Term.(
      const run $ grammar $ bench $ out_dir $ module_name $ parser_only
      $ standalone $ inline_threshold $ print_ $ lexer_config_term)

(* --- bench ------------------------------------------------------------- *)

let bench_cmd =
  let run grammar input config start iters warmup cache_dir lazy_ json_file =
    let t0 = Unix.gettimeofday () in
    let c = compile_grammar ?cache_dir ~lazy_ grammar in
    let compile_s = Unix.gettimeofday () -. t0 in
    let sym = Llstar.Compiled.sym c in
    let text = read_file input in
    match Runtime.Lexer_engine.tokenize config sym text with
    | Error e ->
        Fmt.epr "%s: lex error: %a@." input Runtime.Lexer_engine.pp_error e;
        exit 1
    | Ok toks ->
        let profile = Runtime.Profile.create () in
        let errors = ref 0 in
        let once ~profile () =
          match Runtime.Interp.recognize ?profile ?start c toks with
          | Ok () -> ()
          | Error _ -> incr errors
        in
        for _ = 1 to warmup do
          once ~profile:None ()
        done;
        errors := 0;
        let t1 = Unix.gettimeofday () in
        for _ = 1 to iters do
          once ~profile:(Some profile) ()
        done;
        let parse_s = Unix.gettimeofday () -. t1 in
        let ntoks = Array.length toks in
        let tokens_per_s =
          if parse_s > 0.0 then float_of_int (ntoks * iters) /. parse_s
          else 0.0
        in
        Fmt.pr
          "%s: %d tokens x %d iters in %.4fs (%.0f tokens/s, compile %.4fs%s)@."
          (Filename.basename input) ntoks iters parse_s tokens_per_s compile_s
          (if !errors > 0 then Printf.sprintf ", %d parse errors" !errors
           else "");
        Fmt.pr "%a@." Runtime.Profile.pp profile;
        (match json_file with
        | Some path ->
            let bench =
              Obs.Json.obj
                [
                  ("grammar", Obs.Json.str (Filename.basename grammar));
                  ("input", Obs.Json.str (Filename.basename input));
                  ("tokens", Obs.Json.int ntoks);
                  ("iters", Obs.Json.int iters);
                  ("warmup", Obs.Json.int warmup);
                  ("compile_s", Obs.Json.float compile_s);
                  ("parse_s", Obs.Json.float parse_s);
                  ("tokens_per_s", Obs.Json.float tokens_per_s);
                  ("parse_errors", Obs.Json.int !errors);
                  ("lazy", Obs.Json.bool lazy_);
                  ( "cache_dir",
                    match cache_dir with
                    | Some d -> Obs.Json.str d
                    | None -> Obs.Json.Null );
                  ("profile", Runtime.Profile.to_json profile);
                  ("report", Llstar.Report.to_json c.Llstar.Compiled.report);
                  ( "metrics",
                    Obs.Metrics.to_json (Runtime.Profile.registry profile) );
                ]
            in
            Obs.Telemetry.write_file path
              (Obs.Telemetry.document ~tool:"antlrkit-bench"
                 ~wall_s:(Unix.gettimeofday () -. t0)
                 ~user_s:(Obs.Telemetry.user_time ())
                 [ (Filename.basename grammar, bench) ])
        | None -> ())
  in
  let input =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"INPUT" ~doc:"Input file.")
  in
  let start =
    Arg.(value & opt (some string) None & info [ "s"; "start" ] ~doc:"Start rule.")
  in
  let iters =
    Arg.(value & opt int 20 & info [ "iters" ] ~doc:"Measured parse iterations.")
  in
  let warmup =
    Arg.(value & opt int 2 & info [ "warmup" ] ~doc:"Unmeasured warmup iterations.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write an antlrkit-telemetry/2 document (wall/user time, \
             decision events, lookahead depths, lazy/cached DFA state \
             counts, full metrics registry) to $(docv).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Compile a grammar, parse an input repeatedly, and report \
          throughput plus the decision profile; --json emits the \
          machine-readable telemetry document.")
    Term.(
      const run $ grammar_arg $ input $ lexer_config_term $ start $ iters
      $ warmup $ cache_dir_arg $ lazy_arg $ json)

(* --- serve / client ---------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "antlrkit.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket path for the parse service (ignored with --tcp).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on (or connect to) a TCP address instead of a Unix \
              socket.")

let resolve_addr socket tcp : Serve.Protocol.addr =
  match tcp with
  | None -> Serve.Protocol.Unix_sock socket
  | Some s -> (
      match Serve.Protocol.tcp_of_string s with
      | Ok a -> a
      | Error msg ->
          Fmt.epr "--tcp %s@." msg;
          exit 2)

let serve_cmd =
  let grammars =
    Arg.(
      value
      & opt (some string) None
      & info [ "grammars" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated builtin grammars to preload (default: all \
             six bench grammars).  $(b,none) starts with an empty \
             registry; clients add grammars with op=load.")
  in
  let max_tokens =
    Arg.(
      value
      & opt int Serve.Handler.default_limits.Serve.Handler.max_tokens
      & info [ "max-tokens" ] ~docv:"N"
          ~doc:"Reject requests that lex to more than $(docv) tokens.")
  in
  let time_budget =
    Arg.(
      value
      & opt float Serve.Handler.default_limits.Serve.Handler.time_budget_s
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:
            "Per-request wall-clock budget.  The guard is post-hoc (the \
             parse is not interrupted): an overrunning request reports a \
             time_budget error instead of its result.")
  in
  let max_request =
    Arg.(
      value
      & opt int Serve.Handler.default_limits.Serve.Handler.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Maximum request line (and text payload) size in bytes.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve Prometheus text-format metrics over HTTP on \
             127.0.0.1:$(docv) ($(b,GET /metrics), plus $(b,/health) and \
             $(b,/ready) probes).  $(b,0) picks a free port (printed at \
             startup).")
  in
  let slow_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:
            "Tail-sampled slow-request log: retain the full per-request \
             trace (JSON lines, bounded) for requests slower than \
             --slow-threshold-ms or that failed.")
  in
  let slow_threshold =
    Arg.(
      value & opt float 500.0
      & info [ "slow-threshold-ms" ] ~docv:"MS"
          ~doc:
            "Requests at least $(docv) milliseconds of wall time are \
             retained in --slow-log ($(b,0) retains everything; errors \
             are always retained).")
  in
  let slow_max_records =
    Arg.(
      value & opt int 10_000
      & info [ "slow-max-records" ] ~docv:"N"
          ~doc:
            "Stop writing --slow-log after $(docv) records (further slow \
             requests are counted as dropped, never written).")
  in
  let run socket tcp jobs cache_dir grammars max_tokens time_budget
      max_request metrics_port slow_log slow_threshold slow_max_records
      trace_file trace_format =
    let addr = resolve_addr socket tcp in
    let tracer, close_trace = make_tracer trace_file trace_format in
    let jobs = Exec.Pool.resolve_jobs jobs in
    Exec.Pool.with_pool ~jobs (fun pool ->
        let registry = Serve.Registry.create ?cache_dir () in
        let names =
          match grammars with
          | None -> Serve.Registry.builtin_names
          | Some "none" -> []
          | Some s ->
              String.split_on_char ',' s
              |> List.map String.trim
              |> List.filter (fun s -> s <> "")
        in
        (match
           Serve.Registry.load_builtins registry ~tracer ~pool ~names ()
         with
        | Ok entries ->
            List.iter
              (fun (e : Serve.Registry.entry) ->
                Fmt.epr "[serve] loaded %s (digest %s%s%s)@."
                  e.Serve.Registry.name
                  (String.sub e.Serve.Registry.digest 0 12)
                  (match e.Serve.Registry.cache with
                  | Some Llstar.Compiled_cache.Hit -> ", cache hit"
                  | Some Llstar.Compiled_cache.Miss -> ", cache miss"
                  | None -> "")
                  (if Option.is_some e.Serve.Registry.generated then
                     ", generated backend"
                   else ""))
              entries
        | Error msg ->
            Fmt.epr "[serve] %s@." msg;
            close_trace ();
            exit 2);
        let limits =
          {
            Serve.Handler.max_request_bytes = max_request;
            max_tokens;
            time_budget_s = time_budget;
          }
        in
        let slow =
          match slow_log with
          | None -> None
          | Some path ->
              let threshold_us =
                int_of_float (Float.max 0.0 (slow_threshold *. 1000.0))
              in
              Some
                (Serve.Slow_log.create ~max_records:slow_max_records
                   ~threshold_us path)
        in
        let handler =
          Serve.Handler.create ~limits ~tracer ?slow_log:slow ~registry
            ~pool ()
        in
        (match slow with
        | Some sl ->
            Fmt.epr "[serve] slow-request log: %s (threshold %gms)@."
              (Option.get slow_log)
              (float_of_int (Serve.Slow_log.threshold_us sl) /. 1000.0)
        | None -> ());
        let mhttp =
          match metrics_port with
          | None -> None
          | Some port -> (
              match Serve.Metrics_http.start ~port handler with
              | Ok m ->
                  Fmt.epr
                    "[serve] metrics on http://127.0.0.1:%d/metrics@."
                    (Serve.Metrics_http.port m);
                  Some m
              | Error msg ->
                  Fmt.epr "[serve] %s@." msg;
                  close_trace ();
                  exit 2)
        in
        let server = Serve.Server.create ~handler ~addr () in
        let stop _ = Serve.Server.stop server in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Fmt.epr "[serve] listening on %s (%s pool, %d job%s)@."
          (Serve.Protocol.addr_to_string addr)
          Exec.Pool.backend jobs
          (if jobs = 1 then "" else "s");
        Serve.Server.run server;
        Option.iter Serve.Metrics_http.stop mhttp;
        Option.iter Serve.Slow_log.close slow;
        Fmt.epr "[serve] drained, exiting@.");
    close_trace ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived parse service: line-JSON requests over a Unix \
          or TCP socket, a registry of compiled grammars (persistent \
          cache backed), parse work on worker domains, an \
          antlrkit-telemetry/2 stats endpoint with latency quantiles, an \
          optional Prometheus HTTP exporter (--metrics-port), and an \
          optional tail-sampled slow-request log (--slow-log).  Shuts \
          down gracefully on SIGTERM/SIGINT or an op=shutdown request, \
          draining in-flight requests first.")
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ cache_dir_arg $ grammars
      $ max_tokens $ time_budget $ max_request $ metrics_port $ slow_log
      $ slow_threshold $ slow_max_records $ trace_arg $ trace_format_arg)

let client_cmd =
  let file =
    Arg.(
      value
      & pos 0 string "-"
      & info [] ~docv:"FILE"
          ~doc:
            "File of newline-separated JSON requests ($(b,-) reads \
             stdin).  Each response is printed on its own line, in \
             request order.")
  in
  let wait =
    Arg.(
      value & opt float 10.0
      & info [ "wait" ] ~docv:"SECONDS"
          ~doc:"Keep retrying the initial connection for up to $(docv) \
                (the daemon may still be compiling grammars).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ]
          ~doc:
            "Print nothing; the exit status is the answer (CI probes).  \
             Transport errors still go to stderr.")
  in
  (* Exit status is scriptable: 0 all responses ok, 1 transport failure,
     2 at least one structured error response ({"ok":false,...}).  Before
     this distinction existed a health probe had to jq every response. *)
  let run socket tcp file wait quiet =
    let addr = resolve_addr socket tcp in
    let attempts = max 1 (int_of_float (wait /. 0.1)) in
    match Serve.Client.connect_retry ~attempts ~delay_s:0.1 addr with
    | Error msg ->
        Fmt.epr "%s@." msg;
        exit 1
    | Ok c ->
        let ic = if file = "-" then stdin else open_in file in
        let transport_failures = ref 0 in
        let server_errors = ref 0 in
        let response_ok (resp : string) : bool =
          match Obs.Json.parse resp with
          | Ok j -> (
              match Obs.Json.member "ok" j with
              | Some (Obs.Json.Bool b) -> b
              | _ -> false)
          | Error _ -> false
        in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then begin
               match Serve.Client.request_line c line with
               | Ok resp ->
                   if not (response_ok resp) then incr server_errors;
                   if not quiet then print_endline resp
               | Error msg ->
                   Fmt.epr "%s@." msg;
                   incr transport_failures;
                   raise Exit
             end
           done
         with End_of_file | Exit -> ());
        if file <> "-" then close_in ic;
        Serve.Client.close c;
        if !transport_failures > 0 then exit 1;
        if !server_errors > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send line-JSON requests to a running antlrkit serve daemon and \
          print the responses.  Exits 0 when every response was ok, 1 on \
          transport failure, 2 when the daemon answered with a \
          structured error.")
    Term.(const run $ socket_arg $ tcp_arg $ file $ wait $ quiet)

(* --- top: live per-grammar request/latency tables ---------------------- *)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between stats polls.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit ($(b,0) = run until ^C).")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Never clear the screen; print each frame as plain text \
             (CI-friendly; also the default when stdout is not a tty).")
  in
  let run socket tcp interval count raw =
    let module J = Obs.Json in
    let addr = resolve_addr socket tcp in
    let jint = function Some (J.Int i) -> i | _ -> 0 in
    let jfloat = function
      | Some (J.Float f) -> f
      | Some (J.Int i) -> float_of_int i
      | _ -> 0.0
    in
    let jstr = function Some (J.String s) -> s | _ -> "" in
    match Serve.Client.connect_retry ~attempts:100 ~delay_s:0.1 addr with
    | Error msg ->
        Fmt.epr "%s@." msg;
        exit 1
    | Ok c ->
        let clear = (not raw) && Unix.isatty Unix.stdout in
        (* previous frame's per-(grammar,backend) request totals, for RPS
           from counter deltas; the first frame divides by uptime. *)
        let prev : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
        let prev_t = ref nan in
        let frame () : (unit, string) result =
          match Serve.Client.request_line c {|{"op":"stats","id":"top"}|} with
          | Error msg -> Error msg
          | Ok resp -> (
              match J.parse resp with
              | Error msg -> Error ("bad stats response: " ^ msg)
              | Ok j when J.member "ok" j <> Some (J.Bool true) ->
                  Error ("daemon refused stats: " ^ resp)
              | Ok j ->
                  let stats =
                    Option.value (J.member "stats" j) ~default:J.Null
                  in
                  let benches =
                    Option.value (J.member "benches" stats) ~default:J.Null
                  in
                  let wall_s = jfloat (J.member "wall_s" stats) in
                  let pool =
                    Option.value (J.member "pool" benches) ~default:J.Null
                  in
                  (* rows keyed (grammar, backend), built from the metric
                     points of the serve registry snapshot *)
                  let tbl = Hashtbl.create 16 in
                  let row key =
                    match Hashtbl.find_opt tbl key with
                    | Some r -> r
                    | None ->
                        let r = (ref 0, ref 0, ref (0, 0, 0)) in
                        Hashtbl.add tbl key r;
                        r
                  in
                  let points =
                    match J.member "serve" benches with
                    | Some (J.List pts) -> pts
                    | _ -> []
                  in
                  List.iter
                    (fun pt ->
                      let name = jstr (J.member "name" pt) in
                      let labels =
                        Option.value (J.member "labels" pt) ~default:J.Null
                      in
                      let label k = jstr (J.member k labels) in
                      let metric =
                        Option.value (J.member "metric" pt) ~default:J.Null
                      in
                      if name = "serve.requests" && label "op" = "parse" then begin
                        let reqs, errs, _ =
                          row (label "grammar", label "backend")
                        in
                        let n = jint (J.member "value" metric) in
                        reqs := !reqs + n;
                        if label "ok" = "false" then errs := !errs + n
                      end
                      else if name = "serve.request_us" && label "op" = "parse"
                      then begin
                        let _, _, lat = row (label "grammar", label "backend") in
                        lat :=
                          ( jint (J.member "p50_us" metric),
                            jint (J.member "p99_us" metric),
                            jint (J.member "max_us" metric) )
                      end)
                    points;
                  let now = Unix.gettimeofday () in
                  let dt = now -. !prev_t in
                  let rps_of key reqs =
                    if Float.is_nan !prev_t then
                      if wall_s > 0.0 then float_of_int reqs /. wall_s else 0.0
                    else
                      let before =
                        Option.value (Hashtbl.find_opt prev key) ~default:0
                      in
                      if dt > 0.0 then float_of_int (reqs - before) /. dt
                      else 0.0
                  in
                  let rows =
                    Hashtbl.fold
                      (fun key (reqs, errs, lat) acc ->
                        (key, !reqs, !errs, !lat) :: acc)
                      tbl []
                    |> List.sort compare
                  in
                  if clear then Fmt.pr "\027[2J\027[H";
                  let total_reqs =
                    List.fold_left (fun a (_, r, _, _) -> a + r) 0 rows
                  and total_errs =
                    List.fold_left (fun a (_, _, e, _) -> a + e) 0 rows
                  in
                  let total_rps =
                    List.fold_left
                      (fun a (key, r, _, _) -> a +. rps_of key r)
                      0.0 rows
                  in
                  Fmt.pr
                    "[antlrkit top] uptime %.1fs  pool %s x%d (pending %d)  \
                     total %d reqs, %d errors, %.1f rps@."
                    wall_s
                    (jstr (J.member "backend" pool))
                    (jint (J.member "jobs" pool))
                    (jint (J.member "pending" pool))
                    total_reqs total_errs total_rps;
                  Fmt.pr "%-16s %-10s %8s %6s %8s %9s %9s %9s@." "GRAMMAR"
                    "BACKEND" "REQS" "ERR" "RPS" "P50(ms)" "P99(ms)"
                    "MAX(ms)";
                  List.iter
                    (fun (((g, b) as key), reqs, errs, (p50, p99, mx)) ->
                      Fmt.pr "%-16s %-10s %8d %6d %8.1f %9.2f %9.2f %9.2f@."
                        g b reqs errs (rps_of key reqs)
                        (float_of_int p50 /. 1000.0)
                        (float_of_int p99 /. 1000.0)
                        (float_of_int mx /. 1000.0))
                    rows;
                  Fmt.pr "@?";
                  Hashtbl.reset prev;
                  List.iter
                    (fun (key, reqs, _, _) -> Hashtbl.replace prev key reqs)
                    rows;
                  prev_t := now;
                  Ok ())
        in
        let rec loop i =
          if count = 0 || i < count then begin
            (match frame () with
            | Ok () -> ()
            | Error msg ->
                Fmt.epr "%s@." msg;
                Serve.Client.close c;
                exit 1);
            if count = 0 || i + 1 < count then Unix.sleepf interval;
            loop (i + 1)
          end
        in
        loop 0;
        Serve.Client.close c
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running antlrkit serve daemon: per-grammar and \
          per-backend request rates, error counts, and latency quantiles \
          (p50/p99/max) from periodic stats polls.")
    Term.(const run $ socket_arg $ tcp_arg $ interval $ count $ raw)

let () =
  let doc = "LL(*) grammar analysis and parsing (Parr & Fisher, PLDI 2011)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "antlrkit" ~version:"1.0.0" ~doc)
          [
            analyze_cmd;
            dot_cmd;
            atn_cmd;
            parse_cmd;
            gen_cmd;
            fuzz_cmd;
            bench_cmd;
            codegen_cmd;
            serve_cmd;
            client_cmd;
            top_cmd;
          ]))
