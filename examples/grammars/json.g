// JSON, as a file-based example for the antlrkit CLI:
//   dune exec bin/main.exe -- analyze examples/grammars/json.g
//   dune exec bin/main.exe -- parse examples/grammars/json.g \
//       examples/grammars/sample.json --string STRING --float FLOAT -t -p
grammar Json;

value
  : obj
  | arr
  | STRING
  | INT
  | FLOAT
  | 'true'
  | 'false'
  | 'null'
  ;

obj : '{' (pair (',' pair)*)? '}' ;

pair : STRING ':' value ;

arr : '[' (value (',' value)*)? ']' ;
