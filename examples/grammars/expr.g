// Left-recursive expression grammar (rewritten automatically):
//   dune exec bin/main.exe -- analyze examples/grammars/expr.g -v
//   dune exec bin/main.exe -- gen examples/grammars/expr.g -n 3
grammar Expr;

prog : e EOF ;

e : e '*' e
  | e '/' e
  | e '+' e
  | e '-' e
  | '(' e ')'
  | INT
  | ID
  ;
