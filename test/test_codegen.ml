(* Code-generation tests (lib/codegen): the compiled-away parsers must be
   indistinguishable from the {!Runtime.Interp} oracle.

   Four layers:

   - the six committed generated parsers (lib/gen) agree with the
     interpreter -- accept/reject, error kind and position, consumed
     token count -- over a freshly built workload corpus;
   - the closure-execution backend ({!Codegen.Exec}, which interprets
     the IR with the exact control flow the emitter prints) agrees with
     the interpreter on qcheck-random grammars and random token strings,
     at both the default inline threshold and [~inline_threshold:0]
     (everything table-driven), so both decision-lowering strategies are
     exercised;
   - emission is deterministic (lower + emit twice, byte-identical) and
     the committed lib/gen sources are fresh (regeneration reproduces
     them byte-for-byte);
   - every committed fuzz-corpus reproducer replays without divergence
     through the generated parser.

   The corpus/lib-gen directories are located by walking up from the
   test's build directory, like test_fuzz's corpus replay; a sandboxed
   run without them is trivially green. *)

open Helpers
module Workload = Bench_grammars.Workload
module RtG = Runtime.Generated

let spec_exn name =
  match Fuzz.Driver.find_spec name with
  | Some s -> s
  | None -> Alcotest.failf "no bench spec %s" name

let bench_names =
  [ "MiniJava"; "RatsC"; "RatsJava"; "MiniVB"; "MiniSQL"; "MiniCSharp" ]

let committed_parser name =
  match Gen.Registry.find name with
  | Some p -> p
  | None -> Alcotest.failf "no committed generated parser for %s" name

(* ------------------------------------------------------------------ *)
(* Committed parsers vs the interpreter over workload corpora          *)

let corpus_agreement name =
  test (Printf.sprintf "%s: generated agrees with Interp on corpus" name)
    (fun () ->
      let spec = spec_exn name in
      let cw = Workload.compile spec in
      let env = Workload.env_of_spec spec in
      let (module P : RtG.PARSER) = committed_parser name in
      let corpus = Workload.build_corpus cw ~target_tokens:2_000 in
      List.iter
        (fun text ->
          let toks = Workload.lex_exn cw text in
          let got = P.outcome ~env toks in
          let want = RtG.interp_outcome ~env cw.Workload.c toks in
          if not (RtG.agree got want) then
            Alcotest.failf "%s diverges on %S: generated=%s interp=%s" name
              text (RtG.describe got) (RtG.describe want))
        corpus.Workload.texts)

(* The generated module's embedded vocabulary must match the compiled
   grammar's interning, or token ids in emitted match arms mean the wrong
   terminal. *)
let vocabulary_matches name =
  test (Printf.sprintf "%s: embedded vocabulary matches compile" name)
    (fun () ->
      let spec = spec_exn name in
      let cw = Workload.compile spec in
      let sym = Llstar.Compiled.sym cw.Workload.c in
      let (module P : RtG.PARSER) = committed_parser name in
      check int "terminal count" (Grammar.Sym.num_terms sym)
        (Array.length P.token_names);
      Array.iteri
        (fun i n -> check string (Printf.sprintf "term %d" i)
            (Grammar.Sym.term_name sym i) n)
        P.token_names)

(* ------------------------------------------------------------------ *)
(* Exec backend vs Interp on random grammars (both decision plans)     *)

let exec_agrees_with_interp ~inline_threshold (g, word) =
  match Test_props.compile_rand g with
  | None -> true
  | Some c -> (
      match Codegen.Lower.lower ~inline_threshold c with
      | Error m -> Alcotest.failf "lower failed on a compiled grammar: %s" m
      | Ok ir ->
          let (module P : RtG.PARSER) = Codegen.Exec.to_parser ir in
          let names = List.map (fun i -> Test_props.terminals.(i)) word in
          let toks = Test_props.tokens_of_names c names in
          let got = P.outcome toks in
          let want = RtG.interp_outcome c toks in
          RtG.agree got want)

let arb_grammar_and_word =
  QCheck.pair Test_props.arb_grammar
    (QCheck.list_of_size (QCheck.Gen.int_bound 6) (QCheck.int_bound 4))

let props =
  [
    qtest ~count:150 "exec backend agrees with Interp (inline decisions)"
      arb_grammar_and_word
      (exec_agrees_with_interp
         ~inline_threshold:Codegen.Lower.default_inline_threshold);
    qtest ~count:150 "exec backend agrees with Interp (table decisions)"
      arb_grammar_and_word
      (exec_agrees_with_interp ~inline_threshold:0);
    qtest ~count:100 "exec backend accepts drawn sentences iff Interp does"
      Test_props.arb_grammar_and_sentence (fun (g, sentence) ->
        match (Test_props.compile_rand g, sentence) with
        | None, _ | _, None -> true
        | Some c, Some sentence -> (
            match Codegen.Lower.lower c with
            | Error m ->
                Alcotest.failf "lower failed on a compiled grammar: %s" m
            | Ok ir ->
                let (module P : RtG.PARSER) = Codegen.Exec.to_parser ir in
                let toks = Test_props.tokens_of_names c sentence in
                RtG.agree (P.outcome toks) (RtG.interp_outcome c toks)));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism and freshness of the committed sources                  *)

(* Mirror bin/main.ml's codegen --bench path: same lexer hint and grammar
   text, so the emitted text is exactly what `antlrkit codegen` writes. *)
let emit_for name =
  let spec = spec_exn name in
  let cw = Workload.compile spec in
  match
    Codegen.Lower.lower ~lexer:spec.Workload.lexer_config
      ~grammar_text:spec.Workload.grammar_text cw.Workload.c
  with
  | Error m -> Alcotest.failf "lower %s: %s" name m
  | Ok ir -> Codegen.Emit_ocaml.emit ir

let find_up rel =
  let rec go dir depth =
    if depth > 5 then None
    else
      let cand = Filename.concat dir rel in
      if Sys.file_exists cand then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else go parent (depth + 1)
  in
  go (Sys.getcwd ()) 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gen_module_file name =
  let slug =
    match name with
    | "MiniJava" -> "gen_mini_java"
    | "RatsC" -> "gen_rats_c"
    | "RatsJava" -> "gen_rats_java"
    | "MiniVB" -> "gen_mini_vb"
    | "MiniSQL" -> "gen_mini_sql"
    | "MiniCSharp" -> "gen_mini_csharp"
    | other -> Alcotest.failf "no committed module mapping for %s" other
  in
  slug ^ ".ml"

let determinism_tests =
  [
    test "emission is deterministic (lower + emit twice)" (fun () ->
        List.iter
          (fun name ->
            check bool (name ^ " byte-identical") true
              (String.equal (emit_for name) (emit_for name)))
          bench_names);
    test "committed lib/gen sources match regeneration" (fun () ->
        match find_up "lib/gen" with
        | None -> () (* sandboxed run without the source tree *)
        | Some dir ->
            List.iter
              (fun name ->
                let path = Filename.concat dir (gen_module_file name) in
                if not (Sys.file_exists path) then
                  Alcotest.failf "missing committed parser %s" path;
                if not (String.equal (read_file path) (emit_for name)) then
                  Alcotest.failf
                    "%s is stale: regenerate with `dune exec antlrkit -- \
                     codegen --bench %s -o lib/gen --parser-only --module \
                     %s`"
                    path name
                    (Filename.remove_extension (gen_module_file name)))
              bench_names);
  ]

(* ------------------------------------------------------------------ *)
(* Fuzz-corpus reproducers replayed through the generated parsers      *)

let replay_tests =
  [
    test "committed reproducers agree generated-vs-Interp" (fun () ->
        match find_up "fuzz-corpus" with
        | None -> ()
        | Some dir ->
            Array.iter
              (fun file ->
                if Filename.check_suffix file ".txt" then
                  match
                    Fuzz.Driver.read_reproducer (Filename.concat dir file)
                  with
                  | Error m -> Alcotest.fail m
                  | Ok rp -> (
                      let name = rp.Fuzz.Driver.rp_grammar in
                      match Gen.Registry.find name with
                      | None -> () (* reproducer for a non-bench grammar *)
                      | Some (module P : RtG.PARSER) -> (
                          match Fuzz.Oracle.create (spec_exn name) with
                          | Error e ->
                              Alcotest.failf "oracle: %a"
                                Llstar.Compiled.pp_error e
                          | Ok o ->
                              let toks =
                                Fuzz.Oracle.tokens_of_names o
                                  rp.Fuzz.Driver.rp_tokens
                              in
                              let spec = spec_exn name in
                              let env = Workload.env_of_spec spec in
                              let cw = Workload.compile spec in
                              let got = P.outcome ~env toks in
                              let want =
                                RtG.interp_outcome ~env cw.Workload.c toks
                              in
                              if not (RtG.agree got want) then
                                Alcotest.failf
                                  "%s: generated=%s interp=%s" file
                                  (RtG.describe got) (RtG.describe want))))
              (Sys.readdir dir));
  ]

let suite =
  [
    ("codegen: corpus agreement", List.map corpus_agreement bench_names);
    ("codegen: vocabulary", List.map vocabulary_matches bench_names);
    ("codegen: random grammars", props);
    ("codegen: determinism + freshness", determinism_tests);
    ("codegen: reproducer replay", replay_tests);
  ]
