(* Persistent compilation cache: round trips, corruption tolerance, and
   warm lazy-state preservation. *)

open Helpers

let src = "grammar T; s : A B C | A B D | E ;"

(* Fresh private directory per test; removed afterwards. *)
let with_dir (f : string -> unit) : unit =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "antlrkit-test-cache-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let compile_cached ?strategy ~dir src =
  match Llstar.Compiled_cache.of_source ?strategy ~dir src with
  | Ok r -> r
  | Error e -> Alcotest.failf "cache compile failed: %a" Llstar.Compiled.pp_error e

let blob_path dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".antlrkit-cache")
  with
  | [ f ] -> Filename.concat dir f
  | files -> Alcotest.failf "expected one cache blob, found %d" (List.length files)

let suite =
  [
    ( "compiled_cache",
      [
        test "miss then hit, identical parses" (fun () ->
            with_dir (fun dir ->
                let c1, o1 = compile_cached ~dir src in
                check bool "first is a miss" true
                  (o1 = Llstar.Compiled_cache.Miss);
                check bool "fresh origin" false (Llstar.Compiled.from_cache c1);
                let c2, o2 = compile_cached ~dir src in
                check bool "second is a hit" true
                  (o2 = Llstar.Compiled_cache.Hit);
                check bool "cache origin" true (Llstar.Compiled.from_cache c2);
                check string "same tree" (parse_tree c1 "A B C")
                  (parse_tree c2 "A B C");
                check string "same tree 2" (parse_tree c1 "E")
                  (parse_tree c2 "E");
                check bool "same dfa" true
                  (Llstar.Compiled.dfa c1 0 = Llstar.Compiled.dfa c2 0)));
        test "different grammar, different key" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let _, o = compile_cached ~dir "grammar U; s : A | B ;" in
                check bool "other grammar misses" true
                  (o = Llstar.Compiled_cache.Miss)));
        test "strategy is part of the key" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let _, o =
                  compile_cached ~strategy:Llstar.Compiled.Lazy ~dir src
                in
                check bool "lazy misses after eager" true
                  (o = Llstar.Compiled_cache.Miss)));
        test "garbage blob falls back to a rebuild" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let path = blob_path dir in
                let oc = open_out_bin path in
                output_string oc "this is not a cache blob";
                close_out oc;
                let c, o = compile_cached ~dir src in
                check bool "rebuilds" true (o = Llstar.Compiled_cache.Miss);
                check bool "fresh origin" false (Llstar.Compiled.from_cache c);
                (* the rebuild re-saved a valid blob *)
                let _, o2 = compile_cached ~dir src in
                check bool "hit after repair" true
                  (o2 = Llstar.Compiled_cache.Hit)));
        test "truncated blob falls back to a rebuild" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let path = blob_path dir in
                let ic = open_in_bin path in
                let n = in_channel_length ic in
                let half = really_input_string ic (n / 2) in
                close_in ic;
                let oc = open_out_bin path in
                output_string oc half;
                close_out oc;
                let _, o = compile_cached ~dir src in
                check bool "rebuilds" true (o = Llstar.Compiled_cache.Miss)));
        test "flipped payload byte falls back to a rebuild" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let path = blob_path dir in
                let ic = open_in_bin path in
                let n = in_channel_length ic in
                let bytes = Bytes.of_string (really_input_string ic n) in
                close_in ic;
                (* flip a byte well inside the marshaled payload *)
                let i = n - 7 in
                Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0xff));
                let oc = open_out_bin path in
                output_bytes oc bytes;
                close_out oc;
                let _, o = compile_cached ~dir src in
                check bool "rebuilds" true (o = Llstar.Compiled_cache.Miss)));
        test "missing directory is a miss, then created" (fun () ->
            with_dir (fun dir ->
                let sub = Filename.concat dir "nested" in
                let _, o = compile_cached ~dir:sub src in
                check bool "miss" true (o = Llstar.Compiled_cache.Miss);
                check bool "dir created" true (Sys.file_exists sub);
                let _, o2 = compile_cached ~dir:sub src in
                check bool "hit" true (o2 = Llstar.Compiled_cache.Hit);
                (* clean the nested dir so with_dir can remove the parent *)
                Array.iter
                  (fun f -> Sys.remove (Filename.concat sub f))
                  (Sys.readdir sub);
                Sys.rmdir sub));
        test "lazy warm re-save preserves materialized states" (fun () ->
            with_dir (fun dir ->
                let c, o =
                  compile_cached ~strategy:Llstar.Compiled.Lazy ~dir src
                in
                check bool "miss" true (o = Llstar.Compiled_cache.Miss);
                (match Runtime.Interp.parse c (lex c "A B D") with
                | Ok _ -> ()
                | Error _ -> Alcotest.fail "lazy parse failed");
                let warm_states = (Llstar.Compiled.dfa c 0).Llstar.Look_dfa.nstates in
                (match Llstar.Compiled_cache.save ~dir c with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "warm save failed: %s" e);
                let c2, o2 =
                  compile_cached ~strategy:Llstar.Compiled.Lazy ~dir src
                in
                check bool "hit" true (o2 = Llstar.Compiled_cache.Hit);
                check bool "still lazy" true
                  (Llstar.Compiled.strategy c2 = Llstar.Compiled.Lazy);
                check int "materialized states preserved" warm_states
                  (Llstar.Compiled.dfa c2 0).Llstar.Look_dfa.nstates;
                (* and the warm copy still parses identically *)
                check string "same tree" (parse_tree c "A B D")
                  (parse_tree c2 "A B D")));
        test "cache-hit states are credited to the profile" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let c, _ = compile_cached ~dir src in
                let p = Runtime.Profile.create () in
                (match Runtime.Interp.parse ~profile:p c (lex c "A B C") with
                | Ok _ -> ()
                | Error _ -> Alcotest.fail "parse failed");
                check bool "cached states recorded" true
                  (Runtime.Profile.cached_dfa_states p > 0);
                check int "no lazy states in eager mode" 0
                  (Runtime.Profile.lazy_dfa_states p)));
      ] );
    ( "compiled_cache_gc",
      [
        test "dead writer's temp is swept; live writer's temp survives"
          (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let blob = blob_path dir in
                (* a provably-dead pid: fork a child that exits at once *)
                let dead_pid =
                  match Unix.fork () with
                  | 0 -> Unix._exit 0
                  | pid ->
                      ignore (Unix.waitpid [] pid);
                      pid
                in
                let plant name =
                  let path = Filename.concat dir name in
                  let oc = open_out_bin path in
                  output_string oc "partial write from a crashed writer";
                  close_out oc;
                  path
                in
                let dead =
                  plant (Printf.sprintf ".deadbeef.tmp.%d" dead_pid)
                in
                let live =
                  plant (Printf.sprintf ".cafef00d.tmp.%d" (Unix.getpid ()))
                in
                let removed = Llstar.Compiled_cache.gc_stale_temps ~dir () in
                check (Alcotest.list string) "only the dead temp removed"
                  [ dead ] removed;
                check bool "dead temp gone" false (Sys.file_exists dead);
                check bool "live temp untouched" true (Sys.file_exists live);
                check bool "valid blob untouched" true (Sys.file_exists blob);
                let _, o = compile_cached ~dir src in
                check bool "blob still hits after sweep" true
                  (o = Llstar.Compiled_cache.Hit)));
        test "live-pid temp older than the age cap is swept" (fun () ->
            with_dir (fun dir ->
                Unix.mkdir dir 0o700;
                let old_path =
                  Filename.concat dir
                    (Printf.sprintf ".01dc0ffe.tmp.%d" (Unix.getpid ()))
                in
                let oc = open_out_bin old_path in
                output_string oc "ancient";
                close_out oc;
                let t = Unix.gettimeofday () -. 7200.0 in
                Unix.utimes old_path t t;
                let removed = Llstar.Compiled_cache.gc_stale_temps ~dir () in
                check (Alcotest.list string) "aged out" [ old_path ] removed));
        test "compile sweeps a crashed writer's temp on first cache open"
          (fun () ->
            with_dir (fun dir ->
                (* a nested dir this process has never compiled in, so the
                   once-per-directory sweep guard has not fired yet *)
                Unix.mkdir dir 0o700;
                let sub = Filename.concat dir "nested" in
                Unix.mkdir sub 0o700;
                let dead_pid =
                  match Unix.fork () with
                  | 0 -> Unix._exit 0
                  | pid ->
                      ignore (Unix.waitpid [] pid);
                      pid
                in
                let stale =
                  Filename.concat sub
                    (Printf.sprintf ".deadbeef.tmp.%d" dead_pid)
                in
                let oc = open_out_bin stale in
                output_string oc "junk";
                close_out oc;
                let _ = compile_cached ~dir:sub src in
                check bool "stale temp swept by compile" false
                  (Sys.file_exists stale);
                let _, o = compile_cached ~dir:sub src in
                check bool "cache works after sweep" true
                  (o = Llstar.Compiled_cache.Hit);
                (* leave nothing behind for with_dir's flat cleanup *)
                Array.iter
                  (fun f -> Sys.remove (Filename.concat sub f))
                  (Sys.readdir sub);
                Sys.rmdir sub));
        test "temp name parser accepts only writer-temp shapes" (fun () ->
            let pid = Unix.getpid () in
            let some_pid name =
              Llstar.Compiled_cache.temp_writer_pid name <> None
            in
            check bool "writer temp" true
              (some_pid (Printf.sprintf ".abc123.tmp.%d" pid));
            check bool "valid blob name" false
              (some_pid "abc123.antlrkit-cache");
            check bool "no leading dot" false
              (some_pid (Printf.sprintf "abc123.tmp.%d" pid));
            check bool "no pid" false (some_pid ".abc123.tmp.");
            check bool "non-numeric pid" false (some_pid ".abc123.tmp.xyz");
            check bool "negative pid" false (some_pid ".abc123.tmp.-4");
            check bool "missing infix" false
              (some_pid (Printf.sprintf ".abc123.tmpp.%d" pid)));
        test "racing writers and readers never observe a torn blob"
          (fun () ->
            with_dir (fun dir ->
                Unix.mkdir dir 0o700;
                let c = compile src in
                let surface = c.Llstar.Compiled.surface in
                let want = Llstar.Compiled_cache.payload_digest c in
                Exec.Pool.with_pool ~jobs:4 (fun p ->
                    let writer () =
                      for _ = 1 to 10 do
                        match Llstar.Compiled_cache.save ~dir c with
                        | Ok _ -> ()
                        | Error e -> Alcotest.failf "save failed: %s" e
                      done;
                      0
                    in
                    let reader () =
                      let seen = ref 0 in
                      for _ = 1 to 20 do
                        match Llstar.Compiled_cache.load ~dir surface with
                        | None -> () (* not yet written: fine *)
                        | Some c' ->
                            incr seen;
                            if Llstar.Compiled_cache.payload_digest c' <> want
                            then Alcotest.fail "torn or foreign blob observed"
                      done;
                      !seen
                    in
                    let tasks =
                      [
                        Exec.Pool.submit p writer;
                        Exec.Pool.submit p writer;
                        Exec.Pool.submit p reader;
                        Exec.Pool.submit p reader;
                      ]
                    in
                    ignore (List.map Exec.Pool.await tasks));
                (* after the dust settles: exactly one valid blob, no temps *)
                match Llstar.Compiled_cache.load ~dir surface with
                | None -> Alcotest.fail "no blob survived the race"
                | Some c' ->
                    check string "converged on a digest-valid entry" want
                      (Llstar.Compiled_cache.payload_digest c');
                    let temps =
                      Array.to_list (Sys.readdir dir)
                      |> List.filter (fun f ->
                             Llstar.Compiled_cache.temp_writer_pid f <> None)
                    in
                    check int "no leftover temps" 0 (List.length temps)));
      ] );
  ]
