(* Persistent compilation cache: round trips, corruption tolerance, and
   warm lazy-state preservation. *)

open Helpers

let src = "grammar T; s : A B C | A B D | E ;"

(* Fresh private directory per test; removed afterwards. *)
let with_dir (f : string -> unit) : unit =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "antlrkit-test-cache-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let compile_cached ?strategy ~dir src =
  match Llstar.Compiled_cache.of_source ?strategy ~dir src with
  | Ok r -> r
  | Error e -> Alcotest.failf "cache compile failed: %a" Llstar.Compiled.pp_error e

let blob_path dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".antlrkit-cache")
  with
  | [ f ] -> Filename.concat dir f
  | files -> Alcotest.failf "expected one cache blob, found %d" (List.length files)

let suite =
  [
    ( "compiled_cache",
      [
        test "miss then hit, identical parses" (fun () ->
            with_dir (fun dir ->
                let c1, o1 = compile_cached ~dir src in
                check bool "first is a miss" true
                  (o1 = Llstar.Compiled_cache.Miss);
                check bool "fresh origin" false (Llstar.Compiled.from_cache c1);
                let c2, o2 = compile_cached ~dir src in
                check bool "second is a hit" true
                  (o2 = Llstar.Compiled_cache.Hit);
                check bool "cache origin" true (Llstar.Compiled.from_cache c2);
                check string "same tree" (parse_tree c1 "A B C")
                  (parse_tree c2 "A B C");
                check string "same tree 2" (parse_tree c1 "E")
                  (parse_tree c2 "E");
                check bool "same dfa" true
                  (Llstar.Compiled.dfa c1 0 = Llstar.Compiled.dfa c2 0)));
        test "different grammar, different key" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let _, o = compile_cached ~dir "grammar U; s : A | B ;" in
                check bool "other grammar misses" true
                  (o = Llstar.Compiled_cache.Miss)));
        test "strategy is part of the key" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let _, o =
                  compile_cached ~strategy:Llstar.Compiled.Lazy ~dir src
                in
                check bool "lazy misses after eager" true
                  (o = Llstar.Compiled_cache.Miss)));
        test "garbage blob falls back to a rebuild" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let path = blob_path dir in
                let oc = open_out_bin path in
                output_string oc "this is not a cache blob";
                close_out oc;
                let c, o = compile_cached ~dir src in
                check bool "rebuilds" true (o = Llstar.Compiled_cache.Miss);
                check bool "fresh origin" false (Llstar.Compiled.from_cache c);
                (* the rebuild re-saved a valid blob *)
                let _, o2 = compile_cached ~dir src in
                check bool "hit after repair" true
                  (o2 = Llstar.Compiled_cache.Hit)));
        test "truncated blob falls back to a rebuild" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let path = blob_path dir in
                let ic = open_in_bin path in
                let n = in_channel_length ic in
                let half = really_input_string ic (n / 2) in
                close_in ic;
                let oc = open_out_bin path in
                output_string oc half;
                close_out oc;
                let _, o = compile_cached ~dir src in
                check bool "rebuilds" true (o = Llstar.Compiled_cache.Miss)));
        test "flipped payload byte falls back to a rebuild" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let path = blob_path dir in
                let ic = open_in_bin path in
                let n = in_channel_length ic in
                let bytes = Bytes.of_string (really_input_string ic n) in
                close_in ic;
                (* flip a byte well inside the marshaled payload *)
                let i = n - 7 in
                Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0xff));
                let oc = open_out_bin path in
                output_bytes oc bytes;
                close_out oc;
                let _, o = compile_cached ~dir src in
                check bool "rebuilds" true (o = Llstar.Compiled_cache.Miss)));
        test "missing directory is a miss, then created" (fun () ->
            with_dir (fun dir ->
                let sub = Filename.concat dir "nested" in
                let _, o = compile_cached ~dir:sub src in
                check bool "miss" true (o = Llstar.Compiled_cache.Miss);
                check bool "dir created" true (Sys.file_exists sub);
                let _, o2 = compile_cached ~dir:sub src in
                check bool "hit" true (o2 = Llstar.Compiled_cache.Hit);
                (* clean the nested dir so with_dir can remove the parent *)
                Array.iter
                  (fun f -> Sys.remove (Filename.concat sub f))
                  (Sys.readdir sub);
                Sys.rmdir sub));
        test "lazy warm re-save preserves materialized states" (fun () ->
            with_dir (fun dir ->
                let c, o =
                  compile_cached ~strategy:Llstar.Compiled.Lazy ~dir src
                in
                check bool "miss" true (o = Llstar.Compiled_cache.Miss);
                (match Runtime.Interp.parse c (lex c "A B D") with
                | Ok _ -> ()
                | Error _ -> Alcotest.fail "lazy parse failed");
                let warm_states = (Llstar.Compiled.dfa c 0).Llstar.Look_dfa.nstates in
                (match Llstar.Compiled_cache.save ~dir c with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "warm save failed: %s" e);
                let c2, o2 =
                  compile_cached ~strategy:Llstar.Compiled.Lazy ~dir src
                in
                check bool "hit" true (o2 = Llstar.Compiled_cache.Hit);
                check bool "still lazy" true
                  (Llstar.Compiled.strategy c2 = Llstar.Compiled.Lazy);
                check int "materialized states preserved" warm_states
                  (Llstar.Compiled.dfa c2 0).Llstar.Look_dfa.nstates;
                (* and the warm copy still parses identically *)
                check string "same tree" (parse_tree c "A B D")
                  (parse_tree c2 "A B D")));
        test "cache-hit states are credited to the profile" (fun () ->
            with_dir (fun dir ->
                let _ = compile_cached ~dir src in
                let c, _ = compile_cached ~dir src in
                let p = Runtime.Profile.create () in
                (match Runtime.Interp.parse ~profile:p c (lex c "A B C") with
                | Ok _ -> ()
                | Error _ -> Alcotest.fail "parse failed");
                check bool "cached states recorded" true
                  (Runtime.Profile.cached_dfa_states p > 0);
                check int "no lazy states in eager mode" 0
                  (Runtime.Profile.lazy_dfa_states p)));
      ] );
  ]
