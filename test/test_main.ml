(* Entry point: aggregates all suites. *)

let () =
  Alcotest.run "antlrkit"
    (Test_grammar.suite @ Test_analysis.suite @ Test_runtime.suite
   @ Test_baselines.suite @ Test_minimize.suite @ Test_report.suite
   @ Test_bench_grammars.suite
   @ Test_lazy.suite @ Test_cache.suite @ Test_profile.suite
   @ Test_props.suite @ Test_fuzz.suite @ Test_obs.suite
   @ Test_bitset.suite @ Test_exec.suite @ Test_codegen.suite
   @ Test_serve.suite)
