(* Entry point: aggregates all suites.

   Ordering constraint: [Test_cache] contains [Unix.fork]-based tests
   (stale-temp GC), and on OCaml 5 fork refuses to run once any domain
   has been created -- so it must precede every suite that spins up an
   [Exec.Pool] with worker domains ([Test_lazy]'s concurrency tests,
   [Test_exec], [Test_serve]). *)

let () =
  Alcotest.run "antlrkit"
    (Test_grammar.suite @ Test_analysis.suite @ Test_runtime.suite
   @ Test_baselines.suite @ Test_minimize.suite @ Test_report.suite
   @ Test_bench_grammars.suite @ Test_cache.suite
   @ Test_lazy.suite @ Test_profile.suite
   @ Test_props.suite @ Test_fuzz.suite @ Test_obs.suite
   @ Test_bitset.suite @ Test_exec.suite @ Test_codegen.suite
   @ Test_serve.suite)
