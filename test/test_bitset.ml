(* Bitset laws (qcheck) and the bitset-vs-string-set differential:
   [First_follow] (interned-id bitsets) must agree exactly with the
   retained reference implementation [First_follow_ref] (Set.Make(String))
   on every grammar -- random ones and the six benchmark grammars. *)

open Helpers
module Gen = QCheck.Gen
module FF = Grammar.First_follow
module FFR = Grammar.First_follow_ref

(* ------------------------------------------------------------------ *)
(* Reference model: sorted deduplicated int lists *)

let model_of_list u xs =
  List.sort_uniq compare (List.filter (fun x -> x >= 0 && x < u) xs)

let arb_set =
  let gen =
    let open Gen in
    int_range 1 200 >>= fun u ->
    list_size (int_bound 40) (int_bound (u - 1)) >>= fun xs ->
    return (u, xs)
  in
  QCheck.make
    ~print:(fun (u, xs) ->
      Printf.sprintf "u=%d [%s]" u
        (String.concat ";" (List.map string_of_int xs)))
    gen

let arb_two_sets =
  let gen =
    let open Gen in
    int_range 1 200 >>= fun u ->
    list_size (int_bound 40) (int_bound (u - 1)) >>= fun xs ->
    list_size (int_bound 40) (int_bound (u - 1)) >>= fun ys ->
    return (u, xs, ys)
  in
  QCheck.make
    ~print:(fun (u, xs, ys) ->
      Printf.sprintf "u=%d [%s] [%s]" u
        (String.concat ";" (List.map string_of_int xs))
        (String.concat ";" (List.map string_of_int ys)))
    gen

let bitset_props =
  [
    qtest "of_list/elements round-trips through the sorted model" arb_set
      (fun (u, xs) ->
        Bitset.elements (Bitset.of_list ~universe:u xs) = model_of_list u xs);
    qtest "elements are ascending (iteration order)" arb_set (fun (u, xs) ->
        let e = Bitset.elements (Bitset.of_list ~universe:u xs) in
        e = List.sort compare e);
    qtest "cardinal agrees with elements" arb_set (fun (u, xs) ->
        let s = Bitset.of_list ~universe:u xs in
        Bitset.cardinal s = List.length (Bitset.elements s));
    qtest "mem agrees with the model" arb_set (fun (u, xs) ->
        let s = Bitset.of_list ~universe:u xs in
        let m = model_of_list u xs in
        List.for_all (fun i -> Bitset.mem s i = List.mem i m)
          (List.init u (fun i -> i)));
    qtest "union is the model union" arb_two_sets (fun (u, xs, ys) ->
        let a = Bitset.of_list ~universe:u xs
        and b = Bitset.of_list ~universe:u ys in
        Bitset.elements (Bitset.union a b) = model_of_list u (xs @ ys));
    qtest "inter is the model intersection" arb_two_sets (fun (u, xs, ys) ->
        let a = Bitset.of_list ~universe:u xs
        and b = Bitset.of_list ~universe:u ys in
        let m = model_of_list u ys in
        Bitset.elements (Bitset.inter a b)
        = List.filter (fun x -> List.mem x m) (model_of_list u xs));
    qtest "diff is the model difference" arb_two_sets (fun (u, xs, ys) ->
        let a = Bitset.of_list ~universe:u xs
        and b = Bitset.of_list ~universe:u ys in
        let m = model_of_list u ys in
        Bitset.elements (Bitset.diff a b)
        = List.filter (fun x -> not (List.mem x m)) (model_of_list u xs));
    qtest "complement partitions the universe" arb_set (fun (u, xs) ->
        let s = Bitset.of_list ~universe:u xs in
        let c = Bitset.complement s in
        Bitset.is_empty (Bitset.inter s c)
        && Bitset.cardinal s + Bitset.cardinal c = u
        && List.sort compare (Bitset.elements s @ Bitset.elements c)
           = List.init u (fun i -> i));
    qtest "complement is an involution" arb_set (fun (u, xs) ->
        let s = Bitset.of_list ~universe:u xs in
        Bitset.equal s (Bitset.complement (Bitset.complement s)));
    qtest "union_into merges in place and reports changes exactly"
      arb_two_sets (fun (u, xs, ys) ->
        let a = Bitset.of_list ~universe:u xs
        and b = Bitset.of_list ~universe:u ys in
        let before = Bitset.copy a in
        let changed = Bitset.union_into ~into:a b in
        Bitset.equal a (Bitset.union before b)
        && changed = not (Bitset.equal a before)
        && not (Bitset.union_into ~into:a b) (* second merge: no change *));
    qtest "subset and equal behave like the model" arb_two_sets
      (fun (u, xs, ys) ->
        let a = Bitset.of_list ~universe:u xs
        and b = Bitset.of_list ~universe:u ys in
        Bitset.subset a (Bitset.union a b)
        && Bitset.subset (Bitset.inter a b) a
        && Bitset.equal a b
           = (model_of_list u xs = model_of_list u ys));
    qtest "min/max/choose agree with elements" arb_set (fun (u, xs) ->
        let s = Bitset.of_list ~universe:u xs in
        match Bitset.elements s with
        | [] ->
            Bitset.min_elt_opt s = None
            && Bitset.max_elt_opt s = None
            && Bitset.choose_opt s = None
        | es ->
            Bitset.min_elt_opt s = Some (List.hd es)
            && Bitset.max_elt_opt s = Some (List.nth es (List.length es - 1))
            && Bitset.choose_opt s = Some (List.hd es));
    qtest "remove deletes exactly one element" arb_set (fun (u, xs) ->
        match model_of_list u xs with
        | [] -> true
        | x :: _ as m ->
            let s = Bitset.of_list ~universe:u xs in
            Bitset.remove s x;
            Bitset.elements s = List.filter (fun y -> y <> x) m);
    test "range checks: add/remove raise, mem answers false" (fun () ->
        let s = Bitset.create 10 in
        check bool "mem -1" false (Bitset.mem s (-1));
        check bool "mem 10" false (Bitset.mem s 10);
        let raises f =
          match f () with
          | () -> false
          | exception Invalid_argument _ -> true
        in
        check bool "add 10 raises" true (raises (fun () -> Bitset.add s 10));
        check bool "add -1 raises" true (raises (fun () -> Bitset.add s (-1)));
        check bool "remove 10 raises" true
          (raises (fun () -> Bitset.remove s 10));
        check bool "union universe mismatch raises" true
          (raises (fun () ->
               ignore (Bitset.union s (Bitset.create 11)))));
  ]

let growable_tests =
  [
    test "growable resizes across granule boundaries" (fun () ->
        let g = Bitset.Growable.create ~initial:1 () in
        List.iter (Bitset.Growable.add g) [ 0; 63; 64; 500 ];
        check bool "mem 0" true (Bitset.Growable.mem g 0);
        check bool "mem 64" true (Bitset.Growable.mem g 64);
        check bool "mem 500" true (Bitset.Growable.mem g 500);
        check bool "mem 499" false (Bitset.Growable.mem g 499);
        check bool "universe grew" true (Bitset.Growable.universe g > 500);
        check int "cardinal" 4 (Bitset.Growable.cardinal g);
        check bool "elements ascending" true
          (Bitset.Growable.elements g = [ 0; 63; 64; 500 ]));
    qtest "growable agrees with fixed on any id sequence"
      (QCheck.list_of_size (Gen.int_bound 60) (QCheck.int_bound 1000))
      (fun ids ->
        let g = Bitset.Growable.create () in
        List.iter (Bitset.Growable.add g) ids;
        Bitset.Growable.elements g = model_of_list 1001 ids);
    test "snapshot drops ids beyond the frozen universe" (fun () ->
        let g = Bitset.Growable.create () in
        List.iter (Bitset.Growable.add g) [ 1; 99; 100; 200 ];
        let s = Bitset.Growable.snapshot ~universe:100 g in
        check int "universe" 100 (Bitset.universe s);
        check bool "elements" true (Bitset.elements s = [ 1; 99 ]));
  ]

(* ------------------------------------------------------------------ *)
(* Differential: First_follow vs First_follow_ref *)

let ss_elems s = FF.SS.elements s
let ssr_elems s = FFR.SS.elements s
let seq_elems s = FF.SeqSet.elements s
let seqr_elems s = FFR.SeqSet.elements s

(* Compare the two implementations exhaustively on one BNF skeleton:
   nullable/FIRST/FOLLOW per nonterminal, FIRST of every production's rhs,
   and FIRST_k (including identical blow-up behavior) for small k. *)
let agree ?(ks = [ 1; 2; 3 ]) ?(max_set_size = 5_000) (bnf : Grammar.Bnf.t) :
    bool =
  let ff = FF.compute bnf in
  let rf = FFR.compute bnf in
  let nt_ok n =
    FF.is_nullable ff n = FFR.is_nullable rf n
    && ss_elems (FF.first_of ff n) = ssr_elems (FFR.first_of rf n)
    && ss_elems (FF.follow_of ff n) = ssr_elems (FFR.follow_of rf n)
  in
  let prod_ok (p : Grammar.Bnf.prod) =
    let s1, n1 = FF.first_seq ff p.rhs in
    let s2, n2 = FFR.first_seq rf p.rhs in
    let firstk_ok k =
      match FF.first_k ~max_set_size ff k p.rhs with
      | s -> (
          match FFR.first_k ~max_set_size rf k p.rhs with
          | s' -> seq_elems s = seqr_elems s'
          | exception FFR.Blowup _ -> false)
      | exception FF.Blowup n -> (
          match FFR.first_k ~max_set_size rf k p.rhs with
          | _ -> false
          | exception FFR.Blowup n' -> n = n')
    in
    ss_elems s1 = ssr_elems s2 && n1 = n2 && List.for_all firstk_ok ks
  in
  List.for_all nt_ok bnf.Grammar.Bnf.nonterms
  && List.for_all prod_ok bnf.Grammar.Bnf.prods

let bench_specs : Bench_grammars.Workload.spec list =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let differential_tests =
  List.map
    (fun (spec : Bench_grammars.Workload.spec) ->
      test (Printf.sprintf "bitset FF agrees with reference on %s"
              spec.Bench_grammars.Workload.name) (fun () ->
          let ast =
            Grammar.Meta_parser.parse_exn
              spec.Bench_grammars.Workload.grammar_text
          in
          (* k is pinned to 1 here: the reference recomputes its whole
             FIRST_k fixpoint on every query, so per-production checks at
             k>=2 on these grammars cost minutes.  The random-grammar
             property below covers k up to 3. *)
          check bool "agree" true
            (agree ~ks:[ 1 ] ~max_set_size:2_000 (Grammar.Bnf.convert ast))))
    bench_specs
  @ [
      qtest ~count:150 "bitset FF agrees with reference on random grammars"
        Test_props.arb_grammar (fun g ->
          agree (Grammar.Bnf.convert g));
    ]

let suite =
  [
    ("bitset", bitset_props @ growable_tests);
    ("bitset-differential", differential_tests);
  ]
