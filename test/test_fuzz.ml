(* Differential-fuzzer tests: the mutation engine and shrinker (determinism
   under a fixed seed), oracle smoke tests, replay of any committed
   reproducers under fuzz-corpus/, and regression tests for the
   recovery/profiling bugs the fuzzer flushed out:

   - [Interp.follow_set] walked *into* nullable callees and out through
     every caller of the callee's rule, so a shared nullable rule leaked
     the FOLLOW of unrelated call sites into the sync set (recovery then
     stopped skipping too early); the fix contributes the callee's FIRST
     set and falls through to the state after the call iff the callee is
     nullable;
   - [Interp.eval_synpred] pre-set the stream's high-water mark to the
     speculation start, so an empty synpred fragment reported a lookahead
     reach of 1 token despite examining nothing; likewise
     [Token_stream.of_array] claimed index 0 was examined before any
     lt/la call. *)

open Helpers
module Workload = Bench_grammars.Workload

(* ------------------------------------------------------------------ *)
(* Satellite regressions: recovery sync sets                           *)

(* x is followed by 'E'? 'C' at its only call site; rule b is *also*
   called before 'D', so walking into b and out through all of b's
   callers wrongly added 'D' to follow(x). *)
let follow_src = "grammar P; s : x b 'C' b 'D' ; x : 'A' ; b : 'E' ? ;"

let interp_for c text = Runtime.Interp.create c (lex c text)

let rule_id c name =
  match Atn.rule_by_name c.Llstar.Compiled.atn name with
  | Some r -> r
  | None -> Alcotest.failf "no rule %s" name

let mem_follow c t rule term =
  let set = Runtime.Interp.follow_set t (rule_id c rule) in
  match Grammar.Sym.find_term (Llstar.Compiled.sym c) term with
  | Some id -> Bitset.mem set id
  | None -> Alcotest.failf "no terminal %s" term

let recovery_tests =
  [
    test "follow_set does not leak other call sites of a shared callee"
      (fun () ->
        let c = compile follow_src in
        let t = interp_for c "A" in
        check bool "'E' in follow(x)" true (mem_follow c t "x" "'E'");
        check bool "'C' in follow(x) (b is nullable)" true
          (mem_follow c t "x" "'C'");
        (* pre-fix: the walk entered b, reached b's stop state and jumped
           through b's second call site, adding 'D' *)
        check bool "'D' not in follow(x)" false (mem_follow c t "x" "'D'"));
    test "follow_set continues past nullable callees" (fun () ->
        let c = compile "grammar Q; s : x b 'B' ; b : 'C' ? ; x : 'A' ;" in
        let t = interp_for c "A" in
        check bool "'C' in follow(x)" true (mem_follow c t "x" "'C'");
        check bool "'B' in follow(x) (through nullable b)" true
          (mem_follow c t "x" "'B'");
        check bool "'A' not in follow(x)" false (mem_follow c t "x" "'A'"));
    test "recover_to_follow skips tokens outside the sync set" (fun () ->
        let c = compile follow_src in
        let t = interp_for c "D E C" in
        (* recovering inside x: 'D' is junk here (it only follows the
           *second* b call), 'E' is real follow material *)
        Runtime.Interp.recover_to_follow t (rule_id c "x");
        check int "stopped on 'E'" 1
          (Runtime.Token_stream.index t.Runtime.Interp.ts));
  ]

(* ------------------------------------------------------------------ *)
(* Satellite regressions: speculation reach                            *)

let reach_tests =
  [
    test "fresh token stream has examined nothing" (fun () ->
        let ts =
          Runtime.Token_stream.of_array [| Runtime.Token.make 5 "x" |]
        in
        check int "initial high water" (-1) (Runtime.Token_stream.high_water ts);
        ignore (Runtime.Token_stream.la ts 1);
        check int "after la 1" 0 (Runtime.Token_stream.high_water ts));
    test "empty speculation reports zero lookahead reach" (fun () ->
        let c = compile "grammar R; s : e 'A' ; e : ;" in
        let t = interp_for c "A" in
        let ok, reach = Runtime.Interp.eval_synpred t (rule_id c "e") in
        check bool "speculation succeeds" true ok;
        (* pre-fix: the high-water mark was pre-set to the start position,
           so reach came out as 1 despite no token being examined *)
        check int "reach" 0 reach);
    test "non-empty speculation still counts examined tokens" (fun () ->
        let c = compile "grammar S; s : e 'C' ; e : 'A' 'B' ;" in
        let t = interp_for c "A B C" in
        let ok, reach = Runtime.Interp.eval_synpred t (rule_id c "e") in
        check bool "speculation succeeds" true ok;
        check int "reach" 2 reach);
  ]

(* ------------------------------------------------------------------ *)
(* Satellite: Result-returning compile paths                           *)

let result_tests =
  [
    test "Workload.compile_result surfaces grammar errors as a value"
      (fun () ->
        let bad : Workload.spec =
          {
            Workload.name = "bad";
            grammar_text = "grammar Bad; s : undefined_rule ;";
            lexer_config = Runtime.Lexer_engine.default_config;
            samples = [];
            sample_lexeme = (fun _ n -> n);
            sem_preds = [];
            gen_start = None;
          }
        in
        match Workload.compile_result bad with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error");
    test "Workload.compile_result compiles a good spec" (fun () ->
        match Workload.compile_result Bench_grammars.Mini_java.spec with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "unexpected error: %a" Llstar.Compiled.pp_error e);
  ]

(* ------------------------------------------------------------------ *)
(* Mutation engine                                                     *)

let mutate_tests =
  [
    test "operators transform as specified" (fun () ->
        let toks = [| "a"; "b"; "c" |] in
        let eq = Alcotest.(check (array string)) in
        eq "drop" [| "a"; "c" |] (Fuzz.Mutate.apply (Fuzz.Mutate.Drop 1) toks);
        eq "swap" [| "c"; "b"; "a" |]
          (Fuzz.Mutate.apply (Fuzz.Mutate.Swap (0, 2)) toks);
        eq "dup" [| "a"; "a"; "b"; "c" |]
          (Fuzz.Mutate.apply (Fuzz.Mutate.Dup 0) toks);
        eq "subst" [| "a"; "X"; "c" |]
          (Fuzz.Mutate.apply (Fuzz.Mutate.Subst (1, "X")) toks);
        (* out-of-range ops (possible after shrinking) are the identity *)
        eq "oob drop" toks (Fuzz.Mutate.apply (Fuzz.Mutate.Drop 9) toks);
        eq "oob swap" toks (Fuzz.Mutate.apply (Fuzz.Mutate.Swap (0, 9)) toks));
    test "mutation is deterministic under a fixed seed" (fun () ->
        let vocab = [| "x"; "y"; "z" |] in
        let toks = [| "a"; "b"; "c"; "d"; "e" |] in
        let run () =
          let rng = Grammar.Sentence_gen.rng_of_seed ~index:3 7 in
          Fuzz.Mutate.mutate rng ~vocab ~count:4 toks
        in
        let ops1, out1 = run () in
        let ops2, out2 = run () in
        Alcotest.(check (array string)) "same output" out1 out2;
        check int "same op count" (List.length ops1) (List.length ops2);
        List.iter2
          (fun a b ->
            check string "same op" (Fmt.str "%a" Fuzz.Mutate.pp_op a)
              (Fmt.str "%a" Fuzz.Mutate.pp_op b))
          ops1 ops2);
    test "empty sentences admit no mutation" (fun () ->
        let rng = Grammar.Sentence_gen.rng_of_seed 1 in
        check bool "no op" true
          (Fuzz.Mutate.random_op rng ~vocab:[| "x" |] [||] = None));
  ]

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)

let shrink_tests =
  [
    test "shrinks to the single failure-relevant token" (fun () ->
        let failing names = List.mem "X" names in
        let shrunk =
          Fuzz.Oracle.shrink ~failing [ "a"; "b"; "X"; "c"; "d"; "e" ]
        in
        Alcotest.(check (list string)) "minimal" [ "X" ] shrunk);
    test "shrinking preserves the failure and is deterministic" (fun () ->
        let failing names =
          List.length (List.filter (fun s -> s = "X") names) >= 2
        in
        let input = [ "X"; "a"; "b"; "X"; "c"; "X"; "d" ] in
        let s1 = Fuzz.Oracle.shrink ~failing input in
        let s2 = Fuzz.Oracle.shrink ~failing input in
        check bool "still failing" true (failing s1);
        Alcotest.(check (list string)) "deterministic" s1 s2;
        check int "minimal size" 2 (List.length s1));
    test "a non-failing input is returned unchanged" (fun () ->
        let input = [ "a"; "b" ] in
        Alcotest.(check (list string))
          "unchanged" input
          (Fuzz.Oracle.shrink ~failing:(fun _ -> false) input));
  ]

(* ------------------------------------------------------------------ *)
(* Oracle smoke + driver determinism                                   *)

let oracle_of_spec spec =
  match Fuzz.Oracle.create spec with
  | Ok o -> o
  | Error e -> Alcotest.failf "oracle: %a" Llstar.Compiled.pp_error e

let oracle_tests =
  [
    test "generated MiniJava sentences produce no divergence" (fun () ->
        let spec = Bench_grammars.Mini_java.spec in
        let o = oracle_of_spec spec in
        let rng = Grammar.Sentence_gen.rng_of_seed 11 in
        let sentence =
          Grammar.Sentence_gen.generate ?start:spec.Workload.gen_start
            Fuzz.Oracle.(o.cw).Workload.gen ~rng ~size:20
        in
        let outcome, divs = Fuzz.Oracle.check o sentence in
        check bool "no divergences" true (divs = []);
        check bool "accepted" true
          (outcome.Fuzz.Oracle.o_llstar = Fuzz.Oracle.Accept));
    test "garbage input is rejected everywhere without divergence" (fun () ->
        let o = oracle_of_spec Bench_grammars.Mini_java.spec in
        let _, divs = Fuzz.Oracle.check o [ "'}'"; "'{'"; "ID" ] in
        check bool "no divergences" true (divs = []));
    test "fuzz runs are deterministic for a fixed seed" (fun () ->
        let spec = Bench_grammars.Mini_sql.spec in
        let run () =
          match Fuzz.Driver.run_spec ~seed:5 ~runs:20 ~size:15 spec with
          | Ok r -> r
          | Error e -> Alcotest.failf "driver: %a" Llstar.Compiled.pp_error e
        in
        let r1 = run () and r2 = run () in
        check int "accepted" r1.Fuzz.Driver.r_accepted r2.Fuzz.Driver.r_accepted;
        check int "rejected" r1.Fuzz.Driver.r_rejected r2.Fuzz.Driver.r_rejected;
        check int "failures"
          (List.length r1.Fuzz.Driver.r_failures)
          (List.length r2.Fuzz.Driver.r_failures));
    test "reproducer files round-trip" (fun () ->
        let dir = Filename.temp_file "fuzz" "" in
        Sys.remove dir;
        let d =
          {
            Fuzz.Oracle.d_grammar = "MiniJava";
            d_kind = "crash";
            d_detail = "example";
            d_tokens = [ "'class'"; "ID" ];
          }
        in
        let file =
          Fuzz.Driver.write_reproducer ~dir ~seed:9 ~run:3 d
            [ "'class'"; "ID" ]
        in
        (match Fuzz.Driver.read_reproducer file with
        | Error m -> Alcotest.fail m
        | Ok rp ->
            check string "grammar" "MiniJava" rp.Fuzz.Driver.rp_grammar;
            check string "kind" "crash" rp.Fuzz.Driver.rp_kind;
            Alcotest.(check (list string))
              "tokens" [ "'class'"; "ID" ] rp.Fuzz.Driver.rp_tokens);
        Sys.remove file;
        Unix.rmdir dir);
  ]

(* ------------------------------------------------------------------ *)
(* Corpus replay: every committed reproducer must stay fixed           *)

(* Tests run from _build/default/test; walk upward to find the checked-in
   corpus directory.  Absent directory (e.g. sandboxed run): trivially
   green. *)
let find_corpus_dir () =
  let rec go dir depth =
    if depth > 5 then None
    else
      let cand = Filename.concat dir "fuzz-corpus" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else go parent (depth + 1)
  in
  go (Sys.getcwd ()) 0

let replay_tests =
  [
    test "committed reproducers no longer diverge" (fun () ->
        match find_corpus_dir () with
        | None -> ()
        | Some dir ->
            let oracles = Hashtbl.create 8 in
            Array.iter
              (fun file ->
                if Filename.check_suffix file ".txt" then
                  let path = Filename.concat dir file in
                  match Fuzz.Driver.read_reproducer path with
                  | Error m -> Alcotest.fail m
                  | Ok rp -> (
                      match Fuzz.Driver.find_spec rp.Fuzz.Driver.rp_grammar with
                      | None ->
                          Alcotest.failf "%s: unknown grammar %s" file
                            rp.Fuzz.Driver.rp_grammar
                      | Some spec ->
                          let o =
                            match
                              Hashtbl.find_opt oracles rp.Fuzz.Driver.rp_grammar
                            with
                            | Some o -> o
                            | None ->
                                let o = oracle_of_spec spec in
                                Hashtbl.add oracles rp.Fuzz.Driver.rp_grammar o;
                                o
                          in
                          match Fuzz.Driver.replay o rp with
                          | [] -> ()
                          | d :: _ ->
                              Alcotest.failf "%s regressed: %a" file
                                Fuzz.Oracle.pp_divergence d))
              (Sys.readdir dir));
  ]

let suite =
  [
    ("fuzz: recovery sync sets", recovery_tests);
    ("fuzz: speculation reach", reach_tests);
    ("fuzz: result compile paths", result_tests);
    ("fuzz: mutation engine", mutate_tests);
    ("fuzz: shrinker", shrink_tests);
    ("fuzz: oracle", oracle_tests);
    ("fuzz: corpus replay", replay_tests);
  ]
