(* Profile counters: the DFA depth and speculation depth are recorded
   separately (the old [record] folded speculation into the DFA depth,
   double-counting it), and the lazy/cached DFA-state counters. *)

open Helpers

let suite =
  [
    ( "profile_counters",
      [
        test "dfa depth and speculation depth tracked separately" (fun () ->
            let p = Runtime.Profile.create () in
            (* (dfa depth, backtracked, speculation reach) *)
            Runtime.Profile.record p ~decision:0 ~depth:1 ~backtracked:false
              ~spec_depth:0;
            Runtime.Profile.record p ~decision:1 ~depth:2 ~backtracked:true
              ~spec_depth:5;
            Runtime.Profile.record p ~decision:1 ~depth:3 ~backtracked:true
              ~spec_depth:1;
            (* effective depths (Table 3): 1, max(2,5)=5, max(3,1)=3 *)
            check (Alcotest.float 1e-9) "avg k" 3.0 (Runtime.Profile.avg_k p);
            (* DFA-only depths: 1, 2, 3 *)
            check (Alcotest.float 1e-9) "avg dfa k" 2.0
              (Runtime.Profile.avg_dfa_k p);
            (* speculation depths over backtracking events: 5, 1 *)
            check (Alcotest.float 1e-9) "back k" 3.0
              (Runtime.Profile.back_k p);
            check int "max k" 5 (Runtime.Profile.max_k p);
            check int "dfa max k" 3 (Runtime.Profile.dfa_max_k p);
            check int "covered" 2 (Runtime.Profile.decisions_covered p));
        test "non-backtracking events ignore spec_depth" (fun () ->
            let p = Runtime.Profile.create () in
            (* a stale spec_depth must not leak into the effective depth
               when the event did not backtrack *)
            Runtime.Profile.record p ~decision:0 ~depth:2 ~backtracked:false
              ~spec_depth:9;
            check (Alcotest.float 1e-9) "avg k" 2.0 (Runtime.Profile.avg_k p);
            check int "max k" 2 (Runtime.Profile.max_k p);
            check (Alcotest.float 1e-9) "back k" 0.0
              (Runtime.Profile.back_k p));
        test "lazy and cached DFA-state counters" (fun () ->
            let p = Runtime.Profile.create () in
            Runtime.Profile.record_dfa_built p ~decision:0 ~cached:false ~n:3;
            Runtime.Profile.record_dfa_built p ~decision:1 ~cached:true ~n:7;
            Runtime.Profile.record_dfa_built p ~decision:0 ~cached:false ~n:0;
            check int "lazy" 3 (Runtime.Profile.lazy_dfa_states p);
            check int "cached" 7 (Runtime.Profile.cached_dfa_states p);
            Runtime.Profile.reset p;
            check int "lazy after reset" 0 (Runtime.Profile.lazy_dfa_states p);
            check int "cached after reset" 0
              (Runtime.Profile.cached_dfa_states p));
      ] );
  ]
