(* Lazy on-demand DFA construction: equivalence with the eager analysis.

   Two properties pin the tentpole:

   - parsing with a lazily compiled grammar produces byte-identical trees
     to the eager compilation, on every benchmark grammar, over generated
     corpora (prediction equivalence);
   - driving a fresh lazy engine to completion reproduces the eager
     analysis result structurally -- same DFA states in the same order,
     same classification, same warnings (construction equivalence). *)

open Helpers
module Workload = Bench_grammars.Workload

let all_specs =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let eager_cache = Hashtbl.create 8

let eager_of (spec : Workload.spec) =
  match Hashtbl.find_opt eager_cache spec.Workload.name with
  | Some cw -> cw
  | None ->
      let cw = Workload.compile spec in
      Hashtbl.add eager_cache spec.Workload.name cw;
      cw

let lazy_compile (spec : Workload.spec) =
  Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy
    spec.Workload.grammar_text

let tree_str c tree = Runtime.Tree.to_string (Llstar.Compiled.sym c) tree

let parse_str c env toks =
  match Runtime.Interp.parse ~env c toks with
  | Ok tree -> "ok: " ^ tree_str c tree
  | Error errs ->
      Fmt.str "error: %a"
        Fmt.(list (Runtime.Parse_error.pp (Llstar.Compiled.sym c)))
        errs

let per_grammar (spec : Workload.spec) =
  let name = spec.Workload.name in
  [
    test (name ^ ": lazy parses byte-identical to eager") (fun () ->
        let cw = eager_of spec in
        let cl = lazy_compile spec in
        let env = Workload.env_of_spec spec in
        let corpus = Workload.build_corpus cw ~target_tokens:1200 in
        check bool "corpus nonempty" true (corpus.Workload.programs > 0);
        List.iteri
          (fun i text ->
            let toks = Workload.lex_exn cw text in
            check string
              (Printf.sprintf "program %d" i)
              (parse_str cw.Workload.c env toks)
              (parse_str cl env toks))
          corpus.Workload.texts;
        (* warm pass: the second parse must hit only materialized states
           and still agree *)
        List.iteri
          (fun i text ->
            let toks = Workload.lex_exn cw text in
            check string
              (Printf.sprintf "warm program %d" i)
              (parse_str cw.Workload.c env toks)
              (parse_str cl env toks))
          corpus.Workload.texts);
    test (name ^ ": completed lazy engines match eager analysis") (fun () ->
        let cw = eager_of spec in
        let c = cw.Workload.c in
        let atn = c.Llstar.Compiled.atn in
        let opts = c.Llstar.Compiled.opts in
        Array.iteri
          (fun i d ->
            let eng = Llstar.Lazy_dfa.create ~opts atn d in
            let r = Llstar.Lazy_dfa.complete eng in
            let e = c.Llstar.Compiled.results.(i) in
            if r <> e then
              Alcotest.failf
                "decision %d: completed lazy result differs from eager \
                 (lazy: %d states, eager: %d states)"
                i r.Llstar.Analysis.dfa.Llstar.Look_dfa.nstates
                e.Llstar.Analysis.dfa.Llstar.Look_dfa.nstates)
          atn.Atn.decisions);
  ]

let small_cases =
  [
    test "lazy compile materializes only start states" (fun () ->
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy
            "grammar T; s : A B C | A B D | E ;"
        in
        check bool "is lazy" true
          (Llstar.Compiled.strategy c = Llstar.Compiled.Lazy);
        let eng = Option.get (Llstar.Compiled.engine c 0) in
        check bool "incomplete" false (Llstar.Lazy_dfa.is_complete eng);
        let eager = Llstar.Compiled.of_source_exn "grammar T; s : A B C | A B D | E ;" in
        check bool "fewer states than eager" true
          (Llstar.Lazy_dfa.materialized eng
          < (Llstar.Compiled.dfa eager 0).Llstar.Look_dfa.nstates));
    test "prediction grows the DFA state by state" (fun () ->
        let src = "grammar T; s : A B C | A B D | E ;" in
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy src
        in
        let eng = Option.get (Llstar.Compiled.engine c 0) in
        let before = Llstar.Lazy_dfa.materialized eng in
        let p = Runtime.Profile.create () in
        (match Runtime.Interp.parse ~profile:p c (lex c "A B D") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        check bool "grew" true (Llstar.Lazy_dfa.materialized eng > before);
        check bool "lazy states profiled" true
          (Runtime.Profile.lazy_dfa_states p > 0);
        (* a second identical parse should add nothing *)
        let after = Llstar.Lazy_dfa.materialized eng in
        (match Runtime.Interp.parse c (lex c "A B D") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "second parse failed");
        check int "warm parse adds no states" after
          (Llstar.Lazy_dfa.materialized eng));
    test "repeated sprouts yield exactly one non-LL-regular warning"
      (fun () ->
        (* Section 5.4 grammar: recursion in both alternatives of [s]
           engages the Bounded fallback.  The engagement reason used to be
           re-appended on every sprout refresh, so N discovered states
           produced N copies of the warning (and re-concatenated the list
           each time).  It must appear exactly once, mid-build and after
           completion, matching the eager analysis. *)
        let src = "grammar F; s : a 'c' | a 'd' ; a : 'a' a | 'b' ;" in
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy src
        in
        let d = rule_decision c "s" in
        let eng = Option.get (Llstar.Compiled.engine c d) in
        let count_nlr (r : Llstar.Analysis.result) =
          List.length
            (List.filter
               (function Llstar.Analysis.Non_ll_regular _ -> true | _ -> false)
               r.Llstar.Analysis.warnings)
        in
        (* D0's closure stops at terminal edges, so the recursion is only
           discovered while sprouting deeper states *)
        check int "no warning at creation" 0
          (count_nlr (Llstar.Lazy_dfa.result eng));
        (* several predictions from distinct lookahead depths: each sprouts
           new states *)
        List.iter
          (fun input ->
            match Runtime.Interp.parse c (lex c input) with
            | Ok _ -> ()
            | Error _ -> Alcotest.failf "parse of %S failed" input)
          [ "b c"; "a b d"; "a a b c"; "a a a b c" ];
        check bool "sprouted several states" true
          (Llstar.Lazy_dfa.sprouted eng >= 2);
        check int "still one warning mid-build" 1
          (count_nlr (Llstar.Lazy_dfa.result eng));
        let r = Llstar.Lazy_dfa.complete eng in
        check int "one warning when complete" 1 (count_nlr r);
        let eager = Llstar.Compiled.of_source_exn src in
        check bool "warnings equal eager" true
          (r.Llstar.Analysis.warnings
          = eager.Llstar.Compiled.results.(d).Llstar.Analysis.warnings));
  ]

let suite =
  [
    ( "lazy_dfa",
      small_cases @ List.concat_map per_grammar all_specs );
  ]
