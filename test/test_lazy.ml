(* Lazy on-demand DFA construction: equivalence with the eager analysis.

   Two properties pin the tentpole:

   - parsing with a lazily compiled grammar produces byte-identical trees
     to the eager compilation, on every benchmark grammar, over generated
     corpora (prediction equivalence);
   - driving a fresh lazy engine to completion reproduces the eager
     analysis result structurally -- same DFA states in the same order,
     same classification, same warnings (construction equivalence). *)

open Helpers
module Workload = Bench_grammars.Workload

let all_specs =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let eager_cache = Hashtbl.create 8

let eager_of (spec : Workload.spec) =
  match Hashtbl.find_opt eager_cache spec.Workload.name with
  | Some cw -> cw
  | None ->
      let cw = Workload.compile spec in
      Hashtbl.add eager_cache spec.Workload.name cw;
      cw

let lazy_compile (spec : Workload.spec) =
  Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy
    spec.Workload.grammar_text

let tree_str c tree = Runtime.Tree.to_string (Llstar.Compiled.sym c) tree

let parse_str c env toks =
  match Runtime.Interp.parse ~env c toks with
  | Ok tree -> "ok: " ^ tree_str c tree
  | Error errs ->
      Fmt.str "error: %a"
        Fmt.(list (Runtime.Parse_error.pp (Llstar.Compiled.sym c)))
        errs

let per_grammar (spec : Workload.spec) =
  let name = spec.Workload.name in
  [
    test (name ^ ": lazy parses byte-identical to eager") (fun () ->
        let cw = eager_of spec in
        let cl = lazy_compile spec in
        let env = Workload.env_of_spec spec in
        let corpus = Workload.build_corpus cw ~target_tokens:1200 in
        check bool "corpus nonempty" true (corpus.Workload.programs > 0);
        List.iteri
          (fun i text ->
            let toks = Workload.lex_exn cw text in
            check string
              (Printf.sprintf "program %d" i)
              (parse_str cw.Workload.c env toks)
              (parse_str cl env toks))
          corpus.Workload.texts;
        (* warm pass: the second parse must hit only materialized states
           and still agree *)
        List.iteri
          (fun i text ->
            let toks = Workload.lex_exn cw text in
            check string
              (Printf.sprintf "warm program %d" i)
              (parse_str cw.Workload.c env toks)
              (parse_str cl env toks))
          corpus.Workload.texts);
    test (name ^ ": completed lazy engines match eager analysis") (fun () ->
        let cw = eager_of spec in
        let c = cw.Workload.c in
        let atn = c.Llstar.Compiled.atn in
        let opts = c.Llstar.Compiled.opts in
        Array.iteri
          (fun i d ->
            let eng = Llstar.Lazy_dfa.create ~opts atn d in
            let r = Llstar.Lazy_dfa.complete eng in
            let e = c.Llstar.Compiled.results.(i) in
            if r <> e then
              Alcotest.failf
                "decision %d: completed lazy result differs from eager \
                 (lazy: %d states, eager: %d states)"
                i r.Llstar.Analysis.dfa.Llstar.Look_dfa.nstates
                e.Llstar.Analysis.dfa.Llstar.Look_dfa.nstates)
          atn.Atn.decisions);
  ]

let small_cases =
  [
    test "lazy compile materializes only start states" (fun () ->
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy
            "grammar T; s : A B C | A B D | E ;"
        in
        check bool "is lazy" true
          (Llstar.Compiled.strategy c = Llstar.Compiled.Lazy);
        let eng = Option.get (Llstar.Compiled.engine c 0) in
        check bool "incomplete" false (Llstar.Lazy_dfa.is_complete eng);
        let eager = Llstar.Compiled.of_source_exn "grammar T; s : A B C | A B D | E ;" in
        check bool "fewer states than eager" true
          (Llstar.Lazy_dfa.materialized eng
          < (Llstar.Compiled.dfa eager 0).Llstar.Look_dfa.nstates));
    test "prediction grows the DFA state by state" (fun () ->
        let src = "grammar T; s : A B C | A B D | E ;" in
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy src
        in
        let eng = Option.get (Llstar.Compiled.engine c 0) in
        let before = Llstar.Lazy_dfa.materialized eng in
        let p = Runtime.Profile.create () in
        (match Runtime.Interp.parse ~profile:p c (lex c "A B D") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        check bool "grew" true (Llstar.Lazy_dfa.materialized eng > before);
        check bool "lazy states profiled" true
          (Runtime.Profile.lazy_dfa_states p > 0);
        (* a second identical parse should add nothing *)
        let after = Llstar.Lazy_dfa.materialized eng in
        (match Runtime.Interp.parse c (lex c "A B D") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "second parse failed");
        check int "warm parse adds no states" after
          (Llstar.Lazy_dfa.materialized eng));
    test "repeated sprouts yield exactly one non-LL-regular warning"
      (fun () ->
        (* Section 5.4 grammar: recursion in both alternatives of [s]
           engages the Bounded fallback.  The engagement reason used to be
           re-appended on every sprout refresh, so N discovered states
           produced N copies of the warning (and re-concatenated the list
           each time).  It must appear exactly once, mid-build and after
           completion, matching the eager analysis. *)
        let src = "grammar F; s : a 'c' | a 'd' ; a : 'a' a | 'b' ;" in
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy src
        in
        let d = rule_decision c "s" in
        let eng = Option.get (Llstar.Compiled.engine c d) in
        let count_nlr (r : Llstar.Analysis.result) =
          List.length
            (List.filter
               (function Llstar.Analysis.Non_ll_regular _ -> true | _ -> false)
               r.Llstar.Analysis.warnings)
        in
        (* D0's closure stops at terminal edges, so the recursion is only
           discovered while sprouting deeper states *)
        check int "no warning at creation" 0
          (count_nlr (Llstar.Lazy_dfa.result eng));
        (* several predictions from distinct lookahead depths: each sprouts
           new states *)
        List.iter
          (fun input ->
            match Runtime.Interp.parse c (lex c input) with
            | Ok _ -> ()
            | Error _ -> Alcotest.failf "parse of %S failed" input)
          [ "b c"; "a b d"; "a a b c"; "a a a b c" ];
        check bool "sprouted several states" true
          (Llstar.Lazy_dfa.sprouted eng >= 2);
        check int "still one warning mid-build" 1
          (count_nlr (Llstar.Lazy_dfa.result eng));
        let r = Llstar.Lazy_dfa.complete eng in
        check int "one warning when complete" 1 (count_nlr r);
        let eager = Llstar.Compiled.of_source_exn src in
        check bool "warnings equal eager" true
          (r.Llstar.Analysis.warnings
          = eager.Llstar.Compiled.results.(d).Llstar.Analysis.warnings));
  ]

(* --- concurrency: shared engines under parallel prediction ------------- *)

(* The tentpole contract: one lazy compilation shared by many concurrently
   predicting tasks answers exactly like the eager compilation, and the
   engine state it converges to is canonically identical (same warm-blob
   digest) to the one a sequential run reaches -- whatever the
   interleaving.  On a 4.x build the pool degrades to inline execution and
   these become plain determinism checks. *)
let concurrency_tests =
  [
    test "concurrent sprouts: many tasks race one cold engine" (fun () ->
        let spec = Bench_grammars.Mini_java.spec in
        let cw = eager_of spec in
        let corpus = Workload.build_corpus cw ~target_tokens:800 in
        let toks = List.map (Workload.lex_exn cw) corpus.Workload.texts in
        let expected =
          let env = Workload.env_of_spec spec in
          List.map (parse_str cw.Workload.c env) toks
        in
        (* sequential reference: one task's worth of parses on a fresh
           lazy engine set, then its canonical on-disk form *)
        let seq_digest =
          let cl = lazy_compile spec in
          let env = Workload.env_of_spec spec in
          List.iter (fun t -> ignore (parse_str cl env t)) toks;
          Llstar.Compiled_cache.payload_digest cl
        in
        let cl = lazy_compile spec in
        Exec.Pool.with_pool ~jobs:8 (fun pool ->
            let tasks =
              List.init 16 (fun _ ->
                  Exec.Pool.submit pool (fun () ->
                      let env = Workload.env_of_spec spec in
                      List.map (parse_str cl env) toks))
            in
            List.iteri
              (fun ti got ->
                List.iteri
                  (fun i (e, g) ->
                    check string (Printf.sprintf "task %d program %d" ti i) e g)
                  (List.combine expected got))
              (List.map Exec.Pool.await tasks));
        (* every task saw correct answers *and* the racily-grown engines
           canonicalize to the sequential blob *)
        check string "canonical digest = sequential"
          seq_digest
          (Llstar.Compiled_cache.payload_digest cl));
    test "warm-saved blob digest: parallel batch = sequential" (fun () ->
        let spec = Bench_grammars.Mini_sql.spec in
        let cw = eager_of spec in
        let corpus = Workload.build_corpus cw ~target_tokens:800 in
        let env = Workload.env_of_spec spec in
        let digest_after ~jobs =
          let cl = lazy_compile spec in
          let inputs =
            List.mapi
              (fun i text ->
                { Runtime.Batch.name = string_of_int i; text })
              corpus.Workload.texts
          in
          Exec.Pool.with_pool ~jobs (fun pool ->
              ignore (Runtime.Batch.run ~pool ~env cl inputs));
          Llstar.Compiled_cache.payload_digest cl
        in
        let seq = digest_after ~jobs:1 in
        List.iter
          (fun jobs ->
            check string
              (Printf.sprintf "digest jobs=%d" jobs)
              seq (digest_after ~jobs))
          [ 2; 4 ]);
    qtest ~count:40 "random grammars: parallel lazy verdicts = sequential"
      (QCheck.pair Test_props.arb_grammar
         (QCheck.list_of_size (QCheck.Gen.int_range 1 8)
            (QCheck.list_of_size (QCheck.Gen.int_bound 8)
               (QCheck.int_bound 4))))
      (fun (g, sentences) ->
        let compile_lazy () =
          match
            Llstar.Compiled.compile ~analysis_opts:Test_props.rand_opts
              ~strategy:Llstar.Compiled.Lazy g
          with
          | Ok c -> Some c
          | Error _ -> None
        in
        match compile_lazy () with
        | None -> true (* unlucky generated shape; nothing to compare *)
        | Some c0 ->
            let names =
              List.map
                (List.map (fun i -> [| "A"; "B"; "C"; "D"; "E" |].(i)))
                sentences
            in
            let verdicts c toks_list =
              (* two passes: a cold parse that sprouts and a warm one that
                 must hit only materialized states *)
              List.concat_map
                (fun toks ->
                  List.map
                    (fun () ->
                      match Runtime.Interp.recognize c toks with
                      | Ok () -> true
                      | Error _ -> false)
                    [ (); () ])
                toks_list
            in
            let toks_list c =
              List.map (fun ns -> Test_props.tokens_of_names c ns) names
            in
            let seq = verdicts c0 (toks_list c0) in
            List.for_all
              (fun jobs ->
                match compile_lazy () with
                | None -> true
                | Some c ->
                    let toks_list = toks_list c in
                    let par =
                      Exec.Pool.with_pool ~jobs (fun pool ->
                          let tasks =
                            List.map
                              (fun toks ->
                                Exec.Pool.submit pool (fun () ->
                                    List.map
                                      (fun () ->
                                        match
                                          Runtime.Interp.recognize c toks
                                        with
                                        | Ok () -> true
                                        | Error _ -> false)
                                      [ (); () ]))
                              toks_list
                          in
                          List.concat_map Exec.Pool.await tasks)
                    in
                    par = seq)
              [ 2; 4 ]);
  ]

let suite =
  [
    ( "lazy_dfa",
      small_cases @ concurrency_tests @ List.concat_map per_grammar all_specs );
  ]
