(* Serve layer: protocol codec, handler round trips, budgets/limits, the
   cross-request state-reset contract (the reuse-twice regressions), and a
   full server lifecycle over a Unix socket with concurrent clients and a
   graceful drain.

   The memo-leak regression at the bottom is the distilled serve-layer
   bug: a [Runtime.Generated] state reused across requests WITHOUT
   [Generated.reset] lets one input's speculation memo decide another
   input's parse -- the naive-reuse step demonstrably flips the verdict,
   and [reset] restores the fresh-state outcome. *)

open Helpers
module Json = Obs.Json

let tiny_src = "grammar tiny; s : A B | A C ;"

(* Pool + registry (ad-hoc "tiny" grammar and the MiniJava builtin with
   its generated backend) + handler, torn down with the pool. *)
let with_handler ?limits (f : Serve.Handler.t -> unit) : unit =
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let registry = Serve.Registry.create () in
      (match Serve.Registry.load_builtin registry ~pool "MiniJava" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      (match
         Serve.Registry.load_source registry ~pool ~name:"tiny" tiny_src
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      f (Serve.Handler.create ?limits ~registry ~pool ()))

let req fields = Json.to_string (Json.obj fields)

let handle_ok h line : Json.t =
  let resp, action = Serve.Handler.handle h line in
  (match action with
  | `Continue -> ()
  | `Shutdown -> Alcotest.fail "unexpected shutdown action");
  match Json.parse resp with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad response JSON: %s" e

let get k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" k (Json.to_string j)

let get_ok j = match get "ok" j with Json.Bool b -> b | _ -> false

let error_code j =
  match Json.member "code" (get "error" j) with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "no error code in %s" (Json.to_string j)

let parse_req ?(backend = "interp") ?(grammar = "tiny") ?extra text =
  req
    ([
       ("op", Json.str "parse");
       ("grammar", Json.str grammar);
       ("backend", Json.str backend);
       ("text", Json.str text);
     ]
    @ Option.value extra ~default:[])

(* Responses are deterministic except for the measured wall clock. *)
let strip_wall = function
  | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "wall_us") fields)
  | j -> j

let protocol_tests =
  [
    test "request codec round trip" (fun () ->
        match
          Serve.Protocol.parse_request
            {|{"id":7,"op":"parse","grammar":"g","backend":"generated","text":"x","recover":true}|}
        with
        | Error e -> Alcotest.fail e
        | Ok r ->
            check string "op" "parse" r.Serve.Protocol.op;
            check bool "backend" true
              (r.Serve.Protocol.backend = Serve.Protocol.Generated);
            check bool "recover" true r.Serve.Protocol.recover;
            check string "grammar" "g"
              (Option.get r.Serve.Protocol.grammar));
    test "malformed requests are rejected, not raised" (fun () ->
        let bad s =
          match Serve.Protocol.parse_request s with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %S" s
        in
        bad "not json";
        bad "[1,2]";
        bad {|{"grammar":"g"}|};
        bad {|{"op":"parse","backend":"llvm"}|});
    test "tcp address parsing" (fun () ->
        (match Serve.Protocol.tcp_of_string "127.0.0.1:4000" with
        | Ok (Serve.Protocol.Tcp ("127.0.0.1", 4000)) -> ()
        | _ -> Alcotest.fail "tcp parse");
        match Serve.Protocol.tcp_of_string "nocolon" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted bad tcp addr");
  ]

let handler_tests =
  [
    test "ping, list, unknown op" (fun () ->
        with_handler (fun h ->
            let pong = handle_ok h (req [ ("op", Json.str "ping") ]) in
            check bool "pong ok" true (get_ok pong);
            let listed = handle_ok h (req [ ("op", Json.str "list") ]) in
            (match get "grammars" listed with
            | Json.List gs -> check int "two grammars" 2 (List.length gs)
            | _ -> Alcotest.fail "grammars not a list");
            let unk = handle_ok h (req [ ("op", Json.str "frobnicate") ]) in
            check string "unknown op" "unknown_op" (error_code unk)));
    test "parse: accept, reject, both backends" (fun () ->
        with_handler (fun h ->
            let ok = handle_ok h (parse_req "A B") in
            check bool "accepts" true (get_ok ok);
            check bool "consumed" true (get "consumed" ok = Json.Int 2);
            let bad = handle_ok h (parse_req "A A") in
            check bool "rejects" false (get_ok bad);
            check string "code" "parse_error" (error_code bad);
            (match get "errors" bad with
            | Json.List [ e ] ->
                check bool "structured kind" true
                  (Json.member "kind" e <> None);
                check bool "token position" true
                  (Json.member "token" e <> None)
            | _ -> Alcotest.fail "expected one structured error");
            let gen =
              handle_ok h
                (parse_req ~grammar:"MiniJava" ~backend:"generated"
                   "class A { int x ; }")
            in
            check bool "generated accepts" true (get_ok gen);
            let nogen = handle_ok h (parse_req ~backend:"generated" "A B") in
            check string "no generated parser" "no_generated_parser"
              (error_code nogen)));
    test "parse: unknown grammar and lex error" (fun () ->
        with_handler (fun h ->
            let unk = handle_ok h (parse_req ~grammar:"nope" "A B") in
            check string "unknown grammar" "unknown_grammar" (error_code unk);
            let lex = handle_ok h (parse_req "A !") in
            check string "lex error" "lex_error" (error_code lex);
            check bool "position reported" true
              (Json.member "position" lex <> None)));
    test "budgets: token cap and oversized requests" (fun () ->
        let limits =
          { Serve.Handler.default_limits with Serve.Handler.max_tokens = 1 }
        in
        with_handler ~limits (fun h ->
            let capped = handle_ok h (parse_req "A B") in
            check string "token budget" "token_budget" (error_code capped));
        let limits =
          {
            Serve.Handler.default_limits with
            Serve.Handler.max_request_bytes = 64;
          }
        in
        with_handler ~limits (fun h ->
            let big = handle_ok h (parse_req (String.make 200 'A')) in
            check string "too large" "too_large" (error_code big)));
    test "recover collects errors; rejected on generated backend" (fun () ->
        with_handler (fun h ->
            let r =
              handle_ok h
                (parse_req ~extra:[ ("recover", Json.bool true) ] "A A")
            in
            check bool "still rejects" false (get_ok r);
            let gen =
              handle_ok h
                (parse_req ~backend:"generated" ~grammar:"MiniJava"
                   ~extra:[ ("recover", Json.bool true) ] "class")
            in
            check string "recover+generated refused" "bad_request"
              (error_code gen)));
    test "load and evict round trip" (fun () ->
        with_handler (fun h ->
            let loaded =
              handle_ok h
                (req
                   [
                     ("op", Json.str "load");
                     ("grammar", Json.str "two");
                     ("text", Json.str "grammar two; s : X Y ;");
                   ])
            in
            check bool "load ok" true (get_ok loaded);
            let ok = handle_ok h (parse_req ~grammar:"two" "X Y") in
            check bool "parses via loaded grammar" true (get_ok ok);
            let ev =
              handle_ok h
                (req [ ("op", Json.str "evict"); ("grammar", Json.str "two") ])
            in
            check bool "evicted" true (get "evicted" ev = Json.Bool true);
            let gone = handle_ok h (parse_req ~grammar:"two" "X Y") in
            check string "gone after evict" "unknown_grammar"
              (error_code gone)));
    test "stats is an antlrkit-telemetry/2 document" (fun () ->
        with_handler (fun h ->
            ignore (handle_ok h (parse_req "A B"));
            let stats = get "stats" (handle_ok h (req [ ("op", Json.str "stats") ])) in
            check bool "schema" true
              (get "schema" stats = Json.String "antlrkit-telemetry/2");
            check bool "tool" true
              (get "tool" stats = Json.String "antlrkit-serve");
            match get "benches" stats with
            | Json.Obj benches ->
                check bool "serve metrics present" true
                  (List.mem_assoc "serve" benches)
            | _ -> Alcotest.fail "benches not an object"));
    test "shutdown op requests shutdown" (fun () ->
        with_handler (fun h ->
            let resp, action = Serve.Handler.handle h (req [ ("op", Json.str "shutdown") ]) in
            (match Json.parse resp with
            | Ok j -> check bool "ok" true (get_ok j)
            | Error e -> Alcotest.fail e);
            check bool "shutdown action" true (action = `Shutdown)));
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry surface: the metrics/health/ready ops, latency summaries in
   the stats doc, and the tail-sampled slow-request log. *)

let telemetry_op_tests =
  [
    test "metrics op serves Prometheus text after a parse" (fun () ->
        with_handler (fun h ->
            ignore (handle_ok h (parse_req "A B"));
            ignore (handle_ok h (parse_req "A A"));
            let resp = handle_ok h (req [ ("op", Json.str "metrics") ]) in
            check bool "ok" true (get_ok resp);
            check bool "content type" true
              (get "content_type" resp
              = Json.String "text/plain; version=0.0.4; charset=utf-8");
            match get "body" resp with
            | Json.String body ->
                check bool "request counter exported" true
                  (contains body "antlrkit_serve_requests");
                check bool "latency summary exported" true
                  (contains body "antlrkit_serve_request_us");
                check bool "HELP lines present" true (contains body "# HELP ");
                check bool "up gauge" true (contains body "antlrkit_up 1");
                check bool "grammar label" true
                  (contains body "grammar=\"tiny\"")
            | _ -> Alcotest.fail "metrics body not a string"));
    test "health and ready answer" (fun () ->
        with_handler (fun h ->
            let hr = handle_ok h (req [ ("op", Json.str "health") ]) in
            check bool "healthy" true (get "healthy" hr = Json.Bool true);
            check bool "uptime present" true
              (Json.member "uptime_s" hr <> None);
            let rr = handle_ok h (req [ ("op", Json.str "ready") ]) in
            check bool "ready" true (get "ready" rr = Json.Bool true);
            check bool "grammar count" true (get "grammars" rr = Json.Int 2);
            check bool "pending gauge" true
              (match get "pool_pending" rr with Json.Int n -> n >= 0 | _ -> false)));
    test "stats carries latency summaries and pool backlog" (fun () ->
        with_handler (fun h ->
            ignore (handle_ok h (parse_req "A B"));
            let stats =
              get "stats" (handle_ok h (req [ ("op", Json.str "stats") ]))
            in
            let benches =
              match Json.member "benches" stats with
              | Some b -> b
              | None -> Alcotest.fail "no benches"
            in
            (match Json.member "pool" benches with
            | Some (Json.Obj fields) ->
                check bool "pending" true (List.mem_assoc "pending" fields)
            | _ -> Alcotest.fail "pool not an object");
            let serve_points =
              match Json.member "serve" benches with
              | Some (Json.List pts) -> pts
              | _ -> Alcotest.fail "serve metrics not a list"
            in
            let durations =
              List.filter
                (fun p ->
                  match Json.member "metric" p with
                  | Some v -> (
                      match Json.member "type" v with
                      | Some (Json.String "duration") -> true
                      | _ -> false)
                  | None -> false)
                serve_points
            in
            check bool "request/queue/parse summaries" true
              (List.length durations >= 3);
            List.iter
              (fun p ->
                let v = get "metric" p in
                check bool "p50 present" true (Json.member "p50_us" v <> None);
                check bool "p99 present" true (Json.member "p99_us" v <> None))
              durations));
  ]

(* Handler with an armed slow log writing to a temp file. *)
let with_slow_handler ?max_records ~threshold_us
    (f : Serve.Handler.t -> string -> unit) : unit =
  let path = Filename.temp_file "antlrkit-test-slow" ".jsonl" in
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let registry = Serve.Registry.create () in
      (match
         Serve.Registry.load_source registry ~pool ~name:"tiny" tiny_src
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let sl = Serve.Slow_log.create ?max_records ~threshold_us path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Slow_log.close sl;
          Sys.remove path)
        (fun () ->
          f (Serve.Handler.create ~registry ~pool ~slow_log:sl ()) path))

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let slow_line path i =
  match List.nth_opt (read_lines path) i with
  | Some l -> (
      match Json.parse l with
      | Ok j -> j
      | Error e -> Alcotest.failf "slow-log line unparsable: %s" e)
  | None -> Alcotest.failf "slow log has no line %d" i

let slow_log_tests =
  [
    test "threshold 0 retains every request with id and events" (fun () ->
        with_slow_handler ~threshold_us:0 (fun h path ->
            ignore (handle_ok h (parse_req "A B"));
            let rec_0 = slow_line path 0 in
            (match get "req_id" rec_0 with
            | Json.String s ->
                check bool "generated id" true
                  (String.length s > 2 && String.sub s 0 2 = "r-")
            | _ -> Alcotest.fail "req_id not a string");
            check bool "op" true (get "op" rec_0 = Json.String "parse");
            check bool "grammar" true (get "grammar" rec_0 = Json.String "tiny");
            check bool "ok" true (get "ok" rec_0 = Json.Bool true);
            (match get "events" rec_0 with
            | Json.List evs -> check bool "trace captured" true (evs <> [])
            | _ -> Alcotest.fail "events not a list");
            List.iter
              (fun k ->
                check bool k true
                  (match get k rec_0 with Json.Int n -> n >= 0 | _ -> false))
              [ "wall_us"; "queue_us"; "parse_us"; "events_dropped" ]));
    test "client-supplied id is the correlation id" (fun () ->
        with_slow_handler ~threshold_us:0 (fun h path ->
            ignore
              (handle_ok h
                 (parse_req ~extra:[ ("id", Json.str "probe-42") ] "A B"));
            let r = slow_line path 0 in
            check bool "client id retained" true
              (get "req_id" r = Json.String "probe-42");
            check int "one record" 1 (Serve.Handler.slow_log h |> Option.get |> Serve.Slow_log.written)));
    test "huge threshold keeps only failing requests" (fun () ->
        with_slow_handler ~threshold_us:max_int (fun h path ->
            ignore (handle_ok h (parse_req "A B"));
            check int "fast success not retained" 0
              (List.length (read_lines path));
            ignore (handle_ok h (parse_req "A A"));
            let r = slow_line path 0 in
            check bool "failure retained" true (get "ok" r = Json.Bool false);
            check int "only the failure" 1 (List.length (read_lines path))));
    test "record cap converts writes into drops" (fun () ->
        with_slow_handler ~max_records:2 ~threshold_us:0 (fun h path ->
            for _ = 1 to 4 do
              ignore (handle_ok h (parse_req "A B"))
            done;
            let sl = Option.get (Serve.Handler.slow_log h) in
            check int "written capped" 2 (Serve.Slow_log.written sl);
            check int "rest dropped" 2 (Serve.Slow_log.dropped sl);
            check int "file matches" 2 (List.length (read_lines path))));
    test "timestamps within a record never decrease" (fun () ->
        with_slow_handler ~threshold_us:0 (fun h path ->
            ignore (handle_ok h (parse_req "A B"));
            match get "events" (slow_line path 0) with
            | Json.List evs ->
                let ts =
                  List.map
                    (fun e ->
                      match get "ts_us" e with
                      | Json.Int n -> n
                      | _ -> Alcotest.fail "ts_us not an int")
                    evs
                in
                let rec ordered = function
                  | a :: (b :: _ as rest) -> a <= b && ordered rest
                  | _ -> true
                in
                check bool "ordered" true (ordered ts);
                check bool "non-negative" true (List.for_all (fun t -> t >= 0) ts)
            | _ -> Alcotest.fail "events not a list"));
  ]

(* ------------------------------------------------------------------ *)
(* The HTTP metrics listener, end to end over a real socket. *)

let http_request ?(meth = "GET") ~(port : int) (path : string) : string =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let lines =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\n\r\n" meth path
      in
      ignore (Unix.write fd (Bytes.of_string lines) 0 (String.length lines));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Buffer.contents buf)

let metrics_http_tests =
  [
    test "GET /metrics, /health, /ready over a real socket" (fun () ->
        with_handler (fun h ->
            ignore (handle_ok h (parse_req "A B"));
            match Serve.Metrics_http.start ~port:0 h with
            | Error e -> Alcotest.fail e
            | Ok listener ->
                Fun.protect
                  ~finally:(fun () -> Serve.Metrics_http.stop listener)
                  (fun () ->
                    let port = Serve.Metrics_http.port listener in
                    check bool "kernel-assigned port" true (port > 0);
                    let m = http_request ~port "/metrics" in
                    check bool "200" true (contains m "HTTP/1.1 200 OK");
                    check bool "prometheus content type" true
                      (contains m "text/plain; version=0.0.4");
                    check bool "series served" true
                      (contains m "antlrkit_serve_requests");
                    let hl = http_request ~port "/health" in
                    check bool "health 200" true (contains hl "200 OK");
                    check bool "health body" true (contains hl "ok");
                    let rd = http_request ~port "/ready" in
                    check bool "ready 200" true (contains rd "200 OK");
                    check bool "query string ignored" true
                      (contains (http_request ~port "/metrics?x=1") "200 OK");
                    check bool "404 for unknown path" true
                      (contains (http_request ~port "/nope") "404 Not Found");
                    check bool "405 for POST" true
                      (contains
                         (http_request ~meth:"POST" ~port "/metrics")
                         "405 Method Not Allowed"))));
    test "stop joins the listener and is idempotent" (fun () ->
        with_handler (fun h ->
            match Serve.Metrics_http.start ~port:0 h with
            | Error e -> Alcotest.fail e
            | Ok listener ->
                let port = Serve.Metrics_http.port listener in
                check bool "live before stop" true
                  (contains (http_request ~port "/health") "200 OK");
                Serve.Metrics_http.stop listener;
                Serve.Metrics_http.stop listener;
                check bool "connection refused after stop" true
                  (match http_request ~port "/health" with
                  | _ -> false
                  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> true)));
  ]

(* The state-reset contract, observed through the public request path:
   repeating any request must give a byte-identical response (modulo the
   measured wall clock), regardless of what was parsed in between.  On a
   handler that leaked Token_stream positions or Generated memo entries
   across requests, the interleaved inputs would perturb the repeats. *)
let reuse_tests =
  [
    test "reuse-twice: identical responses across interleaved requests"
      (fun () ->
        with_handler (fun h ->
            let requests =
              [
                parse_req "A B";
                parse_req "A A";
                parse_req ~grammar:"MiniJava" ~backend:"generated"
                  "class A { int x ; }";
                parse_req ~grammar:"MiniJava" ~backend:"generated"
                  "class A { int ; }";
                parse_req ~grammar:"MiniJava" "class A { }";
              ]
            in
            let round () =
              List.map
                (fun r -> Json.to_string (strip_wall (handle_ok h r)))
                requests
            in
            let first = round () in
            (* interleave unrelated work, then repeat *)
            ignore (handle_ok h (parse_req "A C"));
            ignore
              (handle_ok h
                 (parse_req ~grammar:"MiniJava" ~backend:"generated"
                    "class B { boolean f ( ) { return x ; } }"));
            let second = round () in
            let third = round () in
            List.iteri
              (fun i (a, b) ->
                check string (Printf.sprintf "repeat %d stable" i) a b)
              (List.combine first second);
            List.iteri
              (fun i (a, b) ->
                check string (Printf.sprintf "third repeat %d stable" i) a b)
              (List.combine first third)));
  ]

(* ------------------------------------------------------------------ *)
(* The distilled cross-request bug: a generated-parser state reused
   without [Generated.reset].  Hand-built "generated-style" parser for

     s : (x)=> A B | C D ;     synpred x : A ;

   using the same Runtime.Generated primitives emitted code uses. *)

module Rt = Runtime.Generated
module Ts = Runtime.Token_stream

let tA = 3
let tB = 4
let tC = 5
let tD = 6

let mk_toks (types : int list) : Runtime.Token.t array =
  Array.of_list
    (List.mapi
       (fun i ttype ->
         { Runtime.Token.ttype; text = "t"; line = 1; col = i; index = i })
       types)

let expect (st : Rt.st) (ty : int) : unit =
  if Ts.la st.Rt.ts 1 = ty then ignore (Ts.consume st.Rt.ts)
  else Rt.mismatched st ~expected:ty ~rule:1

(* synpred body, memoized exactly like emitted synpred rules *)
let x_spec (st : Rt.st) : unit =
  Rt.memoized st ~rule:2 ~prec:0 (fun () -> expect st tA)

let s_entry (st : Rt.st) : unit =
  if Rt.syn_gate st (fun () -> x_spec st) then begin
    expect st tA;
    expect st tB
  end
  else begin
    expect st tC;
    expect st tD
  end

let generated_reset_tests =
  [
    test "memo leak: naive state reuse flips the verdict; reset fixes it"
      (fun () ->
        let fresh toks = Rt.run_st (Rt.make ~memoize:true toks) ~start_rule:1 s_entry in
        (* both inputs are in the language when parsed with fresh state *)
        check bool "fresh accepts A B" true (fresh (mk_toks [ tA; tB ])).Rt.ok;
        check bool "fresh accepts C D" true (fresh (mk_toks [ tC; tD ])).Rt.ok;
        let st = Rt.make ~memoize:true (mk_toks [ tA; tB ]) in
        check bool "first request accepts" true
          (Rt.run_st st ~start_rule:1 s_entry).Rt.ok;
        (* Naive reuse (the pre-fix serve bug): swap the tokens but keep
           the memo.  The stale Succeeded entry for (rule x, pos 0) makes
           the synpred "succeed" without looking at the input, steering
           the decision into alt 1, which then rejects C D. *)
        Ts.load st.Rt.ts (mk_toks [ tC; tD ]);
        let stale = Rt.run_st st ~start_rule:1 s_entry in
        check bool "stale memo flips accept to reject" false stale.Rt.ok;
        (* [reset] clears the memo as well as the stream: same state, same
           input, correct verdict again. *)
        Rt.reset st (mk_toks [ tC; tD ]);
        let after_reset = Rt.run_st st ~start_rule:1 s_entry in
        check bool "reset restores the fresh outcome" true after_reset.Rt.ok;
        check bool "reset outcome agrees with fresh state" true
          (Rt.agree after_reset (fresh (mk_toks [ tC; tD ]))));
    test "token stream load resets cursor and high water" (fun () ->
        let ts = Ts.of_array (mk_toks [ tA; tB; tC ]) in
        ignore (Ts.consume ts);
        ignore (Ts.la ts 2);
        check bool "advanced" true (Ts.index ts = 1 && Ts.high_water ts >= 2);
        Ts.load ts (mk_toks [ tD ]);
        check int "cursor rewound" 0 (Ts.index ts);
        check int "high water forgotten" (-1) (Ts.high_water ts);
        check int "new tokens visible" tD (Ts.la ts 1);
        check int "eof after the end" Grammar.Sym.eof (Ts.la ts 2));
  ]

(* ------------------------------------------------------------------ *)
(* Full server lifecycle: concurrent clients over a Unix socket, then a
   graceful shutdown that drains every in-flight request. *)

let with_server (f : string -> unit) : unit =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "antlrkit-test-serve-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "t.sock" in
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let registry = Serve.Registry.create () in
      (match
         Serve.Registry.load_source registry ~pool ~name:"tiny" tiny_src
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let handler = Serve.Handler.create ~registry ~pool () in
      let server =
        Serve.Server.create ~handler
          ~addr:(Serve.Protocol.Unix_sock sock) ()
      in
      let th = Thread.create Serve.Server.run server in
      Fun.protect
        ~finally:(fun () ->
          Serve.Server.stop server;
          Thread.join th;
          if Sys.file_exists sock then Sys.remove sock;
          Sys.rmdir dir)
        (fun () -> f sock))

let server_tests =
  [
    test "concurrent clients, graceful drain, socket cleanup" (fun () ->
        let drained = ref false in
        with_server (fun sock ->
            let per_client = 25 in
            let ok_counts = Array.make 3 0 in
            let client ci =
              match
                Serve.Client.connect_retry (Serve.Protocol.Unix_sock sock)
              with
              | Error e -> Alcotest.fail e
              | Ok c ->
                  for i = 1 to per_client do
                    let text = if i mod 3 = 0 then "A A" else "A B" in
                    let want_ok = i mod 3 <> 0 in
                    match
                      Serve.Client.request c
                        (Json.obj
                           [
                             ("id", Json.int ((ci * 1000) + i));
                             ("op", Json.str "parse");
                             ("grammar", Json.str "tiny");
                             ("text", Json.str text);
                           ])
                    with
                    | Error e -> Alcotest.fail e
                    | Ok resp ->
                        check bool "id echoed" true
                          (get "id" resp = Json.Int ((ci * 1000) + i));
                        if get_ok resp = want_ok then
                          ok_counts.(ci) <- ok_counts.(ci) + 1
                  done;
                  Serve.Client.close c
            in
            let threads = List.init 3 (fun ci -> Thread.create client ci) in
            List.iter Thread.join threads;
            Array.iteri
              (fun ci n ->
                check int (Printf.sprintf "client %d all verdicts" ci)
                  per_client n)
              ok_counts;
            (* graceful shutdown via the protocol *)
            (match
               Serve.Client.connect_retry (Serve.Protocol.Unix_sock sock)
             with
            | Error e -> Alcotest.fail e
            | Ok c ->
                (match
                   Serve.Client.request c
                     (Json.obj [ ("op", Json.str "shutdown") ])
                 with
                | Ok resp -> check bool "shutdown acked" true (get_ok resp)
                | Error e -> Alcotest.fail e);
                Serve.Client.close c);
            drained := true);
        check bool "server thread joined" true !drained);
  ]

let suite =
  [
    ("serve_protocol", protocol_tests);
    ("serve_handler", handler_tests);
    ("serve_telemetry_ops", telemetry_op_tests);
    ("serve_slow_log", slow_log_tests);
    ("serve_metrics_http", metrics_http_tests);
    ("serve_reuse", reuse_tests);
    ("serve_generated_reset", generated_reset_tests);
    ("serve_server", server_tests);
  ]
