(* Property-based tests (qcheck, registered via QCheck_alcotest).

   A generator produces random well-formed, non-left-recursive grammars; the
   properties tie the whole pipeline together:

   - analysis terminates and produces deterministic DFAs;
   - soundness: anything the LL-star parser accepts is in the grammar's
     context-free language (checked against the Earley baseline);
   - parse trees yield exactly the input;
   - random sentences drawn from the grammar are in its language;
   - on LL(1) grammars the LL-star parser agrees with the table-driven
     LL(1) baseline on arbitrary token strings;
   - the pretty-printer round-trips;
   - a streaming sliding-window parse is observably identical to the
     materialized parse (verdict, error position, profile) at every
     window size, and chunked lexing equals whole-string lexing. *)

open Helpers
module Gen = QCheck.Gen

let terminals = [| "A"; "B"; "C"; "D"; "E" |]
let rule_names = [| "r0"; "r1"; "r2"; "r3" |]

(* Generate one element for rule [i] at position [pos].  To keep grammars
   free of left recursion by construction, a leading nonterminal reference
   may only point to a later rule; after at least one terminal, any rule may
   be referenced. *)
let gen_element i pos : Grammar.Ast.element Gen.t =
  let open Gen in
  let term = map (fun t -> Grammar.Ast.Term terminals.(t)) (int_bound 4) in
  let nonterm =
    if pos = 0 then
      if i >= Array.length rule_names - 1 then term
      else
        map
          (fun j ->
            Grammar.Ast.Nonterm
              { name = rule_names.(i + 1 + (j mod (Array.length rule_names - i - 1))); arg = None })
          (int_bound 3)
    else
      map
        (fun j -> Grammar.Ast.Nonterm { name = rule_names.(j); arg = None })
        (int_bound (Array.length rule_names - 1))
  in
  let star_block =
    map
      (fun t ->
        Grammar.Ast.Block
          {
            alts = [ { Grammar.Ast.elems = [ Grammar.Ast.Term terminals.(t) ] } ];
            suffix = Grammar.Ast.Star;
          })
      (int_bound 4)
  in
  let opt_block =
    map
      (fun t ->
        Grammar.Ast.Block
          {
            alts = [ { Grammar.Ast.elems = [ Grammar.Ast.Term terminals.(t) ] } ];
            suffix = Grammar.Ast.Opt;
          })
      (int_bound 4)
  in
  frequency [ (5, term); (2, nonterm); (1, star_block); (1, opt_block) ]

let gen_alt i : Grammar.Ast.alt Gen.t =
  let open Gen in
  int_range 1 3 >>= fun len ->
  let rec go pos acc =
    if pos >= len then return (List.rev acc)
    else gen_element i pos >>= fun e -> go (pos + 1) (e :: acc)
  in
  map (fun elems -> { Grammar.Ast.elems }) (go 0 [])

let gen_rule i : Grammar.Ast.rule Gen.t =
  let open Gen in
  int_range 1 3 >>= fun nalts ->
  map
    (fun alts ->
      {
        Grammar.Ast.name = rule_names.(i);
        rule_alts = alts;
        parameterized = false;
        source_line = 0;
      })
    (flatten_l (List.init nalts (fun _ -> gen_alt i)))

let gen_grammar : Grammar.Ast.t Gen.t =
  let open Gen in
  map
    (fun rules -> Grammar.Ast.make "Rand" rules)
    (flatten_l (List.init (Array.length rule_names) gen_rule))

let arb_grammar =
  QCheck.make ~print:Grammar.Pretty.to_string gen_grammar

(* A random grammar paired with a sentence drawn from it. *)
let arb_grammar_and_sentence =
  let gen =
    let open Gen in
    gen_grammar >>= fun g ->
    int_bound 1000 >>= fun seed ->
    let rng = Random.State.make [| seed |] in
    let sg = Grammar.Sentence_gen.prepare g in
    let sentence =
      match Grammar.Sentence_gen.generate sg ~rng ~size:12 with
      | s -> Some s
      | exception Grammar.Sentence_gen.Unproductive -> None
    in
    return (g, sentence)
  in
  QCheck.make
    ~print:(fun (g, s) ->
      Grammar.Pretty.to_string g ^ "\nsentence: "
      ^ String.concat " " (Option.value ~default:[ "<unproductive>" ] s))
    gen

(* Random grammars can be extremely ambiguous; a tight state budget keeps
   analysis time bounded (the fallback path is part of what we test). *)
let rand_opts =
  { Llstar.Analysis.default_options with Llstar.Analysis.max_states = 200 }

let compile_rand g =
  match Llstar.Compiled.compile ~analysis_opts:rand_opts g with
  | Ok c -> Some c
  | Error _ -> None (* e.g. a generated rule set with unlucky shapes *)

let tokens_of_names c names =
  let sym = Llstar.Compiled.sym c in
  Array.of_list
    (List.mapi
       (fun i name ->
         match Grammar.Sym.find_term sym name with
         | Some id -> Runtime.Token.make ~index:i id name
         | None ->
             (* a terminal the grammar never mentions: any valid parser must
                reject it, so give it an id no DFA edge can match *)
             Runtime.Token.make ~index:i 999_999 name)
       names)

let props =
  [
    qtest ~count:80 "analysis terminates with deterministic DFAs" arb_grammar
      (fun g ->
        match compile_rand g with
        | None -> true
        | Some c ->
            Array.for_all
              (fun (r : Llstar.Analysis.result) ->
                let dfa = r.Llstar.Analysis.dfa in
                let ok = ref true in
                for s = 0 to dfa.Llstar.Look_dfa.nstates - 1 do
                  let seen = Hashtbl.create 8 in
                  Array.iter
                    (fun (t, _) ->
                      if Hashtbl.mem seen t then ok := false
                      else Hashtbl.add seen t ())
                    dfa.Llstar.Look_dfa.edges.(s)
                done;
                !ok)
              c.Llstar.Compiled.results);
    qtest ~count:300 "generated sentences are in the CFG language (Earley)"
      arb_grammar_and_sentence (fun (g, sentence) ->
        match sentence with
        | None -> true (* unproductive grammar: nothing to generate *)
        | Some sentence ->
            let e = Baselines.Earley.of_grammar g in
            Baselines.Earley.recognize e (Array.of_list sentence));
    qtest ~count:80 "LL(*) acceptance implies CFG membership"
      arb_grammar_and_sentence (fun (g, sentence) ->
        match (compile_rand g, sentence) with
        | None, _ | _, None -> true
        | Some c, Some sentence -> (
            let toks = tokens_of_names c sentence in
            match Runtime.Interp.parse c toks with
            | Error _ -> true (* order-resolution may prune; rejection is fine *)
            | Ok tree ->
                (* soundness: accepted implies in the language *)
                let e = Baselines.Earley.of_grammar g in
                Baselines.Earley.recognize e (Array.of_list sentence)
                (* and the tree covers the input exactly *)
                && Runtime.Tree.yield tree = String.concat " " sentence));
    qtest ~count:300 "pretty-printing round-trips" arb_grammar (fun g ->
        let p1 = Grammar.Pretty.to_string g in
        let p2 =
          Grammar.Pretty.to_string (Grammar.Meta_parser.parse p1)
        in
        p1 = p2);
    qtest ~count:80 "LL(1) table agreement on LL(1) grammars"
      (QCheck.pair arb_grammar (QCheck.list_of_size (Gen.int_bound 6) (QCheck.int_bound 4)))
      (fun (g, word) ->
        let t = Baselines.Ll1.of_grammar g in
        if not (Baselines.Ll1.is_ll1 t) then true
        else
          match compile_rand g with
          | None -> true
          | Some c ->
              let names = List.map (fun i -> terminals.(i)) word in
              let toks = tokens_of_names c names in
              let ll1 = Baselines.Ll1.recognize t (Array.of_list names) in
              let llstar =
                match Runtime.Interp.recognize c toks with
                | Ok () -> true
                | Error _ -> false
              in
              QCheck.(
                if ll1 <> llstar then
                  Test.fail_reportf "ll1=%b llstar=%b on %s" ll1 llstar
                    (String.concat " " names)
                else true));
    qtest ~count:50 "memoized and unmemoized speculation agree"
      arb_grammar_and_sentence (fun (g, sentence) ->
        let peg =
          {
            g with
            Grammar.Ast.options =
              {
                g.Grammar.Ast.options with
                Grammar.Ast.backtrack = true;
                Grammar.Ast.memoize = true;
              };
          }
        in
        let nomemo =
          {
            peg with
            Grammar.Ast.options =
              { peg.Grammar.Ast.options with Grammar.Ast.memoize = false };
          }
        in
        match (compile_rand peg, compile_rand nomemo, sentence) with
        | Some c1, Some c2, Some sentence ->
            let t1 = tokens_of_names c1 sentence in
            let t2 = tokens_of_names c2 sentence in
            let r1 =
              match Runtime.Interp.recognize c1 t1 with Ok () -> true | _ -> false
            in
            let r2 =
              match Runtime.Interp.recognize c2 t2 with Ok () -> true | _ -> false
            in
            r1 = r2
        | _ -> true);
    (* The two differential-oracle invariants (lib/fuzz) restated as
       properties over random grammars: PEG acceptance implies PEG-mode
       LL-star acceptance (the DFA may resolve decisions PEG would
       prefix-commit on, so LL-star can accept strictly more -- that is the
       paper's pitch -- but never less), and on LL(1)-clean grammars
       LL-star agrees with Earley in both directions. *)
    qtest ~count:80 "packrat acceptance implies PEG-mode LL(*) acceptance"
      (QCheck.pair arb_grammar_and_sentence
         (QCheck.list_of_size (Gen.int_bound 6) (QCheck.int_bound 4)))
      (fun ((g, sentence), word) ->
        let peg =
          {
            g with
            Grammar.Ast.options =
              { g.Grammar.Ast.options with Grammar.Ast.backtrack = true };
          }
        in
        match compile_rand peg with
        | None -> true
        | Some c ->
            let pk = Baselines.Packrat.create ~memoize:true peg in
            let agree names =
              let toks = tokens_of_names c names in
              let llstar =
                match Runtime.Interp.recognize c toks with
                | Ok () -> true
                | Error _ -> false
              in
              match
                Baselines.Packrat.recognize ~budget:500_000 pk
                  (Llstar.Compiled.sym c) toks ()
              with
              | exception Baselines.Packrat.Give_up -> true (* fuel: skip *)
              | packrat ->
                  QCheck.(
                    if packrat && not llstar then
                      Test.fail_reportf "packrat=%b llstar=%b on %s" packrat
                        llstar (String.concat " " names)
                    else true)
            in
            let on_sentence =
              match sentence with None -> true | Some s -> agree s
            in
            on_sentence && agree (List.map (fun i -> terminals.(i)) word));
    qtest ~count:80 "Earley agreement on LL(1)-clean grammars"
      (QCheck.pair arb_grammar_and_sentence
         (QCheck.list_of_size (Gen.int_bound 6) (QCheck.int_bound 4)))
      (fun ((g, sentence), word) ->
        let t = Baselines.Ll1.of_grammar g in
        if not (Baselines.Ll1.is_ll1 t) then true
        else
          match compile_rand g with
          | None -> true
          | Some c ->
              let e = Baselines.Earley.of_grammar g in
              let agree names =
                let toks = tokens_of_names c names in
                let llstar =
                  match Runtime.Interp.recognize c toks with
                  | Ok () -> true
                  | Error _ -> false
                in
                let earley = Baselines.Earley.recognize e (Array.of_list names) in
                QCheck.(
                  if earley <> llstar then
                    Test.fail_reportf "earley=%b llstar=%b on %s" earley llstar
                      (String.concat " " names)
                  else true)
              in
              let on_sentence =
                match sentence with None -> true | Some s -> agree s
              in
              on_sentence && agree (List.map (fun i -> terminals.(i)) word));
    qtest ~count:80 "minimization preserves acceptance and yield"
      arb_grammar_and_sentence (fun (g, sentence) ->
        let opts_min =
          { rand_opts with Llstar.Analysis.minimize = true }
        in
        let c_min =
          match Llstar.Compiled.compile ~analysis_opts:opts_min g with
          | Ok c -> Some c
          | Error _ -> None
        in
        match (compile_rand g, c_min, sentence) with
        | Some c1, Some c2, Some sentence -> (
            let t1 = tokens_of_names c1 sentence in
            let t2 = tokens_of_names c2 sentence in
            match (Runtime.Interp.parse c1 t1, Runtime.Interp.parse c2 t2) with
            | Ok a, Ok b -> Runtime.Tree.yield a = Runtime.Tree.yield b
            | Error _, Error _ -> true
            | _ -> false)
        | _ -> true);
    (* The streaming pipeline's contract: a sliding window plus memo
       eviction behind the release frontier changes memory behaviour only.
       Verdict, error position, consumed count and the full profile (so
       decision events, lookahead depths and speculation reach) must match
       the materialized parse at every window size -- including a window
       of 1 (maximum sliding) and window == input length (never slides). *)
    qtest ~count:60 "streaming parse == materialized at any window"
      (QCheck.pair arb_grammar_and_sentence
         (QCheck.list_of_size (Gen.int_bound 8) (QCheck.int_bound 4)))
      (fun ((g, sentence), word) ->
        let peg =
          {
            g with
            Grammar.Ast.options =
              {
                g.Grammar.Ast.options with
                Grammar.Ast.backtrack = true;
                Grammar.Ast.memoize = true;
              };
          }
        in
        match compile_rand peg with
        | None -> true
        | Some c ->
            let agree_on names =
              let toks = tokens_of_names c names in
              let pm = Runtime.Profile.create () in
              let mat = Runtime.Generated.interp_outcome ~profile:pm c toks in
              let windows = [ 1; 2; 16; max 1 (Array.length toks) ] in
              List.for_all
                (fun window ->
                  let ps = Runtime.Profile.create () in
                  let ts =
                    Runtime.Token_stream.of_pull ~window
                      (pull_of_array ~chunk:3 toks)
                  in
                  let str =
                    Runtime.Generated.interp_outcome_stream ~profile:ps c ts
                  in
                  QCheck.(
                    if not (Runtime.Generated.agree mat str) then
                      Test.fail_reportf "window %d: %s vs %s on %s" window
                        (Runtime.Generated.describe mat)
                        (Runtime.Generated.describe str)
                        (String.concat " " names)
                    else if
                      Fmt.str "%a" Runtime.Profile.pp pm
                      <> Fmt.str "%a" Runtime.Profile.pp ps
                    then
                      Test.fail_reportf "window %d: profiles differ on %s"
                        window
                        (String.concat " " names)
                    else true))
                windows
            in
            let on_sentence =
              match sentence with None -> true | Some s -> agree_on s
            in
            on_sentence && agree_on (List.map (fun i -> terminals.(i)) word));
  ]

(* ------------------------------------------------------------------ *)
(* Chunked lexing: the incremental scanner must be observably identical
   to the whole-string path -- same tokens (type, text, position, index)
   or the same first error -- at any chunk granularity. *)

let lex_vocab =
  lazy
    (Llstar.Compiled.sym
       (compile "grammar L; s : ID INT ';' '+' '==' '(' ')' ;"))

let lexemes =
  [| "x"; "abc_1"; "42"; "007"; ";"; "+"; "=="; "("; ")"; "// c"; "/* b */"; "$" |]

let lex_props =
  [
    qtest ~count:200 "chunked lexing == whole-string lexing"
      (QCheck.pair
         (QCheck.list_of_size (Gen.int_bound 30)
            (QCheck.int_bound (Array.length lexemes - 1)))
         (QCheck.int_range 1 5))
      (fun (picks, max_tokens) ->
        let sym = Lazy.force lex_vocab in
        let config = Runtime.Lexer_engine.default_config in
        let text =
          String.concat ""
            (List.mapi
               (fun i p ->
                 lexemes.(p) ^ if i mod 3 = 0 then "\n" else " ")
               picks)
        in
        let whole = Runtime.Lexer_engine.tokenize config sym text in
        let ls =
          Runtime.Lexer_engine.stream ~buf_chars:16 config sym
            (Runtime.Lexer_engine.reader_of_string text)
        in
        let rec collect acc =
          match Runtime.Lexer_engine.next_chunk ~max_tokens ls with
          | Error e -> Error e
          | Ok [||] -> Ok (Array.concat (List.rev acc))
          | Ok chunk -> collect (chunk :: acc)
        in
        let chunked = collect [] in
        QCheck.(
          match (whole, chunked) with
          | Ok a, Ok b ->
              if a <> b then
                Test.fail_reportf "token arrays differ on %S" text
              else true
          | Error a, Error b ->
              if a <> b then
                Test.fail_reportf "errors differ on %S: %s vs %s" text
                  a.Runtime.Lexer_engine.msg b.Runtime.Lexer_engine.msg
              else true
          | Ok _, Error e ->
              Test.fail_reportf "chunked failed, whole succeeded on %S: %s"
                text e.Runtime.Lexer_engine.msg
          | Error e, Ok _ ->
              Test.fail_reportf "whole failed, chunked succeeded on %S: %s"
                text e.Runtime.Lexer_engine.msg))
  ]

let suite = [ ("properties", props); ("lexing-properties", lex_props) ]
