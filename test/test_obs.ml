(* Observability layer: the JSON codec, the metrics registry, the trace
   sinks, and the tracing contract of the interpreter (spans balance, the
   null sink materializes nothing, the Chrome sink emits valid JSON). *)

open Helpers
module J = Obs.Json
module M = Obs.Metrics
module T = Obs.Trace

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_tests =
  [
    test "round-trips a nested document" (fun () ->
        let doc =
          J.obj
            [
              ("a", J.int 3);
              ("b", J.list [ J.str "x\"y"; J.bool true; J.Null ]);
              ("c", J.obj [ ("nested", J.float 1.5) ]);
            ]
        in
        match J.parse (J.to_string doc) with
        | Ok (J.Obj fields) ->
            check int "fields" 3 (List.length fields);
            check bool "a" true (List.assoc "a" fields = J.Int 3)
        | Ok _ -> Alcotest.fail "expected an object"
        | Error e -> Alcotest.failf "parse failed: %s" e);
    test "escapes control characters" (fun () ->
        let s = J.to_string (J.str "a\nb\tc\"d\\e\x01f") in
        check bool "valid" true (J.is_valid s));
    test "non-finite floats stay valid JSON" (fun () ->
        check bool "nan" true (J.is_valid (J.to_string (J.float Float.nan)));
        check bool "inf" true
          (J.is_valid (J.to_string (J.float Float.infinity))));
    test "rejects trailing garbage" (fun () ->
        check bool "garbage" false (J.is_valid "{\"a\":1} x");
        check bool "bare" false (J.is_valid "nope"));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let metrics_tests =
  [
    test "counters intern by (name, labels)" (fun () ->
        let r = M.create () in
        let c1 = M.counter r "hits" ~labels:[ ("d", "1") ] in
        let c2 = M.counter r "hits" ~labels:[ ("d", "1") ] in
        let c3 = M.counter r "hits" ~labels:[ ("d", "2") ] in
        M.incr c1;
        M.add c2 4;
        M.incr c3;
        check int "same cell" 5 (M.value c1);
        check int "distinct labels" 1 (M.value c3));
    test "label order does not split a metric" (fun () ->
        let r = M.create () in
        let a = M.counter r "x" ~labels:[ ("p", "1"); ("q", "2") ] in
        let b = M.counter r "x" ~labels:[ ("q", "2"); ("p", "1") ] in
        M.incr a;
        check int "one cell" 1 (M.value b));
    test "histogram aggregates" (fun () ->
        let r = M.create () in
        let h = M.histogram r "k" in
        List.iter (M.observe h) [ 1; 2; 3; 10 ];
        check int "count" 4 (M.h_count h);
        check int "sum" 16 (M.h_sum h);
        check int "max" 10 (M.h_max h);
        check (Alcotest.float 1e-9) "avg" 4.0 (M.h_avg h));
    test "reset zeroes in place, cells stay live" (fun () ->
        let r = M.create () in
        let c = M.counter r "n" in
        let h = M.histogram r "k" in
        M.incr c;
        M.observe h 5;
        M.reset r;
        check int "counter" 0 (M.value c);
        check int "histogram" 0 (M.h_count h);
        (* the interned references survive a reset *)
        M.incr c;
        M.observe h 2;
        check int "counter live" 1 (M.value c);
        check int "histogram live" 1 (M.h_count h));
    test "snapshot is valid JSON in registration order" (fun () ->
        let r = M.create () in
        M.incr (M.counter r "first");
        M.observe (M.histogram r "second") 3;
        let s = J.to_string (M.to_json r) in
        match J.parse s with
        | Ok (J.List [ m1; m2 ]) ->
            check bool "first" true (J.member "name" m1 = Some (J.str "first"));
            check bool "second" true
              (J.member "name" m2 = Some (J.str "second"))
        | Ok _ -> Alcotest.fail "expected a two-point list"
        | Error e -> Alcotest.failf "snapshot unparsable: %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let ev_i i = T.Backtrack { decision = i; depth = 1 }

let ring_tests =
  [
    test "keeps the newest entries on overflow" (fun () ->
        let b = T.Ring.create 3 in
        for i = 1 to 5 do
          T.Ring.push b 0.0 (ev_i i)
        done;
        check int "total counts everything" 5 (T.Ring.total b);
        check int "capacity" 3 (T.Ring.capacity b);
        let ids =
          List.map
            (function T.Backtrack { decision; _ } -> decision | _ -> -1)
            (T.Ring.events b)
        in
        check bool "oldest-first window" true (ids = [ 3; 4; 5 ]));
    test "clear empties the window" (fun () ->
        let b = T.Ring.create 4 in
        T.Ring.push b 0.0 (ev_i 1);
        T.Ring.clear b;
        check int "total" 0 (T.Ring.total b);
        check bool "empty" true (T.Ring.events b = []));
  ]

(* ------------------------------------------------------------------ *)
(* Tracing a real parse *)

(* Rule t backtracks (m=1 cannot bound the '-'* vs expr overlap); while its
   synpred speculates over rule s's first alternative, prediction of t's own
   decision re-enters speculation, so synpred spans nest. *)
let backtracking_grammar =
  "grammar N; options { backtrack=true; m=1; } s : t ID | t INT ; t : ('-')* \
   ID | expr ; expr : INT | '-' expr ;"

let traced_events input =
  let c = compile backtracking_grammar in
  let buf = T.Ring.create 65536 in
  let tracer = T.ring buf in
  (match Runtime.Interp.parse ~tracer c (lex c input) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "parse failed");
  T.Ring.events buf

let count p evs = List.length (List.filter p evs)

let synpred_max_depth evs =
  let d = ref 0 and dmax = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | T.Synpred_enter _ ->
          incr d;
          if !d > !dmax then dmax := !d
      | T.Synpred_exit _ -> decr d
      | _ -> ())
    evs;
  !dmax

let trace_tests =
  [
    test "spans balance across nested synpreds" (fun () ->
        let evs = traced_events "- - x x" in
        check bool "events captured" true (evs <> []);
        check bool "balanced" true (T.spans_balanced evs);
        check bool "synpreds nest" true (synpred_max_depth evs >= 2);
        check int "enter/exit pair up"
          (count (function T.Decision_enter _ -> true | _ -> false) evs)
          (count (function T.Decision_exit _ -> true | _ -> false) evs));
    test "speculation leaves backtrack and memo events" (fun () ->
        let evs = traced_events "- - x 3" in
        check bool "backtrack observed" true
          (count (function T.Backtrack _ -> true | _ -> false) evs > 0);
        check bool "memo misses while speculating" true
          (count (function T.Memo_miss _ -> true | _ -> false) evs > 0));
    test "synpred exits report reach and verdict" (fun () ->
        let evs = traced_events "- - x x" in
        let exits =
          List.filter_map
            (function T.Synpred_exit { ok; reach; _ } -> Some (ok, reach) | _ -> None)
            evs
        in
        check bool "some synpred ran" true (exits <> []);
        check bool "every reach non-negative" true
          (List.for_all (fun (_, reach) -> reach >= 0) exits);
        check bool "a synpred succeeded" true
          (List.exists (fun (ok, _) -> ok) exits));
    test "null sink materializes nothing" (fun () ->
        let c = compile backtracking_grammar in
        let toks = lex c "- - x x" in
        let materialized = ref 0 in
        let off = T.make (fun _ _ -> incr materialized) in
        T.set_on off false;
        (match Runtime.Interp.parse ~tracer:off c toks with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        check int "no events reach a disabled sink" 0 !materialized;
        (* and the shared null tracer is off by construction *)
        check bool "Trace.null is off" false (T.on T.null));
    test "unbalanced sequences are rejected" (fun () ->
        let enter = T.Decision_enter { decision = 0; rule = "s"; pos = 0 } in
        let exit_ = T.Decision_exit { decision = 0; alt = 1; k = 1; pos = 1 } in
        let sp = T.Synpred_enter { rule = "t"; pos = 0 } in
        check bool "dangling enter" false (T.spans_balanced [ enter ]);
        check bool "interleaved" false
          (T.spans_balanced [ enter; sp; exit_ ]);
        check bool "balanced pair" true (T.spans_balanced [ enter; exit_ ]));
    test "lexer mode spans balance" (fun () ->
        let c = compile "grammar L; s : ID ;" in
        let buf = T.Ring.create 1024 in
        let tracer = T.ring buf in
        (match
           Runtime.Lexer_engine.tokenize ~tracer
             Runtime.Lexer_engine.default_config
             (Llstar.Compiled.sym c)
             "/* one */ x /* two */ y"
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "tokenize failed");
        let evs = T.Ring.events buf in
        check bool "modes traced" true
          (count (function T.Lexer_mode_enter _ -> true | _ -> false) evs >= 2);
        check bool "balanced" true (T.spans_balanced evs));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome sink *)

let chrome_tests =
  [
    test "emits a valid Perfetto-loadable array" (fun () ->
        let path = Filename.temp_file "antlrkit-test-trace" ".json" in
        let oc = open_out path in
        let tracer, close = T.chrome_sink oc in
        let c = compile backtracking_grammar in
        (match Runtime.Interp.parse ~tracer c (lex c "- - x x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        close ();
        close_out oc;
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        Sys.remove path;
        match J.parse s with
        | Error e -> Alcotest.failf "trace unparsable: %s" e
        | Ok (J.List events) ->
            check bool "non-empty" true (events <> []);
            List.iter
              (fun ev ->
                let has k = J.member k ev <> None in
                check bool "name" true (has "name");
                check bool "ph" true (has "ph");
                check bool "ts" true (has "ts");
                check bool "pid" true (has "pid");
                check bool "args" true (has "args");
                (* instant events carry a scope *)
                match J.member "ph" ev with
                | Some (J.String "i") -> check bool "scope" true (has "s")
                | _ -> ())
              events
        | Ok _ -> Alcotest.fail "expected a JSON array");
    test "close is idempotent and ends the array" (fun () ->
        let path = Filename.temp_file "antlrkit-test-trace" ".json" in
        let oc = open_out path in
        let tracer, close = T.chrome_sink oc in
        T.emit tracer (ev_i 1);
        close ();
        close ();
        (* events after close are dropped, not appended past the ']' *)
        T.emit tracer (ev_i 2);
        close_out oc;
        let ic = open_in path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Sys.remove path;
        match J.parse s with
        | Ok (J.List [ _ ]) -> ()
        | Ok _ -> Alcotest.fail "expected exactly one event"
        | Error e -> Alcotest.failf "unparsable after close: %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Duration histograms: unit coverage of the log-linear layout, then the
   qcheck laws -- quantile estimates stay within the exact value's bucket,
   merge is associative/commutative with a fresh histogram as identity,
   and [to_json] is a function of the observed multiset alone. *)

module D = Obs.Duration

let duration_of (vs : int list) : D.t =
  let d = D.create () in
  List.iter (D.observe d) vs;
  d

let duration_json vs = J.to_string (D.to_json (duration_of vs))

(* Exact nearest-rank quantile: the ceil(q*n)-th smallest observation. *)
let exact_quantile (vs : int list) (q : float) : int =
  let sorted = List.sort compare vs in
  let n = List.length sorted in
  let rank =
    let r = int_of_float (ceil (q *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  List.nth sorted (rank - 1)

let duration_tests =
  [
    test "values below 128us are recorded exactly" (fun () ->
        for v = 0 to 127 do
          check int (Printf.sprintf "index %d" v) v (D.index_of v)
        done;
        let lo, hi = D.bounds_of 100 in
        check bool "unit-wide" true (lo = 100 && hi = 100));
    test "bounds invert index and bound relative width" (fun () ->
        (* every bucket: bounds round-trip through index_of, and width
           stays within 1/half of the lower bound (the ~1.6% design) *)
        for i = 0 to D.num_buckets - 2 do
          let lo, hi = D.bounds_of i in
          check int "lo maps back" i (D.index_of lo);
          check int "hi maps back" i (D.index_of hi);
          if i >= D.n_sub then
            check bool
              (Printf.sprintf "bucket %d narrow enough" i)
              true
              ((hi - lo + 1) * D.half <= lo + D.half)
        done;
        (* adjacent buckets tile the range with no gap or overlap *)
        for i = 0 to D.num_buckets - 3 do
          let _, hi = D.bounds_of i in
          let lo', _ = D.bounds_of (i + 1) in
          check int "contiguous" (hi + 1) lo'
        done);
    test "observe updates count, sum, min, max, avg" (fun () ->
        let d = duration_of [ 5; 100_000; 7; 3_000_000 ] in
        check int "count" 4 (D.count d);
        check int "sum" 3_100_012 (D.sum_us d);
        check int "min" 5 (D.min_us d);
        check int "max" 3_000_000 (D.max_us d);
        check (Alcotest.float 1e-6) "avg" 775_003.0 (D.avg_us d);
        check int "negative clamps to zero" 0
          (let d = duration_of [ -3 ] in
           D.max_us d));
    test "single-valued distribution reports that value exactly" (fun () ->
        let d = duration_of [ 123_456; 123_456; 123_456 ] in
        check int "p50" 123_456 (D.p50 d);
        check int "p99" 123_456 (D.p99 d);
        check int "p100 is max" 123_456 (D.quantile d 1.0));
    test "overflow values land in the unbounded bucket" (fun () ->
        let huge = 1 lsl 45 in
        let d = duration_of [ 10; huge ] in
        check int "count" 2 (D.count d);
        check int "max" huge (D.max_us d);
        (* the p100 estimate is clamped to the observed max *)
        check int "p100" huge (D.quantile d 1.0));
    test "reset zeroes in place" (fun () ->
        let d = duration_of [ 9; 99; 999 ] in
        D.reset d;
        check int "count" 0 (D.count d);
        check int "quantile of empty" 0 (D.p50 d);
        D.observe d 42;
        check int "live after reset" 42 (D.p50 d));
    test "to_json is valid and carries the quantile fields" (fun () ->
        let s = duration_json [ 10; 20; 30_000 ] in
        check bool "valid JSON" true (J.is_valid s);
        match J.parse s with
        | Error e -> Alcotest.failf "unparsable: %s" e
        | Ok j ->
            List.iter
              (fun k ->
                check bool k true (J.member k j <> None))
              [ "count"; "sum_us"; "min_us"; "max_us"; "p50_us"; "p90_us";
                "p99_us"; "buckets" ]);
  ]

(* Microsecond values spanning the exact range, several octaves, and the
   region near bucket edges: [x lsl e] with small [x] lands on and around
   lower bounds. *)
let arb_us =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(
      list_size (int_range 1 200)
        (map (fun (e, x) -> x lsl e) (pair (int_bound 16) (int_bound 2047))))

let duration_prop_tests =
  [
    qtest "quantile estimate stays in the exact value's bucket"
      (QCheck.pair arb_us (QCheck.int_bound 100))
      (fun (vs, qi) ->
        let q = float_of_int qi /. 100.0 in
        let est = D.quantile (duration_of vs) q in
        let lo, hi = D.bounds_of (D.index_of (exact_quantile vs q)) in
        lo <= est && est <= hi);
    qtest "merge is commutative"
      (QCheck.pair arb_us arb_us)
      (fun (a, b) ->
        let ab = duration_of a and ba = duration_of b in
        D.merge ~into:ab (duration_of b);
        D.merge ~into:ba (duration_of a);
        J.to_string (D.to_json ab) = J.to_string (D.to_json ba));
    qtest "merge is associative"
      (QCheck.triple arb_us arb_us arb_us)
      (fun (a, b, c) ->
        let left = duration_of a in
        D.merge ~into:left (duration_of b);
        D.merge ~into:left (duration_of c);
        let bc = duration_of b in
        D.merge ~into:bc (duration_of c);
        let right = duration_of a in
        D.merge ~into:right bc;
        J.to_string (D.to_json left) = J.to_string (D.to_json right));
    qtest "fresh histogram is a merge identity" arb_us (fun vs ->
        let d = duration_of vs in
        D.merge ~into:d (D.create ());
        let pre = J.to_string (D.to_json d) in
        let id = D.create () in
        D.merge ~into:id (duration_of vs);
        pre = duration_json vs && J.to_string (D.to_json id) = pre);
    qtest "to_json is deterministic in the observed multiset" arb_us
      (fun vs ->
        duration_json vs = duration_json vs
        && duration_json vs = duration_json (List.rev vs));
  ]

(* ------------------------------------------------------------------ *)
(* Registry merge laws, with all three metric kinds in play.  Registry
   snapshots are in registration order, which legitimately differs across
   merge orders, so the laws compare canonicalized (sorted) point sets. *)

let apply_op (r : M.t) ((which, li, v) : int * int * int) : unit =
  let labels = match li mod 3 with 0 -> [] | 1 -> [ ("k", "1") ] | _ -> [ ("k", "2") ] in
  match which mod 3 with
  | 0 -> M.add (M.counter r "c" ~labels) v
  | 1 -> M.observe (M.histogram r "h" ~labels) v
  | _ -> D.observe (M.duration r "d" ~labels) v

let registry_of ops : M.t =
  let r = M.create () in
  List.iter (apply_op r) ops;
  r

let canon_registry (r : M.t) : string =
  match M.to_json r with
  | J.List points ->
      let key p =
        J.to_string
          (J.obj
             [
               ("n", Option.value (J.member "name" p) ~default:J.Null);
               ("l", Option.value (J.member "labels" p) ~default:J.Null);
             ])
      in
      String.concat "\n"
        (List.map J.to_string
           (List.sort (fun a b -> compare (key a) (key b)) points))
  | j -> J.to_string j

let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (a, b, c) -> Printf.sprintf "%d,%d,%d" a b c) l))
    QCheck.Gen.(
      list_size (int_range 0 40)
        (triple (int_bound 2) (int_bound 2) (int_bound 10_000)))

let metrics_merge_prop_tests =
  [
    qtest "registry merge is commutative (canonicalized)"
      (QCheck.pair arb_ops arb_ops)
      (fun (a, b) ->
        let ab = M.create () and ba = M.create () in
        M.merge ~into:ab (registry_of a);
        M.merge ~into:ab (registry_of b);
        M.merge ~into:ba (registry_of b);
        M.merge ~into:ba (registry_of a);
        canon_registry ab = canon_registry ba);
    qtest "registry merge is associative"
      (QCheck.triple arb_ops arb_ops arb_ops)
      (fun (a, b, c) ->
        let left = registry_of a in
        M.merge ~into:left (registry_of b);
        M.merge ~into:left (registry_of c);
        let bc = registry_of b in
        M.merge ~into:bc (registry_of c);
        let right = registry_of a in
        M.merge ~into:right bc;
        canon_registry left = canon_registry right);
    qtest "empty registry is a merge identity" arb_ops (fun ops ->
        let r = registry_of ops in
        M.merge ~into:r (M.create ());
        let id = M.create () in
        M.merge ~into:id (registry_of ops);
        canon_registry r = canon_registry (registry_of ops)
        && canon_registry id = canon_registry (registry_of ops));
    qtest "registry to_json is deterministic" arb_ops (fun ops ->
        J.to_string (M.to_json (registry_of ops))
        = J.to_string (M.to_json (registry_of ops)));
  ]

(* ------------------------------------------------------------------ *)
(* Monotonic trace clock: never runs backwards, and every sink that uses
   it (the default tracer clock, the ring, the Chrome sink) yields
   non-decreasing timestamps in emission order. *)

let assert_non_decreasing name (ts : float list) =
  check bool (name ^ " non-negative") true (List.for_all (fun t -> t >= 0.0) ts);
  let rec ordered = function
    | a :: (b :: _ as rest) -> a <= b && ordered rest
    | _ -> true
  in
  check bool (name ^ " non-decreasing") true (ordered ts)

let mono_tests =
  [
    test "monotonic_now never decreases" (fun () ->
        let prev = ref (T.monotonic_now ()) in
        check bool "non-negative" true (!prev >= 0.0);
        for _ = 1 to 10_000 do
          let t = T.monotonic_now () in
          check bool "ordered" true (t >= !prev);
          prev := t
        done);
    test "ring timestamps of a traced parse are ordered" (fun () ->
        let c = compile backtracking_grammar in
        let buf = T.Ring.create 65536 in
        (match Runtime.Interp.parse ~tracer:(T.ring buf) c (lex c "- - x x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        let entries = T.Ring.to_list buf in
        check bool "events captured" true (entries <> []);
        assert_non_decreasing "ring ts"
          (List.map (fun e -> e.T.Ring.ts) entries));
    test "chrome trace timestamps are ordered" (fun () ->
        let path = Filename.temp_file "antlrkit-test-trace" ".json" in
        let oc = open_out path in
        let tracer, close = T.chrome_sink oc in
        let c = compile backtracking_grammar in
        (match Runtime.Interp.parse ~tracer c (lex c "- - x x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        close ();
        close_out oc;
        let ic = open_in path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Sys.remove path;
        match J.parse s with
        | Error e -> Alcotest.failf "trace unparsable: %s" e
        | Ok (J.List events) ->
            assert_non_decreasing "chrome ts"
              (List.filter_map
                 (fun ev ->
                   match J.member "ts" ev with
                   | Some (J.Float f) -> Some f
                   | Some (J.Int i) -> Some (float_of_int i)
                   | _ -> None)
                 events)
        | Ok _ -> Alcotest.fail "expected a JSON array");
  ]

(* ------------------------------------------------------------------ *)
(* Prometheus renderer *)

let occurrences (s : string) (sub : string) : int =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else go (i + 1) (if String.sub s i m = sub then acc + 1 else acc)
  in
  if m = 0 then 0 else go 0 0

let prom_lines (s : string) : string list =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

(* A scrape fixture with all three metric kinds, multiple series per
   family, and a label value that needs escaping. *)
let prom_registry () =
  let r = M.create () in
  M.add (M.counter r "serve.requests" ~labels:[ ("op", "parse"); ("ok", "true") ]) 3;
  M.add (M.counter r "serve.requests" ~labels:[ ("op", "parse"); ("ok", "false") ]) 1;
  M.observe (M.histogram r "serve.tokens" ~labels:[ ("grammar", "g\"x\\y") ]) 5;
  M.observe (M.histogram r "serve.tokens" ~labels:[ ("grammar", "g\"x\\y") ]) 700;
  let d = M.duration r "serve.request_us" ~labels:[ ("grammar", "tiny") ] in
  List.iter (D.observe d) [ 100; 200; 400 ];
  r

let prometheus_tests =
  [
    test "one HELP/TYPE per family, families in registration order" (fun () ->
        let out = Obs.Prometheus.render (prom_registry ()) in
        List.iter
          (fun fam ->
            check int (fam ^ " HELP once") 1
              (occurrences out (Printf.sprintf "# HELP %s " fam));
            check int (fam ^ " TYPE once") 1
              (occurrences out (Printf.sprintf "# TYPE %s " fam)))
          [
            "antlrkit_serve_requests";
            "antlrkit_serve_tokens";
            "antlrkit_serve_request_us";
          ];
        check bool "counter typed" true
          (contains out "# TYPE antlrkit_serve_requests counter");
        check bool "histogram typed" true
          (contains out "# TYPE antlrkit_serve_tokens histogram");
        check bool "duration becomes a summary" true
          (contains out "# TYPE antlrkit_serve_request_us summary"));
    test "series are unique and values parse" (fun () ->
        let out = Obs.Prometheus.render (prom_registry ()) in
        let series =
          List.filter_map
            (fun l ->
              if String.length l > 0 && l.[0] = '#' then None
              else
                match String.rindex_opt l ' ' with
                | None -> Alcotest.failf "unsplittable series line %S" l
                | Some i ->
                    let v = String.sub l (i + 1) (String.length l - i - 1) in
                    (match float_of_string_opt v with
                    | Some _ -> ()
                    | None -> Alcotest.failf "bad value in %S" l);
                    Some (String.sub l 0 i))
            (prom_lines out)
        in
        check int "no duplicate series"
          (List.length series)
          (List.length (List.sort_uniq compare series)));
    test "histogram buckets are cumulative and end at +Inf = count" (fun () ->
        let out = Obs.Prometheus.render (prom_registry ()) in
        let bucket_vals =
          List.filter_map
            (fun l ->
              if contains l "antlrkit_serve_tokens_bucket" then
                String.rindex_opt l ' '
                |> Option.map (fun i ->
                       int_of_string
                         (String.sub l (i + 1) (String.length l - i - 1)))
              else None)
            (prom_lines out)
        in
        check bool "buckets present" true (bucket_vals <> []);
        let rec cumulative = function
          | a :: (b :: _ as rest) -> a <= b && cumulative rest
          | _ -> true
        in
        check bool "cumulative" true (cumulative bucket_vals);
        check bool "+Inf bucket labelled" true (contains out "le=\"+Inf\"");
        check int "+Inf equals count" 2
          (List.nth bucket_vals (List.length bucket_vals - 1));
        check bool "count series" true
          (contains out "antlrkit_serve_tokens_count"));
    test "summary carries quantile labels and sum/count" (fun () ->
        let out = Obs.Prometheus.render (prom_registry ()) in
        List.iter
          (fun q ->
            check bool ("quantile " ^ q) true
              (contains out (Printf.sprintf "quantile=%S" q)))
          [ "0.5"; "0.9"; "0.99" ];
        check bool "sum" true (contains out "antlrkit_serve_request_us_sum");
        check bool "count" true
          (contains out "antlrkit_serve_request_us_count"));
    test "label values are escaped" (fun () ->
        let out = Obs.Prometheus.render (prom_registry ()) in
        check bool "escaped quote and backslash" true
          (contains out "g\\\"x\\\\y"));
    test "extras render first as gauges" (fun () ->
        let out =
          Obs.Prometheus.render
            ~extra:
              [
                ("antlrkit_up", "daemon liveness", 1.0);
                ("antlrkit_uptime_seconds", "daemon uptime", 12.5);
              ]
            (prom_registry ())
        in
        check bool "starts with up" true
          (String.length out > 20
          && String.sub out 0 20 = "# HELP antlrkit_up d");
        check bool "up gauge" true (contains out "# TYPE antlrkit_up gauge");
        check bool "integral value printed without exponent" true
          (contains out "antlrkit_up 1\n");
        check bool "fractional value survives" true
          (contains out "antlrkit_uptime_seconds 12.5"));
    test "render is deterministic" (fun () ->
        let r = prom_registry () in
        let a = Obs.Prometheus.render r and b = Obs.Prometheus.render r in
        check string "same bytes" a b;
        check string "fresh registry, same bytes" a
          (Obs.Prometheus.render (prom_registry ())));
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry documents *)

let telemetry_tests =
  [
    test "document carries schema, env and benches" (fun () ->
        let doc =
          Obs.Telemetry.document ~tool:"test" ~wall_s:1.0 ~user_s:0.5
            [ ("b1", J.obj [ ("x", J.int 1) ]) ]
        in
        let s = J.to_string doc in
        match J.parse s with
        | Error e -> Alcotest.failf "unparsable: %s" e
        | Ok d ->
            check bool "schema" true
              (J.member "schema" d = Some (J.str "antlrkit-telemetry/2"));
            check bool "tool" true (J.member "tool" d = Some (J.str "test"));
            check bool "env present" true (J.member "env" d <> None);
            check bool "bench present" true
              (match J.member "benches" d with
              | Some (J.Obj fields) -> List.mem_assoc "b1" fields
              | _ -> false));
  ]

let suite =
  [
    ("obs_json", json_tests);
    ("obs_metrics", metrics_tests);
    ("obs_duration", duration_tests);
    ("obs_duration_props", duration_prop_tests);
    ("obs_metrics_merge_props", metrics_merge_prop_tests);
    ("obs_ring", ring_tests);
    ("obs_trace", trace_tests);
    ("obs_mono", mono_tests);
    ("obs_chrome", chrome_tests);
    ("obs_prometheus", prometheus_tests);
    ("obs_telemetry", telemetry_tests);
  ]
