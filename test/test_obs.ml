(* Observability layer: the JSON codec, the metrics registry, the trace
   sinks, and the tracing contract of the interpreter (spans balance, the
   null sink materializes nothing, the Chrome sink emits valid JSON). *)

open Helpers
module J = Obs.Json
module M = Obs.Metrics
module T = Obs.Trace

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_tests =
  [
    test "round-trips a nested document" (fun () ->
        let doc =
          J.obj
            [
              ("a", J.int 3);
              ("b", J.list [ J.str "x\"y"; J.bool true; J.Null ]);
              ("c", J.obj [ ("nested", J.float 1.5) ]);
            ]
        in
        match J.parse (J.to_string doc) with
        | Ok (J.Obj fields) ->
            check int "fields" 3 (List.length fields);
            check bool "a" true (List.assoc "a" fields = J.Int 3)
        | Ok _ -> Alcotest.fail "expected an object"
        | Error e -> Alcotest.failf "parse failed: %s" e);
    test "escapes control characters" (fun () ->
        let s = J.to_string (J.str "a\nb\tc\"d\\e\x01f") in
        check bool "valid" true (J.is_valid s));
    test "non-finite floats stay valid JSON" (fun () ->
        check bool "nan" true (J.is_valid (J.to_string (J.float Float.nan)));
        check bool "inf" true
          (J.is_valid (J.to_string (J.float Float.infinity))));
    test "rejects trailing garbage" (fun () ->
        check bool "garbage" false (J.is_valid "{\"a\":1} x");
        check bool "bare" false (J.is_valid "nope"));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let metrics_tests =
  [
    test "counters intern by (name, labels)" (fun () ->
        let r = M.create () in
        let c1 = M.counter r "hits" ~labels:[ ("d", "1") ] in
        let c2 = M.counter r "hits" ~labels:[ ("d", "1") ] in
        let c3 = M.counter r "hits" ~labels:[ ("d", "2") ] in
        M.incr c1;
        M.add c2 4;
        M.incr c3;
        check int "same cell" 5 (M.value c1);
        check int "distinct labels" 1 (M.value c3));
    test "label order does not split a metric" (fun () ->
        let r = M.create () in
        let a = M.counter r "x" ~labels:[ ("p", "1"); ("q", "2") ] in
        let b = M.counter r "x" ~labels:[ ("q", "2"); ("p", "1") ] in
        M.incr a;
        check int "one cell" 1 (M.value b));
    test "histogram aggregates" (fun () ->
        let r = M.create () in
        let h = M.histogram r "k" in
        List.iter (M.observe h) [ 1; 2; 3; 10 ];
        check int "count" 4 (M.h_count h);
        check int "sum" 16 (M.h_sum h);
        check int "max" 10 (M.h_max h);
        check (Alcotest.float 1e-9) "avg" 4.0 (M.h_avg h));
    test "reset zeroes in place, cells stay live" (fun () ->
        let r = M.create () in
        let c = M.counter r "n" in
        let h = M.histogram r "k" in
        M.incr c;
        M.observe h 5;
        M.reset r;
        check int "counter" 0 (M.value c);
        check int "histogram" 0 (M.h_count h);
        (* the interned references survive a reset *)
        M.incr c;
        M.observe h 2;
        check int "counter live" 1 (M.value c);
        check int "histogram live" 1 (M.h_count h));
    test "snapshot is valid JSON in registration order" (fun () ->
        let r = M.create () in
        M.incr (M.counter r "first");
        M.observe (M.histogram r "second") 3;
        let s = J.to_string (M.to_json r) in
        match J.parse s with
        | Ok (J.List [ m1; m2 ]) ->
            check bool "first" true (J.member "name" m1 = Some (J.str "first"));
            check bool "second" true
              (J.member "name" m2 = Some (J.str "second"))
        | Ok _ -> Alcotest.fail "expected a two-point list"
        | Error e -> Alcotest.failf "snapshot unparsable: %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let ev_i i = T.Backtrack { decision = i; depth = 1 }

let ring_tests =
  [
    test "keeps the newest entries on overflow" (fun () ->
        let b = T.Ring.create 3 in
        for i = 1 to 5 do
          T.Ring.push b 0.0 (ev_i i)
        done;
        check int "total counts everything" 5 (T.Ring.total b);
        check int "capacity" 3 (T.Ring.capacity b);
        let ids =
          List.map
            (function T.Backtrack { decision; _ } -> decision | _ -> -1)
            (T.Ring.events b)
        in
        check bool "oldest-first window" true (ids = [ 3; 4; 5 ]));
    test "clear empties the window" (fun () ->
        let b = T.Ring.create 4 in
        T.Ring.push b 0.0 (ev_i 1);
        T.Ring.clear b;
        check int "total" 0 (T.Ring.total b);
        check bool "empty" true (T.Ring.events b = []));
  ]

(* ------------------------------------------------------------------ *)
(* Tracing a real parse *)

(* Rule t backtracks (m=1 cannot bound the '-'* vs expr overlap); while its
   synpred speculates over rule s's first alternative, prediction of t's own
   decision re-enters speculation, so synpred spans nest. *)
let backtracking_grammar =
  "grammar N; options { backtrack=true; m=1; } s : t ID | t INT ; t : ('-')* \
   ID | expr ; expr : INT | '-' expr ;"

let traced_events input =
  let c = compile backtracking_grammar in
  let buf = T.Ring.create 65536 in
  let tracer = T.ring buf in
  (match Runtime.Interp.parse ~tracer c (lex c input) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "parse failed");
  T.Ring.events buf

let count p evs = List.length (List.filter p evs)

let synpred_max_depth evs =
  let d = ref 0 and dmax = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | T.Synpred_enter _ ->
          incr d;
          if !d > !dmax then dmax := !d
      | T.Synpred_exit _ -> decr d
      | _ -> ())
    evs;
  !dmax

let trace_tests =
  [
    test "spans balance across nested synpreds" (fun () ->
        let evs = traced_events "- - x x" in
        check bool "events captured" true (evs <> []);
        check bool "balanced" true (T.spans_balanced evs);
        check bool "synpreds nest" true (synpred_max_depth evs >= 2);
        check int "enter/exit pair up"
          (count (function T.Decision_enter _ -> true | _ -> false) evs)
          (count (function T.Decision_exit _ -> true | _ -> false) evs));
    test "speculation leaves backtrack and memo events" (fun () ->
        let evs = traced_events "- - x 3" in
        check bool "backtrack observed" true
          (count (function T.Backtrack _ -> true | _ -> false) evs > 0);
        check bool "memo misses while speculating" true
          (count (function T.Memo_miss _ -> true | _ -> false) evs > 0));
    test "synpred exits report reach and verdict" (fun () ->
        let evs = traced_events "- - x x" in
        let exits =
          List.filter_map
            (function T.Synpred_exit { ok; reach; _ } -> Some (ok, reach) | _ -> None)
            evs
        in
        check bool "some synpred ran" true (exits <> []);
        check bool "every reach non-negative" true
          (List.for_all (fun (_, reach) -> reach >= 0) exits);
        check bool "a synpred succeeded" true
          (List.exists (fun (ok, _) -> ok) exits));
    test "null sink materializes nothing" (fun () ->
        let c = compile backtracking_grammar in
        let toks = lex c "- - x x" in
        let materialized = ref 0 in
        let off = T.make (fun _ _ -> incr materialized) in
        T.set_on off false;
        (match Runtime.Interp.parse ~tracer:off c toks with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        check int "no events reach a disabled sink" 0 !materialized;
        (* and the shared null tracer is off by construction *)
        check bool "Trace.null is off" false (T.on T.null));
    test "unbalanced sequences are rejected" (fun () ->
        let enter = T.Decision_enter { decision = 0; rule = "s"; pos = 0 } in
        let exit_ = T.Decision_exit { decision = 0; alt = 1; k = 1; pos = 1 } in
        let sp = T.Synpred_enter { rule = "t"; pos = 0 } in
        check bool "dangling enter" false (T.spans_balanced [ enter ]);
        check bool "interleaved" false
          (T.spans_balanced [ enter; sp; exit_ ]);
        check bool "balanced pair" true (T.spans_balanced [ enter; exit_ ]));
    test "lexer mode spans balance" (fun () ->
        let c = compile "grammar L; s : ID ;" in
        let buf = T.Ring.create 1024 in
        let tracer = T.ring buf in
        (match
           Runtime.Lexer_engine.tokenize ~tracer
             Runtime.Lexer_engine.default_config
             (Llstar.Compiled.sym c)
             "/* one */ x /* two */ y"
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "tokenize failed");
        let evs = T.Ring.events buf in
        check bool "modes traced" true
          (count (function T.Lexer_mode_enter _ -> true | _ -> false) evs >= 2);
        check bool "balanced" true (T.spans_balanced evs));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome sink *)

let chrome_tests =
  [
    test "emits a valid Perfetto-loadable array" (fun () ->
        let path = Filename.temp_file "antlrkit-test-trace" ".json" in
        let oc = open_out path in
        let tracer, close = T.chrome_sink oc in
        let c = compile backtracking_grammar in
        (match Runtime.Interp.parse ~tracer c (lex c "- - x x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        close ();
        close_out oc;
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        Sys.remove path;
        match J.parse s with
        | Error e -> Alcotest.failf "trace unparsable: %s" e
        | Ok (J.List events) ->
            check bool "non-empty" true (events <> []);
            List.iter
              (fun ev ->
                let has k = J.member k ev <> None in
                check bool "name" true (has "name");
                check bool "ph" true (has "ph");
                check bool "ts" true (has "ts");
                check bool "pid" true (has "pid");
                check bool "args" true (has "args");
                (* instant events carry a scope *)
                match J.member "ph" ev with
                | Some (J.String "i") -> check bool "scope" true (has "s")
                | _ -> ())
              events
        | Ok _ -> Alcotest.fail "expected a JSON array");
    test "close is idempotent and ends the array" (fun () ->
        let path = Filename.temp_file "antlrkit-test-trace" ".json" in
        let oc = open_out path in
        let tracer, close = T.chrome_sink oc in
        T.emit tracer (ev_i 1);
        close ();
        close ();
        (* events after close are dropped, not appended past the ']' *)
        T.emit tracer (ev_i 2);
        close_out oc;
        let ic = open_in path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Sys.remove path;
        match J.parse s with
        | Ok (J.List [ _ ]) -> ()
        | Ok _ -> Alcotest.fail "expected exactly one event"
        | Error e -> Alcotest.failf "unparsable after close: %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry documents *)

let telemetry_tests =
  [
    test "document carries schema, env and benches" (fun () ->
        let doc =
          Obs.Telemetry.document ~tool:"test" ~wall_s:1.0 ~user_s:0.5
            [ ("b1", J.obj [ ("x", J.int 1) ]) ]
        in
        let s = J.to_string doc in
        match J.parse s with
        | Error e -> Alcotest.failf "unparsable: %s" e
        | Ok d ->
            check bool "schema" true
              (J.member "schema" d = Some (J.str "antlrkit-telemetry/1"));
            check bool "tool" true (J.member "tool" d = Some (J.str "test"));
            check bool "env present" true (J.member "env" d <> None);
            check bool "bench present" true
              (match J.member "benches" d with
              | Some (J.Obj fields) -> List.mem_assoc "b1" fields
              | _ -> false));
  ]

let suite =
  [
    ("obs_json", json_tests);
    ("obs_metrics", metrics_tests);
    ("obs_ring", ring_tests);
    ("obs_trace", trace_tests);
    ("obs_chrome", chrome_tests);
    ("obs_telemetry", telemetry_tests);
  ]
