(* Tests for the analysis report aggregates (Table 1/2 plumbing) and the
   runtime profile counters (Table 3/4 plumbing). *)

open Helpers

let report_tests =
  [
    test "classification counts add up" (fun () ->
        let c =
          compile
            "grammar R; a : X | Y ; b : X Y | X Z ; c : d A+ P | e A+ Q ; d : \
             ; e : ; f : (u P)=> u P | u Q ; u : U u | U ;"
        in
        let r = c.Llstar.Compiled.report in
        (* 5 rule decisions + the two A+ loop decisions in rule c *)
        check int "n" 7 r.Llstar.Report.n;
        check int "fixed + cyclic + backtrack = n" r.Llstar.Report.n
          (r.Llstar.Report.fixed + r.Llstar.Report.cyclic
         + r.Llstar.Report.backtrack);
        check int "one cyclic" 1 r.Llstar.Report.cyclic;
        check int "one backtracking" 1 r.Llstar.Report.backtrack;
        (* LL(1) + LL(2) decisions in the histogram *)
        check bool "histogram covers fixed" true
          (List.fold_left (fun acc (_, n) -> acc + n) 0
             r.Llstar.Report.fixed_by_k
          = r.Llstar.Report.fixed));
    test "synpred pseudo-rule decisions are not counted" (fun () ->
        let c =
          compile
            "grammar R; options { backtrack=true; } s : a (X | Q) | a Y ; a : \
             (A | B) C ;"
        in
        let r = c.Llstar.Compiled.report in
        let counted =
          Array.to_list r.Llstar.Report.decisions
          |> List.filter (fun (d : Llstar.Report.decision_report) -> d.counted)
        in
        check int "counted decisions" r.Llstar.Report.n (List.length counted);
        check bool "uncounted synpred decisions exist" true
          (Array.length r.Llstar.Report.decisions > r.Llstar.Report.n));
    test "grammar line counting" (fun () ->
        check int "three lines" 3 (Llstar.Report.count_lines "a\nb\nc"));
  ]

let profile_tests =
  [
    test "decision events and lookahead accounting" (fun () ->
        let c = compile "grammar P; s : x* ; x : A B | A C ;" in
        let profile = Runtime.Profile.create () in
        (match Runtime.Interp.parse ~profile c (lex c "A B A C A B") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse");
        (* 4 loop events (3 enters + exit) + 3 rule-x events *)
        check int "events" 7 (Runtime.Profile.events profile);
        check int "covered" 2 (Runtime.Profile.decisions_covered profile);
        check int "max k" 2 (Runtime.Profile.max_k profile);
        check bool "avg k between 1 and 2" true
          (Runtime.Profile.avg_k profile > 1.0
          && Runtime.Profile.avg_k profile < 2.0);
        check int "no backtracking" 0 (Runtime.Profile.back_events profile));
    test "backtracking events tracked per decision" (fun () ->
        let c =
          compile
            "grammar P; options { backtrack=true; m=1; } t : ('-')* ID | expr \
             ; expr : INT | '-' expr ;"
        in
        let profile = Runtime.Profile.create () in
        (match Runtime.Interp.parse ~profile c (lex c "- - - x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse");
        check bool "backtracked" true ((Runtime.Profile.back_events profile) > 0);
        check int "one decision backtracked" 1
          (Runtime.Profile.decisions_that_backtracked profile);
        check bool "back rate at PBDs positive" true
          (Runtime.Profile.backtrack_rate_at_pbds profile > 0.0);
        check bool "speculation reach recorded" true
          (Runtime.Profile.back_k profile >= 2.0));
    test "reset clears counters" (fun () ->
        let p = Runtime.Profile.create () in
        Runtime.Profile.record p ~decision:3 ~depth:2 ~backtracked:true
          ~spec_depth:5;
        Runtime.Profile.reset p;
        check int "events" 0 (Runtime.Profile.events p);
        check int "covered" 0 (Runtime.Profile.decisions_covered p));
  ]

let suite = [ ("report", report_tests); ("profile", profile_tests) ]
