(* Execution-layer tests: the worker pool itself, parallel compilation
   determinism (the payload digest of a pooled compile must be
   byte-identical to the sequential one), the batched parse driver, the
   metrics merge that joins per-worker registries, and the wide-vocabulary
   regression for the lookahead-DFA edge bisection.

   On an OCaml 4.x build the pool is the sequential fallback; every test
   here still passes -- same API, jobs collapse to inline execution. *)

open Helpers

(* --- Exec.Pool --------------------------------------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "map_array preserves order" `Quick (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun p ->
            let arr = Array.init 100 (fun i -> i) in
            let out = Exec.Pool.map_array p (fun i -> i * i) arr in
            Array.iteri (fun i v -> check int "square" (i * i) v) out));
    Alcotest.test_case "map_list preserves order" `Quick (fun () ->
        Exec.Pool.with_pool ~jobs:3 (fun p ->
            let out =
              Exec.Pool.map_list p string_of_int [ 3; 1; 4; 1; 5; 9; 2; 6 ]
            in
            check (Alcotest.list string) "strings"
              [ "3"; "1"; "4"; "1"; "5"; "9"; "2"; "6" ]
              out));
    Alcotest.test_case "jobs=1 runs inline" `Quick (fun () ->
        Exec.Pool.with_pool ~jobs:1 (fun p ->
            check int "jobs" 1 (Exec.Pool.jobs p);
            let t = Exec.Pool.submit p (fun () -> 42) in
            check int "result" 42 (Exec.Pool.await t)));
    Alcotest.test_case "exceptions re-raised at await" `Quick (fun () ->
        Exec.Pool.with_pool ~jobs:2 (fun p ->
            let t = Exec.Pool.submit p (fun () -> failwith "boom") in
            match Exec.Pool.await t with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> check string "message" "boom" m));
    Alcotest.test_case "an exception poisons only its task" `Quick (fun () ->
        Exec.Pool.with_pool ~jobs:2 (fun p ->
            let bad = Exec.Pool.submit p (fun () -> failwith "bad") in
            let good = Exec.Pool.submit p (fun () -> "good") in
            (try ignore (Exec.Pool.await bad) with Failure _ -> ());
            check string "good task unaffected" "good" (Exec.Pool.await good)));
    Alcotest.test_case "many tasks complete" `Quick (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun p ->
            let tasks =
              List.init 500 (fun i -> Exec.Pool.submit p (fun () -> i))
            in
            let sum =
              List.fold_left (fun a t -> a + Exec.Pool.await t) 0 tasks
            in
            check int "sum 0..499" (499 * 500 / 2) sum));
    Alcotest.test_case "shard_ranges covers exactly" `Quick (fun () ->
        List.iter
          (fun (shards, n) ->
            let ranges = Exec.Pool.shard_ranges ~shards n in
            (* contiguous, disjoint, covering [0, n) in order *)
            let covered =
              List.fold_left
                (fun pos (lo, hi) ->
                  check int "contiguous" pos lo;
                  Alcotest.(check bool) "non-empty" true (hi > lo);
                  hi)
                0 ranges
            in
            check int "covers n" n covered;
            Alcotest.(check bool)
              "at most [shards] ranges" true
              (List.length ranges <= shards))
          [ (1, 10); (4, 10); (3, 3); (8, 5); (2, 100); (7, 100) ]);
    Alcotest.test_case "shard_ranges n=0" `Quick (fun () ->
        check int "no ranges" 0 (List.length (Exec.Pool.shard_ranges ~shards:4 0)));
    Alcotest.test_case "resolve_jobs" `Quick (fun () ->
        check int "explicit" 3 (Exec.Pool.resolve_jobs 3);
        Alcotest.(check bool)
          "0 means all cores" true
          (Exec.Pool.resolve_jobs 0 >= 1);
        (* negatives are rejected with a clear message, never passed on
           to [create] *)
        List.iter
          (fun n ->
            match Exec.Pool.resolve_jobs n with
            | _ -> Alcotest.failf "resolve_jobs %d should raise" n
            | exception Invalid_argument m ->
                let contains s sub =
                  let ls = String.length s and lu = String.length sub in
                  let rec go i =
                    i + lu <= ls && (String.sub s i lu = sub || go (i + 1))
                  in
                  go 0
                in
                Alcotest.(check bool)
                  "message names the bad count" true
                  (contains m (string_of_int n)))
          [ -1; -8 ]);
    Alcotest.test_case "chunk_ranges covers exactly, several per worker"
      `Quick (fun () ->
        List.iter
          (fun (jobs, n) ->
            let ranges = Exec.Pool.chunk_ranges ~jobs n in
            let covered =
              List.fold_left
                (fun pos (lo, hi) ->
                  check int "contiguous" pos lo;
                  Alcotest.(check bool) "non-empty" true (hi > lo);
                  hi)
                0 ranges
            in
            check int "covers n" n covered;
            let chunks = List.length ranges in
            Alcotest.(check bool)
              "at most jobs*granularity chunks" true
              (chunks <= jobs * Exec.Pool.default_chunks_per_worker);
            (* enough chunks that no worker can idle behind one shard *)
            if n >= jobs * Exec.Pool.default_chunks_per_worker then
              check int "granularity chunks" (jobs * Exec.Pool.default_chunks_per_worker)
                chunks)
          [ (1, 10); (2, 100); (4, 7); (4, 1000); (3, 3) ]);
    Alcotest.test_case "chunk_ranges edge cases" `Quick (fun () ->
        check int "n=0" 0 (List.length (Exec.Pool.chunk_ranges ~jobs:4 0));
        (* boundaries depend only on (jobs, granularity, n) *)
        Alcotest.(check bool)
          "deterministic" true
          (Exec.Pool.chunk_ranges ~jobs:3 50 = Exec.Pool.chunk_ranges ~jobs:3 50);
        (match Exec.Pool.chunk_ranges ~jobs:0 5 with
        | _ -> Alcotest.fail "jobs=0 should raise"
        | exception Invalid_argument _ -> ());
        match Exec.Pool.chunk_ranges ~granularity:0 ~jobs:2 5 with
        | _ -> Alcotest.fail "granularity=0 should raise"
        | exception Invalid_argument _ -> ());
    (* Wakeup stress (serve-daemon hardening): thousands of near-empty
       tasks keep the workers bouncing between the condition wait and the
       queue, the shape most likely to expose a lost wakeup -- a missed
       signal here shows up as a hang (the suite's timeout), not as a
       wrong sum. *)
    Alcotest.test_case "submit storm: many tiny tasks, jobs=4" `Quick
      (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun p ->
            let n = 5_000 in
            let tasks = List.init n (fun i -> Exec.Pool.submit p (fun () -> i)) in
            let sum = List.fold_left (fun a t -> a + Exec.Pool.await t) 0 tasks in
            check int "all tasks ran exactly once" (n * (n - 1) / 2) sum));
    (* The serve layer submits from one sys-thread per connection; the
       queue lock and per-task cells must hold up under concurrent
       submitters, and every submitter must see its own results. *)
    Alcotest.test_case "concurrent submitters from sys-threads" `Quick
      (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun p ->
            let n_threads = 8 and per_thread = 400 in
            let sums = Array.make n_threads 0 in
            let submitter ti =
              let tasks =
                List.init per_thread (fun i ->
                    Exec.Pool.submit p (fun () -> (ti * per_thread) + i))
              in
              sums.(ti) <-
                List.fold_left (fun a t -> a + Exec.Pool.await t) 0 tasks
            in
            let threads =
              List.init n_threads (fun ti -> Thread.create submitter ti)
            in
            List.iter Thread.join threads;
            Array.iteri
              (fun ti got ->
                let lo = ti * per_thread in
                let want = (per_thread * lo) + (per_thread * (per_thread - 1) / 2) in
                check int (Printf.sprintf "thread %d sum" ti) want got)
              sums));
    (* Tasks submitted before shutdown must all be drained, never lost. *)
    Alcotest.test_case "shutdown drains queued work" `Quick (fun () ->
        let p = Exec.Pool.create ~jobs:4 in
        let n = 500 in
        let tasks = List.init n (fun i -> Exec.Pool.submit p (fun () -> i * 2)) in
        Exec.Pool.shutdown p;
        let sum = List.fold_left (fun a t -> a + Exec.Pool.await t) 0 tasks in
        check int "every pre-shutdown task completed" (n * (n - 1)) sum);
  ]

(* --- parallel compilation determinism ---------------------------------- *)

let digest_of ?pool src =
  Llstar.Compiled_cache.payload_digest
    (Llstar.Compiled.of_source_exn ?pool src)

let bench_specs : Bench_grammars.Workload.spec list =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let determinism_tests =
  [
    Alcotest.test_case "bench grammars: pooled compile digest = sequential"
      `Slow (fun () ->
        List.iter
          (fun (spec : Bench_grammars.Workload.spec) ->
            let seq = digest_of spec.Bench_grammars.Workload.grammar_text in
            List.iter
              (fun jobs ->
                Exec.Pool.with_pool ~jobs (fun pool ->
                    check string
                      (Printf.sprintf "%s jobs=%d"
                         spec.Bench_grammars.Workload.name jobs)
                      seq
                      (digest_of ~pool
                         spec.Bench_grammars.Workload.grammar_text)))
              [ 2; 4 ])
          bench_specs);
    (let rand_opts =
       {
         Llstar.Analysis.default_options with
         Llstar.Analysis.max_states = 200;
       }
     in
     let digest ?pool g =
       match Llstar.Compiled.compile ~analysis_opts:rand_opts ?pool g with
       | Ok c -> Some (Llstar.Compiled_cache.payload_digest c)
       | Error _ -> None
     in
     qtest ~count:60 "random grammars: pooled compile digest = sequential"
       Test_props.arb_grammar (fun g ->
         let seq = digest g in
         List.for_all
           (fun jobs ->
             Exec.Pool.with_pool ~jobs (fun pool -> digest ~pool g = seq))
           [ 2; 4 ]));
  ]

(* --- batched parsing --------------------------------------------------- *)

let expr_src =
  {|
grammar Expr;
prog : e EOF ;
e : e '*' e | e '+' e | '(' e ')' | INT | ID ;
|}

let batch_inputs =
  [
    ("ok1", "1 + 2 * 3");
    ("ok2", "( x + 1 ) * y");
    ("bad", "1 + *");
    ("ok3", "7");
  ]

let run_batch ~jobs () =
  let c = compile expr_src in
  let profile = Runtime.Profile.create () in
  let inputs =
    List.map
      (fun (name, text) -> { Runtime.Batch.name; text })
      batch_inputs
  in
  let results =
    Exec.Pool.with_pool ~jobs (fun pool ->
        Runtime.Batch.run ~pool ~profile c inputs)
  in
  (results, profile)

let batch_tests =
  [
    Alcotest.test_case "outcomes in input order, any job count" `Quick
      (fun () ->
        let seq, seq_p = run_batch ~jobs:1 () in
        List.iter
          (fun jobs ->
            let par, par_p = run_batch ~jobs () in
            check int "same count" (Array.length seq) (Array.length par);
            Array.iteri
              (fun i (r : Runtime.Batch.result_) ->
                check string "name order" seq.(i).Runtime.Batch.input.name
                  r.Runtime.Batch.input.name;
                Alcotest.(check bool)
                  "same verdict" true
                  (Runtime.Batch.outcome_ok seq.(i).Runtime.Batch.outcome
                  = Runtime.Batch.outcome_ok r.Runtime.Batch.outcome))
              par;
            (* merged profile equals the sequential one on the headline
               counters *)
            check int "events" (Runtime.Profile.events seq_p)
              (Runtime.Profile.events par_p);
            check int "decisions covered"
              (Runtime.Profile.decisions_covered seq_p)
              (Runtime.Profile.decisions_covered par_p))
          [ 2; 3; 8 ]);
    Alcotest.test_case "verdicts" `Quick (fun () ->
        let rs, _ = run_batch ~jobs:2 () in
        let ok r = Runtime.Batch.outcome_ok r.Runtime.Batch.outcome in
        Alcotest.(check bool) "ok1" true (ok rs.(0));
        Alcotest.(check bool) "ok2" true (ok rs.(1));
        Alcotest.(check bool) "bad rejected" false (ok rs.(2));
        Alcotest.(check bool) "ok3" true (ok rs.(3));
        Alcotest.(check bool)
          "total tokens positive" true
          (Runtime.Batch.total_tokens rs > 0));
    (* The historic --lazy x --jobs incompatibility, now fixed: a lazy
       compilation batches at any job count with the same verdicts as the
       sequential run (the engines synchronize internally). *)
    Alcotest.test_case "lazy batch matches sequential at any job count"
      `Quick (fun () ->
        let run_lazy ~jobs =
          let c =
            Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy
              expr_src
          in
          let inputs =
            List.map
              (fun (name, text) -> { Runtime.Batch.name; text })
              batch_inputs
          in
          Exec.Pool.with_pool ~jobs (fun pool ->
              Runtime.Batch.run ~pool c inputs)
        in
        let seq = run_lazy ~jobs:1 in
        List.iter
          (fun jobs ->
            let par = run_lazy ~jobs in
            Array.iteri
              (fun i (r : Runtime.Batch.result_) ->
                Alcotest.(check bool)
                  (Printf.sprintf "input %d verdict, jobs=%d" i jobs)
                  (Runtime.Batch.outcome_ok seq.(i).Runtime.Batch.outcome)
                  (Runtime.Batch.outcome_ok r.Runtime.Batch.outcome))
              par)
          [ 2; 4 ]);
    (* Regression: the old rejection fired even when nothing could run in
       parallel -- a single input (or none) under a jobs>1 pool. *)
    Alcotest.test_case "lazy batch with n <= 1 under a jobs>1 pool" `Quick
      (fun () ->
        let c =
          Llstar.Compiled.of_source_exn ~strategy:Llstar.Compiled.Lazy
            expr_src
        in
        Exec.Pool.with_pool ~jobs:2 (fun pool ->
            let rs =
              Runtime.Batch.run ~pool c
                [ { Runtime.Batch.name = "x"; text = "1" } ]
            in
            check int "one result" 1 (Array.length rs);
            Alcotest.(check bool)
              "parsed" true
              (Runtime.Batch.outcome_ok rs.(0).Runtime.Batch.outcome);
            check int "empty batch" 0
              (Array.length (Runtime.Batch.run ~pool c []))));
    (* Failure contract: fail-fast with a full drain.  Two inputs raise
       (via a semantic predicate); the exception surfaced must be the one
       at the smallest input index, and every non-raising input's work
       must still land in the merged profile -- nothing is dropped. *)
    Alcotest.test_case "fail-fast surfaces smallest index after a drain"
      `Quick (fun () ->
        (* ambiguous alternatives force the predicate to be evaluated on
           every prediction; it raises on inputs spelled "boom..." *)
        let c =
          Llstar.Compiled.of_source_exn
            "grammar B; s : {chk()}? ID | {pass()}? ID ;"
        in
        let env =
          Runtime.Interp.env_of_tables
            ~preds:
              [
                ( "chk()",
                  fun tok ->
                    if String.length tok.Runtime.Token.text >= 4
                       && String.sub tok.Runtime.Token.text 0 4 = "boom"
                    then failwith tok.Runtime.Token.text
                    else true );
                ("pass()", fun _ -> true);
              ]
            ()
        in
        let input name = { Runtime.Batch.name; text = name } in
        let ok_names = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
        let inputs =
          [ input "a"; input "b"; input "boomearly"; input "c"; input "d";
            input "boomlate"; input "e"; input "f" ]
        in
        (* ground truth: profile volume of the ok inputs, sequentially *)
        let ok_profile = Runtime.Profile.create () in
        ignore
          (Runtime.Batch.run ~env ~profile:ok_profile c
             (List.map input ok_names));
        List.iter
          (fun jobs ->
            Exec.Pool.with_pool ~jobs (fun pool ->
                let profile = Runtime.Profile.create () in
                match Runtime.Batch.run ~pool ~env ~profile c inputs with
                | _ -> Alcotest.fail "expected Failure"
                | exception Failure m ->
                    (* smallest raising index wins, as sequentially *)
                    check string
                      (Printf.sprintf "first failure, jobs=%d" jobs)
                      "boomearly" m;
                    (* drained: with one input per chunk at these sizes,
                       every ok input completed and was merged *)
                    if jobs > 1 then
                      check int
                        (Printf.sprintf "ok work merged, jobs=%d" jobs)
                        (Runtime.Profile.events ok_profile)
                        (Runtime.Profile.events profile)))
          [ 1; 2; 4 ]);
    Alcotest.test_case "manifest expansion" `Quick (fun () ->
        let dir = Filename.temp_file "antlrkit" "manifest" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let a = Filename.concat dir "a.txt" in
        let b = Filename.concat dir "b.txt" in
        let manifest = Filename.concat dir "m.txt" in
        let write p s =
          let oc = open_out p in
          output_string oc s;
          close_out oc
        in
        write a "1 + 1";
        write b "2 * 2";
        write manifest (Printf.sprintf "# two inputs\n%s\n\n%s\n" a b);
        (match Runtime.Batch.load_inputs [ "@" ^ manifest ] with
        | Error e -> Alcotest.failf "load_inputs: %s" e
        | Ok inputs ->
            check
              (Alcotest.list string)
              "manifest order"
              [ a; b ]
              (List.map (fun i -> i.Runtime.Batch.name) inputs));
        (match Runtime.Batch.load_inputs [ "@" ^ dir ^ "/missing" ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "missing manifest should error");
        List.iter Sys.remove [ a; b; manifest ];
        Unix.rmdir dir);
  ]

(* --- fuzz sharding determinism ----------------------------------------- *)

let fuzz_tests =
  [
    Alcotest.test_case "sharded fuzz report = sequential" `Slow (fun () ->
        let spec = Bench_grammars.Mini_java.spec in
        let run ?pool () =
          match Fuzz.Driver.run_spec ?pool ~seed:7 ~runs:30 spec with
          | Ok r -> r
          | Error e ->
              Alcotest.failf "fuzz failed: %a" Llstar.Compiled.pp_error e
        in
        let seq = run () in
        List.iter
          (fun jobs ->
            Exec.Pool.with_pool ~jobs (fun pool ->
                let par = run ~pool () in
                check int "accepted" seq.Fuzz.Driver.r_accepted
                  par.Fuzz.Driver.r_accepted;
                check int "rejected" seq.Fuzz.Driver.r_rejected
                  par.Fuzz.Driver.r_rejected;
                check int "mutated" seq.Fuzz.Driver.r_mutated
                  par.Fuzz.Driver.r_mutated;
                check int "failures"
                  (List.length seq.Fuzz.Driver.r_failures)
                  (List.length par.Fuzz.Driver.r_failures)))
          [ 2; 4 ]);
    (* Same session under the lazy strategy: every chunk predicts against
       the one shared set of engines (a concurrency stress of the sprout
       path), and the report must still match the sequential lazy run. *)
    Alcotest.test_case "sharded lazy fuzz report = sequential" `Slow
      (fun () ->
        let spec = Bench_grammars.Mini_java.spec in
        let run ?pool () =
          match
            Fuzz.Driver.run_spec ?pool ~strategy:Llstar.Compiled.Lazy ~seed:7
              ~runs:30 spec
          with
          | Ok r -> r
          | Error e ->
              Alcotest.failf "fuzz failed: %a" Llstar.Compiled.pp_error e
        in
        let seq = run () in
        List.iter
          (fun jobs ->
            Exec.Pool.with_pool ~jobs (fun pool ->
                let par = run ~pool () in
                check int "accepted" seq.Fuzz.Driver.r_accepted
                  par.Fuzz.Driver.r_accepted;
                check int "rejected" seq.Fuzz.Driver.r_rejected
                  par.Fuzz.Driver.r_rejected;
                check int "failures"
                  (List.length seq.Fuzz.Driver.r_failures)
                  (List.length par.Fuzz.Driver.r_failures)))
          [ 2; 4 ]);
  ]

(* --- metrics merge ----------------------------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "counters and histograms add" `Quick (fun () ->
        let module M = Obs.Metrics in
        let a = M.create () and b = M.create () in
        M.add (M.counter a "hits") 3;
        M.add (M.counter b "hits") 4;
        M.add (M.counter b "only_b") 7;
        let ha = M.histogram a "depth" and hb = M.histogram b "depth" in
        M.observe ha 1;
        M.observe ha 5;
        M.observe hb 9;
        M.merge ~into:a b;
        check int "hits" 7 (M.value (M.counter a "hits"));
        check int "only_b registered" 7 (M.value (M.counter a "only_b"));
        check int "h count" 3 (M.h_count ha);
        check int "h sum" 15 (M.h_sum ha);
        check int "h max" 9 (M.h_max ha));
    Alcotest.test_case "labeled cells merge independently" `Quick (fun () ->
        let module M = Obs.Metrics in
        let a = M.create () and b = M.create () in
        let l d = [ ("decision", string_of_int d) ] in
        M.add (M.counter a ~labels:(l 0) "events") 1;
        M.add (M.counter b ~labels:(l 0) "events") 2;
        M.add (M.counter b ~labels:(l 1) "events") 5;
        M.merge ~into:a b;
        check int "d0" 3 (M.value (M.counter a ~labels:(l 0) "events"));
        check int "d1" 5 (M.value (M.counter a ~labels:(l 1) "events")));
    Alcotest.test_case "profile merge repopulates per-decision view" `Quick
      (fun () ->
        let a = Runtime.Profile.create () in
        let b = Runtime.Profile.create () in
        Runtime.Profile.record a ~decision:0 ~depth:1 ~backtracked:false
          ~spec_depth:0;
        Runtime.Profile.record b ~decision:1 ~depth:3 ~backtracked:true
          ~spec_depth:5;
        Runtime.Profile.merge ~into:a b;
        check int "events" 2 (Runtime.Profile.events a);
        check int "decisions" 2 (Runtime.Profile.decisions_covered a);
        check int "max k" 5 (Runtime.Profile.max_k a));
  ]

(* --- Sym freeze + wide-vocabulary DFA lookup --------------------------- *)

(* A grammar whose first decision has one alternative per keyword: the
   decision state's edge row has hundreds of outgoing terminals, driving
   [lookup_edge] down the bisection path (rows longer than the linear
   cutoff).  Also a natural home for the freeze check: the vocabulary is
   frozen after compilation, so looking up known terminals works and
   interning new ones must raise. *)
let wide_n = 300

let wide_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "grammar Wide;\ns : ";
  for i = 0 to wide_n - 1 do
    if i > 0 then Buffer.add_string b " | ";
    Buffer.add_string b (Printf.sprintf "'kw%03d' 'end'" i)
  done;
  Buffer.add_string b " ;\n";
  Buffer.contents b

let wide_tests =
  [
    Alcotest.test_case "bisected edge lookup over a wide row" `Quick
      (fun () ->
        let c = compile wide_src in
        let sym = Llstar.Compiled.sym c in
        let dfa = Llstar.Compiled.dfa c 0 in
        (* the start state really is wide -- the bisection path is on *)
        Alcotest.(check bool)
          "row wider than the linear cutoff" true
          (Array.length dfa.Llstar.Look_dfa.edges.(dfa.Llstar.Look_dfa.start)
          > 8);
        (* every keyword predicts its own alternative *)
        for i = 0 to wide_n - 1 do
          let name = Printf.sprintf "'kw%03d'" i in
          let id = Option.get (Grammar.Sym.find_term sym name) in
          match
            Llstar.Look_dfa.lookup_edge dfa dfa.Llstar.Look_dfa.start id
          with
          | None -> Alcotest.failf "no edge for %s" name
          | Some tgt -> (
              match Llstar.Look_dfa.accept_of dfa tgt with
              | Some alt -> check int name (i + 1) alt
              | None -> Alcotest.failf "%s: target not accepting" name)
        done;
        (* unknown terminals miss: EOF and an id beyond the vocabulary *)
        Alcotest.(check bool)
          "eof misses" true
          (Llstar.Look_dfa.lookup_edge dfa dfa.Llstar.Look_dfa.start
             Grammar.Sym.eof
          = None);
        Alcotest.(check bool)
          "unknown terminal misses" true
          (Llstar.Look_dfa.lookup_edge dfa dfa.Llstar.Look_dfa.start 999_999
          = None);
        (* end-to-end: a mid-row and a last keyword both parse; a keyword
           in the wrong position (still lexable) is rejected *)
        Alcotest.(check bool) "parses kw157" true (parses c "kw157 end");
        Alcotest.(check bool) "parses kw299" true (parses c "kw299 end");
        Alcotest.(check bool) "rejects bad" false (parses c "end kw000"));
    Alcotest.test_case "wildcard fallback still works" `Quick (fun () ->
        let c = compile "grammar W;\ns : 'a' . 'b' | 'a' 'x' 'c' ;" in
        Alcotest.(check bool) "wildcard matches" true (parses c "a c b");
        Alcotest.(check bool) "explicit beats wildcard" true
          (parses c "a x c");
        Alcotest.(check bool) "wild then b" true (parses c "a x b"));
    Alcotest.test_case "vocabulary freezes after compile" `Quick (fun () ->
        let c = compile expr_src in
        let sym = Llstar.Compiled.sym c in
        Alcotest.(check bool) "frozen" true (Grammar.Sym.is_frozen sym);
        (* existing lookups fine *)
        Alcotest.(check bool)
          "find known" true
          (Grammar.Sym.find_term sym "INT" <> None);
        (* interning a new symbol must raise, not silently mutate *)
        match Grammar.Sym.intern_term sym "NEW_TOKEN" with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

let suite =
  [
    ("exec-pool", pool_tests);
    ("exec-determinism", determinism_tests);
    ("exec-batch", batch_tests);
    ("exec-fuzz", fuzz_tests);
    ("exec-metrics", metrics_tests);
    ("exec-wide-dfa", wide_tests);
  ]
