(* Tests for the LL-star analysis: ATN construction, the modified subset
   construction, decision classification, ambiguity/overflow handling,
   predicate resolution and the fallback strategies -- anchored on the
   paper's own examples. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* ATN construction invariants *)

let atn_of src =
  Atn.Build.build
    (Grammar.Transform.prepare
       (Grammar.Leftrec.rewrite (Grammar.Meta_parser.parse src)))

let atn_tests =
  [
    test "every rule has entry and stop; every state reachable" (fun () ->
        let atn = atn_of "grammar T; s : a B | C ; a : D s? ;" in
        let seen = Array.make atn.Atn.nstates false in
        let rec visit s =
          if not seen.(s) then begin
            seen.(s) <- true;
            Array.iter
              (fun (edge, tgt) ->
                visit tgt;
                match edge with
                | Atn.Rule { rule; _ } -> visit atn.Atn.rules.(rule).Atn.r_entry
                | _ -> ())
              atn.Atn.trans.(s)
          end
        in
        visit atn.Atn.augmented_start;
        Array.iteri
          (fun i reached ->
            if not reached then Alcotest.failf "state %d unreachable" i)
          seen);
    test "decision states have one eps edge per alternative" (fun () ->
        let atn = atn_of "grammar T; s : A | B | C ;" in
        let d = atn.Atn.decisions.(0) in
        check int "3 alternatives" 3 d.Atn.d_nalts;
        check int "3 targets" 3
          (Array.length (Atn.decision_alt_targets atn d)));
    test "loops register exit as last alternative" (fun () ->
        let atn = atn_of "grammar T; s : (A | B)* C ;" in
        let d = atn.Atn.decisions.(0) in
        check bool "star loop" true (d.Atn.d_kind = Atn.Star_loop);
        check int "2 body alts + exit" 3 d.Atn.d_nalts;
        check bool "exit alt" true (d.Atn.d_exit_alt = Some 3));
    test "callers include the augmented start" (fun () ->
        let atn = atn_of "grammar T; s : A ;" in
        check bool "start rule has a caller" true
          (List.length atn.Atn.callers.(atn.Atn.start_rule) >= 1));
    test "PEG mode guards all but the last rule alternative" (fun () ->
        let g =
          Grammar.Transform.peg_mode
            (Grammar.Meta_parser.parse
               "grammar T; options { backtrack=true; } s : A | B | C ;")
        in
        let r = List.hd g.Grammar.Ast.rules in
        let starts_with_syn (a : Grammar.Ast.alt) =
          match a.Grammar.Ast.elems with
          | Grammar.Ast.Syn_pred _ :: _ -> true
          | _ -> false
        in
        check (Alcotest.list bool) "guards" [ true; true; false ]
          (List.map starts_with_syn r.Grammar.Ast.rule_alts));
    test "synpred lifting is canonical and shared" (fun () ->
        let g =
          Grammar.Transform.lift_synpreds
            (Grammar.Meta_parser.parse
               "grammar T; s : (A B)=> A B | (A B)=> A B C ;")
        in
        (* identical fragments share one pseudo-rule *)
        let pseudo =
          List.filter
            (fun (r : Grammar.Ast.rule) ->
              Grammar.Transform.is_synpred_rule r.Grammar.Ast.name)
            g.Grammar.Ast.rules
        in
        check int "one shared pseudo-rule" 1 (List.length pseudo));
  ]

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let fig1_src =
  "grammar S; s : ID | ID '=' expr | ('unsigned')* 'int' ID | ('unsigned')* \
   ID ID ; expr : ID | INT ;"

(* Walk a decision's DFA over terminal names; None = no viable path,
   Some (alt, k). *)
let dfa_predict c decision names =
  let sym = Llstar.Compiled.sym c in
  let dfa = Llstar.Compiled.dfa c decision in
  let term name =
    match Grammar.Sym.find_term sym name with
    | Some id -> id
    | None -> Alcotest.failf "unknown terminal %s" name
  in
  let arr = Array.of_list (List.map term names) in
  let rec walk state depth =
    match Llstar.Look_dfa.accept_of dfa state with
    | Some alt -> Some (alt, depth)
    | None -> (
        let la = if depth < Array.length arr then arr.(depth) else Grammar.Sym.eof in
        match Llstar.Look_dfa.lookup_edge dfa state la with
        | Some tgt -> walk tgt (depth + 1)
        | None -> None)
  in
  walk dfa.Llstar.Look_dfa.start 0

let check_predict c d names expected =
  match dfa_predict c d names with
  | Some (alt, k) ->
      check int (String.concat " " names ^ " alt") (fst expected) alt;
      check int (String.concat " " names ^ " k") (snd expected) k
  | None -> Alcotest.failf "no prediction for %s" (String.concat " " names)

let fig1_tests =
  [
    test "rule s is a cyclic decision" (fun () ->
        let c = compile fig1_src in
        check string "class" "cyclic" (klass_str c (rule_decision c "s")));
    test "minimal lookahead per input (Def. 5)" (fun () ->
        let c = compile fig1_src in
        let d = rule_decision c "s" in
        check_predict c d [ "'int'" ] (3, 1);
        check_predict c d [ "ID"; "EOF" ] (1, 2);
        check_predict c d [ "ID"; "'='" ] (2, 2);
        check_predict c d [ "ID"; "ID" ] (4, 2);
        check_predict c d [ "'unsigned'"; "'int'" ] (3, 2);
        check_predict c d
          [ "'unsigned'"; "'unsigned'"; "'unsigned'"; "'int'" ]
          (3, 4));
    test "DFA has the paper's 8 states" (fun () ->
        let c = compile fig1_src in
        let dfa = Llstar.Compiled.dfa c (rule_decision c "s") in
        check int "states" 8 dfa.Llstar.Look_dfa.nstates);
    test "parses and chooses the right productions" (fun () ->
        let c = compile fig1_src in
        check string "alt3" "(s unsigned unsigned int x)"
          (parse_tree c "unsigned unsigned int x");
        check string "alt4" "(s unsigned T x)" (parse_tree c "unsigned T x");
        check string "alt2" "(s x = (expr y))" (parse_tree c "x = y"));
    test "prediction error reported at offending token (4.4)" (fun () ->
        let c = compile fig1_src in
        let e = first_error c "unsigned unsigned = x" in
        (match e.Runtime.Parse_error.kind with
        | Runtime.Parse_error.No_viable_alt { depth; _ } ->
            check int "depth" 3 depth
        | _ -> Alcotest.fail "expected no-viable-alt");
        check string "token" "=" e.Runtime.Parse_error.token.Runtime.Token.text);
  ]

(* ------------------------------------------------------------------ *)
(* Figure 2 *)

let fig2_src =
  "grammar T; options { backtrack=true; m=1; } t : ('-')* ID | expr ; expr : \
   INT | '-' expr ;"

let fig2_tests =
  [
    test "rule t is a backtracking decision" (fun () ->
        let c = compile fig2_src in
        check string "class" "backtrack" (klass_str c (rule_decision c "t")));
    test "k=1 and k=2 inputs resolved without speculation" (fun () ->
        let c = compile fig2_src in
        let d = rule_decision c "t" in
        check_predict c d [ "ID" ] (1, 1);
        check_predict c d [ "INT" ] (2, 1);
        check_predict c d [ "'-'"; "ID" ] (1, 2);
        check_predict c d [ "'-'"; "INT" ] (2, 2));
    test "two dashes fail over to synpred edges" (fun () ->
        let c = compile fig2_src in
        let dfa = Llstar.Compiled.dfa c (rule_decision c "t") in
        (* walk '-' '-' by hand: must end in a state with predicate edges *)
        let sym = Llstar.Compiled.sym c in
        let dash = Option.get (Grammar.Sym.find_term sym "'-'") in
        let s1 =
          Option.get (Llstar.Look_dfa.lookup_edge dfa dfa.Llstar.Look_dfa.start dash)
        in
        let s2 = Option.get (Llstar.Look_dfa.lookup_edge dfa s1 dash) in
        check bool "pred edges present" true
          (Array.length (Llstar.Look_dfa.pred_edges_of dfa s2) > 0));
    test "parses both alternatives with correct trees" (fun () ->
        let c = compile fig2_src in
        check string "loop alt" "(t - - x)" (parse_tree c "- - x");
        check string "expr alt" "(t (expr - (expr - (expr 1))))"
          (parse_tree c "- - 1"));
    test "backtracks only on -- prefixes" (fun () ->
        let c = compile fig2_src in
        let profile = Runtime.Profile.create () in
        (match Runtime.Interp.parse ~profile c (lex c "- 1") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        check int "no backtracking on single dash" 0
          (Runtime.Profile.back_events profile);
        let profile2 = Runtime.Profile.create () in
        (match Runtime.Interp.parse ~profile:profile2 c (lex c "- - 1") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse failed");
        check bool "backtracks on double dash" true
          ((Runtime.Profile.back_events profile2) > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Other analysis behaviours *)

let misc_tests =
  [
    test "LL(*)-but-not-LR(k): cyclic DFA over A+" (fun () ->
        let c = compile "grammar N; a : b A+ X | c A+ Y ; b : ; c : ;" in
        let d = rule_decision c "a" in
        check string "class" "cyclic" (klass_str c d);
        check_predict c d [ "A"; "A"; "A"; "X" ] (1, 4);
        check_predict c d [ "A"; "Y" ] (2, 2));
    test "ambiguity (a|a) resolved to alternative 1 with warning" (fun () ->
        let c = compile "grammar A; s : (A | A) B ;" in
        let r = c.Llstar.Compiled.results.(0) in
        check bool "ambiguity warning" true
          (List.exists
             (function Llstar.Analysis.Ambiguity _ -> true | _ -> false)
             r.Llstar.Analysis.warnings);
        check bool "dead alternative warning" true
          (List.exists
             (function
               | Llstar.Analysis.Dead_alternative { alt = 2; _ } -> true
               | _ -> false)
             r.Llstar.Analysis.warnings);
        check string "still parses" "(s A B)" (parse_tree c "A B"));
    test "semantic predicates resolve an ambiguity (5.2)" (fun () ->
        let c = compile "grammar P; s : {hot()}? A B | {cold()}? A C? ;" in
        let hot = ref true in
        let env =
          Runtime.Interp.env_of_tables
            ~preds:
              [ ("hot()", fun _ -> !hot); ("cold()", fun _ -> not !hot) ]
            ()
        in
        check string "hot picks alt1" "(s A B)" (parse_tree ~env c "A B");
        hot := false;
        check string "cold picks alt2" "(s A)" (parse_tree ~env c "A");
        hot := true;
        (match parse ~env c "A" with
        | Ok _ -> Alcotest.fail "alt1 requires B"
        | Error _ -> ()));
    test "section 5.4: recursion in both alternatives falls back" (fun () ->
        let c = compile "grammar F; s : a 'c' | a 'd' ; a : 'a' a | 'b' ;" in
        let r = c.Llstar.Compiled.results.(rule_decision c "s") in
        check bool "non-LL-regular warning" true
          (List.exists
             (function Llstar.Analysis.Non_ll_regular _ -> true | _ -> false)
             r.Llstar.Analysis.warnings);
        check bool "fallback used" true r.Llstar.Analysis.fallback);
    test "LL(2) classification" (fun () ->
        let c = compile "grammar K; s : A B | A C ;" in
        check string "class" "LL(2)" (klass_str c 0));
    test "LL(1) classification and EOF lookahead via augmented start"
      (fun () ->
        let c = compile "grammar K; s : A s | ;" in
        (* exit alternative predicted on EOF *)
        check string "class" "LL(1)" (klass_str c 0);
        check bool "accepts" true (parses c "A A A");
        check bool "accepts empty" true (parses c ""));
    test "k cap forces resolution at the cap" (fun () ->
        let surface = Grammar.Meta_parser.parse "grammar K; s : A A A B | A A A C ;" in
        let opts =
          { Llstar.Analysis.default_options with Llstar.Analysis.k_cap = Some 2 }
        in
        let c = Llstar.Compiled.compile_exn ~analysis_opts:opts surface in
        (match klass c 0 with
        | Llstar.Analysis.Fixed k ->
            check bool "k <= 2" true (k <= 2)
        | _ -> Alcotest.fail "expected fixed");
        (* capped decision resolves by order: alt 1 *)
        check bool "first alt wins" true (parses c "A A A B");
        check bool "second alt unreachable" false (parses c "A A A C"));
    test "state budget triggers LL(1) fallback" (fun () ->
        let surface =
          Grammar.Meta_parser.parse
            "grammar K; s : a X | a Y ; a : (A|B|C) (A|B|C) (A|B|C) ;"
        in
        let opts =
          { Llstar.Analysis.default_options with Llstar.Analysis.max_states = 3 }
        in
        let c = Llstar.Compiled.compile_exn ~analysis_opts:opts surface in
        let r = c.Llstar.Compiled.results.(rule_decision c "s") in
        check bool "dfa-too-big warning" true
          (List.exists
             (function Llstar.Analysis.Dfa_too_big _ -> true | _ -> false)
             r.Llstar.Analysis.warnings));
    test "wildcard element matches any token" (fun () ->
        let c = compile "grammar W; s : A . B ; junk : C ;" in
        check bool "A C B" true (parses c "A C B");
        check bool "A B B" true (parses c "A B B");
        check bool "A B" false (parses c "A B"));
    test "fragment-end default: optional tail inside a synpred" (fun () ->
        (* the synpred fragment ends with an optional; the opt decision
           inside the pseudo-rule must still be able to exit *)
        let c =
          compile
            "grammar G; options { backtrack=true; } s : t* ; t : 'if' '(' ID \
             ')' t (('else')=> 'else' t)? | '{' t* '}' | ID ';' ;"
        in
        check bool "if without else inside speculation" true
          (parses c "{ if ( x ) { } }");
        check bool "dangling else binds to inner if" true
          (parses c "{ if ( a ) if ( b ) x ; else y ; }"));
    test "left-edge semantic predicates gate alternatives at parse time"
      (fun () ->
        let c =
          compile "grammar S; s : {isType()}? ID ID ';' | ID '=' ID ';' ;"
        in
        let env =
          Runtime.Interp.env_of_tables
            ~preds:
              [
                ( "isType()",
                  fun (t : Runtime.Token.t) -> t.Runtime.Token.text = "T" );
              ]
            ()
        in
        check bool "T x ; is a declaration" true (parses ~env c "T x ;");
        check bool "x = y ; is an assignment" true (parses ~env c "x = y ;");
        check bool "x y ; rejected (x not a type)" false (parses ~env c "x y ;"));
  ]

let suite =
  [
    ("atn", atn_tests);
    ("figure1", fig1_tests);
    ("figure2", fig2_tests);
    ("analysis-misc", misc_tests);
  ]
