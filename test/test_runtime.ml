(* Tests for the runtime: token streams, the lexer engine, trees, error
   handling and recovery, actions/predicates during speculation, the
   left-recursion rewrite end to end, and memoization. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Token stream *)

let mk_tokens n =
  Array.init n (fun i -> Runtime.Token.make ~index:i (i + 2) (string_of_int i))

let stream_tests =
  [
    test "la/lt/consume basics" (fun () ->
        let ts = Runtime.Token_stream.of_array (mk_tokens 3) in
        check int "la 1" 2 (Runtime.Token_stream.la ts 1);
        check int "la 3" 4 (Runtime.Token_stream.la ts 3);
        check int "la beyond = EOF" Grammar.Sym.eof (Runtime.Token_stream.la ts 4);
        ignore (Runtime.Token_stream.consume ts);
        check int "after consume" 3 (Runtime.Token_stream.la ts 1);
        check bool "prev" true
          ((Option.get (Runtime.Token_stream.prev ts)).Runtime.Token.index = 0));
    test "consume does not run past EOF" (fun () ->
        let ts = Runtime.Token_stream.of_array (mk_tokens 1) in
        ignore (Runtime.Token_stream.consume ts);
        ignore (Runtime.Token_stream.consume ts);
        ignore (Runtime.Token_stream.consume ts);
        check int "index stable at end" 1 (Runtime.Token_stream.index ts);
        check bool "at eof" true (Runtime.Token_stream.at_eof ts));
    test "mark/seek rewinds; high water persists" (fun () ->
        let ts = Runtime.Token_stream.of_array (mk_tokens 10) in
        let m = Runtime.Token_stream.mark ts in
        ignore (Runtime.Token_stream.consume ts);
        ignore (Runtime.Token_stream.consume ts);
        ignore (Runtime.Token_stream.la ts 5);
        Runtime.Token_stream.seek ts m;
        check int "rewound" 0 (Runtime.Token_stream.index ts);
        check bool "high water >= 6" true (Runtime.Token_stream.high_water ts >= 6));
    test "seek clamps out-of-range targets" (fun () ->
        let ts = Runtime.Token_stream.of_array (mk_tokens 3) in
        Runtime.Token_stream.seek ts 100;
        check int "clamped to size" 3 (Runtime.Token_stream.index ts);
        check bool "at eof" true (Runtime.Token_stream.at_eof ts);
        check int "la past end is EOF" Grammar.Sym.eof
          (Runtime.Token_stream.la ts 1);
        Runtime.Token_stream.seek ts (-5);
        check int "clamped to 0" 0 (Runtime.Token_stream.index ts);
        check int "la 1 after clamp" 2 (Runtime.Token_stream.la ts 1));
    test "prev after seek 0 is None" (fun () ->
        let ts = Runtime.Token_stream.of_array (mk_tokens 3) in
        ignore (Runtime.Token_stream.consume ts);
        ignore (Runtime.Token_stream.consume ts);
        check bool "prev set" true (Runtime.Token_stream.prev ts <> None);
        Runtime.Token_stream.seek ts 0;
        check bool "prev cleared" true (Runtime.Token_stream.prev ts = None);
        (* and again after a clamped negative seek *)
        ignore (Runtime.Token_stream.consume ts);
        Runtime.Token_stream.seek ts (-1);
        check bool "prev cleared by clamp" true
          (Runtime.Token_stream.prev ts = None));
  ]

(* ------------------------------------------------------------------ *)
(* Streaming windows: retention protocol, Released, leak detection *)

module Ts = Runtime.Token_stream

let streaming_tests =
  [
    test "sliding window sees the same tokens as the array" (fun () ->
        let toks = mk_tokens 50 in
        let ts = Ts.of_pull ~window:4 (pull_of_array ~chunk:4 toks) in
        check bool "streaming" true (Ts.is_streaming ts);
        for i = 0 to 49 do
          check int (Printf.sprintf "la at %d" i) (i + 2) (Ts.la ts 1);
          let tok = Ts.consume ts in
          check int "index round-trips" i tok.Runtime.Token.index
        done;
        check bool "at eof" true (Ts.at_eof ts);
        check int "size = total pulled" 50 (Ts.size ts);
        check int "la past end is EOF" Grammar.Sym.eof (Ts.la ts 1);
        (* no marks: the window never needed to out-grow a doubling *)
        check bool "peak bounded by O(window)" true (Ts.peak_live ts <= 8));
    test "seek below the frontier raises Released" (fun () ->
        let ts = Ts.of_pull ~window:2 (pull_of_array ~chunk:2 (mk_tokens 32)) in
        for _ = 1 to 20 do
          ignore (Ts.consume ts)
        done;
        (* force a slide so the frontier moves past 0 *)
        ignore (Ts.la ts 2);
        match Ts.seek ts 0 with
        | () -> Alcotest.fail "seek below frontier must not clamp"
        | exception Ts.Released { frontier; requested } ->
            check int "requested" 0 requested;
            check bool "frontier advanced" true (frontier > 0);
            (* forward seeks within the window still work *)
            Ts.seek ts frontier;
            check int "cursor at frontier" frontier (Ts.index ts));
    test "a mark pins the window; release lets it slide" (fun () ->
        let toks = mk_tokens 256 in
        let ts = Ts.of_pull ~window:2 (pull_of_array ~chunk:2 toks) in
        let m = Ts.mark ts in
        for _ = 1 to 40 do
          ignore (Ts.consume ts)
        done;
        (* the mark holds: rewinding to it is still legal *)
        Ts.seek ts m;
        check int "rewound to mark" 0 (Ts.index ts);
        check int "la after rewind" 2 (Ts.la ts 1);
        check bool "window grew to span the speculation" true
          (Ts.peak_live ts >= 40);
        Ts.release ts m;
        check bool "no live marks" true (Ts.live_marks ts = []);
        while not (Ts.at_eof ts) do
          ignore (Ts.consume ts)
        done;
        (* released: the old position is gone again *)
        match Ts.seek ts 0 with
        | () -> Alcotest.fail "released region must not be reachable"
        | exception Ts.Released _ -> ());
    test "a forgotten mark shows up in the retention check" (fun () ->
        let ts = Ts.of_pull ~window:2 (pull_of_array (mk_tokens 32)) in
        ignore (Ts.consume ts);
        let m = Ts.mark ts in
        while not (Ts.at_eof ts) do
          ignore (Ts.consume ts)
        done;
        (* the leak: [m] was never released, so the window stayed pinned *)
        check bool "leak detected" true (Ts.live_marks ts = [ m ]);
        check bool "pinned window retained the whole tail" true
          (Ts.peak_live ts >= 30));
    test "release hook reports the advancing frontier" (fun () ->
        let ts = Ts.of_pull ~window:2 (pull_of_array ~chunk:2 (mk_tokens 32)) in
        let frontiers = ref [] in
        Ts.set_release_hook ts (fun f -> frontiers := f :: !frontiers);
        while not (Ts.at_eof ts) do
          ignore (Ts.consume ts)
        done;
        let fs = List.rev !frontiers in
        check bool "hook fired" true (fs <> []);
        check bool "frontiers strictly increase" true
          (List.for_all2
             (fun a b -> a < b)
             (List.filteri (fun i _ -> i < List.length fs - 1) fs)
             (List.tl fs)));
    test "streaming parse at window 1 agrees with materialized" (fun () ->
        let c =
          compile
            "grammar T; options { backtrack=true; memoize=true; } s : e ';' ; \
             e : ID '(' e ')' | ID '(' e ']' | ID ;"
        in
        List.iter
          (fun input ->
            let toks = lex c input in
            let mat = Runtime.Generated.interp_outcome c toks in
            let ts = Ts.of_pull ~window:1 (pull_of_array ~chunk:1 toks) in
            let str = Runtime.Generated.interp_outcome_stream c ts in
            check bool
              (Printf.sprintf "%S: %s vs %s" input
                 (Runtime.Generated.describe mat)
                 (Runtime.Generated.describe str))
              true
              (Runtime.Generated.agree mat str))
          [ "x ;"; "a ( b ) ;"; "a ( b ( c ) ) ;"; "a ( b ( c ] ] ;" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Lexer engine *)

let lex_engine_tests =
  let sym_of src = Llstar.Compiled.sym (compile src) in
  [
    test "keywords beat identifiers; maximal munch on operators" (fun () ->
        let sym = sym_of "grammar T; s : 'while' ID '<=' '<' ;" in
        let toks =
          Runtime.Lexer_engine.tokenize_exn Runtime.Lexer_engine.default_config
            sym "while whilex <= <"
        in
        check
          (Alcotest.list string)
          "token names"
          [ "'while'"; "ID"; "'<='"; "'<'" ]
          (Array.to_list toks
          |> List.map (fun (t : Runtime.Token.t) ->
                 Grammar.Sym.term_name sym t.Runtime.Token.ttype)));
    test "numbers, floats, strings, chars" (fun () ->
        let sym = sym_of "grammar T; s : INT FLOAT STRING CHAR ;" in
        let config =
          {
            Runtime.Lexer_engine.default_config with
            float_token = Some "FLOAT";
            string_token = Some "STRING";
            char_token = Some "CHAR";
          }
        in
        let toks =
          Runtime.Lexer_engine.tokenize_exn config sym "42 3.14 \"hi\" 'c'"
        in
        check int "4 tokens" 4 (Array.length toks);
        check string "float text" "3.14" toks.(1).Runtime.Token.text;
        check string "string contents" "hi" toks.(2).Runtime.Token.text);
    test "comments and positions" (fun () ->
        let sym = sym_of "grammar T; s : ID ;" in
        let toks =
          Runtime.Lexer_engine.tokenize_exn Runtime.Lexer_engine.default_config
            sym "// hello\n/* multi\nline */ x"
        in
        check int "one token" 1 (Array.length toks);
        check int "line" 3 toks.(0).Runtime.Token.line);
    test "newline tokens collapse runs" (fun () ->
        let sym = sym_of "grammar T; s : ID NL ID NL ;" in
        let config =
          { Runtime.Lexer_engine.default_config with newline_token = Some "NL" }
        in
        let toks = Runtime.Lexer_engine.tokenize_exn config sym "a\n\n\nb\n" in
        check int "4 tokens" 4 (Array.length toks));
    test "@-identifiers become VAR tokens" (fun () ->
        let sym = sym_of "grammar T; s : VAR ID ;" in
        let config =
          { Runtime.Lexer_engine.default_config with at_ident_token = Some "VAR" }
        in
        let toks = Runtime.Lexer_engine.tokenize_exn config sym "@x y" in
        check string "var" "VAR"
          (Grammar.Sym.term_name sym toks.(0).Runtime.Token.ttype);
        check string "text keeps @" "@x" toks.(0).Runtime.Token.text);
    test "case-insensitive keywords" (fun () ->
        let sym = sym_of "grammar T; s : 'select' ID ;" in
        let config =
          {
            Runtime.Lexer_engine.default_config with
            case_insensitive_keywords = true;
          }
        in
        let toks = Runtime.Lexer_engine.tokenize_exn config sym "SeLeCt foo" in
        check string "keyword" "'select'"
          (Grammar.Sym.term_name sym toks.(0).Runtime.Token.ttype));
    test "lex errors carry positions" (fun () ->
        let sym = sym_of "grammar T; s : ID ;" in
        match
          Runtime.Lexer_engine.tokenize Runtime.Lexer_engine.default_config sym
            "a $"
        with
        | Error e -> check int "column" 3 e.Runtime.Lexer_engine.col
        | Ok _ -> Alcotest.fail "expected lex error");
  ]

(* ------------------------------------------------------------------ *)
(* Trees, errors, recovery *)

let tree_tests =
  [
    test "tree yield equals input" (fun () ->
        let c = compile "grammar T; s : A b C ; b : B ;" in
        let t =
          match parse c "A B C" with Ok t -> t | Error _ -> Alcotest.fail "parse"
        in
        check string "yield" "A B C" (Runtime.Tree.yield t);
        check int "nodes" 5 (Runtime.Tree.count_nodes t);
        check int "depth" 3 (Runtime.Tree.depth t));
    test "mismatched token error" (fun () ->
        let c = compile "grammar T; s : A B ; junk : C ;" in
        let e = first_error c "A C" in
        match e.Runtime.Parse_error.kind with
        | Runtime.Parse_error.Mismatched_token _ ->
            check string "offending" "C" e.Runtime.Parse_error.token.Runtime.Token.text
        | _ -> Alcotest.fail "expected mismatch");
    test "extraneous input error" (fun () ->
        let c = compile "grammar T; s : A ; junk : B ;" in
        let e = first_error c "A B" in
        match e.Runtime.Parse_error.kind with
        | Runtime.Parse_error.Extraneous_input -> ()
        | _ -> Alcotest.fail "expected extraneous input");
    test "recovery resynchronises and reports multiple errors" (fun () ->
        let c = compile "grammar T; s : stmt* ; stmt : ID '=' INT ';' ;" in
        match Runtime.Interp.parse ~recover:true c (lex c "a = 1 ; b = ; c = 3 ;") with
        | Ok _ -> Alcotest.fail "expected errors"
        | Error errs -> check bool "at least one error" true (List.length errs >= 1));
    test "recovery cost is linear in the error count" (fun () ->
        (* One extraneous-input error per leftover token: with the error
           limit tested via [List.length t.errors] this loop was quadratic
           (~5e9 list-node visits at this size, ~9s); the mutable counter
           makes it linear, comfortably inside the wall-clock bound. *)
        let c = compile "grammar T; s : A ; junk : B ;" in
        let a =
          match Grammar.Sym.find_term (Llstar.Compiled.sym c) "A" with
          | Some id -> id
          | None -> Alcotest.fail "no terminal A"
        in
        let max_errors = 100_000 in
        (* each retry consumes two tokens: the A that [s] matched plus the
           extraneous one skipped by recovery *)
        let toks =
          Array.init ((2 * max_errors) + 10) (fun i ->
              Runtime.Token.make ~index:i a "A")
        in
        let t0 = Unix.gettimeofday () in
        let t = Runtime.Interp.create ~recover:true ~max_errors c toks in
        let errs =
          match Runtime.Interp.run t () with
          | Ok _ -> Alcotest.fail "expected errors"
          | Error errs -> errs
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        check bool "error limit reached" true
          (List.length errs >= max_errors);
        check bool
          (Printf.sprintf "linear recovery (%.2fs)" elapsed)
          true (elapsed < 5.0));
  ]

(* ------------------------------------------------------------------ *)
(* Actions and speculation (sections 4.1-4.3) *)

let action_tests =
  [
    test "actions run in order with previous-token context" (fun () ->
        let log = ref [] in
        let c = compile "grammar T; s : A {one} B {two} ;" in
        let env =
          Runtime.Interp.env_of_tables
            ~actions:
              [
                ( "one",
                  fun prev ->
                    log :=
                      ("one/" ^ (Option.get prev).Runtime.Token.text) :: !log );
                ("two", fun _ -> log := "two" :: !log);
              ]
            ()
        in
        (match parse ~env c "A B" with Ok _ -> () | Error _ -> Alcotest.fail "parse");
        check (Alcotest.list string) "order" [ "one/A"; "two" ] (List.rev !log));
    test "actions are disabled while speculating; {{...}} still runs"
      (fun () ->
        let normal = ref 0 and always = ref 0 in
        (* recursion in both alternatives forces backtracking, so the
           chosen alternative's prefix is parsed speculatively first *)
        let c =
          compile
            "grammar T; options { backtrack=true; } s : {n} {{a}} e B | {n} \
             {{a}} e C ; e : A e | A ;"
        in
        let env =
          Runtime.Interp.env_of_tables
            ~actions:
              [ ("n", fun _ -> incr normal); ("a", fun _ -> incr always) ]
            ()
        in
        (match parse ~env c "A A C" with Ok _ -> () | Error e ->
          Alcotest.failf "parse: %d errors" (List.length e));
        check int "normal action ran exactly once (not during speculation)" 1
          !normal;
        check bool "always-action ran at least once during speculation" true
          (!always > 1));
    test "mid-alternative synpred evaluated at its own position" (fun () ->
        (* a syntactic predicate that is not at the decision's left edge is
           not hoisted (section 5.5); the decision resolves by order and the
           gate is checked at parse time, at the right input position *)
        let c = compile "grammar T; s : A (B C)=> B . | A B D ;" in
        check bool "synpred holds" true (parses c "A B C");
        check bool "order-resolved: alternative 2 is dead" false
          (parses c "A B D"));
    test "partial predicate resolution keeps expanding the DFA" (fun () ->
        (* Regression: at the state after one A, alternatives 2 and 3
           genuinely conflict (both can end the rule there) and get
           predicate edges, but alternative 1 is still viable and is only
           separated by more lookahead.  The state used to become terminal
           as soon as any predicate edges were installed, so alternative 1
           could never win and "A A A C D C" was rejected even though the
           PEG (packrat) semantics accept it. *)
        let c =
          compile
            "grammar R; options { backtrack=true; } r0 : r2 C | (A)? r1 | \
             (B)? A ; r1 : r3 | (C)? (E)? ; r2 : C E | A A r3 | (B)? ; r3 : \
             A (C)* D ;"
        in
        check bool "deep lookahead picks alternative 1" true
          (parses c "A A A C D C");
        check bool "predicate fallback still resolves the short input" true
          (parses c "A"));
  ]

(* ------------------------------------------------------------------ *)
(* Left recursion end-to-end *)

let leftrec_tests =
  [
    test "rewrite shape matches section 1.1" (fun () ->
        let g =
          Grammar.Leftrec.rewrite
            (Grammar.Meta_parser.parse
               "grammar E; e : e '*' e | e '+' e | INT ;")
        in
        let printed = Grammar.Pretty.to_string g in
        check bool "prec preds present" true
          (Helpers.contains printed "{p <= 2}? '*' e[3]");
        check bool "plus pred" true
          (Helpers.contains printed "{p <= 1}? '+' e[2]"));
    test "precedence and left associativity" (fun () ->
        let c =
          compile "grammar E; s : e EOF ; e : e '*' e | e '+' e | INT ;"
        in
        check string "precedence" "(s (e 1 + (e 2 * (e 3))) <EOF>)"
          (parse_tree c "1 + 2 * 3");
        check string "left assoc" "(s (e 1 + (e 2) + (e 3)) <EOF>)"
          (parse_tree c "1 + 2 + 3"));
    test "prefix and suffix operators" (fun () ->
        let c =
          compile
            "grammar E; s : e EOF ; e : e '!' | e '*' e | '-' e | e '+' e | \
             INT ;"
        in
        (* '-' binds tighter than '+' (alternative order); '!' tightest *)
        check string "prefix" "(s (e - (e 1) + (e 2)) <EOF>)"
          (parse_tree c "- 1 + 2");
        check string "suffix" "(s (e 1 ! + (e 2)) <EOF>)"
          (parse_tree c "1 ! + 2");
        (* '-' listed below '+' binds looser: -(1+2) *)
        let c2 =
          compile
            "grammar E; s : e EOF ; e : e '*' e | e '+' e | '-' e | INT ;"
        in
        check string "loose prefix" "(s (e - (e 1 + (e 2))) <EOF>)"
          (parse_tree c2 "- 1 + 2"));
    test "evaluation via actions (calculator semantics)" (fun () ->
        (* evaluate with an explicit stack machine driven by actions *)
        let stack = ref [] in
        let push v = stack := v :: !stack in
        let pop () =
          match !stack with
          | v :: rest ->
              stack := rest;
              v
          | [] -> Alcotest.fail "stack underflow"
        in
        let c =
          compile
            "grammar E; s : e EOF ; e : e '+' e {add} | e '*' e {mul} | INT \
             {push} ;"
        in
        let env =
          Runtime.Interp.env_of_tables
            ~actions:
              [
                ( "push",
                  fun prev ->
                    push (int_of_string (Option.get prev).Runtime.Token.text) );
                ( "add",
                  fun _ ->
                    let b = pop () and a = pop () in
                    push (a + b) );
                ( "mul",
                  fun _ ->
                    let b = pop () and a = pop () in
                    push (a * b) );
              ]
            ()
        in
        (match parse ~env c "2 * 3 + 4 * 5" with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "parse");
        check int "2*3+4*5 (+ binds tighter: 2*(3+4)*5)" 70 (pop ()));
  ]

(* ------------------------------------------------------------------ *)
(* Memoization *)

let memo_tests =
  [
    test "memoized and unmemoized parses agree" (fun () ->
        let src m =
          Printf.sprintf
            "grammar T; options { backtrack=true; memoize=%s; } s : e ';' ; e \
             : ID '(' e ')' | ID '(' e ']' | ID ;"
            m
        in
        let inputs =
          [ "x ;"; "a ( b ) ;"; "a ( b ( c ) ) ;"; "a ( b ( c ] ] ;"; "a ( ;" ]
        in
        let c1 = compile (src "true") and c2 = compile (src "false") in
        List.iter
          (fun input ->
            check bool input (parses c1 input) (parses c2 input))
          inputs);
    test "memo table only fills while speculating" (fun () ->
        let c = compile "grammar T; s : A b* ; b : B ;" in
        let t = Runtime.Interp.create c (lex c "A B B B") in
        (match Runtime.Interp.run t () with Ok _ -> () | Error _ -> Alcotest.fail "parse");
        check int "no speculation, no memo entries" 0
          (Runtime.Interp.memo_entries t));
  ]

let suite =
  [
    ("token-stream", stream_tests);
    ("streaming-window", streaming_tests);
    ("lexer-engine", lex_engine_tests);
    ("trees-errors", tree_tests);
    ("actions-speculation", action_tests);
    ("left-recursion", leftrec_tests);
    ("memoization", memo_tests);
  ]
