(* Shared helpers for the test suite. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* Compile a grammar from metalanguage source, failing the test on error. *)
let compile src =
  match Llstar.Compiled.of_source src with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile failed: %a" Llstar.Compiled.pp_error e

let compile_err src =
  match Llstar.Compiled.of_source src with
  | Ok _ -> Alcotest.fail "expected compilation to fail"
  | Error e -> Fmt.str "%a" Llstar.Compiled.pp_error e

(* Lex [input] against [c]'s vocabulary with the default C-like config. *)
let lex ?(config = Runtime.Lexer_engine.default_config) c input =
  Runtime.Lexer_engine.tokenize_exn config (Llstar.Compiled.sym c) input

let parse ?env ?config ?start c input =
  Runtime.Interp.parse ?env ?start c (lex ?config c input)

let parses ?env ?config ?start c input =
  match parse ?env ?config ?start c input with Ok _ -> true | Error _ -> false

let parse_tree ?env ?config ?start c input =
  match parse ?env ?config ?start c input with
  | Ok t -> Runtime.Tree.to_string (Llstar.Compiled.sym c) t
  | Error errs ->
      Alcotest.failf "parse of %S failed: %a" input
        Fmt.(list (Runtime.Parse_error.pp (Llstar.Compiled.sym c)))
        errs

let first_error ?env ?config ?start c input =
  match parse ?env ?config ?start c input with
  | Ok _ -> Alcotest.failf "parse of %S unexpectedly succeeded" input
  | Error [] -> Alcotest.fail "error result with no errors"
  | Error (e :: _) -> e

(* Classification of decision [i]. *)
let klass c i = c.Llstar.Compiled.results.(i).Llstar.Analysis.klass

let klass_str c i =
  match klass c i with
  | Llstar.Analysis.Fixed k -> Printf.sprintf "LL(%d)" k
  | Llstar.Analysis.Cyclic -> "cyclic"
  | Llstar.Analysis.Backtrack -> "backtrack"

(* Find the decision id of rule [name]'s alternative choice. *)
let rule_decision c name =
  let atn = c.Llstar.Compiled.atn in
  let rid =
    match Atn.rule_by_name atn name with
    | Some r -> r
    | None -> Alcotest.failf "no rule %s" name
  in
  let found = ref (-1) in
  Array.iter
    (fun (d : Atn.decision) ->
      if d.Atn.d_rule = rid && d.Atn.d_kind = Atn.Rule_decision then
        found := d.Atn.d_id)
    atn.Atn.decisions;
  if !found < 0 then Alcotest.failf "rule %s has no decision" name;
  !found

(* A chunk source over a pinned token array, for driving the streaming
   window ([Token_stream.of_pull]) against a known materialized input. *)
let pull_of_array ?(chunk = 4) toks =
  let pos = ref 0 in
  fun () ->
    let n = min chunk (Array.length toks - !pos) in
    if n <= 0 then [||]
    else begin
      let a = Array.sub toks !pos n in
      pos := !pos + n;
      a
    end

let test name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Substring containment, for error-message checks. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
