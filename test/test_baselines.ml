(* Tests for the baseline parsers: packrat/PEG, Earley, LL(1) and the
   fixed-k LL(k) analysis. *)

open Helpers

let g src = Grammar.Meta_parser.parse src

(* Lex against a compiled grammar so terminal ids align, then run the
   baseline on the same token array. *)
let tokens_for c input = lex c input

(* ------------------------------------------------------------------ *)
(* Packrat *)

let packrat_tests =
  [
    test "ordered choice: first match wins" (fun () ->
        (* PEG hazard from section 1: A -> a | ab never matches ab *)
        let src = "grammar P; s : A | A B ;" in
        let c = compile src in
        let p = Baselines.Packrat.create (g src) in
        let sym = Llstar.Compiled.sym c in
        check bool "A ok" true
          (Baselines.Packrat.recognize p sym (tokens_for c "A") ());
        check bool "A B dead (PEG prefix capture)" false
          (Baselines.Packrat.recognize p sym (tokens_for c "A B") ()));
    test "greedy loops and optional" (fun () ->
        let src = "grammar P; s : A* B? C ;" in
        let c = compile src in
        let p = Baselines.Packrat.create (g src) in
        let sym = Llstar.Compiled.sym c in
        List.iter
          (fun (input, expected) ->
            check bool input expected
              (Baselines.Packrat.recognize p sym (tokens_for c input) ()))
          [ ("C", true); ("A A C", true); ("A B C", true); ("B", false) ]);
    test "syntactic predicate as and-predicate" (fun () ->
        let src = "grammar P; s : (A B)=> A x | A C ; x : B ;" in
        let c = compile src in
        let p = Baselines.Packrat.create (g src) in
        let sym = Llstar.Compiled.sym c in
        check bool "A B via alt1" true
          (Baselines.Packrat.recognize p sym (tokens_for c "A B") ());
        check bool "A C via alt2" true
          (Baselines.Packrat.recognize p sym (tokens_for c "A C") ()));
    test "memoization bounds work" (fun () ->
        let src =
          "grammar P; s : e ';' ; e : ID '(' e ')' | ID '(' e ']' | ID ;"
        in
        let c = compile src in
        let sym = Llstar.Compiled.sym c in
        (* alternative 1 fails deep inside, so alternative 2 re-parses the
           nested expressions: memoization pays for itself *)
        let input = "a ( b ( c ( d ] ] ] ;" in
        let with_memo = Baselines.Packrat.create ~memoize:true (g src) in
        ignore (Baselines.Packrat.recognize with_memo sym (tokens_for c input) ());
        let without = Baselines.Packrat.create ~memoize:false (g src) in
        ignore (Baselines.Packrat.recognize without sym (tokens_for c input) ());
        check bool "memo does less work" true
          ((Baselines.Packrat.stats with_memo).Baselines.Packrat.steps
          < (Baselines.Packrat.stats without).Baselines.Packrat.steps));
    test "packrat agrees with LL(*) on a PEG-mode grammar" (fun () ->
        let src =
          "grammar P; options { backtrack=true; } s : t* ; t : 'a' 'b' | 'a' \
           'c' | 'd' ;"
        in
        let c = compile src in
        let p = Baselines.Packrat.create (g src) in
        let sym = Llstar.Compiled.sym c in
        List.iter
          (fun input ->
            check bool input
              (parses c input)
              (Baselines.Packrat.recognize p sym (tokens_for c input) ()))
          [ "a b"; "a c"; "d"; "a b a c d"; "a"; "a d"; "" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Earley *)

let earley_tests =
  [
    test "balanced brackets (context-free, not regular)" (fun () ->
        let e = Baselines.Earley.of_grammar (g "grammar E; s : '[' s ']' | ID ;") in
        check bool "[ [ id ] ]" true
          (Baselines.Earley.recognize e [| "'['"; "'['"; "ID"; "']'"; "']'" |]);
        check bool "unbalanced" false
          (Baselines.Earley.recognize e [| "'['"; "ID" |]));
    test "handles left recursion and ambiguity" (fun () ->
        let e =
          Baselines.Earley.of_grammar (g "grammar E; e : e '+' e | INT ;")
        in
        check bool "1+1+1" true
          (Baselines.Earley.recognize e [| "INT"; "'+'"; "INT"; "'+'"; "INT" |]);
        check bool "dangling +" false
          (Baselines.Earley.recognize e [| "INT"; "'+'" |]));
    test "nullable rules (Aycock-Horspool)" (fun () ->
        let e =
          Baselines.Earley.of_grammar
            (g "grammar E; s : a a B ; a : A | ;")
        in
        check bool "B alone" true (Baselines.Earley.recognize e [| "B" |]);
        check bool "A B" true (Baselines.Earley.recognize e [| "A"; "B" |]);
        check bool "A A B" true
          (Baselines.Earley.recognize e [| "A"; "A"; "B" |]));
    test "EBNF via BNF expansion" (fun () ->
        let e = Baselines.Earley.of_grammar (g "grammar E; s : (A | B)+ C? ;") in
        check bool "A B A" true (Baselines.Earley.recognize e [| "A"; "B"; "A" |]);
        check bool "B C" true (Baselines.Earley.recognize e [| "B"; "C" |]);
        check bool "C alone (plus needs one)" false
          (Baselines.Earley.recognize e [| "C" |]));
    test "scanned items are not processed in the old set" (fun () ->
        (* Regression: the scanner used to push the advanced item onto the
           current set's work queue, so its predictor/completer ran against
           position i and the token just scanned was consumed twice --
           [s : D (C)* D] falsely accepted the single-token input "D"
           (found by the Earley-agreement qcheck property). *)
        let e =
          Baselines.Earley.of_grammar (g "grammar E; s : D (C)* D | E s D ;")
        in
        check bool "D alone (needs two)" false
          (Baselines.Earley.recognize e [| "D" |]);
        check bool "D D" true (Baselines.Earley.recognize e [| "D"; "D" |]);
        check bool "D C C D" true
          (Baselines.Earley.recognize e [| "D"; "C"; "C"; "D" |]);
        check bool "E D D D" true
          (Baselines.Earley.recognize e [| "E"; "D"; "D"; "D" |]);
        check bool "D C" false (Baselines.Earley.recognize e [| "D"; "C" |]));
  ]

(* ------------------------------------------------------------------ *)
(* LL(1) *)

let ll1_tests =
  [
    test "LL(1) grammar builds a conflict-free table" (fun () ->
        let t = Baselines.Ll1.of_grammar (g "grammar L; s : A s | B ;") in
        check bool "no conflicts" true (Baselines.Ll1.is_ll1 t);
        check bool "A A B" true (Baselines.Ll1.recognize t [| "A"; "A"; "B" |]);
        check bool "A alone" false (Baselines.Ll1.recognize t [| "A" |]));
    test "non-LL(1) grammar reports conflicts" (fun () ->
        let t = Baselines.Ll1.of_grammar (g "grammar L; s : A B | A C ;") in
        check bool "conflicts" false (Baselines.Ll1.is_ll1 t));
    test "agrees with LL(*) on an LL(1) grammar" (fun () ->
        let src = "grammar L; s : A t B | C ; t : D? E ;" in
        let c = compile src in
        let t = Baselines.Ll1.of_grammar (g src) in
        check bool "is ll1" true (Baselines.Ll1.is_ll1 t);
        let sym = Llstar.Compiled.sym c in
        List.iter
          (fun input ->
            let toks = tokens_for c input in
            check bool input (parses c input)
              (Baselines.Ll1.recognize_tokens t sym toks))
          [ "A E B"; "A D E B"; "C"; "A B"; "A D B"; "" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Fixed-k LL(k) *)

let llk_tests =
  [
    test "LL(1) decision found at k=1" (fun () ->
        match Baselines.Llk.analyze_rule (g "grammar K; s : A x | B y ; x : X ; y : Y ;") "s" with
        | { Baselines.Llk.verdict = Baselines.Llk.Distinguishable 1; _ } -> ()
        | r -> Alcotest.failf "unexpected verdict: %a" Baselines.Llk.pp_verdict r.Baselines.Llk.verdict);
    test "LL(3) decision needs k=3" (fun () ->
        match Baselines.Llk.analyze_rule (g "grammar K; s : A B C X | A B C Y ;") "s" with
        | { Baselines.Llk.verdict = Baselines.Llk.Distinguishable 4; _ } -> ()
        | { Baselines.Llk.verdict = Baselines.Llk.Distinguishable k; _ } ->
            check int "k" 4 k
        | r -> Alcotest.failf "unexpected verdict: %a" Baselines.Llk.pp_verdict r.Baselines.Llk.verdict);
    test "cyclic lookahead defeats every fixed k" (fun () ->
        match
          Baselines.Llk.analyze_rule ~k_max:6
            (g "grammar K; a : b A+ X | c A+ Y ; b : ; c : ;")
            "a"
        with
        | { Baselines.Llk.verdict = Baselines.Llk.Not_within 6; _ } -> ()
        | r -> Alcotest.failf "unexpected verdict: %a" Baselines.Llk.pp_verdict r.Baselines.Llk.verdict);
    test "wide alphabets blow up the tuple sets" (fun () ->
        match
          Baselines.Llk.analyze_rule ~k_max:12 ~max_set_size:500
            (g "grammar K; a : b (A|B|C|D)+ X | c (A|B|C|D)+ Y ; b : ; c : ;")
            "a"
        with
        | { Baselines.Llk.verdict = Baselines.Llk.Blowup _; _ } -> ()
        | r -> Alcotest.failf "unexpected verdict: %a" Baselines.Llk.pp_verdict r.Baselines.Llk.verdict);
  ]

let suite =
  [
    ("packrat", packrat_tests);
    ("earley", earley_tests);
    ("ll1", ll1_tests);
    ("llk", llk_tests);
  ]
