(* Static sanity checks on grammars, run before analysis:

   - every referenced rule is defined;
   - no rule is defined twice;
   - no left recursion (immediate or indirect) remains -- LL-star shares PEG's
     restriction (paper section 1.1); the left-recursion rewrite must be
     applied first for immediate cases;
   - warnings: unreachable rules, structurally duplicate alternatives (dead
     productions under ordered-alternative semantics). *)

open Ast

type issue =
  | Undefined_rule of { referenced_in : string; name : string }
  | Duplicate_rule of string
  | Left_recursion of string list (* cycle of rule names *)
  | Unreachable_rule of string
  | Duplicate_alt of { rule : string; alt1 : int; alt2 : int }
  | Empty_grammar

let is_error = function
  | Undefined_rule _ | Duplicate_rule _ | Left_recursion _ | Empty_grammar ->
      true
  | Unreachable_rule _ | Duplicate_alt _ -> false

let pp_issue ppf = function
  | Undefined_rule { referenced_in; name } ->
      Fmt.pf ppf "rule '%s' referenced in '%s' is not defined" name
        referenced_in
  | Duplicate_rule r -> Fmt.pf ppf "rule '%s' is defined more than once" r
  | Left_recursion cycle ->
      Fmt.pf ppf "left recursion: %s" (String.concat " -> " cycle)
  | Unreachable_rule r ->
      Fmt.pf ppf "rule '%s' is unreachable from the start rule" r
  | Duplicate_alt { rule; alt1; alt2 } ->
      Fmt.pf ppf
        "rule '%s': alternative %d duplicates alternative %d and can never \
         match"
        rule alt2 alt1
  | Empty_grammar -> Fmt.pf ppf "grammar has no rules"

let issue_to_string i = Fmt.str "%a" pp_issue i

(* ------------------------------------------------------------------ *)
(* Nullability: can a construct derive the empty string?  Predicates,
   actions and syntactic predicates consume no input. *)

let compute_nullable (g : t) : (string, bool) Hashtbl.t =
  let nullable = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace nullable r.name false) g.rules;
  let rule_nullable name =
    match Hashtbl.find_opt nullable name with Some b -> b | None -> false
  in
  let rec elem_nullable = function
    | Term _ | Wild -> false
    | Nonterm { name; _ } -> rule_nullable name
    | Sem_pred _ | Prec_pred _ | Syn_pred _ | Action _ -> true
    | Block { suffix = Opt | Star; _ } -> true
    | Block { alts; suffix = One | Plus } -> List.exists alt_nullable alts
  and alt_nullable a = List.for_all elem_nullable a.elems in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if not (rule_nullable r.name) then
          if List.exists alt_nullable r.rule_alts then begin
            Hashtbl.replace nullable r.name true;
            changed := true
          end)
      g.rules
  done;
  nullable

(* ------------------------------------------------------------------ *)
(* Leftmost rule references: rules reachable at the left edge of a rule,
   through nullable prefixes.  Used for left-recursion detection. *)

let leftmost_refs nullable (r : rule) : string list =
  let acc = ref [] in
  let add n = if not (List.mem n !acc) then acc := n :: !acc in
  let rule_nullable name =
    match Hashtbl.find_opt nullable name with Some b -> b | None -> false
  in
  let rec elem_nullable = function
    | Term _ | Wild -> false
    | Nonterm { name; _ } -> rule_nullable name
    | Sem_pred _ | Prec_pred _ | Syn_pred _ | Action _ -> true
    | Block { suffix = Opt | Star; _ } -> true
    | Block { alts; suffix = One | Plus } -> List.exists alt_nullable alts
  and alt_nullable a = List.for_all elem_nullable a.elems in
  let rec scan_elems = function
    | [] -> ()
    | e :: rest ->
        scan_elem e;
        if elem_nullable e then scan_elems rest
  and scan_elem = function
    | Term _ | Wild | Sem_pred _ | Prec_pred _ | Action _ -> ()
    | Nonterm { name; _ } -> add name
    | Block { alts; _ } -> List.iter (fun a -> scan_elems a.elems) alts
    | Syn_pred alts ->
        (* A syntactic predicate speculatively invokes its fragment, so a
           left-recursive fragment still loops at parse time. *)
        List.iter (fun a -> scan_elems a.elems) alts
  in
  List.iter (fun a -> scan_elems a.elems) r.rule_alts;
  List.rev !acc

let find_left_recursion (g : t) : string list option =
  let nullable = compute_nullable g in
  let edges = Hashtbl.create 16 in
  List.iter
    (fun r -> Hashtbl.replace edges r.name (leftmost_refs nullable r))
    g.rules;
  (* DFS cycle detection with path reconstruction. *)
  let color = Hashtbl.create 16 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let cycle = ref None in
  let rec dfs path name =
    if !cycle = None then
      match Hashtbl.find_opt color name with
      | Some 1 ->
          (* Found a cycle: slice [path] from the first occurrence. *)
          let rec slice = function
            | x :: rest when x = name -> x :: rest
            | _ :: rest -> slice rest
            | [] -> []
          in
          cycle := Some (slice (List.rev (name :: path)))
      | Some _ -> ()
      | None ->
          Hashtbl.replace color name 1;
          let succs =
            match Hashtbl.find_opt edges name with Some s -> s | None -> []
          in
          List.iter (dfs (name :: path)) succs;
          Hashtbl.replace color name 2
  in
  List.iter (fun r -> dfs [] r.name) g.rules;
  !cycle

(* ------------------------------------------------------------------ *)

let reachable_rules (g : t) : (string, unit) Hashtbl.t =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match find_rule g name with
      | None -> ()
      | Some r ->
          let refs = ref [] in
          List.iter
            (fun a ->
              iter_elements_alt
                (function
                  | Nonterm { name = n; _ } -> refs := n :: !refs
                  | _ -> ())
                a)
            r.rule_alts;
          List.iter visit !refs
    end
  in
  visit g.start;
  seen

let check (g : t) : issue list =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if g.rules = [] then add Empty_grammar
  else begin
    (* duplicate definitions *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun r ->
        if Hashtbl.mem seen r.name then add (Duplicate_rule r.name)
        else Hashtbl.add seen r.name ())
      g.rules;
    (* undefined references *)
    List.iter
      (fun r ->
        List.iter
          (fun a ->
            iter_elements_alt
              (function
                | Nonterm { name; _ } when not (Hashtbl.mem seen name) ->
                    add (Undefined_rule { referenced_in = r.name; name })
                | _ -> ())
              a)
          r.rule_alts)
      g.rules;
    (* only run recursion/reachability analyses on well-formed grammars *)
    if List.for_all (fun i -> not (is_error i)) !issues then begin
      (match find_left_recursion g with
      | Some cycle -> add (Left_recursion cycle)
      | None -> ());
      let reach = reachable_rules g in
      List.iter
        (fun r ->
          if not (Hashtbl.mem reach r.name) then add (Unreachable_rule r.name))
        g.rules;
      (* structurally duplicate alternatives *)
      List.iter
        (fun r ->
          let alts = Array.of_list r.rule_alts in
          for i = 0 to Array.length alts - 1 do
            for j = i + 1 to Array.length alts - 1 do
              if equal_alt alts.(i) alts.(j) then
                add (Duplicate_alt { rule = r.name; alt1 = i + 1; alt2 = j + 1 })
            done
          done)
        g.rules
    end
  end;
  List.rev !issues

let errors g = List.filter is_error (check g)
let warnings g = List.filter (fun i -> not (is_error i)) (check g)
