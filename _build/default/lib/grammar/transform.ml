(* Grammar transformations applied before ATN construction:

   - [peg_mode]: implements [options { backtrack=true; }] (paper section 2):
     auto-inserts a syntactic predicate [(alpha)=> alpha] on every production
     of every decision, mimicking PEG ordered choice.  The analysis then
     statically strips the predicates from every decision it can resolve with
     a pure lookahead DFA.
   - [lift_synpreds]: replaces every syntactic predicate fragment with a
     fresh pseudo-rule [__synpredN] so the ATN has a submachine to simulate
     when the predicate is evaluated by speculative parse (section 4.1
     reduces syntactic predicates to semantic predicates [synpred(A'_i)]).
     After lifting, every [Syn_pred] in the grammar has the canonical shape
     [( __synpredN )=>]. *)

open Ast

let synpred_prefix = "__synpred"

let is_synpred_rule name =
  String.length name > String.length synpred_prefix
  && String.sub name 0 (String.length synpred_prefix) = synpred_prefix

(* ------------------------------------------------------------------ *)
(* PEG mode *)

let starts_with_pred (a : alt) =
  match a.elems with
  | (Syn_pred _ | Sem_pred _) :: _ -> true
  | _ -> false

let is_epsilon_ish (a : alt) =
  List.for_all
    (function Action _ | Sem_pred _ | Prec_pred _ -> true | _ -> false)
    a.elems

(* Wrap alternative [a] with a syntactic predicate over its own content.
   Skipped if it already starts with a predicate or matches only epsilon. *)
let guard_alt (a : alt) =
  if starts_with_pred a || is_epsilon_ish a then a
  else { elems = Syn_pred [ a ] :: a.elems }

let rec peg_alt ~last (a : alt) =
  let a = { elems = List.map peg_element a.elems } in
  if last then a else guard_alt a

and peg_element (e : element) =
  match e with
  | Block { alts; suffix } ->
      let n = List.length alts in
      let alts =
        List.mapi
          (fun i a ->
            (* In loops and optional blocks the implicit exit branch is the
               "last alternative", so every body alternative gets a guard;
               in plain blocks the final alternative is the default. *)
            let last = (suffix = One || suffix = Plus) && i = n - 1 && n > 1 in
            let last = last || (suffix = One && n = 1) in
            peg_alt ~last a)
          alts
      in
      Block { alts; suffix }
  | Syn_pred alts -> Syn_pred alts (* do not guard inside explicit predicates *)
  | other -> other

let peg_mode (g : t) : t =
  let rules =
    List.map
      (fun r ->
        if is_synpred_rule r.name then r
        else
          let n = List.length r.rule_alts in
          let rule_alts =
            List.mapi (fun i a -> peg_alt ~last:(i = n - 1 || n = 1) a) r.rule_alts
          in
          { r with rule_alts })
      g.rules
  in
  { g with rules }

(* ------------------------------------------------------------------ *)
(* Syntactic-predicate lifting *)

let canonical_synpred_rule (e : element) : string option =
  match e with
  | Syn_pred [ { elems = [ Nonterm { name; _ } ] } ] when is_synpred_rule name
    ->
      Some name
  | _ -> None

let lift_synpreds (g : t) : t =
  let counter = ref 0 in
  let lifted = ref [] in
  (* Structural memo so identical fragments share one pseudo-rule (PEG mode
     produces many duplicates across a rule's productions). *)
  let memo : (string * string) list ref = ref [] in
  let rec lift_alt (a : alt) = { elems = List.map lift_element a.elems }
  and lift_element (e : element) =
    match e with
    | Syn_pred _ when canonical_synpred_rule e <> None -> e
    | Syn_pred alts ->
        let alts = List.map lift_alt alts in
        let key =
          String.concat " | " (List.map Pretty.alt_to_string alts)
        in
        let name =
          match List.assoc_opt key !memo with
          | Some n -> n
          | None ->
              incr counter;
              let name = Printf.sprintf "%s%d" synpred_prefix !counter in
              memo := (key, name) :: !memo;
              lifted :=
                {
                  name;
                  rule_alts = alts;
                  parameterized = false;
                  source_line = 0;
                }
                :: !lifted;
              name
        in
        Syn_pred [ { elems = [ Nonterm { name; arg = None } ] } ]
    | Block { alts; suffix } -> Block { alts = List.map lift_alt alts; suffix }
    | other -> other
  in
  let rules =
    List.map (fun r -> { r with rule_alts = List.map lift_alt r.rule_alts }) g.rules
  in
  (* Lifted pseudo-rules may themselves contain syntactic predicates (nested
     speculation); keep lifting until a fixpoint. *)
  let rec drain acc =
    match !lifted with
    | [] -> acc
    | pending ->
        lifted := [];
        let pending =
          List.map
            (fun r -> { r with rule_alts = List.map lift_alt r.rule_alts })
            pending
        in
        drain (acc @ List.rev pending)
  in
  let pseudo = drain [] in
  { g with rules = rules @ pseudo }

(* Full pre-analysis pipeline: left-recursion rewrite, PEG mode if
   requested, then predicate lifting. *)
let prepare (g : t) : t =
  let g = Leftrec.rewrite g in
  let g = if g.options.backtrack then peg_mode g else g in
  lift_synpreds g
