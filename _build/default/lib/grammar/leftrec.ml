(* Elimination of immediate left recursion by rewriting into a
   precedence-predicated loop, the technique the paper sketches for "the
   next major release of ANTLR" (section 1.1, following Hansen's compact
   recursive-descent expression parsing):

     e : e '*' e | e '+' e | INT ;

   becomes the parameterized rule (precedence climbs with the alternative
   order, first alternative binds tightest):

     e[p] : (INT) ( {p <= 2}? '*' e[3] | {p <= 1}? '+' e[2] )* ;

   Alternative classification, for a rule [r]:
   - binary:  starts and ends with a reference to [r]  (e op e)
   - suffix:  starts with [r], does not end with it    (e '++')
   - prefix:  ends with [r], does not start with it    ('-' e) -- a primary
     alternative whose trailing recursion receives its own precedence
   - primary: everything else

   Binary operators associate to the left (the recursive tail is parsed at
   precedence n+1); prefix operators bind their operand at their own
   precedence (right associative), matching ANTLR 4's defaults. *)

open Ast

(* First "real" element of an alternative, skipping predicates and actions,
   together with the remaining elements. *)
let rec strip_prefix = function
  | (Sem_pred _ | Prec_pred _ | Action _ | Syn_pred _) :: rest ->
      strip_prefix rest
  | l -> l

let is_self_ref rule = function
  | Nonterm { name; _ } when name = rule -> true
  | _ -> false

type alt_class =
  | Binary of element list * element list
    (* middle between the two self references, and trailing
       predicates/actions after the second one (e.g. [e '*' e {mul}]) *)
  | Suffix of element list (* tail after the leading self reference *)
  | Primary

(* Split the leading predicates/actions off a list (used reversed, so these
   are an alternative's *trailing* non-matching elements). *)
let rec split_strippable = function
  | ((Sem_pred _ | Prec_pred _ | Action _ | Syn_pred _) as e) :: rest ->
      let stripped, core = split_strippable rest in
      (e :: stripped, core)
  | l -> ([], l)

let classify rule (a : alt) : alt_class =
  match strip_prefix a.elems with
  | first :: rest when is_self_ref rule first -> (
      let after_rev, core_rev = split_strippable (List.rev rest) in
      match core_rev with
      | last :: middle_rev when is_self_ref rule last ->
          Binary (List.rev middle_rev, List.rev after_rev)
      | _ -> Suffix rest)
  | _ -> Primary

let is_left_recursive_rule (r : rule) =
  List.exists (fun a -> classify r.name a <> Primary) r.rule_alts

(* Replace self references with an explicit precedence argument.  [trailing]
   is applied to the final element if it is a self reference (prefix
   operators bind their operand at their own precedence); all other self
   references restart at precedence 0. *)
let retarget rule ~trailing (elems : element list) : element list =
  let rec map_elem ~is_last (e : element) =
    match e with
    | Nonterm { name; _ } when name = rule ->
        let arg = if is_last then trailing else Some 0 in
        Nonterm { name; arg }
    | Block { alts; suffix } ->
        Block
          {
            alts = List.map (fun a -> { elems = map_list a.elems }) alts;
            suffix;
          }
    | other -> other
  and map_list = function
    | [] -> []
    | [ last ] -> [ map_elem ~is_last:true last ]
    | e :: rest -> map_elem ~is_last:false e :: map_list rest
  in
  map_list elems

let rewrite_rule (r : rule) : rule =
  let n = List.length r.rule_alts in
  let prec_of_index i = n - i - 1 in
  (* alternative i (0-based) has precedence n-i-1, first alternative binds
     tightest: for the paper's e : e '*' e | e '+' e | INT this yields
     {p <= 2}? '*' e[3] and {p <= 1}? '+' e[2], exactly section 1.1 *)
  let loop_alts = ref [] in
  let primary_alts = ref [] in
  List.iteri
    (fun i a ->
      let prec = prec_of_index i in
      match classify r.name a with
      | Binary (middle, after) ->
          (* left associative: the recursive tail parses at prec+1 *)
          let middle = retarget r.name ~trailing:(Some 0) middle in
          let tail = Nonterm { name = r.name; arg = Some (prec + 1) } in
          loop_alts :=
            { elems = (Prec_pred prec :: middle) @ (tail :: after) }
            :: !loop_alts
      | Suffix tail ->
          let tail = retarget r.name ~trailing:(Some 0) tail in
          loop_alts := { elems = Prec_pred prec :: tail } :: !loop_alts
      | Primary ->
          (* a prefix operator's trailing operand parses at its own
             precedence (right associative) *)
          let elems = retarget r.name ~trailing:(Some prec) a.elems in
          primary_alts := { elems } :: !primary_alts)
    r.rule_alts;
  let loop_alts = List.rev !loop_alts in
  let primary_alts = List.rev !primary_alts in
  if primary_alts = [] then
    invalid_arg
      (Printf.sprintf
         "Leftrec.rewrite: rule '%s' has no non-left-recursive alternative"
         r.name);
  let primary : element =
    match primary_alts with
    | [ { elems } ] when List.length elems >= 1 -> Block { alts = primary_alts; suffix = One }
    | _ -> Block { alts = primary_alts; suffix = One }
  in
  let loop : element = Block { alts = loop_alts; suffix = Star } in
  {
    r with
    parameterized = true;
    rule_alts = [ { elems = [ primary; loop ] } ];
  }

let rewrite (g : t) : t =
  let rules =
    List.map
      (fun r -> if is_left_recursive_rule r then rewrite_rule r else r)
      g.rules
  in
  { g with rules }

let has_left_recursive_rules (g : t) =
  List.exists is_left_recursive_rule g.rules
