(* Recursive-descent parser for the grammar metalanguage.

     file     := 'grammar' NAME ';' options? rule+
     options  := 'options' '{' (NAME '=' value ';')* '}'
     rule     := NAME param? ':' alts ';'
     param    := '[' 'p' ']'
     alts     := alt ('|' alt)*
     alt      := element*
     element  := atom ('*' | '+' | '?')?
     atom     := TOKEN_REF | LITERAL | NAME ('[' INT ']')?
               | '(' alts ')' ('=>' | suffix)?
               | ACTION | PRED | '.'

   A parenthesised block followed by [=>] is a syntactic predicate over the
   fragment.  A predicate whose text is exactly [p <= n] is recognised as a
   precedence predicate so that pretty-printed rewritten grammars round-trip. *)

open Ast
open Meta_lexer

exception Parse_error of string * int * int

type st = { toks : spanned array; mutable pos : int }

let cur st = st.toks.(st.pos)
let peek st = (cur st).tok

let error st fmt =
  let sp = cur st in
  Fmt.kstr (fun msg -> raise (Parse_error (msg, sp.line, sp.col))) fmt

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else error st "expected %s, found %s" what (token_to_string (peek st))

let expect_name st what =
  match peek st with
  | NAME n ->
      advance st;
      n
  | t -> error st "expected %s, found %s" what (token_to_string t)

(* Recognise [p <= n] (any whitespace) as a precedence predicate. *)
let prec_pred_of_code code =
  let n = String.length code in
  let i = ref 0 in
  let skip () =
    while !i < n && (code.[!i] = ' ' || code.[!i] = '\t') do
      incr i
    done
  in
  skip ();
  if !i < n && code.[!i] = 'p' then begin
    incr i;
    skip ();
    if !i + 1 < n && code.[!i] = '<' && code.[!i + 1] = '=' then begin
      i := !i + 2;
      skip ();
      let start = !i in
      while !i < n && code.[!i] >= '0' && code.[!i] <= '9' do
        incr i
      done;
      if !i > start && (skip (); !i = n) then
        Some (int_of_string (String.sub code start (!i - start)))
      else None
    end
    else None
  end
  else None

let rec parse_alts st =
  let first = parse_alt st in
  let rec go acc =
    if peek st = PIPE then begin
      advance st;
      go (parse_alt st :: acc)
    end
    else List.rev acc
  in
  go [ first ]

and parse_alt st =
  let rec go acc =
    match peek st with
    | SEMI | PIPE | RPAREN | EOF_TOK -> { elems = List.rev acc }
    | _ -> go (parse_element st :: acc)
  in
  go []

and parse_element st =
  let atom = parse_atom st in
  match (atom, peek st) with
  | Some a, STAR ->
      advance st;
      wrap_suffix a Star
  | Some a, PLUS ->
      advance st;
      wrap_suffix a Plus
  | Some a, QUEST ->
      advance st;
      wrap_suffix a Opt
  | Some a, _ -> a
  | None, t -> error st "unexpected %s in alternative" (token_to_string t)

(* Apply an EBNF suffix to an atom; non-block atoms get wrapped into a
   single-alternative block. *)
and wrap_suffix a suffix =
  match a with
  | Block { alts; suffix = One } -> Block { alts; suffix }
  | other -> Block { alts = [ { elems = [ other ] } ]; suffix }

and parse_atom st =
  match peek st with
  | TOKEN_REF name ->
      advance st;
      Some (Term name)
  | LITERAL spelling ->
      advance st;
      Some (Term spelling)
  | NAME name ->
      advance st;
      if peek st = LBRACK then begin
        advance st;
        match peek st with
        | INT n ->
            advance st;
            expect st RBRACK "']'";
            Some (Nonterm { name; arg = Some n })
        | t -> error st "expected precedence argument, found %s" (token_to_string t)
      end
      else Some (Nonterm { name; arg = None })
  | LPAREN ->
      advance st;
      let alts = parse_alts st in
      expect st RPAREN "')'";
      if peek st = ARROW then begin
        advance st;
        Some (Syn_pred alts)
      end
      else Some (Block { alts; suffix = One })
  | ACTION { code; always } ->
      advance st;
      Some (Action { code; always })
  | PRED code ->
      advance st;
      (match prec_pred_of_code code with
      | Some n -> Some (Prec_pred n)
      | None -> Some (Sem_pred code))
  | DOT ->
      advance st;
      Some Wild
  | _ -> None

let parse_rule st =
  let line = (cur st).line in
  let name = expect_name st "rule name" in
  let parameterized =
    if peek st = LBRACK then begin
      advance st;
      (match peek st with
      | NAME _ -> advance st
      | t -> error st "expected parameter name, found %s" (token_to_string t));
      expect st RBRACK "']'";
      true
    end
    else false
  in
  expect st COLON "':'";
  let rule_alts = parse_alts st in
  expect st SEMI "';' at end of rule";
  { name; rule_alts; parameterized; source_line = line }

(* [options { a=b; ... }] lexes its body as one ACTION token because of the
   brace-balanced action lexing; parse the body text here. *)
let parse_options_body code =
  let opts = ref default_options in
  let entries = String.split_on_char ';' code in
  List.iter
    (fun entry ->
      let entry = String.trim entry in
      if entry <> "" then
        match String.index_opt entry '=' with
        | None -> ()
        | Some i ->
            let key = String.trim (String.sub entry 0 i) in
            let v =
              String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
            in
            let o = !opts in
            opts :=
              (match key with
              | "backtrack" -> { o with backtrack = v = "true" }
              | "memoize" -> { o with memoize = v = "true" }
              | "k" -> { o with k = int_of_string_opt v }
              | "m" -> (
                  match int_of_string_opt v with
                  | Some m -> { o with m }
                  | None -> o)
              | _ -> o))
    entries;
  !opts

let parse src =
  let toks = Meta_lexer.tokenize src in
  let st = { toks; pos = 0 } in
  (match peek st with
  | NAME "grammar" -> advance st
  | _ -> error st "grammar file must start with 'grammar <name>;'");
  let gname =
    match peek st with
    | NAME n | TOKEN_REF n ->
        advance st;
        n
    | t -> error st "expected grammar name, found %s" (token_to_string t)
  in
  expect st SEMI "';'";
  let options =
    match peek st with
    | NAME "options" -> (
        advance st;
        match peek st with
        | ACTION { code; _ } ->
            advance st;
            parse_options_body code
        | _ -> error st "expected '{...}' after options")
    | _ -> default_options
  in
  let rules = ref [] in
  while peek st <> EOF_TOK do
    rules := parse_rule st :: !rules
  done;
  let rules = List.rev !rules in
  if rules = [] then error st "grammar has no rules";
  Ast.make ~options gname rules

let parse_exn = parse

let parse_result src =
  match parse src with
  | g -> Ok g
  | exception Parse_error (msg, l, c) ->
      Error (Printf.sprintf "%d:%d: %s" l c msg)
  | exception Meta_lexer.Lex_error (msg, l, c) ->
      Error (Printf.sprintf "%d:%d: %s" l c msg)
