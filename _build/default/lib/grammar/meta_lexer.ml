(* Lexer for the grammar metalanguage (an ANTLR-3-like notation):

     grammar T;
     options { backtrack=true; m=1; }
     s : ID | ID '=' expr | ('unsigned')* 'int' ID ;
     t : {isTypeName()}? ID | (expr)=> expr | {action();} x ;

   Action/predicate bodies are brace-balanced opaque text; [{{...}}] marks an
   always-executed action (paper section 4.3); a trailing [?] marks a
   semantic predicate. *)

type token =
  | NAME of string (* lowercase-initial identifier: rule name *)
  | TOKEN_REF of string (* uppercase-initial identifier: token type *)
  | LITERAL of string (* 'text', quoted spelling preserved *)
  | INT of int
  | ACTION of { code : string; always : bool }
  | PRED of string (* {code}? *)
  | COLON
  | SEMI
  | PIPE
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | STAR
  | PLUS
  | QUEST
  | ARROW (* => *)
  | EQ
  | DOT
  | EOF_TOK

type spanned = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let error line col fmt =
  Fmt.kstr (fun msg -> raise (Lex_error (msg, line, col))) fmt

let token_to_string = function
  | NAME s -> Printf.sprintf "NAME(%s)" s
  | TOKEN_REF s -> Printf.sprintf "TOKEN(%s)" s
  | LITERAL s -> Printf.sprintf "LITERAL(%s)" s
  | INT n -> Printf.sprintf "INT(%d)" n
  | ACTION { code; always } ->
      Printf.sprintf "ACTION(%s%s)" code (if always then "!!" else "")
  | PRED s -> Printf.sprintf "PRED(%s)" s
  | COLON -> ":"
  | SEMI -> ";"
  | PIPE -> "|"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | STAR -> "*"
  | PLUS -> "+"
  | QUEST -> "?"
  | ARROW -> "=>"
  | EQ -> "="
  | DOT -> "."
  | EOF_TOK -> "<EOF>"

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let peek2 c =
  if c.pos + 1 < String.length c.src then Some c.src.[c.pos + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.pos <- c.pos + 1

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'
let is_ident ch = is_ident_start ch || (ch >= '0' && ch <= '9')
let is_digit ch = ch >= '0' && ch <= '9'

let rec skip_trivia c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance c;
      skip_trivia c
  | Some '/' when peek2 c = Some '/' ->
      while peek c <> None && peek c <> Some '\n' do
        advance c
      done;
      skip_trivia c
  | Some '/' when peek2 c = Some '*' ->
      let l, co = (c.line, c.col) in
      advance c;
      advance c;
      let rec go () =
        match peek c with
        | None -> error l co "unterminated block comment"
        | Some '*' when peek2 c = Some '/' ->
            advance c;
            advance c
        | Some _ ->
            advance c;
            go ()
      in
      go ();
      skip_trivia c
  | _ -> ()

let read_ident c =
  let start = c.pos in
  while match peek c with Some ch -> is_ident ch | None -> false do
    advance c
  done;
  String.sub c.src start (c.pos - start)

let read_int c =
  let start = c.pos in
  while match peek c with Some ch -> is_digit ch | None -> false do
    advance c
  done;
  int_of_string (String.sub c.src start (c.pos - start))

(* Read 'literal' with \' and \\ escapes; returns the quoted spelling with
   escapes resolved, i.e. ['a\'b'] lexes to the spelling ['a'b'] internally
   being ' a ' b '. We keep the raw content and re-quote it. *)
let read_literal c =
  let l, co = (c.line, c.col) in
  advance c (* opening quote *);
  let buf = Buffer.create 8 in
  let rec go () =
    match peek c with
    | None -> error l co "unterminated literal"
    | Some '\'' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
        | Some ch -> Buffer.add_char buf ch; advance c; go ()
        | None -> error l co "unterminated escape in literal")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  if Buffer.length buf = 0 then error l co "empty literal token";
  "'" ^ Buffer.contents buf ^ "'"

(* Read a brace-balanced action body.  Handles nested braces and quoted
   strings/chars inside the body so host-language snippets survive. *)
let read_action c =
  let l, co = (c.line, c.col) in
  advance c (* opening brace *);
  let always = peek c = Some '{' in
  if always then advance c;
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let rec go () =
    match peek c with
    | None -> error l co "unterminated action"
    | Some '{' ->
        incr depth;
        Buffer.add_char buf '{';
        advance c;
        go ()
    | Some '}' when !depth > 0 ->
        decr depth;
        Buffer.add_char buf '}';
        advance c;
        go ()
    | Some '}' ->
        advance c;
        if always then begin
          match peek c with
          | Some '}' -> advance c
          | _ -> error l co "expected '}}' to close always-action"
        end
    | Some ('"' as q) | Some ('\'' as q) ->
        Buffer.add_char buf q;
        advance c;
        let rec str () =
          match peek c with
          | None -> error l co "unterminated string in action"
          | Some '\\' ->
              Buffer.add_char buf '\\';
              advance c;
              (match peek c with
              | Some ch ->
                  Buffer.add_char buf ch;
                  advance c
              | None -> ());
              str ()
          | Some ch ->
              Buffer.add_char buf ch;
              advance c;
              if ch <> q then str ()
        in
        str ();
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  let code = String.trim (Buffer.contents buf) in
  let is_pred = (not always) && peek c = Some '?' in
  if is_pred then begin
    advance c;
    PRED code
  end
  else ACTION { code; always }

let tokenize src =
  let c = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit tok line col = out := { tok; line; col } :: !out in
  let rec go () =
    skip_trivia c;
    let l, co = (c.line, c.col) in
    match peek c with
    | None -> emit EOF_TOK l co
    | Some ch when is_ident_start ch ->
        let id = read_ident c in
        let tok =
          if ch >= 'A' && ch <= 'Z' then TOKEN_REF id else NAME id
        in
        emit tok l co;
        go ()
    | Some ch when is_digit ch ->
        emit (INT (read_int c)) l co;
        go ()
    | Some '\'' ->
        emit (LITERAL (read_literal c)) l co;
        go ()
    | Some '{' ->
        emit (read_action c) l co;
        go ()
    | Some ':' -> advance c; emit COLON l co; go ()
    | Some ';' -> advance c; emit SEMI l co; go ()
    | Some '|' -> advance c; emit PIPE l co; go ()
    | Some '(' -> advance c; emit LPAREN l co; go ()
    | Some ')' -> advance c; emit RPAREN l co; go ()
    | Some '[' -> advance c; emit LBRACK l co; go ()
    | Some ']' -> advance c; emit RBRACK l co; go ()
    | Some '*' -> advance c; emit STAR l co; go ()
    | Some '+' -> advance c; emit PLUS l co; go ()
    | Some '?' -> advance c; emit QUEST l co; go ()
    | Some '.' -> advance c; emit DOT l co; go ()
    | Some '=' when peek2 c = Some '>' ->
        advance c;
        advance c;
        emit ARROW l co;
        go ()
    | Some '=' -> advance c; emit EQ l co; go ()
    | Some ch -> error l co "unexpected character %C" ch
  in
  go ();
  Array.of_list (List.rev !out)
