(** Grammar transformations applied before ATN construction. *)

val synpred_prefix : string
(** Name prefix (["__synpred"]) of lifted syntactic-predicate pseudo-rules. *)

val is_synpred_rule : string -> bool

val peg_mode : Ast.t -> Ast.t
(** Implements [options { backtrack=true; }] (paper section 2): auto-insert
    a syntactic predicate [(alpha)=>] on every production of every decision
    except the default (last) alternative.  The analysis later strips the
    predicates from every decision it can resolve with a pure lookahead
    DFA. *)

val lift_synpreds : Ast.t -> Ast.t
(** Replace every syntactic-predicate fragment with a fresh [__synpredN]
    pseudo-rule (shared between structurally identical fragments) so the
    runtime can evaluate the predicate by speculatively invoking a rule
    (section 4.1).  After lifting, every [Syn_pred] has the canonical shape
    recognised by {!canonical_synpred_rule}. *)

val canonical_synpred_rule : Ast.element -> string option
(** The pseudo-rule name of a lifted syntactic predicate, if [element] is
    one. *)

val prepare : Ast.t -> Ast.t
(** The full pre-analysis pipeline: {!Leftrec.rewrite}, then {!peg_mode} if
    the grammar requests backtracking, then {!lift_synpreds}. *)
