(* Combinator API for constructing grammars programmatically, used by the
   examples and the test-suite.  [lit "int"] produces the literal terminal
   ['int']; [t "ID"] a named token type; [nt "expr"] a rule reference. *)

open Ast

let t name : element = Term name
let lit text : element = Term ("'" ^ text ^ "'")
let nt name : element = Nonterm { name; arg = None }
let nt_arg name arg : element = Nonterm { name; arg = Some arg }
let alt elems : alt = { elems }
let alts (xs : element list list) : alt list = List.map alt xs
let block xs : element = Block { alts = alts xs; suffix = One }
let opt xs : element = Block { alts = alts xs; suffix = Opt }
let star xs : element = Block { alts = alts xs; suffix = Star }
let plus xs : element = Block { alts = alts xs; suffix = Plus }
let sem_pred code : element = Sem_pred code
let prec_pred n : element = Prec_pred n
let syn_pred xs : element = Syn_pred (alts xs)
let action code : element = Action { code; always = false }
let always_action code : element = Action { code; always = true }
let wild : element = Wild

let rule ?(line = 0) name (productions : element list list) : rule =
  { name; rule_alts = alts productions; parameterized = false; source_line = line }

let grammar ?options ?start name rules = Ast.make ?options ?start name rules
