(** Elimination of immediate left recursion by rewriting into a
    precedence-predicated loop (paper section 1.1):

    {[ e : e '*' e | e '+' e | INT ; ]}

    becomes

    {[ e[p] : (INT) ( {p <= 2}? '*' e[3] | {p <= 1}? '+' e[2] )* ; ]}

    The first alternative binds tightest; binary operators associate to the
    left (their recursive tail parses at precedence n+1); prefix operators
    bind their operand at their own precedence.  Trailing predicates and
    actions of a left-recursive alternative ([e '*' e {mul}]) are carried
    into the loop. *)

type alt_class =
  | Binary of Ast.element list * Ast.element list
      (** middle between the two self references, trailing elements after
          the second *)
  | Suffix of Ast.element list  (** tail after the leading self reference *)
  | Primary

val classify : string -> Ast.alt -> alt_class

val is_left_recursive_rule : Ast.rule -> bool
(** Immediate (self-referential) left recursion only; indirect cycles are a
    validation error instead. *)

val rewrite_rule : Ast.rule -> Ast.rule
(** @raise Invalid_argument when the rule has no non-left-recursive
    alternative. *)

val rewrite : Ast.t -> Ast.t
(** Rewrite every immediately left-recursive rule; other rules unchanged. *)

val has_left_recursive_rules : Ast.t -> bool
