(* Pretty-printer for grammars, producing text the metalanguage parser
   accepts again (round-trip property tested in the suite). *)

open Ast

let suffix_str = function One -> "" | Opt -> "?" | Star -> "*" | Plus -> "+"

(* Literal spellings are stored with their escapes resolved; re-escape
   backslashes and quotes so printed grammars re-lex. *)
let quote_literal name =
  let body = String.sub name 1 (String.length name - 2) in
  let buf = Buffer.create (String.length body + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (function
      | '\'' -> Buffer.add_string buf "\\'"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    body;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let rec pp_element ppf (e : element) =
  match e with
  | Term name ->
      if Sym.is_literal_name name then Fmt.string ppf (quote_literal name)
      else Fmt.string ppf name
  | Nonterm { name; arg = None } -> Fmt.string ppf name
  | Nonterm { name; arg = Some p } -> Fmt.pf ppf "%s[%d]" name p
  | Block { alts; suffix } ->
      Fmt.pf ppf "(%a)%s" pp_alts alts (suffix_str suffix)
  | Sem_pred code -> Fmt.pf ppf "{%s}?" code
  | Prec_pred n -> Fmt.pf ppf "{p <= %d}?" n
  | Syn_pred alts -> Fmt.pf ppf "(%a)=>" pp_alts alts
  | Action { code; always = false } -> Fmt.pf ppf "{%s}" code
  | Action { code; always = true } -> Fmt.pf ppf "{{%s}}" code
  | Wild -> Fmt.string ppf "."

and pp_alt ppf (a : alt) =
  match a.elems with
  | [] -> Fmt.string ppf "/* epsilon */"
  | elems -> Fmt.(list ~sep:sp pp_element) ppf elems

and pp_alts ppf alts = Fmt.(list ~sep:(any " | ") pp_alt) ppf alts

let pp_rule ppf (r : rule) =
  Fmt.pf ppf "@[<hv 2>%s%s :@ %a@ ;@]" r.name
    (if r.parameterized then "[p]" else "")
    Fmt.(list ~sep:(any "@ | ") pp_alt)
    r.rule_alts

let pp_options ppf (o : options) =
  Fmt.pf ppf "options { backtrack=%b; m=%d; memoize=%b;%a }" o.backtrack o.m
    o.memoize
    Fmt.(option (fun ppf k -> Fmt.pf ppf " k=%d;" k))
    o.k

let pp ppf (g : t) =
  Fmt.pf ppf "grammar %s;@." g.gname;
  if g.options <> default_options then Fmt.pf ppf "%a@." pp_options g.options;
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_rule r) g.rules

let to_string g = Fmt.str "%a" pp g
let element_to_string e = Fmt.str "%a" pp_element e
let alt_to_string a = Fmt.str "%a" pp_alt a
