(** FIRST / FOLLOW / FIRST_k over the BNF skeleton.

    FIRST_k works with sets of terminal sequences of length <= k under
    truncating concatenation; it is the substrate of the fixed-k LL(k)
    baseline and of the LPG blow-up demonstration (paper section 2). *)

module SS : Set.S with type elt = string

module SeqSet : Set.S with type elt = string list

type t

val eof_name : string

val compute : Bnf.t -> t

val is_nullable : t -> string -> bool
val first_of : t -> string -> SS.t
val follow_of : t -> string -> SS.t

val first_seq : t -> Bnf.symbol list -> SS.t * bool
(** FIRST of a symbol sequence, plus whether the whole sequence is
    nullable. *)

exception Blowup of int
(** Raised by {!first_k} when an intermediate sequence set exceeds
    [max_set_size]; carries the size reached. *)

val concat_k : int -> SeqSet.t -> SeqSet.t -> SeqSet.t
(** Truncating concatenation of sequence sets. *)

val first_k : ?max_set_size:int -> t -> int -> Bnf.symbol list -> SeqSet.t
(** All terminal sequences of length <= k that can begin a derivation of the
    given symbols.  O(|T|^k) in the worst case, by design: the blow-up is
    the phenomenon under study. *)
