(** Parser for the grammar metalanguage (an ANTLR-3-like notation).

    {[
      grammar T;
      options { backtrack=true; memoize=true; m=1; k=2; }
      s : ID | ID '=' e | ('unsigned')* 'int' ID ;
      e : {isType()}? ID | (x)=> x {act();} ;
      x : INT ;
    ]}

    Token types are uppercase-initial, rules lowercase-initial, literal
    tokens single-quoted.  [{code}] is an action, [{{code}}] an
    always-executed action, [{code}?] a semantic predicate ([{p <= n}?] is
    recognised as a precedence predicate so rewritten grammars round-trip),
    and [(fragment)=>] a syntactic predicate. *)

exception Parse_error of string * int * int
(** [(message, line, column)] *)

val parse : string -> Ast.t
(** Parse a grammar from source.
    @raise Parse_error on syntax errors
    @raise Meta_lexer.Lex_error on lexical errors *)

val parse_exn : string -> Ast.t
(** Alias of {!parse}. *)

val parse_result : string -> (Ast.t, string) result
(** Like {!parse}, with errors rendered as ["line:col: message"]. *)

val prec_pred_of_code : string -> int option
(** [prec_pred_of_code "p <= 3"] is [Some 3]; [None] for any other
    predicate text.  Exposed for the pretty-printer round-trip. *)
