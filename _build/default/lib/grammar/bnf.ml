(* Conversion of EBNF grammars to plain BNF productions.

   Sub-blocks become fresh nonterminals (named [_<rule>_bN]); EBNF suffixes
   expand to right-recursive helper rules.  Predicates, actions and
   syntactic predicates are erased: the result is the underlying context-free
   skeleton, which the Earley / LL(1) / LL(k) baselines and the FIRST/FOLLOW
   machinery consume. *)

open Ast

type symbol = T of string | N of string

type prod = { lhs : string; rhs : symbol list }

type t = {
  start : string;
  prods : prod list;
  nonterms : string list; (* in definition order *)
  terms : string list;
}

let fresh_counter = ref 0

let convert (g : Ast.t) : t =
  fresh_counter := 0;
  let prods = ref [] in
  let emit lhs rhs = prods := { lhs; rhs } :: !prods in
  let fresh base =
    incr fresh_counter;
    Printf.sprintf "_%s_b%d" base !fresh_counter
  in
  (* Convert an element into a symbol sequence, emitting helper rules. *)
  let rec conv_elems rule elems : symbol list =
    List.concat_map (conv_elem rule) elems
  and conv_elem rule (e : element) : symbol list =
    match e with
    | Term name -> [ T name ]
    | Wild -> [ T "." ]
    | Nonterm { name; _ } -> [ N name ]
    | Sem_pred _ | Prec_pred _ | Action _ -> []
    | Syn_pred _ -> [] (* matches no input *)
    | Block { alts; suffix } -> (
        match suffix with
        | One when List.length alts = 1 ->
            conv_elems rule (List.hd alts).elems
        | One ->
            let b = fresh rule in
            List.iter (fun a -> emit b (conv_elems rule a.elems)) alts;
            [ N b ]
        | Opt ->
            let b = fresh rule in
            List.iter (fun a -> emit b (conv_elems rule a.elems)) alts;
            emit b [];
            [ N b ]
        | Star ->
            let b = fresh rule in
            List.iter
              (fun a -> emit b (conv_elems rule a.elems @ [ N b ]))
              alts;
            emit b [];
            [ N b ]
        | Plus ->
            let body = fresh rule in
            let tail = fresh rule in
            List.iter
              (fun a -> emit body (conv_elems rule a.elems @ [ N tail ]))
              alts;
            List.iter
              (fun a -> emit tail (conv_elems rule a.elems @ [ N tail ]))
              alts;
            emit tail [];
            [ N body ])
  in
  List.iter
    (fun r ->
      List.iter (fun a -> emit r.name (conv_elems r.name a.elems)) r.rule_alts)
    g.rules;
  let prods = List.rev !prods in
  let nonterms =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun p ->
        if Hashtbl.mem seen p.lhs then None
        else begin
          Hashtbl.add seen p.lhs ();
          Some p.lhs
        end)
      prods
  in
  let terms =
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun p ->
        List.filter_map
          (function
            | T name when not (Hashtbl.mem seen name) ->
                Hashtbl.add seen name ();
                Some name
            | _ -> None)
          p.rhs)
      prods
  in
  { start = g.start; prods; nonterms; terms }

let prods_of t lhs = List.filter (fun p -> p.lhs = lhs) t.prods

let pp_symbol ppf = function
  | T name -> Fmt.string ppf name
  | N name -> Fmt.string ppf name

let pp_prod ppf p =
  Fmt.pf ppf "%s -> %a" p.lhs Fmt.(list ~sep:sp pp_symbol) p.rhs

let pp ppf t = Fmt.(list ~sep:cut pp_prod) ppf t.prods
