lib/grammar/sentence_gen.ml: Array Ast Buffer Hashtbl List Random Sym
