lib/grammar/sentence_gen.mli: Ast Random
