lib/grammar/first_follow.ml: Bnf Hashtbl List Set String
