lib/grammar/pretty.ml: Ast Buffer Fmt List String Sym
