lib/grammar/sym.ml: Array Fmt Hashtbl List Printf String
