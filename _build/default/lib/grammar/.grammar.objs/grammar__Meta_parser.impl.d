lib/grammar/meta_parser.ml: Array Ast Fmt List Meta_lexer Printf String
