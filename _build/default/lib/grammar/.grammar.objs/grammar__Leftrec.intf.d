lib/grammar/leftrec.mli: Ast
