lib/grammar/validate.mli: Ast Format Hashtbl
