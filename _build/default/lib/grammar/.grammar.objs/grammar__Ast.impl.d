lib/grammar/ast.ml: Hashtbl List
