lib/grammar/sym.mli: Format
