lib/grammar/builder.ml: Ast List
