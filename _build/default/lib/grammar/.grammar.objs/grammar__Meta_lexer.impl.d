lib/grammar/meta_lexer.ml: Array Buffer Fmt List Printf String
