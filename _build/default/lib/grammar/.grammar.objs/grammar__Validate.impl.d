lib/grammar/validate.ml: Array Ast Fmt Hashtbl List String
