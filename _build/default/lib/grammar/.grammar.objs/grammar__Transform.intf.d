lib/grammar/transform.mli: Ast
