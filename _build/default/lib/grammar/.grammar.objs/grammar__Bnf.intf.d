lib/grammar/bnf.mli: Ast Format
