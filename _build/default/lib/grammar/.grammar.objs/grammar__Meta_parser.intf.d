lib/grammar/meta_parser.mli: Ast
