lib/grammar/transform.ml: Ast Leftrec List Pretty Printf String
