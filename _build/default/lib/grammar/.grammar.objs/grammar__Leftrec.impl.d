lib/grammar/leftrec.ml: Ast List Printf
