lib/grammar/bnf.ml: Ast Fmt Hashtbl List Printf
