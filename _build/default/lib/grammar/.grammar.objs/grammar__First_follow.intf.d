lib/grammar/first_follow.mli: Bnf Set
