(** Static sanity checks on grammars, run before analysis.

    Errors ({!is_error} = [true]) make a grammar unusable: undefined or
    duplicated rules, remaining left recursion (LL-star shares PEG's
    restriction; run {!Leftrec.rewrite} first for immediate cases), or an
    empty grammar.  Warnings flag unreachable rules and structurally
    duplicate alternatives (dead under ordered-alternative semantics). *)

type issue =
  | Undefined_rule of { referenced_in : string; name : string }
  | Duplicate_rule of string
  | Left_recursion of string list  (** cycle of rule names *)
  | Unreachable_rule of string
  | Duplicate_alt of { rule : string; alt1 : int; alt2 : int }
  | Empty_grammar

val is_error : issue -> bool
val pp_issue : Format.formatter -> issue -> unit
val issue_to_string : issue -> string

val check : Ast.t -> issue list
(** All issues, errors first in source order. *)

val errors : Ast.t -> issue list
(** Only the issues that make the grammar unusable. *)

val warnings : Ast.t -> issue list

val compute_nullable : Ast.t -> (string, bool) Hashtbl.t
(** Which rules can derive the empty string (fixpoint over the AST). *)

val find_left_recursion : Ast.t -> string list option
(** A leftmost-derivation cycle, if any, through nullable prefixes, blocks
    and syntactic predicates. *)
