(* Abstract syntax of predicated grammars (paper section 3, Figure 3),
   extended with the EBNF operators and sub-blocks that ANTLR's metalanguage
   provides and that the analysis handles by adding cycles to the ATN
   (section 5.5).

   Semantic predicates and actions are opaque host-language snippets: the
   runtime resolves them by their source text against user-supplied
   evaluation functions, which mirrors how generated ANTLR parsers splice the
   snippet into host code.  Precedence predicates ({p <= n}?) are produced by
   the left-recursion rewrite (section 1.1) and evaluated against the current
   rule's precedence argument. *)

type suffix =
  | One  (* plain sub-block ( ... ) *)
  | Opt  (* ( ... )? *)
  | Star (* ( ... )* *)
  | Plus (* ( ... )+ *)

type element =
  | Term of string (* token reference: [ID] or ['literal'] *)
  | Nonterm of { name : string; arg : int option }
    (* rule reference; [arg] is a precedence argument produced by the
       left-recursion rewrite *)
  | Block of { alts : alt list; suffix : suffix }
  | Sem_pred of string (* {code}? *)
  | Prec_pred of int (* {p <= n}? from the left-recursion rewrite *)
  | Syn_pred of alt list (* (alpha)=> syntactic predicate over fragment alpha *)
  | Action of { code : string; always : bool }
    (* {code} normal action, {{code}} always-executed action (section 4.3) *)
  | Wild (* . matches any single token *)

and alt = { elems : element list }

type rule = {
  name : string;
  rule_alts : alt list;
  parameterized : bool;
    (* true for rules rewritten by the left-recursion transform; they take a
       precedence argument *)
  source_line : int; (* 1-based line in metalanguage source; 0 if built *)
}

type options = {
  backtrack : bool; (* PEG mode: auto-insert syntactic predicates *)
  k : int option; (* optional user cap on lookahead DFA depth *)
  m : int; (* closure recursion bound (section 5.3) *)
  memoize : bool; (* memoize rule results while speculating *)
}

let default_options = { backtrack = false; k = None; m = 1; memoize = true }

type t = {
  gname : string;
  options : options;
  rules : rule list;
  start : string; (* defaults to the first rule *)
}

let epsilon_alt = { elems = [] }

let make ?(options = default_options) ?start gname rules =
  let start =
    match (start, rules) with
    | Some s, _ -> s
    | None, r :: _ -> r.name
    | None, [] -> invalid_arg "Ast.make: empty grammar"
  in
  { gname; options; rules; start }

let find_rule g name = List.find_opt (fun r -> r.name = name) g.rules

let rule_names g = List.map (fun r -> r.name) g.rules

(* ------------------------------------------------------------------ *)
(* Structural traversal helpers                                        *)

let rec iter_elements_alt f (a : alt) = List.iter (iter_element f) a.elems

and iter_element f e =
  f e;
  match e with
  | Block { alts; _ } -> List.iter (iter_elements_alt f) alts
  | Syn_pred alts -> List.iter (iter_elements_alt f) alts
  | Term _ | Nonterm _ | Sem_pred _ | Prec_pred _ | Action _ | Wild -> ()

let iter_elements f (g : t) =
  List.iter (fun r -> List.iter (iter_elements_alt f) r.rule_alts) g.rules

(* All terminal spellings referenced anywhere in the grammar. *)
let terminals g =
  let acc = Hashtbl.create 32 in
  let order = ref [] in
  iter_elements
    (function
      | Term name ->
          if not (Hashtbl.mem acc name) then begin
            Hashtbl.add acc name ();
            order := name :: !order
          end
      | _ -> ())
    g;
  List.rev !order

(* All rule names referenced anywhere in the grammar (not necessarily
   defined). *)
let referenced_rules g =
  let acc = Hashtbl.create 32 in
  let order = ref [] in
  iter_elements
    (function
      | Nonterm { name; _ } ->
          if not (Hashtbl.mem acc name) then begin
            Hashtbl.add acc name ();
            order := name :: !order
          end
      | _ -> ())
    g;
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Structural equality (used to detect duplicate alternatives)         *)

let rec equal_element (a : element) (b : element) =
  match (a, b) with
  | Term x, Term y -> x = y
  | Nonterm x, Nonterm y -> x.name = y.name && x.arg = y.arg
  | Block x, Block y ->
      x.suffix = y.suffix && equal_alts x.alts y.alts
  | Sem_pred x, Sem_pred y -> x = y
  | Prec_pred x, Prec_pred y -> x = y
  | Syn_pred x, Syn_pred y -> equal_alts x y
  | Action x, Action y -> x.code = y.code && x.always = y.always
  | Wild, Wild -> true
  | _ -> false

and equal_alt (a : alt) (b : alt) =
  List.length a.elems = List.length b.elems
  && List.for_all2 equal_element a.elems b.elems

and equal_alts a b =
  List.length a = List.length b && List.for_all2 equal_alt a b
