(** Conversion of EBNF grammars to plain BNF productions.

    Sub-blocks become fresh nonterminals ([_<rule>_bN]); EBNF suffixes
    expand to right-recursive helpers; predicates, actions and syntactic
    predicates are erased.  The result is the context-free skeleton consumed
    by the Earley / LL(1) / LL(k) baselines and FIRST/FOLLOW machinery. *)

type symbol = T of string | N of string

type prod = { lhs : string; rhs : symbol list }

type t = {
  start : string;
  prods : prod list;
  nonterms : string list;  (** in definition order *)
  terms : string list;
}

val convert : Ast.t -> t
val prods_of : t -> string -> prod list
val pp_symbol : Format.formatter -> symbol -> unit
val pp_prod : Format.formatter -> prod -> unit
val pp : Format.formatter -> t -> unit
