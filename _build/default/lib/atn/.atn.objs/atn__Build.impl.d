lib/atn/build.ml: Array Grammar Hashtbl List Machine Printf
