lib/atn/atn.ml: Atn_dot Build Machine
