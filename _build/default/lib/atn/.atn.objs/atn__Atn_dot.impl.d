lib/atn/atn_dot.ml: Array Buffer Fmt Grammar Machine Printf String
