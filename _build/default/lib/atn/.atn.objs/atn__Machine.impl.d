lib/atn/machine.ml: Array Fmt Grammar
