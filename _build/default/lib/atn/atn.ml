(* Facade for the ATN library: [Atn.t] is the machine; [Atn.Build.build]
   constructs it from a prepared grammar; [Atn.Dot.to_dot] exports
   Graphviz. *)

include Machine
module Build = Build
module Dot = Atn_dot
