(* Graphviz export of ATN submachines, for debugging and the CLI. *)

module Sym = Grammar.Sym

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let edge_label (t : Machine.t) e = escape (Fmt.str "%a" (Machine.pp_edge t.sym) e)

(* Emit one rule's submachine (or the whole ATN when [rule] is [None]). *)
let to_dot ?rule (t : Machine.t) : string =
  let buf = Buffer.create 1024 in
  let states_in s =
    match rule with None -> true | Some r -> t.state_rule.(s) = r
  in
  Buffer.add_string buf "digraph ATN {\n  rankdir=LR;\n  node [shape=circle fontsize=11];\n";
  Array.iter
    (fun (ri : Machine.rule_info) ->
      if states_in ri.r_entry then begin
        Buffer.add_string buf
          (Printf.sprintf "  %d [label=\"p_%s\" shape=box];\n" ri.r_entry
             (escape ri.r_name));
        Buffer.add_string buf
          (Printf.sprintf "  %d [label=\"p_%s'\" shape=doublecircle];\n"
             ri.r_stop (escape ri.r_name))
      end)
    t.rules;
  for s = 0 to t.nstates - 1 do
    if states_in s then
      Array.iter
        (fun (e, tgt) ->
          let style =
            match e with
            | Machine.Eps -> " style=dashed"
            | Machine.Pred _ -> " color=blue"
            | Machine.Rule _ -> " color=darkgreen"
            | _ -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  %d -> %d [label=\"%s\"%s];\n" s tgt
               (edge_label t e) style))
        t.trans.(s)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
