(* Grammar -> ATN construction (paper Figure 7, extended with EBNF cycles
   per section 5.5).

   Expects a *prepared* grammar (Grammar.Transform.prepare): left recursion
   rewritten, PEG-mode predicates inserted, syntactic predicates lifted to
   [__synpredN] pseudo-rules.  Raises [Invalid_argument] on un-lifted
   syntactic predicates.

   The construction also synthesizes an augmented start: a state that calls
   the start rule and then matches EOF.  It is registered as a call site, so
   closure at the start rule's stop state with an empty stack naturally
   discovers EOF as follow context. *)

open Grammar.Ast
module Sym = Grammar.Sym
module Transform = Grammar.Transform

type builder = {
  sym : Sym.t;
  mutable trans_tbl : (edge_i * int) list array; (* reversed per state *)
  mutable nstates : int;
  mutable cap : int;
  mutable state_rule_tbl : int array;
  mutable decisions_rev : Machine.decision list;
  mutable ndecisions : int;
  mutable actions_rev : (string * bool) list;
  mutable nactions : int;
  callers_tbl : (int, (int * int option) list) Hashtbl.t;
}

and edge_i = Machine.edge

let new_state b rule =
  let s = b.nstates in
  if s >= b.cap then begin
    let cap' = b.cap * 2 in
    let t' = Array.make cap' [] in
    Array.blit b.trans_tbl 0 t' 0 b.nstates;
    b.trans_tbl <- t';
    let r' = Array.make cap' (-1) in
    Array.blit b.state_rule_tbl 0 r' 0 b.nstates;
    b.state_rule_tbl <- r';
    b.cap <- cap'
  end;
  b.nstates <- s + 1;
  b.state_rule_tbl.(s) <- rule;
  s

let add_edge b src edge tgt = b.trans_tbl.(src) <- (edge, tgt) :: b.trans_tbl.(src)

let new_decision b ~state ~rule ~nalts ~kind ~exit_alt ~label =
  let d =
    Machine.
      {
        d_id = b.ndecisions;
        d_state = state;
        d_rule = rule;
        d_nalts = nalts;
        d_kind = kind;
        d_exit_alt = exit_alt;
        d_label = label;
      }
  in
  b.ndecisions <- b.ndecisions + 1;
  b.decisions_rev <- d :: b.decisions_rev;
  d

let new_action b code always =
  let id = b.nactions in
  b.nactions <- id + 1;
  b.actions_rev <- (code, always) :: b.actions_rev;
  id

let register_call b rule follow arg =
  let cur =
    match Hashtbl.find_opt b.callers_tbl rule with Some l -> l | None -> []
  in
  Hashtbl.replace b.callers_tbl rule ((follow, arg) :: cur)

let build (g : Grammar.Ast.t) : Machine.t =
  let sym = Sym.create () in
  (* Intern every terminal and rule up front so ids are stable and dense. *)
  let rule_ids = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      let id = Sym.intern_nonterm sym r.name in
      assert (id = i);
      Hashtbl.replace rule_ids r.name id)
    g.rules;
  List.iter (fun t -> ignore (Sym.intern_term sym t)) (terminals g);
  let rule_id name =
    match Hashtbl.find_opt rule_ids name with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Atn.Build: undefined rule '%s'" name)
  in
  let b =
    {
      sym;
      trans_tbl = Array.make 256 [];
      nstates = 0;
      cap = 256;
      state_rule_tbl = Array.make 256 (-1);
      decisions_rev = [];
      ndecisions = 0;
      actions_rev = [];
      nactions = 0;
      callers_tbl = Hashtbl.create 16;
    }
  in
  (* Pre-create entry/stop states for every rule so forward references
     resolve. *)
  let nrules = List.length g.rules in
  let entries = Array.make nrules 0 in
  let stops = Array.make nrules 0 in
  List.iteri
    (fun i _ ->
      entries.(i) <- new_state b i;
      stops.(i) <- new_state b i)
    g.rules;

  (* Compile one element starting at state [cur]; returns the state after the
     element. *)
  let rec compile_elem rid (cur : int) (e : element) : int =
    match e with
    | Term name ->
        let t = Sym.intern_term sym name in
        let nxt = new_state b rid in
        add_edge b cur (Machine.Term t) nxt;
        nxt
    | Wild ->
        let nxt = new_state b rid in
        add_edge b cur (Machine.Term Sym.wildcard) nxt;
        nxt
    | Nonterm { name; arg } ->
        let callee = rule_id name in
        let follow = new_state b rid in
        add_edge b cur (Machine.Rule { rule = callee; arg }) follow;
        register_call b callee follow arg;
        follow
    | Sem_pred code ->
        let nxt = new_state b rid in
        add_edge b cur (Machine.Pred (Machine.Sem code)) nxt;
        nxt
    | Prec_pred n ->
        let nxt = new_state b rid in
        add_edge b cur (Machine.Pred (Machine.Prec n)) nxt;
        nxt
    | Syn_pred _ -> (
        match Transform.canonical_synpred_rule e with
        | Some name ->
            let nxt = new_state b rid in
            add_edge b cur (Machine.Pred (Machine.Syn (rule_id name))) nxt;
            nxt
        | None ->
            invalid_arg
              "Atn.Build: syntactic predicate not lifted (run \
               Grammar.Transform.prepare first)")
    | Action { code; always } ->
        let id = new_action b code always in
        let nxt = new_state b rid in
        add_edge b cur (Machine.Act { id; always }) nxt;
        nxt
    | Block { alts; suffix } -> compile_block rid cur alts suffix

  and compile_seq rid cur elems =
    List.fold_left (compile_elem rid) cur elems

  and compile_block rid cur alts suffix : int =
    let rname = Sym.nonterm_name sym rid in
    match (suffix, alts) with
    | One, [ a ] -> compile_seq rid cur a.elems (* inline single-alt block *)
    | One, _ ->
        let d = new_state b rid in
        add_edge b cur Machine.Eps d;
        let e = new_state b rid in
        ignore
          (new_decision b ~state:d ~rule:rid ~nalts:(List.length alts)
             ~kind:Machine.Block_decision ~exit_alt:None
             ~label:(Printf.sprintf "%s: ( .. | .. )" rname));
        List.iter
          (fun a ->
            let s = new_state b rid in
            add_edge b d Machine.Eps s;
            let last = compile_seq rid s a.elems in
            add_edge b last Machine.Eps e)
          alts;
        e
    | Opt, _ ->
        let d = new_state b rid in
        add_edge b cur Machine.Eps d;
        let e = new_state b rid in
        let n = List.length alts in
        ignore
          (new_decision b ~state:d ~rule:rid ~nalts:(n + 1)
             ~kind:Machine.Opt_decision ~exit_alt:(Some (n + 1))
             ~label:(Printf.sprintf "%s: ( .. )?" rname));
        List.iter
          (fun a ->
            let s = new_state b rid in
            add_edge b d Machine.Eps s;
            let last = compile_seq rid s a.elems in
            add_edge b last Machine.Eps e)
          alts;
        add_edge b d Machine.Eps e;
        (* exit = last alternative *)
        e
    | Star, _ ->
        let d = new_state b rid in
        add_edge b cur Machine.Eps d;
        let e = new_state b rid in
        let n = List.length alts in
        ignore
          (new_decision b ~state:d ~rule:rid ~nalts:(n + 1)
             ~kind:Machine.Star_loop ~exit_alt:(Some (n + 1))
             ~label:(Printf.sprintf "%s: ( .. )*" rname));
        List.iter
          (fun a ->
            let s = new_state b rid in
            add_edge b d Machine.Eps s;
            let last = compile_seq rid s a.elems in
            add_edge b last Machine.Eps d (* loop back: re-test the decision *))
          alts;
        add_edge b d Machine.Eps e;
        e
    | Plus, _ ->
        (* body entry; body (a decision itself when multi-alt); loop decision
           with continue/exit alternatives *)
        let be = new_state b rid in
        add_edge b cur Machine.Eps be;
        let b_end =
          match alts with
          | [ a ] -> compile_seq rid be a.elems
          | _ ->
              let e' = new_state b rid in
              ignore
                (new_decision b ~state:be ~rule:rid ~nalts:(List.length alts)
                   ~kind:Machine.Block_decision ~exit_alt:None
                   ~label:(Printf.sprintf "%s: ( .. | .. ) in ( )+" rname));
              List.iter
                (fun a ->
                  let s = new_state b rid in
                  add_edge b be Machine.Eps s;
                  let last = compile_seq rid s a.elems in
                  add_edge b last Machine.Eps e')
                alts;
              e'
        in
        let l = new_state b rid in
        add_edge b b_end Machine.Eps l;
        let e = new_state b rid in
        ignore
          (new_decision b ~state:l ~rule:rid ~nalts:2 ~kind:Machine.Plus_loop
             ~exit_alt:(Some 2)
             ~label:(Printf.sprintf "%s: ( .. )+ continue" rname));
        add_edge b l Machine.Eps be;
        (* continue = alternative 1 *)
        add_edge b l Machine.Eps e;
        (* exit = alternative 2 *)
        e
  in

  (* Compile each rule body. *)
  List.iteri
    (fun rid (r : rule) ->
      let entry = entries.(rid) and stop = stops.(rid) in
      match r.rule_alts with
      | [ a ] ->
          let last = compile_seq rid entry a.elems in
          add_edge b last Machine.Eps stop
      | alts ->
          ignore
            (new_decision b ~state:entry ~rule:rid ~nalts:(List.length alts)
               ~kind:Machine.Rule_decision ~exit_alt:None
               ~label:(Printf.sprintf "rule %s" r.name));
          List.iter
            (fun a ->
              let s = new_state b rid in
              add_edge b entry Machine.Eps s;
              let last = compile_seq rid s a.elems in
              add_edge b last Machine.Eps stop)
            alts)
    g.rules;

  (* Augmented start: call the start rule, then EOF. *)
  let start_rule = rule_id g.start in
  let aug0 = new_state b (-1) in
  let aug1 = new_state b (-1) in
  let aug2 = new_state b (-1) in
  add_edge b aug0 (Machine.Rule { rule = start_rule; arg = None }) aug1;
  add_edge b aug1 (Machine.Term Sym.eof) aug2;
  register_call b start_rule aug1 None;

  (* Freeze. *)
  let trans =
    Array.init b.nstates (fun s -> Array.of_list (List.rev b.trans_tbl.(s)))
  in
  let decisions = Array.of_list (List.rev b.decisions_rev) in
  let decision_of_state = Array.make b.nstates (-1) in
  Array.iter (fun (d : Machine.decision) -> decision_of_state.(d.d_state) <- d.d_id) decisions;
  let callers = Array.make nrules [] in
  Hashtbl.iter
    (fun rule sites -> if rule < nrules then callers.(rule) <- List.rev sites)
    b.callers_tbl;
  let rules =
    Array.of_list
      (List.mapi
         (fun i (r : rule) ->
           Machine.
             {
               r_id = i;
               r_name = r.name;
               r_entry = entries.(i);
               r_stop = stops.(i);
               r_nalts = List.length r.rule_alts;
               r_parameterized = r.parameterized;
               r_is_synpred = Transform.is_synpred_rule r.name;
             })
         g.rules)
  in
  Machine.
    {
      sym;
      grammar = g;
      nstates = b.nstates;
      trans;
      state_rule = Array.sub b.state_rule_tbl 0 b.nstates;
      rules;
      start_rule;
      decisions;
      decision_of_state;
      callers;
      actions = Array.of_list (List.rev b.actions_rev);
      augmented_start = aug0;
    }
