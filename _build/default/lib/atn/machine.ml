(* Augmented transition networks (paper section 5.1).

   One submachine per rule: entry state p_A, stop state p_A'.  Nonterminal
   (rule) transitions act like function calls: taking a [Rule] edge pushes
   the edge's target (the follow state) and continues at the callee's entry
   state (Figure 6).  Predicate and action edges are epsilon-like for
   lookahead analysis; the runtime evaluates/executes them.

   States that begin a multi-alternative construct are decision states; the
   order of their outgoing transitions is the alternative order, which is
   how production precedence (section 3.1) is represented. *)

module Sym = Grammar.Sym

type pred =
  | Sem of string (* {code}? semantic predicate *)
  | Prec of int (* {p <= n}? precedence predicate *)
  | Syn of int (* (__synpredN)=> -- rule id of the lifted fragment *)

type edge =
  | Eps
  | Term of int (* terminal id; [Sym.wildcard] matches any token *)
  | Rule of { rule : int; arg : int option }
    (* transition target is the follow state pushed on call *)
  | Pred of pred
  | Act of { id : int; always : bool }

type decision_kind =
  | Rule_decision (* choice among a rule's productions *)
  | Block_decision (* ( a | b ) sub-block *)
  | Opt_decision (* ( ... )? with implicit exit alternative *)
  | Star_loop (* ( ... )* enter-or-exit, re-tested each iteration *)
  | Plus_loop (* ( ... )+ continue-or-exit after one iteration *)

type decision = {
  d_id : int;
  d_state : int;
  d_rule : int; (* owning rule *)
  d_nalts : int; (* total alternatives, including implicit exit *)
  d_kind : decision_kind;
  d_exit_alt : int option; (* 1-based alternative number that exits *)
  d_label : string;
}

type rule_info = {
  r_id : int;
  r_name : string;
  r_entry : int;
  r_stop : int;
  r_nalts : int;
  r_parameterized : bool;
  r_is_synpred : bool;
}

type t = {
  sym : Sym.t;
  grammar : Grammar.Ast.t; (* the prepared (transformed) grammar *)
  nstates : int;
  trans : (edge * int) array array; (* state -> ordered transitions *)
  state_rule : int array; (* owning rule of each state; -1 for augmented *)
  rules : rule_info array;
  start_rule : int;
  decisions : decision array;
  decision_of_state : int array; (* -1 if not a decision state *)
  callers : (int * int option) list array;
    (* rule -> (follow state, precedence arg) of every call site, including
       the synthetic EOF-augmented call of the start rule *)
  actions : (string * bool) array; (* action id -> (code, always) *)
  augmented_start : int; (* state calling the start rule, followed by EOF *)
}

let num_rules t = Array.length t.rules
let rule_name t r = t.rules.(r).r_name
let rule_by_name t name =
  let found = ref None in
  Array.iter (fun ri -> if ri.r_name = name then found := Some ri.r_id) t.rules;
  !found

let transitions t s = t.trans.(s)

let decision_of t s = t.decision_of_state.(s)

(* Alternative left-edge states of a decision, in alternative order. *)
let decision_alt_targets t (d : decision) : int array =
  Array.map snd t.trans.(d.d_state)

let is_stop_state t s =
  let r = t.state_rule.(s) in
  r >= 0 && t.rules.(r).r_stop = s

let pp_pred sym ppf = function
  | Sem code -> Fmt.pf ppf "{%s}?" code
  | Prec n -> Fmt.pf ppf "{p<=%d}?" n
  | Syn rule -> Fmt.pf ppf "(%s)=>" (Sym.nonterm_name sym rule)

let pp_edge sym ppf = function
  | Eps -> Fmt.string ppf "eps"
  | Term t -> Fmt.string ppf (Sym.term_name sym t)
  | Rule { rule; arg = None } -> Fmt.pf ppf "<%s>" (Sym.nonterm_name sym rule)
  | Rule { rule; arg = Some p } ->
      Fmt.pf ppf "<%s[%d]>" (Sym.nonterm_name sym rule) p
  | Pred p -> pp_pred sym ppf p
  | Act { id; always } -> Fmt.pf ppf "{act%d%s}" id (if always then "!!" else "")

let decision_kind_str = function
  | Rule_decision -> "rule"
  | Block_decision -> "block"
  | Opt_decision -> "opt"
  | Star_loop -> "star-loop"
  | Plus_loop -> "plus-loop"

let pp ppf t =
  Fmt.pf ppf "ATN: %d states, %d rules, %d decisions@." t.nstates
    (Array.length t.rules) (Array.length t.decisions);
  Array.iter
    (fun ri ->
      Fmt.pf ppf "rule %s: entry=%d stop=%d@." ri.r_name ri.r_entry ri.r_stop)
    t.rules;
  for s = 0 to t.nstates - 1 do
    Array.iter
      (fun (e, tgt) -> Fmt.pf ppf "  %d -%a-> %d@." s (pp_edge t.sym) e tgt)
      t.trans.(s)
  done
