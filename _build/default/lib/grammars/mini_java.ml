(* MiniJava: the Java1.5 stand-in (paper Figure 12), written in PEG mode
   ([backtrack=true]) like the paper's native ANTLR Java grammar.  Scaled
   down but structurally faithful: the decision mix preserves the paper's
   shape -- most decisions LL(1), a tail of LL(2+), and genuinely
   backtracking decisions at the classic Java trouble spots (field vs.
   method members, local-variable declaration vs. expression statement,
   generic type arguments vs. relational operators). *)

let name = "MiniJava"

let grammar_text =
  {|
grammar MiniJava;
options { backtrack=true; memoize=true; }

compilationUnit : packageDecl? importDecl* typeDecl* ;

packageDecl : 'package' qualifiedName ';' ;

importDecl : 'import' ('static')? qualifiedName ('.' '*')? ';' ;

qualifiedName : ID ('.' ID)* ;

typeDecl
  : classDecl
  | interfaceDecl
  | ';'
  ;

classDecl
  : modifiers 'class' ID typeParams?
    ('extends' typeRef)? ('implements' typeRefList)? classBody
  ;

interfaceDecl
  : modifiers 'interface' ID typeParams? ('extends' typeRefList)? classBody
  ;

typeParams : '<' ID (',' ID)* '>' ;

typeRefList : typeRef (',' typeRef)* ;

classBody : '{' member* '}' ;

member
  : fieldDecl
  | methodDecl
  | ctorDecl
  | classDecl
  | ';'
  ;

fieldDecl : modifiers typeRef variableDeclarators ';' ;

methodDecl
  : modifiers typeParams? returnType ID '(' formalParams? ')'
    ('throws' typeRefList)? (block | ';')
  ;

ctorDecl : modifiers ID '(' formalParams? ')' block ;

returnType : 'void' | typeRef ;

typeRef
  : (primitiveType | qualifiedName typeArgs?) ('[' ']')*
  ;

typeArgs : '<' typeRef (',' typeRef)* '>' ;

primitiveType
  : 'int' | 'boolean' | 'char' | 'long' | 'double' | 'float' | 'byte' | 'short'
  ;

modifiers : modifier* ;

modifier
  : 'public' | 'private' | 'protected' | 'static' | 'final' | 'abstract'
  | 'native' | 'synchronized' | 'transient' | 'volatile'
  ;

variableDeclarators : variableDeclarator (',' variableDeclarator)* ;

variableDeclarator : ID ('[' ']')* ('=' variableInit)? ;

variableInit : arrayInit | expression ;

arrayInit : '{' (variableInit (',' variableInit)*)? '}' ;

formalParams : formalParam (',' formalParam)* ;

formalParam : ('final')? typeRef ID ('[' ']')* ;

block : '{' statement* '}' ;

statement
  : block
  | 'if' parExpr statement (('else')=> 'else' statement)?
  | 'while' parExpr statement
  | 'do' statement 'while' parExpr ';'
  | 'for' '(' forInit? ';' expression? ';' expressionList? ')' statement
  | 'try' block catchClause* ('finally' block)?
  | 'switch' parExpr '{' switchGroup* '}'
  | 'return' expression? ';'
  | 'break' ID? ';'
  | 'continue' ID? ';'
  | 'throw' expression ';'
  | localVarDecl ';'
  | statementExpression ';'
  | ';'
  ;

catchClause : 'catch' '(' formalParam ')' block ;

switchGroup : switchLabel+ statement* ;

switchLabel : 'case' expression ':' | 'default' ':' ;

forInit : localVarDecl | expressionList ;

parExpr : '(' expression ')' ;

expressionList : expression (',' expression)* ;

statementExpression : expression ;

localVarDecl : ('final')? typeRef variableDeclarators ;

expression : conditionalExpr (assignmentOp expression)? ;

assignmentOp : '=' | '+=' | '-=' | '*=' | '/=' | '%=' | '&=' | '|=' | '^=' ;

conditionalExpr : conditionalOrExpr ('?' expression ':' expression)? ;

conditionalOrExpr : conditionalAndExpr ('||' conditionalAndExpr)* ;

conditionalAndExpr : inclusiveOrExpr ('&&' inclusiveOrExpr)* ;

inclusiveOrExpr : exclusiveOrExpr ('|' exclusiveOrExpr)* ;

exclusiveOrExpr : andExpr ('^' andExpr)* ;

andExpr : equalityExpr ('&' equalityExpr)* ;

equalityExpr : instanceOfExpr (('==' | '!=') instanceOfExpr)* ;

instanceOfExpr : relationalExpr ('instanceof' typeRef)? ;

relationalExpr : shiftExpr (('<=' | '>=' | '<' | '>') shiftExpr)* ;

shiftExpr : additiveExpr (('<<' | '>>') additiveExpr)* ;

additiveExpr : multiplicativeExpr (('+' | '-') multiplicativeExpr)* ;

multiplicativeExpr : unaryExpr (('*' | '/' | '%') unaryExpr)* ;

unaryExpr
  : ('+' | '-' | '!' | '~') unaryExpr
  | '++' unaryExpr
  | '--' unaryExpr
  | castExpr
  | postfixExpr
  ;

castExpr : '(' primitiveType ('[' ']')* ')' unaryExpr ;

postfixExpr : primary postfixOp* ('++' | '--')? ;

postfixOp
  : '.' ID arguments?
  | '[' expression ']'
  ;

primary
  : parExpr
  | literal
  | 'this' arguments?
  | 'super' '.' ID arguments?
  | 'new' creator
  | ID arguments?
  ;

creator : typeRef (arguments | arrayCreatorRest) ;

arrayCreatorRest : '[' expression ']' ('[' ']')* ;

arguments : '(' expressionList? ')' ;

literal
  : INT | FLOAT | STRING | CHAR | 'true' | 'false' | 'null'
  ;
|}

let lexer_config =
  {
    Runtime.Lexer_engine.default_config with
    float_token = Some "FLOAT";
    string_token = Some "STRING";
    char_token = Some "CHAR";
  }

let samples =
  [
    {|
package com.example.app;

import java.util.List;
import static java.lang.Math.*;

public class Greeter {
  private static final int LIMIT = 100;
  private List items;
  protected char sep = 'c';

  public Greeter(int limit) {
    this.limit = limit;
  }

  public int sum(int[] xs, int n) {
    int total = 0;
    for (int i = 0; i < n; i = i + 1) {
      total += xs[i];
    }
    return total;
  }

  public void greet(String who) {
    if (who == null) {
      who = "world";
    } else {
      log(who);
    }
    while (pending() && limit > 0) {
      limit = limit - 1;
    }
  }

  boolean pending() {
    return items.size() > 0;
  }
}

interface Shape {
  double area();
  void scale(double factor);
}

class Circle implements Shape {
  double radius;
  public double area() {
    return 3.14 * radius * radius;
  }
  public void scale(double factor) {
    radius = radius * factor;
    int cached = (int) radius;
    this.notify(cached, "scaled");
  }
}
|};
    {|
class Algorithms {
  static int fib(int n) {
    if (n < 2) {
      return n;
    }
    return fib(n - 1) + fib(n - 2);
  }

  static int[] copy(int[] src, int n) {
    int[] dst = new int[n];
    for (int i = 0; i < n; i++) {
      dst[i] = src[i];
    }
    return dst;
  }

  static void sort(int[] a, int n) {
    for (int i = 1; i < n; i++) {
      int key = a[i];
      int j = i - 1;
      while (j >= 0 && a[j] > key) {
        a[j + 1] = a[j];
        j = j - 1;
      }
      a[j + 1] = key;
    }
  }

  int dispatch(int kind) {
    switch (kind) {
      case 0:
        return fib(10);
      case 1:
      default:
        break;
    }
    try {
      risky();
    } catch (Exception e) {
      handle(e);
    } finally {
      cleanup();
    }
    do {
      tick();
    } while (busy());
    return done ? 1 : 0;
  }
}
|};
  ]

let idents =
  [|
    "alpha"; "beta"; "counter"; "data"; "elem"; "flag"; "gamma"; "helper";
    "index"; "job"; "kind"; "label"; "merge"; "node"; "obj"; "pivot"; "queue";
    "result"; "state"; "total"; "user"; "value"; "worker"; "xs"; "ys"; "zeta";
  |]

let sample_lexeme i = function
  | "ID" -> idents.(i mod Array.length idents)
  | "INT" -> string_of_int (i mod 1000)
  | "FLOAT" -> Printf.sprintf "%d.%d" (i mod 100) (i mod 10)
  | "STRING" -> "\"s\""
  | "CHAR" -> "'c'"
  | other -> other

let spec : Workload.spec =
  {
    name;
    grammar_text;
    lexer_config;
    samples;
    sample_lexeme;
    sem_preds = [];
    gen_start = None;
  }
