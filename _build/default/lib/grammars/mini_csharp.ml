(* MiniCSharp: the C# stand-in (paper Figure 12's commercial grammar).
   Not in PEG mode; like the commercial grammar the author places syntactic
   predicates manually where C# genuinely needs unbounded lookahead:

   - class members: field vs. method vs. property vs. constructor all start
     with [modifier* typeRef ID], and generic types make the type reference
     arbitrarily long, so the member decision is predicated on scans like
     [(modifier* typeRef ID '(')=>];
   - statements: local variable declaration vs. expression statement
     ([List<int> x = ...;] vs. [a < b ...;]), predicated with
     [(localVarDecl)=>]. *)

let name = "MiniCSharp"

let grammar_text =
  {|
grammar MiniCSharp;
options { memoize=true; }

compilationUnit : usingDirective* namespaceMember* ;

usingDirective : 'using' qname ';' ;

qname : ID ('.' ID)* ;

namespaceMember
  : namespaceDecl
  | typeDecl
  ;

namespaceDecl : 'namespace' qname '{' namespaceMember* '}' ;

typeDecl
  : modifier* ('class' | 'struct' | 'interface') ID typeParams?
    baseList? '{' member* '}'
  | modifier* 'enum' ID '{' enumBody? '}'
  ;

typeParams : '<' ID (',' ID)* '>' ;

baseList : ':' typeRef (',' typeRef)* ;

enumBody : ID ('=' expression)? (',' ID ('=' expression)?)* ;

modifier
  : 'public' | 'private' | 'protected' | 'internal' | 'static' | 'sealed'
  | 'abstract' | 'virtual' | 'override' | 'readonly'
  ;

member
  : (modifier* typeRef ID '(')=> methodDecl
  | (modifier* typeRef ID '{')=> propertyDecl
  | (modifier* ID '(')=> ctorDecl
  | (modifier* typeRef ID)=> fieldDecl
  | typeDecl
  | ';'
  ;

methodDecl
  : modifier* typeRef ID '(' formalParams? ')' (block | ';')
  ;

propertyDecl : modifier* typeRef ID '{' accessor+ '}' ;

accessor
  : 'get' (block | ';')
  | 'set' (block | ';')
  ;

ctorDecl : modifier* ID '(' formalParams? ')' block ;

fieldDecl : modifier* typeRef declarators ';' ;

declarators : declarator (',' declarator)* ;

declarator : ID ('=' variableInit)? ;

variableInit : expression | arrayInit ;

arrayInit : '{' (variableInit (',' variableInit)*)? '}' ;

formalParams : formalParam (',' formalParam)* ;

formalParam : ('ref' | 'out' | 'params')? typeRef ID ;

typeRef
  : ('void' | predefinedType | qname typeArgs?) rankSpecifier* ('?')?
  ;

typeArgs : '<' typeRef (',' typeRef)* '>' ;

rankSpecifier : '[' ']' ;

predefinedType
  : 'int' | 'long' | 'bool' | 'double' | 'float' | 'string' | 'char'
  | 'byte' | 'object' | 'decimal'
  ;

block : '{' statement* '}' ;

statement
  : block
  | 'if' '(' expression ')' statement (('else')=> 'else' statement)?
  | 'while' '(' expression ')' statement
  | 'do' statement 'while' '(' expression ')' ';'
  | 'for' '(' forInit? ';' expression? ';' expressionList? ')' statement
  | 'foreach' '(' typeRef ID 'in' expression ')' statement
  | 'switch' '(' expression ')' '{' switchSection* '}'
  | 'try' block catchClause* ('finally' block)?
  | 'return' expression? ';'
  | 'break' ';'
  | 'continue' ';'
  | 'throw' expression? ';'
  | 'using' '(' localVarDecl ')' statement
  | (localVarDecl ';')=> localVarDecl ';'
  | expression ';'
  | ';'
  ;

catchClause : 'catch' ('(' typeRef ID? ')')? block ;

switchSection : switchLabel+ statement* ;

switchLabel : 'case' expression ':' | 'default' ':' ;

forInit : (localVarDecl)=> localVarDecl | expressionList ;

localVarDecl : ('var' | typeRef) declarators ;

expressionList : expression (',' expression)* ;

expression
  : (unary assignOp)=> unary assignOp expression
  | conditional
  ;

assignOp : '=' | '+=' | '-=' | '*=' | '/=' | '%=' | '|=' | '&=' ;

conditional : nullCoalesce ('?' expression ':' expression)? ;

nullCoalesce : orExpr ('??' orExpr)* ;

orExpr : andExpr ('||' andExpr)* ;

andExpr : bitOrExpr ('&&' bitOrExpr)* ;

bitOrExpr : bitXorExpr ('|' bitXorExpr)* ;

bitXorExpr : bitAndExpr ('^' bitAndExpr)* ;

bitAndExpr : equality ('&' equality)* ;

equality : relational (('==' | '!=') relational)* ;

relational
  : shift (('<=' | '>=' | '<' | '>') shift | ('is' | 'as') typeRef)*
  ;

shift : additive (('<<' | '>>') additive)* ;

additive : multiplicative (('+' | '-') multiplicative)* ;

multiplicative : unary (('*' | '/' | '%') unary)* ;

unary
  : ('+' | '-' | '!' | '~') unary
  | '++' unary
  | '--' unary
  | ('(' predefinedType ')')=> '(' predefinedType ')' unary
  | postfix
  ;

postfix : primary postfixOp* ('++' | '--')? ;

postfixOp
  : '.' ID ((typeArgs)=> typeArgs)? arguments?
  | '[' expressionList ']'
  ;

primary
  : '(' expression ')'
  | literal
  | 'this' arguments?
  | 'base' '.' ID arguments?
  | 'new' typeRef (arguments | arrayCreator)?
  | 'typeof' '(' typeRef ')'
  | ID ((typeArgs)=> typeArgs)? arguments?
  ;

arrayCreator : '[' expressionList ']' rankSpecifier* arrayInit? ;

arguments : '(' argumentList? ')' ;

argumentList : argument (',' argument)* ;

argument : ('ref' | 'out')? expression ;

literal
  : INT | FLOAT | STRING | CHAR | 'true' | 'false' | 'null'
  ;
|}

let lexer_config =
  {
    Runtime.Lexer_engine.default_config with
    float_token = Some "FLOAT";
    string_token = Some "STRING";
    char_token = Some "CHAR";
  }

let samples =
  [
    {|
using System;
using System.Collections.Generic;

namespace Demo.Core {

  public enum Level { Low, Mid = 5, High }

  public interface IStore {
    int Count { get; }
    void Put(string key, int value);
  }

  public class Store : IStore {
    private Dictionary<string, int> cells = new Dictionary<string, int>();
    private static readonly int Limit = 1000;
    private int count;

    public Store(int seed) {
      count = seed;
    }

    public int Count {
      get { return count; }
      set { count = value; }
    }

    public void Put(string key, int value) {
      if (key == null) {
        throw new ArgumentException("key");
      }
      cells[key] = value;
      count++;
    }

    public int Sum(List<int> xs) {
      int total = 0;
      foreach (int x in xs) {
        total += x;
      }
      for (int i = 0; i < 3; i++) {
        total = total * 2 % Limit;
      }
      return total;
    }

    public double Ratio(int a, int b) {
      var denom = b == 0 ? 1 : b;
      double r = (double) a / denom;
      return r ?? 0.0;
    }

    public void Drain() {
      while (count > 0) {
        count--;
      }
      do {
        Tick();
      } while (Busy());
      try {
        Risky(out count);
      } catch (Exception e) {
        Log(e);
      } finally {
        count = 0;
      }
      switch (count) {
        case 0:
          break;
        default:
          count = Limit;
          break;
      }
      using (Handle h = Open()) {
        h.Touch();
      }
    }
  }
}
|};
    {|
using System;

namespace Demo.Pipeline {
  public interface IStage {
    string Name { get; }
    int Run(int input);
  }

  public sealed class Doubler : IStage {
    public string Name { get { return "doubler"; } }
    private static int calls;

    public int Run(int input) {
      calls++;
      return input << 1;
    }
  }

  public class Pipeline {
    private List<IStage> stages = new List<IStage>();
    private Dictionary<string, int> scores;
    public readonly int Limit = 16;

    public Pipeline(int n) {
      for (int i = 0; i < n; i++) {
        stages[i] = new Doubler();
      }
    }

    public int RunAll(int seed) {
      int acc = seed;
      foreach (IStage s in stages) {
        acc = s.Run(acc) % Limit;
        if (acc == 0) {
          continue;
        }
        var label = acc > 8 ? "high" : "low";
        scores[label] += acc;
      }
      do {
        acc--;
      } while (acc > 0 && !Busy());
      return acc ?? 0;
    }
  }
}
|};
  ]

let idents =
  [|
    "agg"; "bus"; "ctx"; "dto"; "env"; "fld"; "gen"; "hub"; "imp"; "jwt";
    "ker"; "lnk"; "mon"; "net"; "orm"; "pool"; "qry"; "repo"; "svc"; "tkn";
    "uow"; "vm"; "wfl"; "xml"; "yld"; "zip";
  |]

let sample_lexeme i = function
  | "ID" -> idents.(i mod Array.length idents)
  | "INT" -> string_of_int (i mod 1000)
  | "FLOAT" -> Printf.sprintf "%d.%d" (i mod 100) (i mod 10)
  | "STRING" -> "\"s\""
  | "CHAR" -> "'c'"
  | other -> other

let spec : Workload.spec =
  {
    name;
    grammar_text;
    lexer_config;
    samples;
    sample_lexeme;
    sem_preds = [];
    gen_start = None;
  }
