(* MiniSQL: the TSQL stand-in (paper Figure 12's commercial T-SQL grammar).
   Like the commercial grammar it is *not* in PEG mode: the author places
   syntactic predicates manually at the few spots that need them, and the
   rest of the grammar is LL(k).  The paper's TSQL profile -- 94% fixed
   lookahead, a few cyclic decisions, a small set of backtracking
   decisions -- is reproduced by:

   - keyword-led statements (LL(1));
   - [qname '.' '*'] select items, distinguishable from expressions only by
     scanning over the dotted-name loop (cyclic DFA);
   - arbitrarily nested derived tables [( ( SELECT ... ) ... )], where a
     manual syntactic predicate performs the unbounded-lookahead check. *)

let name = "MiniSQL"

let grammar_text =
  {|
grammar MiniSQL;
options { memoize=true; }

batch : sqlStatement* ;

sqlStatement
  : queryExpression ';'
  | insertStatement ';'
  | updateStatement ';'
  | deleteStatement ';'
  | createTable ';'
  | createIndex ';'
  | dropStatement ';'
  | declareStatement ';'
  | setStatement ';'
  | ifStatement
  | whileStatement
  | beginEndBlock
  | ';'
  ;

queryExpression : queryTerm ('UNION' ('ALL')? queryTerm)* ;

queryTerm
  : selectStatement
  | '(' queryExpression ')'
  ;

selectStatement
  : 'SELECT' ('DISTINCT' | 'ALL')? ('TOP' INT)? selectList
    fromClause? whereClause? groupByClause? havingClause? orderByClause?
  ;

selectList : selectItem (',' selectItem)* ;

selectItem
  : '*'
  | qname '.' '*'
  | expression (('AS')? ID)?
  ;

qname : ID ('.' ID)* ;

fromClause : 'FROM' tableSource (',' tableSource)* ;

tableSource : fromItem joinPart* ;

fromItem
  : ('(' queryExpression ')')=> '(' queryExpression ')' ('AS')? ID
  | '(' tableSource ')'
  | qname (('AS')? ID)?
  ;

joinPart
  : ('INNER' | 'LEFT' ('OUTER')? | 'RIGHT' ('OUTER')? | 'FULL')? 'JOIN'
    fromItem 'ON' expression
  | 'CROSS' 'JOIN' fromItem
  ;

whereClause : 'WHERE' expression ;

groupByClause : 'GROUP' 'BY' expression (',' expression)* ;

havingClause : 'HAVING' expression ;

orderByClause : 'ORDER' 'BY' orderItem (',' orderItem)* ;

orderItem : expression ('ASC' | 'DESC')? ;

insertStatement
  : 'INSERT' ('INTO')? qname ('(' idList ')')?
    ('VALUES' '(' expressionList ')' | queryExpression)
  ;

idList : ID (',' ID)* ;

updateStatement
  : 'UPDATE' qname 'SET' setItem (',' setItem)* whereClause?
  ;

setItem : qname '=' expression ;

deleteStatement : 'DELETE' 'FROM' qname whereClause? ;

createTable : 'CREATE' 'TABLE' qname '(' columnDef (',' columnDef)* ')' ;

columnDef : ID typeName columnOption* ;

typeName
  : 'INTTYPE'
  | 'BIGINT'
  | 'FLOATTYPE'
  | 'BIT'
  | 'DATETIME'
  | 'VARCHAR' '(' INT ')'
  | 'CHARTYPE' '(' INT ')'
  | 'DECIMAL' '(' INT ',' INT ')'
  ;

columnOption
  : 'NOT' 'NULL'
  | 'NULL'
  | 'PRIMARY' 'KEY'
  | 'UNIQUE'
  | 'DEFAULT' literal
  | 'IDENTITY'
  ;

createIndex
  : 'CREATE' ('UNIQUE')? 'INDEX' ID 'ON' qname '(' idList ')'
  ;

dropStatement : 'DROP' ('TABLE' | 'INDEX') qname ;

declareStatement : 'DECLARE' VAR typeName ('=' expression)? ;

setStatement : 'SET' VAR '=' expression ;

ifStatement
  : 'IF' expression (beginEndBlock | sqlStatement)
    (('ELSE')=> 'ELSE' (beginEndBlock | sqlStatement))?
  ;

whileStatement : 'WHILE' expression beginEndBlock ;

beginEndBlock : 'BEGIN' sqlStatement* 'END' ;

expression : orTerm ('OR' orTerm)* ;

orTerm : andTerm ('AND' andTerm)* ;

andTerm
  : 'NOT' andTerm
  | predicate
  ;

predicate
  : addExpr
    ( ('=' | '<>' | '!=' | '<=' | '>=' | '<' | '>') addExpr
    | 'BETWEEN' addExpr 'AND' addExpr
    | 'LIKE' addExpr
    | 'IN' '(' inList ')'
    | 'IS' ('NOT')? 'NULL'
    )?
  ;

inList
  : queryExpression
  | expressionList
  ;

expressionList : expression (',' expression)* ;

addExpr : mulExpr (('+' | '-') mulExpr)* ;

mulExpr : unaryExpr (('*' | '/' | '%') unaryExpr)* ;

unaryExpr
  : '-' unaryExpr
  | primary
  ;

primary
  : literal
  | VAR
  | caseExpression
  | functionCall
  | qname
  | ('(' queryExpression ')')=> '(' queryExpression ')'
  | '(' expression ')'
  ;

functionCall
  : ('COUNT' | 'SUM' | 'AVG' | 'MIN' | 'MAX') '(' ('*' | expression) ')'
  | ID '(' expressionList? ')'
  ;

caseExpression
  : 'CASE' whenClause+ ('ELSE' expression)? 'END'
  | 'CASE' expression whenClause+ ('ELSE' expression)? 'END'
  ;

whenClause : 'WHEN' expression 'THEN' expression ;

literal : INT | FLOAT | STRING | 'NULL' | 'TRUE' | 'FALSE' ;
|}

let lexer_config =
  {
    Runtime.Lexer_engine.default_config with
    float_token = Some "FLOAT";
    string_token = Some "STRING";
    string_quote = '\''; (* SQL string literals are single-quoted *)
    at_ident_token = Some "VAR"; (* T-SQL @variables *)
    char_token = None;
    line_comments = [ "--" ];
    block_comments = [ ("/*", "*/") ];
  }

let samples =
  [
    {|
CREATE TABLE dbo.users (
  id INTTYPE NOT NULL PRIMARY KEY,
  name VARCHAR ( 64 ) NOT NULL,
  age INTTYPE NULL,
  balance DECIMAL ( 10 , 2 ) DEFAULT 0,
  active BIT
) ;

CREATE UNIQUE INDEX idx_users_name ON dbo.users ( name ) ;

DECLARE @limit INTTYPE = 10 ;
DECLARE @total FLOATTYPE ;
SET @total = 0 ;

INSERT INTO dbo.users ( id , name , age ) VALUES ( 1 , 'ann' , 34 ) ;
INSERT dbo.users SELECT id , name , age FROM staging.users WHERE age > 18 ;

SELECT DISTINCT TOP 10 u.id , u.name AS label , u.age * 2
FROM dbo.users u
WHERE u.age BETWEEN 18 AND 65 AND u.name LIKE 'a'
ORDER BY u.age DESC , u.name ;

SELECT t.* , COUNT ( * ) AS n
FROM ( SELECT id , age FROM dbo.users WHERE active = 1 ) AS t
GROUP BY t.age
HAVING COUNT ( * ) > 1 ;

SELECT u.name , o.total
FROM dbo.users u INNER JOIN ( ( SELECT user_id , SUM ( amount ) AS total
                               FROM dbo.orders GROUP BY user_id ) o )
ON u.id = o.user_id ;

UPDATE dbo.users SET balance = balance + 10 , age = age + 1 WHERE id IN ( 1 , 2 , 3 ) ;

DELETE FROM dbo.users WHERE age IS NOT NULL AND NOT active = 1 ;

IF @total > 100
BEGIN
  UPDATE dbo.users SET balance = 0 WHERE id = 1 ;
END
ELSE
BEGIN
  SET @total = @total + 1 ;
END

WHILE @limit > 0
BEGIN
  SET @limit = @limit - 1 ;
  SELECT CASE WHEN @limit % 2 = 0 THEN 'even' ELSE 'odd' END ;
END

DROP INDEX idx_users_name ;
DROP TABLE dbo.users ;

SELECT id FROM dbo.users WHERE active = 1
UNION ALL
SELECT id FROM archive.users ;

( SELECT name FROM dbo.users ) UNION ( SELECT name FROM archive.users ) ;

SELECT x.id
FROM ( ( SELECT id FROM dbo.users ) UNION ( SELECT id FROM archive.users ) ) AS x
WHERE x.id IN ( SELECT id FROM allow_list ) AND x.id > ( SELECT MIN ( id ) FROM dbo.users ) ;
|};
    {|
CREATE TABLE sales.orders (
  order_id BIGINT NOT NULL PRIMARY KEY IDENTITY,
  user_id INTTYPE NOT NULL,
  placed_at DATETIME,
  total DECIMAL ( 12 , 2 ) DEFAULT 0.0,
  note VARCHAR ( 255 ) NULL
) ;

DECLARE @cutoff DATETIME ;
DECLARE @bucket INTTYPE = 0 ;

SELECT o.user_id , COUNT ( * ) AS orders , SUM ( o.total ) AS spent ,
       CASE @bucket WHEN 0 THEN 'new' WHEN 1 THEN 'repeat' ELSE 'vip' END
FROM sales.orders o
    LEFT OUTER JOIN dbo.users u ON o.user_id = u.id
    CROSS JOIN dbo.regions
WHERE o.total >= 100 OR NOT o.note IS NULL
GROUP BY o.user_id
HAVING SUM ( o.total ) > 1000
ORDER BY spent DESC ;

IF ( SELECT COUNT ( * ) FROM sales.orders ) > 0
  UPDATE sales.orders SET note = 'bulk' WHERE total BETWEEN 10 AND 20 ;
ELSE
  INSERT INTO sales.orders ( user_id , total ) VALUES ( 1 , 9.99 ) ;

WHILE @bucket < 3
BEGIN
  SET @bucket = @bucket + 1 ;
  DELETE FROM sales.orders WHERE user_id = @bucket AND total < 1 ;
END
|};
  ]

let idents =
  [|
    "accounts"; "batch_no"; "city"; "dept"; "emp"; "flagged"; "grp"; "hits";
    "items"; "jrn"; "kpi"; "ledger"; "metric"; "notes"; "orders"; "price";
    "qty"; "region"; "sales"; "tags"; "units"; "vendors"; "widgets"; "xact";
    "yield_pct"; "zone";
  |]

let sample_lexeme i = function
  | "ID" -> idents.(i mod Array.length idents)
  | "VAR" -> "@" ^ idents.(i mod Array.length idents)
  | "INT" -> string_of_int (i mod 1000)
  | "FLOAT" -> Printf.sprintf "%d.%d" (i mod 100) (i mod 10)
  | "STRING" -> "'s'"
  | other -> other

let spec : Workload.spec =
  {
    name;
    grammar_text;
    lexer_config;
    samples;
    sample_lexeme;
    sem_preds = [];
    gen_start = None;
  }
