(* RatsC: the C-grammar stand-in (paper Figure 12's RatsC, a Rats! PEG
   grammar converted to ANTLR syntax).  PEG mode throughout, preserving the
   property the paper highlights: declarations and definitions look the same
   from the left edge, so [externalDecl] backtracks across an entire
   function definition before settling (the 7,968-token lookahead event of
   Table 3).  Typedefs are structural here (no symbol table), as in the
   Rats!-converted grammar. *)

let name = "RatsC"

let grammar_text =
  {|
grammar RatsC;
options { backtrack=true; memoize=true; }

translationUnit : externalDecl* ;

externalDecl
  : functionDefinition
  | declaration
  ;

functionDefinition
  : declSpecifiers declarator declaration* compoundStatement
  ;

declaration : declSpecifiers initDeclaratorList? ';' ;

declSpecifiers : declSpecifier+ ;

declSpecifier
  : storageClassSpecifier
  | typeQualifier
  | typeSpecifier
  ;

storageClassSpecifier : 'typedef' | 'extern' | 'static' | 'auto' | 'register' ;

typeQualifier : 'const' | 'volatile' ;

typeSpecifier
  : 'void' | 'char' | 'short' | 'int' | 'long' | 'float' | 'double'
  | 'signed' | 'unsigned'
  | structOrUnionSpecifier
  | enumSpecifier
  | {isTypeName()}? ID
  ;

structOrUnionSpecifier
  : ('struct' | 'union') ID? ('{' structDeclaration+ '}')?
  ;

structDeclaration : specifierQualifierList structDeclaratorList ';' ;

specifierQualifierList : (typeQualifier | typeSpecifier)+ ;

structDeclaratorList : structDeclarator (',' structDeclarator)* ;

structDeclarator : declarator (':' constantExpression)? | ':' constantExpression ;

enumSpecifier : 'enum' ID? ('{' enumerator (',' enumerator)* '}')? ;

enumerator : ID ('=' constantExpression)? ;

initDeclaratorList : initDeclarator (',' initDeclarator)* ;

initDeclarator : declarator ('=' initializer)? ;

initializer : assignmentExpression | '{' initializer (',' initializer)* '}' ;

declarator : pointer? directDeclarator ;

pointer : ('*' typeQualifier*)+ ;

directDeclarator
  : (ID | '(' declarator ')') declaratorSuffix*
  ;

declaratorSuffix
  : '[' constantExpression? ']'
  | '(' parameterTypeList? ')'
  ;

parameterTypeList : parameterList (',' '...')? ;

parameterList : parameterDeclaration (',' parameterDeclaration)* ;

parameterDeclaration
  : declSpecifiers (declarator | abstractDeclarator)?
  ;

abstractDeclarator
  : pointer directAbstractDeclarator?
  | directAbstractDeclarator
  ;

directAbstractDeclarator
  : ('(' abstractDeclarator ')' | abstractDeclaratorSuffix) abstractDeclaratorSuffix*
  ;

abstractDeclaratorSuffix
  : '[' constantExpression? ']'
  | '(' parameterTypeList? ')'
  ;

typeName : specifierQualifierList abstractDeclarator? ;

compoundStatement : '{' declaration* statement* '}' ;

statement
  : compoundStatement
  | 'if' '(' expression ')' statement (('else')=> 'else' statement)?
  | 'switch' '(' expression ')' statement
  | 'while' '(' expression ')' statement
  | 'do' statement 'while' '(' expression ')' ';'
  | 'for' '(' expression? ';' expression? ';' expression? ')' statement
  | 'goto' ID ';'
  | 'continue' ';'
  | 'break' ';'
  | 'return' expression? ';'
  | 'case' constantExpression ':' statement
  | 'default' ':' statement
  | ID ':' statement
  | expression ';'
  | ';'
  ;

expression : assignmentExpression (',' assignmentExpression)* ;

constantExpression : conditionalExpression ;

assignmentExpression
  : unaryExpression assignmentOperator assignmentExpression
  | conditionalExpression
  ;

assignmentOperator
  : '=' | '*=' | '/=' | '%=' | '+=' | '-=' | '<<=' | '>>=' | '&=' | '^=' | '|='
  ;

conditionalExpression
  : logicalOrExpression ('?' expression ':' conditionalExpression)?
  ;

logicalOrExpression : logicalAndExpression ('||' logicalAndExpression)* ;

logicalAndExpression : inclusiveOrExpression ('&&' inclusiveOrExpression)* ;

inclusiveOrExpression : exclusiveOrExpression ('|' exclusiveOrExpression)* ;

exclusiveOrExpression : andExpression ('^' andExpression)* ;

andExpression : equalityExpression ('&' equalityExpression)* ;

equalityExpression
  : relationalExpression (('==' | '!=') relationalExpression)*
  ;

relationalExpression
  : shiftExpression (('<=' | '>=' | '<' | '>') shiftExpression)*
  ;

shiftExpression : additiveExpression (('<<' | '>>') additiveExpression)* ;

additiveExpression
  : multiplicativeExpression (('+' | '-') multiplicativeExpression)*
  ;

multiplicativeExpression
  : castExpression (('*' | '/' | '%') castExpression)*
  ;

castExpression
  : '(' typeName ')' castExpression
  | unaryExpression
  ;

unaryExpression
  : postfixExpression
  | '++' unaryExpression
  | '--' unaryExpression
  | unaryOperator castExpression
  | 'sizeof' ('(' typeName ')' | unaryExpression)
  ;

unaryOperator : '&' | '*' | '+' | '-' | '~' | '!' ;

postfixExpression : primaryExpression postfixSuffix* ;

postfixSuffix
  : '[' expression ']'
  | '(' argumentExpressionList? ')'
  | '.' ID
  | '->' ID
  | '++'
  | '--'
  ;

argumentExpressionList
  : assignmentExpression (',' assignmentExpression)*
  ;

primaryExpression : ID | INT | FLOAT | CHAR | STRING | '(' expression ')' ;
|}

let lexer_config =
  {
    Runtime.Lexer_engine.default_config with
    float_token = Some "FLOAT";
    string_token = Some "STRING";
    char_token = Some "CHAR";
  }

let samples =
  [
    {|
typedef unsigned long size_t;

static const int table[4] = { 1, 2, 4, 8 };

struct point {
  int x;
  int y;
  struct point *next;
};

enum color { RED, GREEN = 2, BLUE };

extern int printf();

static int clamp(int v, int lo, int hi) {
  if (v < lo) {
    return lo;
  } else if (v > hi) {
    return hi;
  }
  return v;
}

unsigned hash(const char *s, unsigned n) {
  unsigned h = 0;
  unsigned i;
  for (i = 0; i < n; i++) {
    h = h * 31 + (unsigned) s[i];
  }
  return h;
}

int main(int argc, char **argv) {
  struct point p;
  struct point *q = &p;
  int sum = 0;
  int i = 0;
  p.x = 1;
  q->y = 2;
  while (i < argc) {
    sum += clamp(i, 0, 10);
    i++;
  }
  switch (sum % 3) {
    case 0: sum = sum << 1; break;
    case 1: sum = sum >> 1; break;
    default: sum = ~sum; break;
  }
  do {
    sum--;
  } while (sum > 0 && *argv != 0);
  return sizeof(struct point) > 8 ? sum : -sum;
}
|};
    {|
typedef struct node node_t;

struct node {
  int value;
  struct node *left;
  struct node *right;
};

static int depth(struct node *t) {
  int l;
  int r;
  if (t == 0) {
    return 0;
  }
  l = depth(t->left);
  r = depth(t->right);
  return 1 + (l > r ? l : r);
}

void visit(struct node *t, void (*f)(int)) {
  if (t != 0) {
    visit(t->left, f);
    f(t->value);
    visit(t->right, f);
  }
}

int sum3(int a, int b, int c);

int sum3(int a, int b, int c) {
  int acc = 0;
  acc += a, acc += b, acc += c;
  return acc;
}
|};
  ]

(* The one semantic predicate of the paper's C grammar (section 4.2): is the
   next input symbol a typedef'd name?  The benchmark environment supplies a
   fixed typedef table; samples and the generator draw type names from it
   and ordinary identifiers from elsewhere. *)
let type_names = [ "size_t"; "node_t"; "bool_t"; "byte_t" ]

let sem_preds =
  [
    ( "isTypeName()",
      fun (la1 : Runtime.Token.t) -> List.mem la1.Runtime.Token.text type_names
    );
  ]

let idents =
  [|
    "acc"; "buf"; "cur"; "dst"; "err"; "fd"; "gap"; "head"; "idx"; "job";
    "key"; "len"; "mid"; "num"; "out"; "ptr"; "qty"; "row"; "src"; "tmp";
    "used"; "vec"; "walk"; "xs"; "yy"; "zz";
  |]

let sample_lexeme i = function
  | "ID" -> idents.(i mod Array.length idents)
  | "INT" -> string_of_int (i mod 512)
  | "FLOAT" -> Printf.sprintf "%d.%d" (i mod 32) (i mod 10)
  | "STRING" -> "\"s\""
  | "CHAR" -> "'c'"
  | other -> other

let spec : Workload.spec =
  {
    name;
    grammar_text;
    lexer_config;
    samples;
    sample_lexeme;
    sem_preds;
    gen_start = None;
  }
