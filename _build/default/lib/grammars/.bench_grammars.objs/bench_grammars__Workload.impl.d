lib/grammars/workload.ml: Array Fmt Grammar List Llstar Random Runtime String
