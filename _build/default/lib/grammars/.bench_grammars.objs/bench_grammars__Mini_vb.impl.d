lib/grammars/mini_vb.ml: Array Printf Runtime Workload
