lib/grammars/rats_c.ml: Array List Printf Runtime Workload
