lib/grammars/mini_java.ml: Array Printf Runtime Workload
