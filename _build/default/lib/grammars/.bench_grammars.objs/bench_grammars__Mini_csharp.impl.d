lib/grammars/mini_csharp.ml: Array Printf Runtime Workload
