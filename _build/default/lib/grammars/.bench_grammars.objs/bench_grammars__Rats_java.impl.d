lib/grammars/rats_java.ml: Array Printf Runtime Workload
