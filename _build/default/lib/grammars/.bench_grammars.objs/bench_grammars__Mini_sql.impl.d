lib/grammars/mini_sql.ml: Array Printf Runtime Workload
