(* RatsJava: the second Java grammar of the paper's suite (Figure 12), a
   Rats! PEG grammar converted to ANTLR syntax.  Deliberately structured the
   PEG way rather than the hand-factored LL way: unfactored ordered choices
   that rely on backtracking, the style a PEG author writes because ordered
   choice makes factoring unnecessary.  Exercises more backtracking than
   MiniJava on the same language (the paper's Table 3 shows RatsJava's
   parsers backtrack an order of magnitude more often than Java1.5's). *)

let name = "RatsJava"

let grammar_text =
  {|
grammar RatsJava;
options { backtrack=true; memoize=true; }

compilationUnit : packageDecl? importDecl* typeDecl* ;

packageDecl : 'package' qname ';' ;

importDecl : 'import' qname ('.' '*')? ';' ;

qname : ID ('.' ID)* ;

typeDecl : modifier* 'class' ID ('extends' type)? classBody | ';' ;

classBody : '{' member* '}' ;

member
  : modifier* type ID '(' params? ')' block
  | modifier* type ID '(' params? ')' ';'
  | modifier* type declarators ';'
  | modifier* 'void' ID '(' params? ')' block
  | modifier* ID '(' params? ')' block
  | ';'
  ;

modifier : 'public' | 'private' | 'protected' | 'static' | 'final' | 'abstract' ;

type : ('int' | 'boolean' | 'char' | 'double' | qname) ('[' ']')* ;

declarators : declarator (',' declarator)* ;

declarator : ID ('=' expression)? ;

params : param (',' param)* ;

param : type ID ;

block : '{' statement* '}' ;

statement
  : block
  | 'if' '(' expression ')' statement 'else' statement
  | 'if' '(' expression ')' statement
  | 'while' '(' expression ')' statement
  | 'for' '(' forInit? ';' expression? ';' exprList? ')' statement
  | 'return' expression ';'
  | 'return' ';'
  | 'break' ';'
  | 'continue' ';'
  | 'throw' expression ';'
  | type declarators ';'
  | expression ';'
  | ';'
  ;

forInit : type declarators | exprList ;

exprList : expression (',' expression)* ;

expression
  : unary assignOp expression
  | ternary
  ;

assignOp : '=' | '+=' | '-=' | '*=' | '/=' ;

ternary : orExpr ('?' expression ':' expression)? ;

orExpr : andExpr ('||' andExpr)* ;

andExpr : eqExpr ('&&' eqExpr)* ;

eqExpr : relExpr (('==' | '!=') relExpr)* ;

relExpr : addExpr (('<=' | '>=' | '<' | '>') addExpr)* ;

addExpr : mulExpr (('+' | '-') mulExpr)* ;

mulExpr : unary (('*' | '/' | '%') unary)* ;

unary
  : ('+' | '-' | '!') unary
  | '(' ('int' | 'boolean' | 'char' | 'double') ')' unary
  | postfix
  ;

postfix : primary suffix* ;

suffix
  : '.' ID '(' exprList? ')'
  | '.' ID
  | '[' expression ']'
  | '++'
  | '--'
  ;

primary
  : '(' expression ')'
  | 'new' type '(' exprList? ')'
  | 'new' type '[' expression ']'
  | ID '(' exprList? ')'
  | ID
  | 'this'
  | INT
  | FLOAT
  | STRING
  | CHAR
  | 'true'
  | 'false'
  | 'null'
  ;
|}

let lexer_config =
  {
    Runtime.Lexer_engine.default_config with
    float_token = Some "FLOAT";
    string_token = Some "STRING";
    char_token = Some "CHAR";
  }

let samples =
  [
    {|
package demo.pegstyle;

import java.util.List;

public class Matrix {
  private double[] cells;
  private int rows, cols;

  public Matrix(int r, int c) {
    rows = r;
    cols = c;
    cells = new double[r];
  }

  double get(int r, int c) {
    return cells[r * cols + c];
  }

  void set(int r, int c, double v) {
    cells[r * cols + c] = v;
  }

  double trace() {
    double acc = 0.0;
    for (int i = 0; i < rows; i++) {
      acc += this.get(i, i);
    }
    return acc;
  }

  boolean isSquare() {
    if (rows == cols) {
      return true;
    } else {
      return false;
    }
  }
}

class Runner {
  static int steps;

  public static void main(String[] args) {
    Matrix m = new Matrix(3, 3);
    int i = 0;
    while (i < 3) {
      m.set(i, i, 1.0);
      i = i + 1;
    }
    steps = m.isSquare() ? (int) m.trace() : -1;
  }
}
|};
    {|
package demo.pegstyle;

class Tokenizer {
  private char[] buf;
  private int pos, mark;

  boolean done() {
    return pos >= buf.length;
  }

  char peek() {
    if (this.done()) {
      return 'e';
    }
    return buf[pos];
  }

  int scanNumber() {
    int value = 0;
    while (!done()) {
      int d = digit(peek());
      if (d < 0) {
        break;
      }
      value = value * 10 + d;
      pos++;
    }
    return value;
  }

  int digit(char c) {
    for (int i = 0; i < 10; i = i + 1) {
      if (codes[i] == c) {
        return i;
      }
    }
    return -1;
  }

  void reset() {
    pos = mark;
    errors = 0.0;
    throw fatal("reset");
  }
}
|};
  ]

let idents =
  [|
    "arr"; "bag"; "cnt"; "dim"; "ent"; "fix"; "grid"; "hit"; "it"; "jmp";
    "keys"; "lim"; "map"; "nxt"; "ord"; "pos"; "quo"; "ref"; "sz"; "tab";
    "unit"; "vals"; "w"; "xx"; "yy"; "zz";
  |]

let sample_lexeme i = function
  | "ID" -> idents.(i mod Array.length idents)
  | "INT" -> string_of_int (i mod 256)
  | "FLOAT" -> Printf.sprintf "%d.%d" (i mod 16) (i mod 10)
  | "STRING" -> "\"s\""
  | "CHAR" -> "'c'"
  | other -> other

let spec : Workload.spec =
  {
    name;
    grammar_text;
    lexer_config;
    samples;
    sample_lexeme;
    sem_preds = [];
    gen_start = None;
  }
