(* MiniVB: the VB.NET stand-in (paper Figure 12's commercial grammar).
   VB's keyword-led, line-oriented syntax is why the paper's VB.NET grammar
   is 95% fixed-lookahead with only a handful of backtracking decisions.
   Faithfully line-oriented: the lexer emits an NL token per newline run and
   every statement ends with one.

   The one manually predicated decision mirrors the commercial grammar's
   assignment-vs-call problem: [a.b(i).c = e] (assignment to an arbitrarily
   long lvalue) versus [a.b(i).c] (call statement) requires scanning over
   the lvalue, so the alternative is gated with [(lvalue '=')=>]. *)

let name = "MiniVB"

let grammar_text =
  {|
grammar MiniVB;
options { memoize=true; }

compilationUnit : NL? importsDecl* typeBlock* ;

importsDecl : 'Imports' qname NL ;

qname : ID ('.' ID)* ;

typeBlock : moduleDecl | classDecl ;

moduleDecl : 'Module' ID NL memberDecl* 'End' 'Module' NL ;

classDecl
  : modifier* 'Class' ID NL ('Inherits' qname NL)? memberDecl*
    'End' 'Class' NL
  ;

memberDecl
  : fieldDecl
  | subDecl
  | functionDecl
  | propertyDecl
  | classDecl
  ;

modifier
  : 'Public' | 'Private' | 'Protected' | 'Friend' | 'Shared' | 'Overridable'
  ;

fieldDecl : modifier* ('Dim')? ID 'As' typeName ('=' expression)? NL ;

subDecl
  : modifier* 'Sub' ID '(' paramList? ')' NL statement* 'End' 'Sub' NL
  ;

functionDecl
  : modifier* 'Function' ID '(' paramList? ')' 'As' typeName NL
    statement* 'End' 'Function' NL
  ;

propertyDecl
  : modifier* 'Property' ID 'As' typeName NL getAccessor setAccessor?
    'End' 'Property' NL
  ;

getAccessor : 'Get' NL statement* 'End' 'Get' NL ;

setAccessor : 'Set' '(' param ')' NL statement* 'End' 'Set' NL ;

paramList : param (',' param)* ;

param : ('ByVal' | 'ByRef')? ID 'As' typeName ;

typeName
  : ('Integer' | 'Long' | 'Double' | 'Boolean' | 'String' | 'Object' | qname)
    ('(' ')')?
  ;

statement
  : 'Dim' ID 'As' typeName ('=' expression)? NL
  | 'If' expression 'Then' NL statement* elseIfPart* elsePart? 'End' 'If' NL
  | 'While' expression NL statement* 'End' 'While' NL
  | 'For' ID '=' expression 'To' expression ('Step' expression)? NL
    statement* 'Next' NL
  | 'For' 'Each' ID 'In' expression NL statement* 'Next' NL
  | 'Do' NL statement* 'Loop' ('While' expression)? NL
  | 'Select' 'Case' expression NL caseBlock* 'End' 'Select' NL
  | 'Try' NL statement* catchPart* ('Finally' NL statement*)? 'End' 'Try' NL
  | 'Return' expression? NL
  | 'Exit' ('Sub' | 'Function' | 'While' | 'For' | 'Do') NL
  | 'Throw' expression NL
  | 'Call' postfix NL
  | (lvalue '=')=> lvalue '=' expression NL
  | postfix NL
  ;

elseIfPart : 'ElseIf' expression 'Then' NL statement* ;

elsePart : 'Else' NL statement* ;

caseBlock
  : 'Case' ('Else' | expressionList) NL statement*
  ;

expressionList : expression (',' expression)* ;

catchPart : 'Catch' ID 'As' typeName NL statement* ;

lvalue : ID lvalueSuffix* ;

lvalueSuffix : '.' ID | '(' expressionList? ')' ;

expression : orElseExpr ;

orElseExpr : andAlsoExpr (('OrElse' | 'Or') andAlsoExpr)* ;

andAlsoExpr : notExpr (('AndAlso' | 'And') notExpr)* ;

notExpr : 'Not' notExpr | comparison ;

comparison
  : concatExpr (('=' | '<>' | '<=' | '>=' | '<' | '>' | 'Is') concatExpr)*
  ;

concatExpr : addExpr ('&' addExpr)* ;

addExpr : mulExpr (('+' | '-') mulExpr)* ;

mulExpr : unaryExpr (('*' | '/' | 'Mod' | '\\') unaryExpr)* ;

unaryExpr : '-' unaryExpr | postfix ;

postfix : primary lvalueSuffix* ;

primary
  : INT
  | FLOAT
  | STRING
  | 'True'
  | 'False'
  | 'Nothing'
  | 'Me'
  | 'New' typeName '(' expressionList? ')'
  | ID
  | '(' expression ')'
  ;
|}

let lexer_config =
  {
    Runtime.Lexer_engine.default_config with
    float_token = Some "FLOAT";
    string_token = Some "STRING";
    newline_token = Some "NL";
    line_comments = [ "'" ];
    block_comments = [];
  }

let samples =
  [
    {|
Imports System.Collections

Module MainModule
  Dim counter As Integer = 0

  Sub Main()
    Dim total As Integer
    Dim names As String()
    total = 0
    For i = 1 To 10 Step 2
      total = total + i
    Next
    While total > 0
      total = total - 3
    End While
    If total = 0 Then
      Report("done", total)
    ElseIf total < 0 Then
      Report("under", total)
    Else
      counter = counter + 1
    End If
    Call Report("end", counter)
  End Sub

  Sub Report(ByVal tag As String, ByVal value As Integer)
    Do
      value = value - 1
    Loop While value > 0
  End Sub
End Module

Public Class Account
  Private balance As Double
  Private owner As String

  Public Property Owner As String
    Get
      Return owner
    End Get
    Set(value As String)
      owner = value
    End Set
  End Property

  Public Function Deposit(ByVal amount As Double) As Double
    If amount > 0 AndAlso Not amount > 10000 Then
      balance = balance + amount
    End If
    Return balance
  End Function

  Public Sub Transfer(ByRef other As Account, ByVal amount As Double)
    Dim taken As Double = Deposit(-amount)
    other.Deposit(amount)
    Select Case amount
      Case 0
        Exit Sub
      Case Else
        taken = taken + 1
    End Select
    Try
      Validate(taken)
    Catch ex As Exception
      Throw ex
    Finally
      counter.log(taken)
    End Try
    For Each item In history
      item.touch()
    Next
  End Sub
End Class
|};
    {|
Imports System.Text

Module Formatter
  Dim width As Integer = 72
  Dim sep As String = ", "

  Function Pad(ByVal text As String, ByVal count As Integer) As String
    Dim result As String = text
    While count > 0
      result = result & " "
      count = count - 1
    End While
    Return result
  End Function

  Function Mix(ByVal a As Integer, ByVal b As Integer) As Integer
    If a > b OrElse a < 0 Then
      Return a Mod b
    ElseIf a = b AndAlso Not b = 0 Then
      Return a \ 2
    End If
    Return b - a
  End Function

  Sub Emit(ByVal rows As Object)
    Dim line As String = ""
    For Each cell In rows
      line = line & cell.render(width)
      cells(0) = line
    Next
    table.rows(3).cells(0) = Pad(line, 4)
    Call flush(line)
  End Sub
End Module
|};
  ]

let idents =
  [|
    "acct"; "buf"; "cell"; "day"; "entry"; "form"; "gauge"; "host"; "iter";
    "jobq"; "keys"; "list"; "mark"; "name"; "opts"; "page"; "quota"; "rate";
    "seat"; "tier"; "upd"; "view"; "wire"; "xfer"; "year"; "zonev";
  |]

let sample_lexeme i = function
  | "ID" -> idents.(i mod Array.length idents)
  | "INT" -> string_of_int (i mod 1000)
  | "FLOAT" -> Printf.sprintf "%d.%d" (i mod 100) (i mod 10)
  | "STRING" -> "\"s\""
  | "NL" -> "\n"
  | other -> other

let spec : Workload.spec =
  {
    name;
    grammar_text;
    lexer_config;
    samples;
    sample_lexeme;
    sem_preds = [];
    gen_start = None;
  }
