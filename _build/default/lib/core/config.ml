(* ATN configurations (paper section 5.1): a tuple (p, i, gamma, pi) of ATN
   state, predicted alternative, ATN call stack and optional predicate
   context collected from the alternative's left edge.

   The stack is a list of follow states, most recent call first.  Stack
   equivalence (Definition 6) treats an empty stack as a wildcard: analysis
   reached the state without static knowledge of the caller, so it stands
   for every possible context. *)

type sem_ctx = Atn.pred option

type t = {
  state : int;
  alt : int; (* 1-based alternative number *)
  stack : int list; (* follow states, innermost first *)
  sem : sem_ctx;
  free : bool;
    (* the configuration escaped the decision's own derivation through an
       empty-stack pop (wildcard follow context); predicates found past this
       point belong to other alternatives and are never collected.  The flag
       persists across moves, unlike a value threaded through one closure. *)
  crossed : bool;
    (* the configuration passed through a nested decision state; syntactic
       predicates found past this point gate only that nested alternative
       and are not hoisted *)
}

let make ?sem ?(stack = []) state alt =
  { state; alt; stack; sem; free = false; crossed = false }

let compare (a : t) (b : t) =
  let c = compare a.state b.state in
  if c <> 0 then c
  else
    let c = compare a.alt b.alt in
    if c <> 0 then c
    else
      let c = compare a.stack b.stack in
      if c <> 0 then c
      else
        let c = compare a.sem b.sem in
        if c <> 0 then c else compare (a.free, a.crossed) (b.free, b.crossed)

let equal a b = compare a b = 0

let rec is_prefix short long =
  match (short, long) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

(* Definition 6: stacks are equivalent if equal, if at least one is empty, or
   if one is a suffix of the other (with the stack written top-first, the
   shared recent context is a common prefix). *)
let stacks_equivalent g1 g2 =
  match (g1, g2) with
  | [], _ | _, [] -> true
  | _ -> is_prefix g1 g2 || is_prefix g2 g1

(* Definition 7: two configurations conflict when they share the ATN state,
   have equivalent stacks, and predict different alternatives. *)
let conflicts (a : t) (b : t) =
  a.state = b.state && a.alt <> b.alt && stacks_equivalent a.stack b.stack

let pp sym ppf (c : t) =
  let pp_sem ppf = function
    | None -> ()
    | Some p -> Fmt.pf ppf ",%a" (Atn.pp_pred sym) p
  in
  Fmt.pf ppf "(%d,%d,[%a]%a)" c.state c.alt
    Fmt.(list ~sep:(any " ") int)
    c.stack pp_sem c.sem

(* Canonical form of a configuration set: sorted, deduplicated.  Used as the
   DFA-state identity for subset-construction dedup (Definition 6 state
   equivalence). *)
let canonicalize (configs : t list) : t list =
  List.sort_uniq compare configs
