lib/core/compiled.mli: Analysis Atn Format Grammar Look_dfa Report
