lib/core/minimize.mli: Look_dfa
