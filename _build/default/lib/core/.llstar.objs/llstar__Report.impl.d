lib/core/report.ml: Analysis Array Atn Fmt Hashtbl List Option Printf String
