lib/core/config.ml: Atn Fmt List
