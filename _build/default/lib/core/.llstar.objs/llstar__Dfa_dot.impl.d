lib/core/dfa_dot.ml: Array Buffer Fmt Grammar Look_dfa Printf String
