lib/core/minimize.ml: Array Hashtbl Look_dfa
