lib/core/look_dfa.ml: Array Atn Fmt Grammar Printf
