lib/core/compiled.ml: Analysis Array Atn Fmt Grammar List Report Unix
