lib/core/analysis.ml: Array Atn Config Fmt Grammar Hashtbl Int List Look_dfa Minimize Queue Set
