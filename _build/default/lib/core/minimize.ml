(* Lookahead-DFA minimization (Moore partition refinement).

   The subset construction deduplicates by configuration-set identity, which
   can leave behaviourally equivalent states apart (e.g. the start state of
   a cyclic scan and its loop state).  Minimization merges states with equal
   acceptance, equal predicate edges and equivalent successors.  It is an
   optional pass ([Analysis.options.minimize]): prediction correctness never
   depends on it, it only shrinks tables -- the practical-space concern the
   paper inherits from Charles' minimal acyclic LALR(k) DFAs (section 7). *)

(* Signature used for the initial partition: everything except the terminal
   transitions. *)
let state_signature (dfa : Look_dfa.t) (s : int) =
  (dfa.accept.(s), dfa.preds.(s), dfa.overflowed.(s))

let minimize (dfa : Look_dfa.t) : Look_dfa.t =
  let n = dfa.nstates in
  if n <= 1 then dfa
  else begin
    (* block.(s) = current partition block of state s *)
    let block = Array.make n 0 in
    let sigs = Hashtbl.create 16 in
    let nblocks = ref 0 in
    for s = 0 to n - 1 do
      let key = state_signature dfa s in
      match Hashtbl.find_opt sigs key with
      | Some b -> block.(s) <- b
      | None ->
          Hashtbl.add sigs key !nblocks;
          block.(s) <- !nblocks;
          incr nblocks
    done;
    (* refine until stable: two states stay together iff every terminal
       leads to the same block (missing edges must match too) *)
    let changed = ref true in
    while !changed do
      changed := false;
      let next = Hashtbl.create 16 in
      let nnext = ref 0 in
      let newblock = Array.make n 0 in
      for s = 0 to n - 1 do
        let succ =
          Array.map (fun (t, tgt) -> (t, block.(tgt))) dfa.edges.(s)
        in
        let key = (block.(s), succ) in
        match Hashtbl.find_opt next key with
        | Some b -> newblock.(s) <- b
        | None ->
            Hashtbl.add next key !nnext;
            newblock.(s) <- !nnext;
            incr nnext
      done;
      if !nnext <> !nblocks then begin
        changed := true;
        nblocks := !nnext;
        Array.blit newblock 0 block 0 n
      end
    done;
    if !nblocks = n then dfa
    else begin
      (* keep block numbering but renumber so the start state is 0 *)
      let remap = Array.make !nblocks (-1) in
      let fresh = ref 0 in
      let order = Array.make !nblocks 0 in
      let visit b =
        if remap.(b) < 0 then begin
          remap.(b) <- !fresh;
          order.(!fresh) <- b;
          incr fresh
        end
      in
      visit block.(dfa.start);
      for s = 0 to n - 1 do
        visit block.(s)
      done;
      (* representative original state per block *)
      let rep = Array.make !nblocks (-1) in
      for s = n - 1 downto 0 do
        rep.(remap.(block.(s))) <- s
      done;
      let edges =
        Array.init !nblocks (fun b ->
            Array.map
              (fun (t, tgt) -> (t, remap.(block.(tgt))))
              dfa.edges.(rep.(b)))
      in
      let accept = Array.init !nblocks (fun b -> dfa.accept.(rep.(b))) in
      let preds = Array.init !nblocks (fun b -> dfa.preds.(rep.(b))) in
      let overflowed =
        Array.init !nblocks (fun b -> dfa.overflowed.(rep.(b)))
      in
      ignore order;
      let t =
        {
          dfa with
          Look_dfa.start = 0;
          nstates = !nblocks;
          edges;
          accept;
          preds;
          overflowed;
        }
      in
      let max_k = Look_dfa.compute_max_k t in
      { t with Look_dfa.cyclic = max_k = None; max_k }
    end
  end
