(* Graphviz export of lookahead DFAs, mirroring the paper's Figure 1/2
   renderings: accept states are double circles labelled "=> i"; predicate
   edges are dashed and lead to the predicted alternative. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "lookahead") (sym : Grammar.Sym.t) (dfa : Look_dfa.t) :
    string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %s {\n  rankdir=LR;\n  node [fontsize=11];\n"
       name);
  for s = 0 to dfa.nstates - 1 do
    let label, shape =
      match dfa.accept.(s) with
      | 0 -> (Printf.sprintf "s%d" s, "circle")
      | alt -> (Printf.sprintf "s%d\\n=> %d" s alt, "doublecircle")
    in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\" shape=%s];\n" s label shape)
  done;
  let pred_node = ref dfa.nstates in
  for s = 0 to dfa.nstates - 1 do
    Array.iter
      (fun (t, tgt) ->
        Buffer.add_string buf
          (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" s tgt
             (escape (Grammar.Sym.term_name sym t))))
      dfa.edges.(s);
    Array.iter
      (fun (e : Look_dfa.pred_edge) ->
        let lbl = escape (Fmt.str "%a" (Look_dfa.pp_pred_edge sym) e) in
        let n = !pred_node in
        incr pred_node;
        Buffer.add_string buf
          (Printf.sprintf
             "  f%d [label=\"=> %d\" shape=doublecircle];\n  %d -> f%d \
              [label=\"%s\" style=dashed];\n"
             n e.alt s n lbl))
      dfa.preds.(s)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
