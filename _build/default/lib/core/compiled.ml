(* End-to-end grammar compilation pipeline:

     validate -> left-recursion rewrite -> PEG mode (if backtrack=true)
       -> syntactic-predicate lifting -> ATN construction
       -> lookahead-DFA analysis for every decision -> report

   The result bundles everything the runtime interpreter needs. *)

type error =
  | Validation of Grammar.Validate.issue list
  | Message of string

let pp_error ppf = function
  | Validation issues ->
      Fmt.pf ppf "invalid grammar:@.%a"
        Fmt.(list ~sep:cut Grammar.Validate.pp_issue)
        issues
  | Message m -> Fmt.string ppf m

type t = {
  surface : Grammar.Ast.t; (* grammar as written *)
  grammar : Grammar.Ast.t; (* prepared grammar the ATN was built from *)
  atn : Atn.t;
  results : Analysis.result array; (* per decision *)
  report : Report.t;
}

let sym t = t.atn.Atn.sym
let options t = t.surface.Grammar.Ast.options

let dfa t decision = t.results.(decision).Analysis.dfa

let compile ?analysis_opts ?grammar_source (surface : Grammar.Ast.t) :
    (t, error) result =
  (* The left-recursion rewrite runs before validation so that immediate
     left recursion -- which the rewrite eliminates -- is not rejected;
     everything it cannot handle still surfaces as a validation error. *)
  let rewritten =
    try Grammar.Leftrec.rewrite surface
    with Invalid_argument _ -> surface
  in
  match Grammar.Validate.errors rewritten with
  | _ :: _ as issues -> Error (Validation issues)
  | [] -> (
      match Grammar.Transform.prepare rewritten with
      | exception Invalid_argument m -> Error (Message m)
      | prepared -> (
          match Atn.Build.build prepared with
          | exception Invalid_argument m -> Error (Message m)
          | atn ->
              let t0 = Unix.gettimeofday () in
              let results = Analysis.analyze_all ?opts:analysis_opts atn in
              let dt = Unix.gettimeofday () -. t0 in
              let grammar_lines =
                match grammar_source with
                | Some src -> Report.count_lines src
                | None -> 0
              in
              let report =
                Report.build ~grammar_lines ~analysis_time:dt atn results
              in
              Ok { surface; grammar = prepared; atn; results; report }))

let compile_exn ?analysis_opts ?grammar_source surface =
  match compile ?analysis_opts ?grammar_source surface with
  | Ok t -> t
  | Error e -> failwith (Fmt.str "%a" pp_error e)

(* Parse a grammar written in the metalanguage and compile it. *)
let of_source ?analysis_opts (src : string) : (t, error) result =
  match Grammar.Meta_parser.parse_result src with
  | Error msg -> Error (Message msg)
  | Ok surface -> compile ?analysis_opts ~grammar_source:src surface

let of_source_exn ?analysis_opts src =
  match of_source ?analysis_opts src with
  | Ok t -> t
  | Error e -> failwith (Fmt.str "%a" pp_error e)

(* All analysis warnings across decisions, with their decision ids. *)
let all_warnings t : Analysis.warning list =
  Array.to_list t.results
  |> List.concat_map (fun (r : Analysis.result) -> r.warnings)
