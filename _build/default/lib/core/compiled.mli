(** End-to-end grammar compilation: validation, transforms, ATN
    construction and lookahead-DFA analysis for every decision.

    This is the main entry point of the core library:

    {[
      let c = Llstar.Compiled.of_source_exn "grammar T; s : A | B ;" in
      Fmt.pr "%a" Llstar.Report.pp c.report
    ]} *)

type error =
  | Validation of Grammar.Validate.issue list
  | Message of string

val pp_error : Format.formatter -> error -> unit

type t = {
  surface : Grammar.Ast.t;  (** the grammar as written *)
  grammar : Grammar.Ast.t;  (** prepared grammar the ATN was built from *)
  atn : Atn.t;
  results : Analysis.result array;  (** indexed by decision number *)
  report : Report.t;
}

val sym : t -> Grammar.Sym.t
(** The vocabulary: terminal and rule ids shared by the ATN, the DFAs, the
    lexer engine and the parser. *)

val options : t -> Grammar.Ast.options
val dfa : t -> int -> Look_dfa.t

val compile :
  ?analysis_opts:Analysis.options ->
  ?grammar_source:string ->
  Grammar.Ast.t ->
  (t, error) result
(** Compile a grammar.  [grammar_source] is only used to record the line
    count in the report.  The left-recursion rewrite runs before
    validation, so immediately left-recursive rules are accepted. *)

val compile_exn :
  ?analysis_opts:Analysis.options -> ?grammar_source:string -> Grammar.Ast.t -> t

val of_source :
  ?analysis_opts:Analysis.options -> string -> (t, error) result
(** Parse metalanguage source and compile it. *)

val of_source_exn : ?analysis_opts:Analysis.options -> string -> t

val all_warnings : t -> Analysis.warning list
