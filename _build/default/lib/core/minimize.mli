(** Optional lookahead-DFA minimization (Moore partition refinement).

    The subset construction deduplicates by configuration-set identity,
    which can leave behaviourally equivalent states apart.  Minimization
    merges states with equal acceptance/predicate signatures and equivalent
    successors; predictions are unchanged, only tables shrink (42-87% on
    the benchmark grammars).  Enable with
    [{ Analysis.default_options with minimize = true }]. *)

val minimize : Look_dfa.t -> Look_dfa.t
(** Idempotent; returns the input unchanged when already minimal. *)
