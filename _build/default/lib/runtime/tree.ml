(* Parse trees: one node per rule invocation, recording which alternative the
   decision engine predicted; leaves are the matched tokens. *)

type t =
  | Node of { rule : int; alt : int; children : t list }
  | Leaf of Token.t

let rec leaves = function
  | Leaf tok -> [ tok ]
  | Node { children; _ } -> List.concat_map leaves children

let rec count_nodes = function
  | Leaf _ -> 1
  | Node { children; _ } ->
      1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 children

let rec depth = function
  | Leaf _ -> 1
  | Node { children; _ } ->
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rule_of = function Node { rule; _ } -> Some rule | Leaf _ -> None

let rec pp (sym : Grammar.Sym.t) ppf = function
  | Leaf tok ->
      if Token.is_eof tok then Fmt.string ppf "<EOF>"
      else Fmt.string ppf tok.Token.text
  | Node { rule; children; _ } ->
      Fmt.pf ppf "@[<hov 2>(%s%a)@]"
        (Grammar.Sym.nonterm_name sym rule)
        (fun ppf cs -> List.iter (fun c -> Fmt.pf ppf "@ %a" (pp sym) c) cs)
        children

let to_string sym t = Fmt.str "%a" (pp sym) t

(* Token text of all leaves, space-separated: handy in tests. *)
let yield t = String.concat " " (List.map (fun tok -> tok.Token.text) (leaves t))
