(* Runtime decision profiling: the counters behind the paper's Tables 3
   and 4.

   A decision *event* is one execution of a prediction (loop decisions fire
   once per iteration).  Its lookahead depth is the number of tokens the
   lookahead DFA examined, or -- for events that evaluated a syntactic
   predicate -- the furthest token reached by speculation.  [back k] averages
   speculation depth over backtracking events only. *)

type dstats = {
  mutable d_events : int;
  mutable d_backtracks : int;
}

type t = {
  mutable events : int;
  mutable look_sum : int;
  mutable look_max : int;
  mutable back_events : int;
  mutable back_look_sum : int;
  mutable back_look_max : int;
  per_decision : (int, dstats) Hashtbl.t;
}

let create () =
  {
    events = 0;
    look_sum = 0;
    look_max = 0;
    back_events = 0;
    back_look_sum = 0;
    back_look_max = 0;
    per_decision = Hashtbl.create 64;
  }

let reset t =
  t.events <- 0;
  t.look_sum <- 0;
  t.look_max <- 0;
  t.back_events <- 0;
  t.back_look_sum <- 0;
  t.back_look_max <- 0;
  Hashtbl.reset t.per_decision

let record t ~decision ~depth ~backtracked ~spec_depth =
  t.events <- t.events + 1;
  let depth = max depth (if backtracked then spec_depth else depth) in
  t.look_sum <- t.look_sum + depth;
  if depth > t.look_max then t.look_max <- depth;
  if backtracked then begin
    t.back_events <- t.back_events + 1;
    t.back_look_sum <- t.back_look_sum + spec_depth;
    if spec_depth > t.back_look_max then t.back_look_max <- spec_depth
  end;
  let ds =
    match Hashtbl.find_opt t.per_decision decision with
    | Some ds -> ds
    | None ->
        let ds = { d_events = 0; d_backtracks = 0 } in
        Hashtbl.add t.per_decision decision ds;
        ds
  in
  ds.d_events <- ds.d_events + 1;
  if backtracked then ds.d_backtracks <- ds.d_backtracks + 1

(* --- Table 3 quantities --- *)

let decisions_covered t = Hashtbl.length t.per_decision

let avg_k t =
  if t.events = 0 then 0.0 else float_of_int t.look_sum /. float_of_int t.events

let back_k t =
  if t.back_events = 0 then 0.0
  else float_of_int t.back_look_sum /. float_of_int t.back_events

let max_k t = t.look_max

(* --- Table 4 quantities --- *)

(* Distinct decisions that backtracked at least once. *)
let decisions_that_backtracked t =
  Hashtbl.fold
    (fun _ ds acc -> if ds.d_backtracks > 0 then acc + 1 else acc)
    t.per_decision 0

let backtrack_event_rate t =
  if t.events = 0 then 0.0
  else 100.0 *. float_of_int t.back_events /. float_of_int t.events

(* Likelihood that an event at a decision that ever backtracks actually
   backtracked (the paper's "back. rate"). *)
let backtrack_rate_at_pbds t =
  let ev, bk =
    Hashtbl.fold
      (fun _ ds (ev, bk) ->
        if ds.d_backtracks > 0 then (ev + ds.d_events, bk + ds.d_backtracks)
        else (ev, bk))
      t.per_decision (0, 0)
  in
  if ev = 0 then 0.0 else 100.0 *. float_of_int bk /. float_of_int ev

let pp ppf t =
  Fmt.pf ppf
    "decision events=%d covered=%d avg k=%.2f back k=%.2f max k=%d \
     backtracked=%.2f%% (at PBDs: %.2f%%)"
    t.events (decisions_covered t) (avg_k t) (back_k t) t.look_max
    (backtrack_event_rate t)
    (backtrack_rate_at_pbds t)
