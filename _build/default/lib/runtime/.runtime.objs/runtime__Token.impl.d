lib/runtime/token.ml: Fmt Grammar
