lib/runtime/tree.ml: Fmt Grammar List String Token
