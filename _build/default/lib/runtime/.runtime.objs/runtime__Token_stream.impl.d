lib/runtime/token_stream.ml: Array Token
