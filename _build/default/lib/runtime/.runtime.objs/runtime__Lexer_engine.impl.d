lib/runtime/lexer_engine.ml: Array Buffer Fmt Grammar Hashtbl List Option Printf String Token
