lib/runtime/token_stream.mli: Token
