lib/runtime/interp.ml: Array Atn Fmt Grammar Hashtbl List Llstar Option Parse_error Printf Profile String Sys Token Token_stream Tree
