lib/runtime/lexer_engine.mli: Format Grammar Token
