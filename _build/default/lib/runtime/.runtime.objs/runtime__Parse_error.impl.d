lib/runtime/parse_error.ml: Fmt Grammar Printf Token
