lib/runtime/profile.ml: Fmt Hashtbl
