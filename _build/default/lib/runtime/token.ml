(* Tokens produced by the lexer engine and consumed by parsers. *)

type t = {
  ttype : int; (* terminal id in the grammar's vocabulary *)
  text : string;
  line : int; (* 1-based *)
  col : int; (* 1-based *)
  index : int; (* position in the token stream *)
}

let eof_token ~index = { ttype = Grammar.Sym.eof; text = "<EOF>"; line = 0; col = 0; index }

let is_eof t = t.ttype = Grammar.Sym.eof

let pp sym ppf t =
  if is_eof t then Fmt.string ppf "<EOF>"
  else
    Fmt.pf ppf "%s(%S)@%d:%d" (Grammar.Sym.term_name sym t.ttype) t.text t.line
      t.col

let make ?(line = 0) ?(col = 0) ?(index = 0) ttype text =
  { ttype; text; line; col; index }
