(* Table-driven LL(1) baseline over the BNF skeleton.

   Classic FIRST/FOLLOW-driven table construction with conflict detection.
   Serves two purposes: a correctness oracle for LL(1) grammars (agreement
   with the LL-star interpreter is property-tested) and a speed baseline
   showing LL-star decisions that are LL(1) cost about the same as a plain
   LL(1) parser. *)

module SS = Grammar.First_follow.SS

type conflict = { nonterm : string; term : string; prods : int list }

type t = {
  bnf : Grammar.Bnf.t;
  prods : Grammar.Bnf.prod array;
  table : (string * string, int) Hashtbl.t;
  conflicts : conflict list;
}

let build (bnf : Grammar.Bnf.t) : t =
  let ff = Grammar.First_follow.compute bnf in
  let prods = Array.of_list bnf.prods in
  let table = Hashtbl.create 256 in
  let conflicts = ref [] in
  let add nonterm term prod =
    let key = (nonterm, term) in
    match Hashtbl.find_opt table key with
    | Some other when other <> prod ->
        conflicts := { nonterm; term; prods = [ other; prod ] } :: !conflicts
    | Some _ -> ()
    | None -> Hashtbl.add table key prod
  in
  Array.iteri
    (fun i (p : Grammar.Bnf.prod) ->
      let first, nullable = Grammar.First_follow.first_seq ff p.rhs in
      SS.iter (fun a -> add p.lhs a i) first;
      if nullable then
        SS.iter (fun a -> add p.lhs a i) (Grammar.First_follow.follow_of ff p.lhs))
    prods;
  { bnf; prods; table; conflicts = List.rev !conflicts }

let of_grammar (g : Grammar.Ast.t) : t = build (Grammar.Bnf.convert g)

let is_ll1 t = t.conflicts = []

(* Recognize a sentence of terminal names with the predictive stack machine. *)
let recognize ?(start : string option) (t : t) (input : string array) : bool =
  let n = Array.length input in
  let la i = if i < n then input.(i) else Grammar.First_follow.eof_name in
  let start = match start with Some s -> s | None -> t.bnf.start in
  let rec go stack i =
    match stack with
    | [] -> i = n
    | Grammar.Bnf.T a :: rest ->
        if la i = a || (a = "." && i < n) then go rest (i + 1) else false
    | Grammar.Bnf.N x :: rest -> (
        match Hashtbl.find_opt t.table (x, la i) with
        | None -> false
        | Some pi -> go (t.prods.(pi).rhs @ rest) i)
  in
  go [ Grammar.Bnf.N start ] 0

let recognize_tokens ?start (t : t) (sym : Grammar.Sym.t)
    (toks : Runtime.Token.t array) : bool =
  let names =
    Array.map (fun (tok : Runtime.Token.t) -> Grammar.Sym.term_name sym tok.Runtime.Token.ttype) toks
  in
  recognize ?start t names

let pp_conflict ppf c =
  Fmt.pf ppf "LL(1) conflict at (%s, %s): productions %a" c.nonterm c.term
    Fmt.(list ~sep:(any ", ") int)
    c.prods
