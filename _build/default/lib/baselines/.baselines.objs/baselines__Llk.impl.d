lib/baselines/llk.ml: Array Fmt Grammar List
