lib/baselines/earley.ml: Array Grammar Hashtbl List Queue Runtime
