lib/baselines/ll1.ml: Array Fmt Grammar Hashtbl List Runtime
