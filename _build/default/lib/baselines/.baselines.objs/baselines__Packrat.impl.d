lib/baselines/packrat.ml: Array Grammar Hashtbl List Runtime
