(* Calculator: immediate left recursion and embedded actions.

     dune exec examples/calculator.exe -- "2 * (3 + 4) - 5"

   The expression rule is written with natural left recursion; the
   left-recursion rewrite (paper section 1.1) turns it into a
   precedence-climbing loop gated by {p <= n}? predicates, so the parser is
   a plain deterministic LL decision at every operator.  Embedded actions
   evaluate the expression on a value stack as the parse proceeds -- the
   kind of side-effecting action that speculating parsers cannot run
   (section 1), which LL-star mostly avoids. *)

let grammar_source =
  {|
grammar Calc;
input : e EOF ;
e : e '*' e {mul}
  | e '/' e {div}
  | e '+' e {add}
  | e '-' e {sub}
  | '(' e ')'
  | INT {push}
  ;
|}

let () =
  let input = if Array.length Sys.argv > 1 then Sys.argv.(1) else "1 + 2 * 3" in
  let c = Llstar.Compiled.of_source_exn grammar_source in
  let sym = Llstar.Compiled.sym c in

  Fmt.pr "rewritten grammar (precedence climbing, section 1.1):@.%s@."
    (Grammar.Pretty.to_string c.Llstar.Compiled.grammar);

  (* evaluation state: a value stack manipulated by the actions *)
  let stack = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> failwith "stack underflow"
  in
  let binop f () =
    let b = pop () in
    let a = pop () in
    push (f a b)
  in
  let env =
    Runtime.Interp.env_of_tables
      ~actions:
        [
          ( "push",
            fun prev ->
              push (int_of_string (Option.get prev).Runtime.Token.text) );
          ("add", fun _ -> binop ( + ) ());
          ("sub", fun _ -> binop ( - ) ());
          ("mul", fun _ -> binop ( * ) ());
          ("div", fun _ -> binop ( / ) ());
        ]
      ()
  in
  let tokens =
    Runtime.Lexer_engine.tokenize_exn Runtime.Lexer_engine.default_config sym
      input
  in
  match Runtime.Interp.parse ~env c tokens with
  | Ok tree ->
      Fmt.pr "tree:   %s@." (Runtime.Tree.to_string sym tree);
      Fmt.pr "%s = %d@." input (pop ())
  | Error errors ->
      Fmt.pr "%a@." Fmt.(list (Runtime.Parse_error.pp sym)) errors;
      exit 1
