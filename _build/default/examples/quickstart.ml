(* Quickstart: define a grammar in the metalanguage, compile it (validation,
   transforms, ATN construction, lookahead-DFA analysis), inspect the
   analysis report and a DFA, then lex and parse some input.

     dune exec examples/quickstart.exe
     dune exec examples/quickstart.exe -- "unsigned unsigned T x"

   The grammar is the paper's section-2 example: rule s needs arbitrary
   lookahead to tell its third and fourth alternatives apart, so the
   analysis builds a cyclic DFA -- yet each individual input is predicted
   with the minimum lookahead it needs. *)

let grammar_source =
  {|
grammar Quickstart;
s : ID
  | ID '=' expr
  | ('unsigned')* 'int' ID
  | ('unsigned')* ID ID
  ;
expr : ID | INT ;
|}

let () =
  let input =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "unsigned unsigned int x"
  in
  (* 1. compile the grammar *)
  let c = Llstar.Compiled.of_source_exn grammar_source in
  let sym = Llstar.Compiled.sym c in

  (* 2. look at what the analysis decided *)
  Fmt.pr "=== analysis report ===@.%a@." Llstar.Report.pp
    c.Llstar.Compiled.report;
  Fmt.pr "=== lookahead DFA for rule s (Figure 1 of the paper) ===@.%a@."
    (Llstar.Look_dfa.pp ~sym)
    (Llstar.Compiled.dfa c 0);

  (* 3. lex: literal tokens come from the grammar, ID/INT from the default
     configuration *)
  let tokens =
    Runtime.Lexer_engine.tokenize_exn Runtime.Lexer_engine.default_config sym
      input
  in
  Fmt.pr "=== tokens ===@.%a@."
    Fmt.(list ~sep:sp (Runtime.Token.pp sym))
    (Array.to_list tokens);

  (* 4. parse with a profile attached to see the decision engine at work *)
  let profile = Runtime.Profile.create () in
  match Runtime.Interp.parse ~profile c tokens with
  | Ok tree ->
      Fmt.pr "=== parse tree ===@.%s@." (Runtime.Tree.to_string sym tree);
      Fmt.pr "=== decision profile ===@.%a@." Runtime.Profile.pp profile
  | Error errors ->
      Fmt.pr "=== parse errors ===@.%a@."
        Fmt.(list (Runtime.Parse_error.pp sym))
        errors;
      exit 1
