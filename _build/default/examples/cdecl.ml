(* cdecl: PEG mode, backtracking, and memoization on C's classic
   declaration-vs-definition problem (the paper's RatsC anecdote: both look
   the same from the left edge, so distinguishing [int f();] from
   [int f() {...}] can require scanning an entire function).

     dune exec examples/cdecl.exe

   With [backtrack=true] every production is guarded by an auto-inserted
   syntactic predicate; the analysis strips the guards from every decision
   it can resolve with a lookahead DFA and keeps them only where the
   grammar genuinely needs speculation.  The profile shows how rarely the
   parser actually backtracks (paper Tables 3-4). *)

let grammar_source =
  {|
grammar CDecl;
options { backtrack=true; memoize=true; }

unit : external_decl* ;

external_decl
  : function_definition
  | declaration
  ;

function_definition : specifiers declarator compound ;

declaration : specifiers init_declarator (',' init_declarator)* ';' ;

specifiers : ('static' | 'extern' | 'const')* type_specifier ;

type_specifier : 'int' | 'char' | 'void' | 'long' ;

init_declarator : declarator ('=' expression)? ;

declarator : ('*')* ID ('(' params? ')' | '[' INT? ']')* ;

params : param (',' param)* ;

param : specifiers declarator ;

compound : '{' statement* '}' ;

statement
  : declaration
  | expression ';'
  | 'return' expression? ';'
  | compound
  ;

expression : term (('+' | '-' | '=') term)* ;

term : ID ('(' (expression (',' expression)*)? ')')? | INT | '(' expression ')' ;
|}

let program =
  {|
static const int limit = 100;
int *counts[10];
extern void log(char msg);

int add(int a, int b);

int add(int a, int b) {
  return a + b;
}

long run(int n) {
  int acc = 0, i = 0;
  acc = add(acc, n);
  log(acc);
  return acc + limit;
}
|}

let () =
  let c = Llstar.Compiled.of_source_exn grammar_source in
  let sym = Llstar.Compiled.sym c in
  let report = c.Llstar.Compiled.report in
  Fmt.pr "=== how much speculation did the analysis remove? ===@.";
  Fmt.pr "%a" Llstar.Report.pp report;
  Fmt.pr
    "PEG mode guards every production, yet only %d of %d decisions still \
     need backtracking.@.@."
    report.Llstar.Report.backtrack report.Llstar.Report.n;
  let tokens =
    Runtime.Lexer_engine.tokenize_exn Runtime.Lexer_engine.default_config sym
      program
  in
  let profile = Runtime.Profile.create () in
  match Runtime.Interp.parse ~profile c tokens with
  | Ok tree ->
      Fmt.pr "=== parsed %d tokens ===@." (Array.length tokens);
      Fmt.pr "tree size: %d nodes@." (Runtime.Tree.count_nodes tree);
      Fmt.pr "=== runtime profile (paper Tables 3-4) ===@.%a@."
        Runtime.Profile.pp profile
  | Error errors ->
      Fmt.pr "%a@." Fmt.(list (Runtime.Parse_error.pp sym)) errors;
      exit 1
