(* islands: context-sensitive parsing with semantic predicates and
   symbol-table actions (paper sections 4.2-4.3).

     dune exec examples/islands.exe

   The statement [a * b ;] is ambiguous in C: a declaration of pointer [b]
   when [a] is a typedef name, a multiplication expression otherwise.  No
   amount of syntax resolves it -- the paper's point that predicated LL-star
   reaches into the context-sensitive languages beyond GLR and PEGs.  The
   grammar consults {isType()}? (which checks the symbol table built by the
   {define} action as typedefs are parsed), so the same token string parses
   differently depending on what was declared before it. *)

let grammar_source =
  {|
grammar Islands;
prog : stmt* ;
stmt
  : 'typedef' base ID {define} ';'
  | {isType()}? ID '*' ID ';'
  | expr ';'
  ;
base : 'int' | 'char' ;
expr : ID ('*' ID)* ;
|}

let program = {|
x * y ;
typedef int x ;
x * y ;
|}

let () =
  let c = Llstar.Compiled.of_source_exn grammar_source in
  let sym = Llstar.Compiled.sym c in
  (* the symbol table: names declared as types so far *)
  let types : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let env =
    Runtime.Interp.env_of_tables
      ~preds:
        [
          ( "isType()",
            fun (la1 : Runtime.Token.t) ->
              Hashtbl.mem types la1.Runtime.Token.text );
        ]
      ~actions:
        [
          ( "define",
            fun prev ->
              let name = (Option.get prev).Runtime.Token.text in
              Fmt.pr "  [symbol table] typedef %s@." name;
              Hashtbl.replace types name () );
        ]
      ()
  in
  let tokens =
    Runtime.Lexer_engine.tokenize_exn Runtime.Lexer_engine.default_config sym
      program
  in
  Fmt.pr "program:@.%s@." program;
  match Runtime.Interp.parse ~env c tokens with
  | Ok tree ->
      let sts =
        match tree with
        | Runtime.Tree.Node { children; _ } -> children
        | _ -> []
      in
      List.iter
        (fun st ->
          match st with
          | Runtime.Tree.Node { alt; _ } ->
              Fmt.pr "%-20s parsed as %s@."
                (Runtime.Tree.yield st)
                (match alt with
                | 1 -> "a typedef"
                | 2 -> "a pointer declaration (x is a type here!)"
                | _ -> "a multiplication expression")
          | _ -> ())
        sts
  | Error errors ->
      Fmt.pr "%a@." Fmt.(list (Runtime.Parse_error.pp sym)) errors;
      exit 1
