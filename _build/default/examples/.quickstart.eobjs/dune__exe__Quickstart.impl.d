examples/quickstart.ml: Array Fmt Llstar Runtime Sys
