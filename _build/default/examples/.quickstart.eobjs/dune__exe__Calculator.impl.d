examples/calculator.ml: Array Fmt Grammar Llstar Option Runtime Sys
