examples/cdecl.mli:
