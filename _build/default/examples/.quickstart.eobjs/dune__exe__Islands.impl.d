examples/islands.ml: Fmt Hashtbl List Llstar Option Runtime
