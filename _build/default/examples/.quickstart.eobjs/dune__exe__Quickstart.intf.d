examples/quickstart.mli:
