examples/calculator.mli:
