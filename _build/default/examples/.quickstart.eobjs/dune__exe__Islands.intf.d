examples/islands.mli:
