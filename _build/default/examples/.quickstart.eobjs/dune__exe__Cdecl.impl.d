examples/cdecl.ml: Array Fmt Llstar Runtime
