(* Reproduction of the paper's figures and section-2 examples:

   - Figure 1: the lookahead DFA for rule s, with minimal per-input
     lookahead and a cyclic scan over 'unsigned';
   - Figure 2: the mixed fixed-lookahead / backtracking DFA for rule t under
     PEG mode with recursion bound m = 1;
   - the section-2 LL-star-but-not-LR(k) grammar [a : b A+ X | c A+ Y],
     whose cyclic DFA the paper contrasts with LPG's exponential failure
     (the LPG comparison itself is the [lpg] bench). *)

let fig1_src =
  {|
grammar Fig1;
s : ID | ID '=' expr | ('unsigned')* 'int' ID | ('unsigned')* ID ID ;
expr : ID | INT ;
|}

let fig2_src =
  {|
grammar Fig2;
options { backtrack=true; m=1; }
t : ('-')* ID | expr ;
expr : INT | '-' expr ;
|}

let not_lrk_src = {|
grammar NotLRk;
a : b A+ X | c A+ Y ;
b : ;
c : ;
|}

let show_decision c i =
  let sym = Llstar.Compiled.sym c in
  let r = c.Llstar.Compiled.results.(i) in
  let d = c.Llstar.Compiled.atn.Atn.decisions.(i) in
  Fmt.pr "decision %d (%s), class %s:@.%a" i d.Atn.d_label
    (match r.Llstar.Analysis.klass with
    | Llstar.Analysis.Fixed k -> Printf.sprintf "LL(%d)" k
    | Llstar.Analysis.Cyclic -> "cyclic"
    | Llstar.Analysis.Backtrack -> "backtrack")
    (Llstar.Look_dfa.pp ~sym) r.Llstar.Analysis.dfa

(* Predict with the decision-0 DFA on a token-name sequence; prints the
   chosen production and the lookahead used, echoing the paper's narrative
   ("upon int, the DFA immediately predicts the third alternative"). *)
let predict_on c input_names =
  let sym = Llstar.Compiled.sym c in
  let toks =
    Array.of_list
      (List.mapi
         (fun i name ->
           let ttype =
             match Grammar.Sym.find_term sym name with
             | Some id -> id
             | None -> failwith ("unknown terminal " ^ name)
           in
           Runtime.Token.make ~index:i ttype name)
         input_names)
  in
  let dfa = Llstar.Compiled.dfa c 0 in
  let rec walk state depth =
    match Llstar.Look_dfa.accept_of dfa state with
    | Some alt -> (alt, depth)
    | None -> (
        let la =
          if depth < Array.length toks then toks.(depth).Runtime.Token.ttype
          else Grammar.Sym.eof
        in
        match Llstar.Look_dfa.lookup_edge dfa state la with
        | Some tgt -> walk tgt (depth + 1)
        | None ->
            let preds = Llstar.Look_dfa.pred_edges_of dfa state in
            if Array.length preds > 0 then (-1, depth) (* backtracks *)
            else (0, depth))
  in
  let alt, k = walk dfa.Llstar.Look_dfa.start 0 in
  Fmt.pr "  upon %-30s => %s (k=%d)@."
    (String.concat " " input_names)
    (match alt with
    | -1 -> "fails over to backtracking"
    | 0 -> "no viable alternative"
    | a -> Printf.sprintf "predict alternative %d" a)
    k

let fig1 () =
  Common.section "Figure 1: lookahead DFA for rule s";
  let c = Llstar.Compiled.of_source_exn fig1_src in
  show_decision c 0;
  Fmt.pr "@.minimum lookahead per input sequence (section 2):@.";
  predict_on c [ "'int'" ];
  predict_on c [ "ID"; "EOF" ];
  predict_on c [ "ID"; "'='" ];
  predict_on c [ "ID"; "ID" ];
  predict_on c [ "'unsigned'"; "'unsigned'"; "'int'" ];
  predict_on c [ "'unsigned'"; "'unsigned'"; "'unsigned'"; "ID"; "ID" ]

let fig2 () =
  Common.section
    "Figure 2: mixed k=3 lookahead and backtracking DFA for rule t (m=1)";
  let c = Llstar.Compiled.of_source_exn fig2_src in
  show_decision c 0;
  Fmt.pr "@.per-input behaviour (section 2):@.";
  predict_on c [ "ID" ];
  predict_on c [ "INT" ];
  predict_on c [ "'-'"; "ID" ];
  predict_on c [ "'-'"; "INT" ];
  predict_on c [ "'-'"; "'-'"; "ID" ];
  Fmt.pr
    "@.the decision only backtracks when the input begins with --, \"an \
     unlikely expression prefix\" (section 2).@."

let not_lrk () =
  Common.section
    "Section 2: cyclic DFA for the LL(*)-but-not-LR(k) grammar a : b A+ X | c \
     A+ Y";
  let c = Llstar.Compiled.of_source_exn not_lrk_src in
  show_decision c 0;
  predict_on c [ "A"; "A"; "A"; "X" ];
  predict_on c [ "A"; "Y" ]
