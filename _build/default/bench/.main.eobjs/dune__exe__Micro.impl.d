bench/micro.ml: Analyze Array Baselines Bechamel Bench_grammars Benchmark Common Fmt Grammar Hashtbl Instance List Llstar Measure Option Printf Runtime Staged Test Time Toolkit
