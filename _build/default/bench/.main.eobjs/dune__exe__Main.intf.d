bench/main.mli:
