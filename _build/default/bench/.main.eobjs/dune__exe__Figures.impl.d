bench/figures.ml: Array Atn Common Fmt Grammar List Llstar Printf Runtime String
