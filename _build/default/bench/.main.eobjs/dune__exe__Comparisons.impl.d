bench/comparisons.ml: Array Baselines Bench_grammars Buffer Common Fmt Grammar List Llstar Option Printf Runtime String Workload
