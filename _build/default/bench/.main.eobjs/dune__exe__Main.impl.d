bench/main.ml: Array Common Comparisons Figures Fmt List Micro Sys Tables Unix
