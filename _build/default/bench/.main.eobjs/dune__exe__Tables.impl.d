bench/tables.ml: Common Fmt Hashtbl List Llstar Runtime Workload
