bench/common.ml: Bench_grammars Fmt Hashtbl String Unix
