(* Tests for the grammar substrate: symbol interning, the metalanguage
   lexer/parser, pretty-printing round trips, validation, the BNF
   conversion and FIRST/FOLLOW machinery. *)

open Helpers
module Sym = Grammar.Sym
module Ast = Grammar.Ast
module B = Grammar.Builder

(* ------------------------------------------------------------------ *)
(* Sym *)

let sym_tests =
  [
    test "eof and wildcard are reserved" (fun () ->
        let s = Sym.create () in
        check int "eof id" 0 Sym.eof;
        check int "wildcard id" 1 Sym.wildcard;
        check string "eof name" "EOF" (Sym.term_name s Sym.eof));
    test "interning is idempotent" (fun () ->
        let s = Sym.create () in
        let a = Sym.intern_term s "ID" in
        let b = Sym.intern_term s "ID" in
        check int "same id" a b;
        check bool "distinct from nonterm space" true
          (Sym.intern_nonterm s "ID" = 0));
    test "literals remember raw text" (fun () ->
        let s = Sym.create () in
        let id = Sym.intern_term s "'int'" in
        check bool "is literal" true (Sym.is_literal s id);
        check string "text" "int" (Option.get (Sym.literal_text s id));
        check bool "ID is not literal" false
          (Sym.is_literal s (Sym.intern_term s "ID")));
    test "literals listing" (fun () ->
        let s = Sym.create () in
        ignore (Sym.intern_term s "'+'");
        ignore (Sym.intern_term s "'while'");
        ignore (Sym.intern_term s "NUM");
        let lits = List.map fst (Sym.literals s) in
        check (Alcotest.list string) "sorted raw texts" [ "+"; "while" ] lits);
    test "unquote" (fun () ->
        check string "quoted" "foo" (Sym.unquote "'foo'");
        check string "plain" "ID" (Sym.unquote "ID"));
  ]

(* ------------------------------------------------------------------ *)
(* Metalanguage parsing *)

let parse_g src = Grammar.Meta_parser.parse src

let meta_tests =
  [
    test "basic rule and terminals" (fun () ->
        let g = parse_g "grammar T; s : ID 'while' INT ;" in
        check int "one rule" 1 (List.length g.Ast.rules);
        check string "start" "s" g.Ast.start;
        check (Alcotest.list string) "terminals"
          [ "ID"; "'while'"; "INT" ]
          (Ast.terminals g));
    test "alternatives and EBNF suffixes" (fun () ->
        let g = parse_g "grammar T; s : a* | b+ | c? | (a b | c) ; a:; b:; c:;" in
        let r = List.hd g.Ast.rules in
        check int "four alts" 4 (List.length r.Ast.rule_alts));
    test "options parsed from braced body" (fun () ->
        let g =
          parse_g "grammar T; options { backtrack=true; k=3; m=2; memoize=false; } s : ID ;"
        in
        check bool "backtrack" true g.Ast.options.Ast.backtrack;
        check bool "k" true (g.Ast.options.Ast.k = Some 3);
        check int "m" 2 g.Ast.options.Ast.m;
        check bool "memoize" false g.Ast.options.Ast.memoize);
    test "semantic predicate, actions, always-actions" (fun () ->
        let g =
          parse_g
            "grammar T; s : {isType()}? ID {act();} | {{undoable()}} INT ;"
        in
        let r = List.hd g.Ast.rules in
        (match (List.nth r.Ast.rule_alts 0).Ast.elems with
        | [ Ast.Sem_pred "isType()"; Ast.Term "ID"; Ast.Action { code = "act();"; always = false } ] ->
            ()
        | _ -> Alcotest.fail "alt1 shape");
        match (List.nth r.Ast.rule_alts 1).Ast.elems with
        | [ Ast.Action { code = "undoable()"; always = true }; Ast.Term "INT" ] ->
            ()
        | _ -> Alcotest.fail "alt2 shape");
    test "syntactic predicate" (fun () ->
        let g = parse_g "grammar T; s : (ID '=')=> ID '=' INT | ID ;" in
        let r = List.hd g.Ast.rules in
        match (List.hd r.Ast.rule_alts).Ast.elems with
        | Ast.Syn_pred [ { Ast.elems = [ Ast.Term "ID"; Ast.Term "'='" ] } ] :: _ ->
            ()
        | _ -> Alcotest.fail "synpred shape");
    test "precedence predicate recognised" (fun () ->
        let g = parse_g "grammar T; s : {p <= 3}? ID | {p<=0}? INT | {q <= 3}? C ;" in
        let r = List.hd g.Ast.rules in
        (match (List.nth r.Ast.rule_alts 0).Ast.elems with
        | Ast.Prec_pred 3 :: _ -> ()
        | _ -> Alcotest.fail "prec pred 3");
        (match (List.nth r.Ast.rule_alts 1).Ast.elems with
        | Ast.Prec_pred 0 :: _ -> ()
        | _ -> Alcotest.fail "prec pred 0");
        match (List.nth r.Ast.rule_alts 2).Ast.elems with
        | Ast.Sem_pred _ :: _ -> ()
        | _ -> Alcotest.fail "q<=3 is semantic");
    test "wildcard and literal escapes" (fun () ->
        let g = parse_g {|grammar T; s : . '\'' '\\' ;|} in
        let r = List.hd g.Ast.rules in
        match (List.hd r.Ast.rule_alts).Ast.elems with
        | [ Ast.Wild; Ast.Term "'''"; Ast.Term "'\\'" ] -> ()
        | elems ->
            Alcotest.failf "wildcard shape: %s"
              (String.concat ";" (List.map Grammar.Pretty.element_to_string elems)));
    test "comments are skipped" (fun () ->
        let g =
          parse_g "grammar T; // line\n/* block\nspanning */ s : ID ;"
        in
        check int "one rule" 1 (List.length g.Ast.rules));
    test "errors carry positions" (fun () ->
        match Grammar.Meta_parser.parse_result "grammar T; s : ID" with
        | Error msg -> check bool "mentions ';'" true
            (Helpers.contains msg "';'")
        | Ok _ -> Alcotest.fail "expected parse error");
    test "empty alternative allowed" (fun () ->
        let g = parse_g "grammar T; s : ID | ;" in
        let r = List.hd g.Ast.rules in
        check int "2 alts" 2 (List.length r.Ast.rule_alts);
        check int "empty second" 0
          (List.length (List.nth r.Ast.rule_alts 1).Ast.elems));
  ]

(* Round-trip: parse, pretty-print, re-parse, re-print; prints must agree. *)
let roundtrip src =
  let g1 = parse_g src in
  let p1 = Grammar.Pretty.to_string g1 in
  let g2 = parse_g p1 in
  let p2 = Grammar.Pretty.to_string g2 in
  check string "round trip" p1 p2

let roundtrip_tests =
  [
    test "roundtrip: figure 1" (fun () ->
        roundtrip
          "grammar S; s : ID | ID '=' e | ('unsigned')* 'int' ID ; e : ID ;");
    test "roundtrip: predicates and actions" (fun () ->
        roundtrip
          "grammar T; options { backtrack=true; } s : (e)=> e {a();} | {p()}? ID | {{u()}} ;\
           e : INT ;");
    test "roundtrip: EBNF nests" (fun () ->
        roundtrip "grammar T; s : (a (b | c+)? )* ; a : A ; b : B ; c : C ;");
    test "roundtrip: benchmark grammars" (fun () ->
        List.iter
          (fun (spec : Bench_grammars.Workload.spec) ->
            roundtrip spec.grammar_text)
          [
            Bench_grammars.Mini_java.spec;
            Bench_grammars.Rats_c.spec;
            Bench_grammars.Mini_sql.spec;
            Bench_grammars.Mini_vb.spec;
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Validation *)

let issues src = Grammar.Validate.check (parse_g src)

let has_issue pred src = List.exists pred (issues src)

let validate_tests =
  [
    test "undefined rule" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Undefined_rule _ -> true | _ -> false)
             "grammar T; s : missing ;"));
    test "duplicate rule" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Duplicate_rule _ -> true | _ -> false)
             "grammar T; s : ID ; s : INT ;"));
    test "immediate left recursion" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Left_recursion _ -> true | _ -> false)
             "grammar T; s : s ID | INT ;"));
    test "indirect left recursion" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Left_recursion _ -> true | _ -> false)
             "grammar T; a : b X | Y ; b : c ; c : a Z ;"));
    test "left recursion through nullable prefix" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Left_recursion _ -> true | _ -> false)
             "grammar T; a : b a C | C ; b : D | ;"));
    test "left recursion through optional block" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Left_recursion _ -> true | _ -> false)
             "grammar T; a : (B)? a C | C ;"));
    test "right recursion is fine" (fun () ->
        check int "no errors" 0
          (List.length (Grammar.Validate.errors (parse_g "grammar T; a : B a | C ;"))));
    test "unreachable rule warning" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Unreachable_rule "z" -> true | _ -> false)
             "grammar T; s : ID ; z : INT ;"));
    test "duplicate alternative warning" (fun () ->
        check bool "flagged" true
          (has_issue
             (function Grammar.Validate.Duplicate_alt _ -> true | _ -> false)
             "grammar T; s : ID INT | ID INT ;"));
    test "benchmark grammars validate" (fun () ->
        List.iter
          (fun (spec : Bench_grammars.Workload.spec) ->
            let g =
              Grammar.Leftrec.rewrite (parse_g spec.grammar_text)
            in
            check int (spec.name ^ " has no errors") 0
              (List.length (Grammar.Validate.errors g)))
          [
            Bench_grammars.Mini_java.spec;
            Bench_grammars.Rats_c.spec;
            Bench_grammars.Rats_java.spec;
            Bench_grammars.Mini_sql.spec;
            Bench_grammars.Mini_vb.spec;
            Bench_grammars.Mini_csharp.spec;
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* BNF conversion, FIRST/FOLLOW, FIRST_k *)

module FF = Grammar.First_follow
module SS = FF.SS

let ff_of src = FF.compute (Grammar.Bnf.convert (parse_g src))

let set xs = SS.of_list xs

let bnf_tests =
  [
    test "FIRST of simple grammar" (fun () ->
        let ff = ff_of "grammar T; s : A s | B ;" in
        check bool "first s" true (SS.equal (FF.first_of ff "s") (set [ "A"; "B" ])));
    test "FIRST through nullable" (fun () ->
        let ff = ff_of "grammar T; s : a B ; a : A | ;" in
        check bool "a nullable" true (FF.is_nullable ff "a");
        check bool "first s" true (SS.equal (FF.first_of ff "s") (set [ "A"; "B" ])));
    test "FOLLOW basics" (fun () ->
        let ff = ff_of "grammar T; s : a B ; a : A ;" in
        check bool "follow a = {B}" true
          (SS.equal (FF.follow_of ff "a") (set [ "B" ]));
        check bool "follow s has EOF" true (SS.mem "EOF" (FF.follow_of ff "s")));
    test "EBNF expansion: star becomes nullable helper" (fun () ->
        let bnf = Grammar.Bnf.convert (parse_g "grammar T; s : A* B ;") in
        let ff = FF.compute bnf in
        check bool "first s = {A,B}" true
          (SS.equal (FF.first_of ff "s") (set [ "A"; "B" ])));
    test "FIRST_k enumerates sequences" (fun () ->
        let ff = ff_of "grammar T; s : A B C | A B D ;" in
        let bnf_syms = [ Grammar.Bnf.N "s" ] in
        let s2 = FF.first_k ff 2 bnf_syms in
        check int "one 2-seq (shared prefix)" 1 (FF.SeqSet.cardinal s2);
        let s3 = FF.first_k ff 3 bnf_syms in
        check int "two 3-seqs" 2 (FF.SeqSet.cardinal s3));
    test "FIRST_k blowup guard" (fun () ->
        let ff = ff_of "grammar T; s : (A|B|C|D|E)* X ;" in
        match FF.first_k ~max_set_size:50 ff 8 [ Grammar.Bnf.N "s" ] with
        | exception FF.Blowup _ -> ()
        | _ -> Alcotest.fail "expected blowup");
  ]

let suite =
  [
    ("sym", sym_tests);
    ("metalanguage", meta_tests);
    ("pretty-roundtrip", roundtrip_tests);
    ("validate", validate_tests);
    ("bnf-first-follow", bnf_tests);
  ]
