(* Integration tests over the six benchmark grammars: every grammar
   compiles, its decision mix has the paper-like shape, the handwritten
   samples parse, and corpus generation produces validated programs. *)

open Helpers
module Workload = Bench_grammars.Workload

let all_specs =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let compiled = Hashtbl.create 8

let cw_of (spec : Workload.spec) =
  match Hashtbl.find_opt compiled spec.name with
  | Some cw -> cw
  | None ->
      let cw = Workload.compile spec in
      Hashtbl.add compiled spec.name cw;
      cw

let per_grammar (spec : Workload.spec) =
  [
    test (spec.name ^ ": compiles with paper-like decision mix") (fun () ->
        let cw = cw_of spec in
        let r = cw.Workload.c.Llstar.Compiled.report in
        check bool "has decisions" true (r.Llstar.Report.n > 20);
        check bool "mostly fixed" true
          (Llstar.Report.pct_fixed r > 80.0);
        check bool "mostly LL(1)" true (Llstar.Report.pct_ll1 r > 70.0);
        check bool "some backtracking tail" true (r.Llstar.Report.backtrack >= 1));
    test (spec.name ^ ": handwritten samples parse") (fun () ->
        let cw = cw_of spec in
        let env = Workload.env_of_spec spec in
        List.iteri
          (fun i sample ->
            match Workload.lex cw sample with
            | Error e ->
                Alcotest.failf "sample %d lex error: %a" i
                  Runtime.Lexer_engine.pp_error e
            | Ok toks -> (
                match Runtime.Interp.parse ~env cw.Workload.c toks with
                | Ok tree ->
                    check string
                      (Printf.sprintf "sample %d yield" i)
                      (String.concat " "
                         (List.map
                            (fun (t : Runtime.Token.t) -> t.Runtime.Token.text)
                            (Array.to_list toks)))
                      (Runtime.Tree.yield tree)
                | Error errs ->
                    Alcotest.failf "sample %d: %a" i
                      Fmt.(
                        list
                          (Runtime.Parse_error.pp
                             (Llstar.Compiled.sym cw.Workload.c)))
                      errs))
          spec.samples);
    test (spec.name ^ ": corpus generates and validates") (fun () ->
        let cw = cw_of spec in
        let corpus = Workload.build_corpus ~seed:7 cw ~target_tokens:1500 in
        check bool "enough tokens" true (corpus.Workload.tokens >= 1500);
        check bool "samples all accepted" true
          (corpus.Workload.programs >= List.length spec.samples));
  ]

let deterministic_dfas (spec : Workload.spec) =
  test (spec.name ^ ": DFAs are deterministic and well-formed") (fun () ->
      let cw = cw_of spec in
      Array.iter
        (fun (r : Llstar.Analysis.result) ->
          let dfa = r.Llstar.Analysis.dfa in
          for s = 0 to dfa.Llstar.Look_dfa.nstates - 1 do
            (* terminal edges deterministic *)
            let seen = Hashtbl.create 8 in
            Array.iter
              (fun (t, tgt) ->
                (match Hashtbl.find_opt seen t with
                | Some _ -> Alcotest.failf "duplicate edge on terminal %d" t
                | None -> Hashtbl.add seen t ());
                check bool "target in range" true
                  (tgt >= 0 && tgt < dfa.Llstar.Look_dfa.nstates))
              dfa.Llstar.Look_dfa.edges.(s);
            (* accepting states predict a real alternative *)
            let a = dfa.Llstar.Look_dfa.accept.(s) in
            check bool "accept >= 0" true (a >= 0);
            Array.iter
              (fun (e : Llstar.Look_dfa.pred_edge) ->
                check bool "pred alt positive" true (e.Llstar.Look_dfa.alt >= 1))
              dfa.Llstar.Look_dfa.preds.(s)
          done)
        cw.Workload.c.Llstar.Compiled.results)

let dot_export_tests =
  [
    test "DFA and ATN DOT export are well-formed" (fun () ->
        let c = compile "grammar D; s : A B | A C | (D)* E ;" in
        let dot =
          Llstar.Dfa_dot.to_dot (Llstar.Compiled.sym c) (Llstar.Compiled.dfa c 0)
        in
        check bool "digraph" true (Helpers.contains dot "digraph");
        check bool "accept marker" true (Helpers.contains dot "=> 1");
        let adot = Atn.Dot.to_dot c.Llstar.Compiled.atn in
        check bool "atn digraph" true (Helpers.contains adot "digraph ATN"));
  ]



(* Corpus generation is deterministic per seed, so benchmark runs are
   reproducible. *)
let determinism_tests =
  [
    test "corpus generation is deterministic per seed" (fun () ->
        let spec = Bench_grammars.Mini_java.spec in
        let cw = cw_of spec in
        let c1 = Workload.build_corpus ~seed:11 cw ~target_tokens:1000 in
        let c2 = Workload.build_corpus ~seed:11 cw ~target_tokens:1000 in
        let c3 = Workload.build_corpus ~seed:12 cw ~target_tokens:1000 in
        check string "same seed, same corpus" c1.Workload.text c2.Workload.text;
        check bool "different seed, different corpus" true
          (c1.Workload.text <> c3.Workload.text));
  ]

let suite =
  [
    ("benchmark-grammars", List.concat_map per_grammar all_specs);
    ("dfa-wellformed", List.map deterministic_dfas all_specs);
    ("dot-export", dot_export_tests);
    ("workload", determinism_tests);
  ]
