test/test_baselines.ml: Alcotest Baselines Grammar Helpers List Llstar
