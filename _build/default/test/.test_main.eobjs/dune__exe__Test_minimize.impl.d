test/test_minimize.ml: Alcotest Array Bench_grammars Grammar Helpers List Llstar Runtime
