test/test_analysis.ml: Alcotest Array Atn Grammar Helpers List Llstar Option Runtime String
