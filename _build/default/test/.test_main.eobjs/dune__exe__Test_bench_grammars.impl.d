test/test_bench_grammars.ml: Alcotest Array Atn Bench_grammars Fmt Hashtbl Helpers List Llstar Printf Runtime String
