test/test_props.ml: Array Baselines Grammar Hashtbl Helpers List Llstar Option QCheck Random Runtime String Test
