test/test_grammar.ml: Alcotest Bench_grammars Grammar Helpers List Option String
