test/helpers.ml: Alcotest Array Atn Fmt Llstar Printf QCheck QCheck_alcotest Runtime String
