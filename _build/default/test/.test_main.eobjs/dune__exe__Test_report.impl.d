test/test_report.ml: Alcotest Array Helpers List Llstar Runtime
