test/test_runtime.ml: Alcotest Array Grammar Helpers List Llstar Option Printf Runtime
