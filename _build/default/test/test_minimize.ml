(* Tests for the optional lookahead-DFA minimization pass. *)

open Helpers

let opts_min =
  { Llstar.Analysis.default_options with Llstar.Analysis.minimize = true }

let compile_min src =
  Llstar.Compiled.compile_exn ~analysis_opts:opts_min
    (Grammar.Meta_parser.parse src)

let dfa_sizes c =
  Array.to_list
    (Array.map
       (fun (r : Llstar.Analysis.result) ->
         r.Llstar.Analysis.dfa.Llstar.Look_dfa.nstates)
       c.Llstar.Compiled.results)

let suite =
  [
    ( "minimize",
      [
        test "already-minimal cyclic DFA is untouched; real grammars shrink"
          (fun () ->
            (* the not-LR(k) DFA comes out of subset construction minimal
               (4 states, the paper's picture) *)
            let src = "grammar N; a : b A+ X | c A+ Y ; b : ; c : ;" in
            let plain = compile src in
            let mini = compile_min src in
            let d = rule_decision plain "a" in
            check int "already minimal" 4
              (Llstar.Compiled.dfa mini d).Llstar.Look_dfa.nstates;
            check bool "still cyclic" true
              (Llstar.Compiled.dfa mini d).Llstar.Look_dfa.cyclic;
            (* a realistic grammar has redundancy for minimization to trim *)
            let spec = Bench_grammars.Mini_java.spec in
            let total c =
              List.fold_left ( + ) 0 (dfa_sizes c)
            in
            let plain_total = total (compile spec.grammar_text) in
            let mini_total =
              total
                (Llstar.Compiled.compile_exn ~analysis_opts:opts_min
                   (Grammar.Meta_parser.parse spec.grammar_text))
            in
            check bool "benchmark grammar shrinks" true
              (mini_total < plain_total));
        test "predictions unchanged by minimization" (fun () ->
            let src =
              "grammar S; s : ID | ID '=' expr | ('unsigned')* 'int' ID | \
               ('unsigned')* ID ID ; expr : ID | INT ;"
            in
            let mini = compile_min src in
            List.iter
              (fun (input, ok) ->
                check bool input ok (parses mini input))
              [
                ("x", true);
                ("x = y", true);
                ("unsigned unsigned int x", true);
                ("unsigned T x", true);
                ("unsigned unsigned = x", false);
              ]);
        test "idempotent and size-monotone on the benchmark suite" (fun () ->
            List.iter
              (fun (spec : Bench_grammars.Workload.spec) ->
                let plain = compile spec.grammar_text in
                let mini =
                  Llstar.Compiled.compile_exn ~analysis_opts:opts_min
                    (Grammar.Meta_parser.parse spec.grammar_text)
                in
                List.iter2
                  (fun a b ->
                    check bool (spec.name ^ " no growth") true (b <= a))
                  (dfa_sizes plain) (dfa_sizes mini);
                (* a second minimization is a no-op *)
                Array.iter
                  (fun (r : Llstar.Analysis.result) ->
                    let d = r.Llstar.Analysis.dfa in
                    check int "idempotent"
                      d.Llstar.Look_dfa.nstates
                      (Llstar.Minimize.minimize d).Llstar.Look_dfa.nstates)
                  mini.Llstar.Compiled.results)
              [ Bench_grammars.Mini_java.spec; Bench_grammars.Mini_sql.spec ]);
        test "minimized parser still parses benchmark samples" (fun () ->
            let spec = Bench_grammars.Rats_c.spec in
            let c =
              Llstar.Compiled.compile_exn ~analysis_opts:opts_min
                (Grammar.Meta_parser.parse spec.grammar_text)
            in
            let env =
              Runtime.Interp.env_of_tables ~preds:spec.sem_preds ()
            in
            List.iter
              (fun sample ->
                let toks =
                  Runtime.Lexer_engine.tokenize_exn spec.lexer_config
                    (Llstar.Compiled.sym c) sample
                in
                match Runtime.Interp.recognize ~env c toks with
                | Ok () -> ()
                | Error _ -> Alcotest.fail "sample failed under minimization")
              spec.samples);
      ] );
  ]
