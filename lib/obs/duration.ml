(* Log-linear duration histograms with quantile estimation.

   [Metrics] histograms bucket by powers of two because they record small
   integer quantities (lookahead depths, state counts) where a 2x-wide
   bucket is fine.  Request latency is not like that: the serve layer needs
   p50/p99 over values spanning six orders of magnitude (a 40us cache-hit
   ping to a multi-second pathological parse), and a power-of-two bucket at
   100ms is 50ms wide -- useless for an SLO.  This module is the HDR-style
   compromise used by production latency recorders: each power-of-two
   octave is split into [half = 2^(sub_bits-1)] linear sub-buckets, so the
   relative width of any bucket is at most [1/half] (~1.6%, i.e. two
   significant digits), while the whole range [0, 2^40) microseconds (~12.7
   days) still fits in a few thousand buckets.

   Layout, for [sub_bits = 7] (so [n_sub = 128], [half = 64]):

   - values in [0, 128) are recorded exactly: bucket [v] counts value [v];
   - a value [v >= 128] with [m = floor(log2 v)] lands in octave [m], which
     spans [2^m, 2^(m+1)) and is split into 64 sub-buckets of width
     [2^(m-6)] each;
   - values >= 2^40 land in one unbounded overflow bucket.

   Quantiles are nearest-rank over the cumulative bucket counts, reported
   as the midpoint of the selected bucket clamped to the observed
   [min, max].  Since the exact nearest-rank quantile lies in the same
   bucket, the estimate is within one bucket's width of the truth -- the
   bound the qcheck property in [test_obs.ml] checks.

   Recording is an array increment plus four field updates: cheap enough
   for the serve hot path.  Like [Metrics] cells, a [t] is single-writer;
   cross-worker aggregation goes through [merge] after [Exec.Pool.await]. *)

let sub_bits = 7
let n_sub = 1 lsl sub_bits (* 128: values below this are exact *)
let half = n_sub / 2 (* sub-buckets per octave above [n_sub] *)
let max_m = 39 (* top octave: [2^39, 2^40) microseconds *)
let num_buckets = n_sub + ((max_m - sub_bits + 1) * half) + 1
let overflow = num_buckets - 1 (* values >= 2^(max_m+1) *)

type t = {
  mutable n : int;
  mutable sum : int; (* microseconds *)
  mutable vmin : int;
  mutable vmax : int;
  counts : int array;
}

let create () : t =
  { n = 0; sum = 0; vmin = max_int; vmax = 0; counts = Array.make num_buckets 0 }

(* floor(log2 v) for v >= 1, by position of the highest set bit. *)
let msb (v : int) : int =
  let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in
  go v 0

let index_of (v : int) : int =
  let v = if v < 0 then 0 else v in
  if v < n_sub then v
  else
    let m = msb v in
    if m > max_m then overflow
    else
      let sub = (v - (1 lsl m)) lsr (m - sub_bits + 1) in
      n_sub + ((m - sub_bits) * half) + sub

(* Inclusive [lo, hi] range of bucket [i]; the inverse of [index_of].
   Exposed so tests can assert the relative-width bound directly. *)
let bounds_of (i : int) : int * int =
  if i < 0 || i >= num_buckets then invalid_arg "Duration.bounds_of"
  else if i < n_sub then (i, i)
  else if i = overflow then (1 lsl (max_m + 1), max_int)
  else
    let k = i - n_sub in
    let m = sub_bits + (k / half) in
    let sub = k mod half in
    let w = 1 lsl (m - sub_bits + 1) in
    let lo = (1 lsl m) + (sub * w) in
    (lo, lo + w - 1)

let observe (t : t) (us : int) : unit =
  let us = if us < 0 then 0 else us in
  t.n <- t.n + 1;
  t.sum <- t.sum + us;
  if us < t.vmin then t.vmin <- us;
  if us > t.vmax then t.vmax <- us;
  let i = index_of us in
  t.counts.(i) <- t.counts.(i) + 1

let count (t : t) = t.n
let sum_us (t : t) = t.sum
let min_us (t : t) = if t.n = 0 then 0 else t.vmin
let max_us (t : t) = t.vmax

let avg_us (t : t) : float =
  if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

(* Nearest-rank quantile: the smallest observed value with cumulative
   frequency >= q*n.  We find its bucket by a cumulative walk and report
   the bucket midpoint clamped to [vmin, vmax] (so a single-valued
   distribution reports that value exactly, and p100 = max). *)
let quantile (t : t) (q : float) : int =
  if t.n = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec go i cum =
      if i >= num_buckets then t.vmax
      else
        let cum = cum + t.counts.(i) in
        if cum >= rank then begin
          let lo, hi = bounds_of i in
          (* the overflow bucket has no midpoint; the observed max is the
             best point estimate for a rank that falls in it *)
          let mid = if i = overflow then t.vmax else (lo + hi) / 2 in
          let mid = if mid < t.vmin then t.vmin else mid in
          if mid > t.vmax then t.vmax else mid
        end
        else go (i + 1) cum
    in
    go 0 0
  end

let p50 (t : t) = quantile t 0.5
let p90 (t : t) = quantile t 0.9
let p99 (t : t) = quantile t 0.99

(* Pointwise add, same contract as [Metrics.merge]: [into] accumulates,
   [src] is untouched.  Associative and commutative with the freshly
   created histogram as identity -- the qcheck laws in [test_obs.ml]. *)
let merge ~(into : t) (src : t) : unit =
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.n > 0 && src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax;
  Array.iteri (fun i v -> if v <> 0 then into.counts.(i) <- into.counts.(i) + v) src.counts

let reset (t : t) : unit =
  t.n <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0;
  Array.fill t.counts 0 num_buckets 0

(* Deterministic snapshot: headline quantities plus the non-empty buckets
   as [[lower_bound, count]] pairs in bucket order.  Two histograms that
   observed the same multiset of values produce byte-identical JSON. *)
let to_json (t : t) : Json.t =
  let buckets =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i ->
              if t.counts.(i) = 0 then None
              else
                let lo, _ = bounds_of i in
                Some (Json.list [ Json.int lo; Json.int t.counts.(i) ]))
            (Seq.init num_buckets (fun i -> i))))
  in
  Json.obj
    [
      ("type", Json.str "duration");
      ("count", Json.int t.n);
      ("sum_us", Json.int t.sum);
      ("min_us", Json.int (min_us t));
      ("max_us", Json.int t.vmax);
      ("avg_us", Json.float (avg_us t));
      ("p50_us", Json.int (p50 t));
      ("p90_us", Json.int (p90 t));
      ("p99_us", Json.int (p99 t));
      ("buckets", Json.list buckets);
    ]

let pp ppf (t : t) =
  Fmt.pf ppf "count=%d avg=%.1fus p50=%dus p99=%dus max=%dus" t.n (avg_us t)
    (p50 t) (p99 t) t.vmax
