(* Machine-readable bench telemetry.

   Every bench (and the [antlrkit bench]/[antlrkit fuzz] subcommands) emits
   one document of this shape to [--json out.json]:

     {
       "schema": "antlrkit-telemetry/2",
       "tool": "<producer>",
       "env": { ocaml, word_size, os, argv, bench_tokens },
       "wall_s": <total wall seconds>,
       "user_s": <total user CPU seconds>,
       "benches": { "<bench or grammar>": { ... } }
     }

   The schema string is the compatibility contract: additive changes keep
   the version, field renames/removals bump it.  /2 replaced the serve
   layer's [serve.wall_us] power-of-two integer histogram with
   [serve.request_us]/[serve.queue_us]/[serve.parse_us] duration summaries
   (log-linear buckets, quantile fields -- see [Duration]); everything else
   is unchanged from /1.  CI archives these files as build artifacts,
   giving the repo a diffable performance trajectory. *)

let schema = "antlrkit-telemetry/2"

(* Environment snapshot: enough to interpret a trajectory point without the
   CI log it came from. *)
let env_json () : Json.t =
  Json.obj
    [
      ("ocaml", Json.str Sys.ocaml_version);
      ("word_size", Json.int Sys.word_size);
      ("os", Json.str Sys.os_type);
      ("backend", Json.str (if Sys.backend_type = Sys.Native then "native" else "bytecode"));
      ("argv", Json.list (Array.to_list (Array.map Json.str Sys.argv)));
      ( "bench_tokens",
        match Sys.getenv_opt "ANTLRKIT_BENCH_TOKENS" with
        | Some s -> Json.str s
        | None -> Json.Null );
    ]

(* User CPU seconds consumed so far (self + reaped children). *)
let user_time () : float =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_cutime

let document ~(tool : string) ~(wall_s : float) ~(user_s : float)
    (benches : (string * Json.t) list) : Json.t =
  Json.obj
    [
      ("schema", Json.str schema);
      ("tool", Json.str tool);
      ("env", env_json ());
      ("wall_s", Json.float wall_s);
      ("user_s", Json.float user_s);
      ("benches", Json.obj benches);
    ]

let write_file (path : string) (doc : Json.t) : unit =
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc
