(* Structured prediction tracing.

   The paper's whole evaluation (section 6, Tables 1-4) is built on seeing
   *inside* prediction: how deep each decision looked, when it fell back to
   speculation, what the lazy DFA materialized.  This module is the event
   substrate: every engine (interpreter, lexer, lazy-DFA builder, the
   compilation cache, the packrat baseline) emits typed events through a
   [t], and pluggable sinks turn them into test fixtures (ring buffer),
   JSON-lines logs, or Chrome trace-event timelines loadable in Perfetto.

   Overhead policy: a disabled tracer must cost one load and one branch per
   *site*, never an allocation.  Event payloads are records, so call sites
   MUST guard construction:

     if Trace.on tr then Trace.emit tr (Decision_enter { ... })

   [emit] re-checks the flag, so a race with [set_on] can at worst drop an
   event, never deliver to a disabled sink.  The [null] tracer is shared
   and permanently off; never flip its flag.

   Serializer discipline: [label], [phase] and [args] below must stay
   exhaustive matches with NO wildcard case, so adding an event variant
   without its serialization is a compile error.  CI greps this whole file
   for wildcard arms to keep it that way, so no match here may use one. *)

type event =
  | Decision_enter of { decision : int; rule : string; pos : int }
      (* a prediction started at token index [pos] *)
  | Decision_exit of { decision : int; alt : int; k : int; pos : int }
      (* prediction chose [alt] after [k] tokens of DFA lookahead; [alt = 0]
         means the decision failed (no viable alternative) *)
  | Dfa_edge of { decision : int; state : int; term : int; target : int }
      (* the lookahead DFA walked one materialized transition *)
  | Lazy_sprout of { decision : int; state : int; term : int; target : int }
      (* lazy construction materialized a new DFA state on demand *)
  | Dfa_rebuild of { decision : int }
      (* incremental construction gave way to the full eager analysis
         (the ATN re-simulation fallback) *)
  | Cache_load of { key : string; hit : bool }
      (* persistent compilation cache probe *)
  | Synpred_enter of { rule : string; pos : int }
      (* speculation: a syntactic predicate began evaluating *)
  | Synpred_exit of { rule : string; ok : bool; reach : int; pos : int }
      (* speculation ended; [reach] tokens examined past the start *)
  | Backtrack of { decision : int; depth : int }
      (* a decision resorted to speculation [depth] tokens in *)
  | Memo_hit of { rule : string; pos : int }
  | Memo_miss of { rule : string; pos : int }
      (* speculation memoization (interpreter) or packrat memo table *)
  | Error_sync of { rule : string; skipped : int; pos : int }
      (* panic-mode recovery consumed [skipped] tokens to resynchronize *)
  | Lexer_mode_enter of { mode : string; line : int; col : int }
  | Lexer_mode_exit of { mode : string; line : int; col : int }
      (* the lexer entered/left a sub-scanner (block comment, string, ...) *)
  | Serve_request of {
      req_id : string; (* client-supplied or daemon-generated correlation id *)
      op : string;
      grammar : string; (* "" when the op has no grammar *)
      backend : string; (* "interp" | "generated" | "" *)
      ok : bool;
      tokens : int;
      wall_us : int;
      queue_us : int; (* time spent waiting for a pool worker *)
    }
      (* the serve daemon answered one request *)

(* Chrome trace-event phase of each variant: [`B]egin/[`E]nd bracket a span,
   [`I]nstant stands alone. *)
type span_phase = [ `B | `E | `I ]

let phase : event -> span_phase = function
  | Decision_enter _ -> `B
  | Decision_exit _ -> `E
  | Dfa_edge _ -> `I
  | Lazy_sprout _ -> `I
  | Dfa_rebuild _ -> `I
  | Cache_load _ -> `I
  | Synpred_enter _ -> `B
  | Synpred_exit _ -> `E
  | Backtrack _ -> `I
  | Memo_hit _ -> `I
  | Memo_miss _ -> `I
  | Error_sync _ -> `I
  | Lexer_mode_enter _ -> `B
  | Lexer_mode_exit _ -> `E
  | Serve_request _ -> `I

(* Machine-readable event tag (JSONL [ev] field). *)
let label : event -> string = function
  | Decision_enter _ -> "decision_enter"
  | Decision_exit _ -> "decision_exit"
  | Dfa_edge _ -> "dfa_edge"
  | Lazy_sprout _ -> "lazy_sprout"
  | Dfa_rebuild _ -> "dfa_rebuild"
  | Cache_load _ -> "cache_load"
  | Synpred_enter _ -> "synpred_enter"
  | Synpred_exit _ -> "synpred_exit"
  | Backtrack _ -> "backtrack"
  | Memo_hit _ -> "memo_hit"
  | Memo_miss _ -> "memo_miss"
  | Error_sync _ -> "error_sync"
  | Lexer_mode_enter _ -> "lexer_mode_enter"
  | Lexer_mode_exit _ -> "lexer_mode_exit"
  | Serve_request _ -> "serve_request"

(* Span name shown on a Chrome/Perfetto track: begin and end of the same
   logical span must agree, so exits reuse the enter name. *)
let span_name : event -> string = function
  | Decision_enter { decision; _ } | Decision_exit { decision; _ } ->
      Printf.sprintf "decision %d" decision
  | Synpred_enter { rule; _ } | Synpred_exit { rule; _ } ->
      Printf.sprintf "synpred %s" rule
  | Lexer_mode_enter { mode; _ } | Lexer_mode_exit { mode; _ } ->
      Printf.sprintf "lex %s" mode
  | Dfa_edge _ -> "dfa edge"
  | Lazy_sprout _ -> "lazy sprout"
  | Dfa_rebuild _ -> "dfa rebuild"
  | Cache_load _ -> "cache load"
  | Backtrack _ -> "backtrack"
  | Memo_hit _ -> "memo hit"
  | Memo_miss _ -> "memo miss"
  | Error_sync _ -> "error sync"
  | Serve_request { op; _ } -> Printf.sprintf "serve %s" op

let args : event -> (string * Json.t) list = function
  | Decision_enter { decision; rule; pos } ->
      [
        ("decision", Json.int decision);
        ("rule", Json.str rule);
        ("pos", Json.int pos);
      ]
  | Decision_exit { decision; alt; k; pos } ->
      [
        ("decision", Json.int decision);
        ("alt", Json.int alt);
        ("k", Json.int k);
        ("pos", Json.int pos);
      ]
  | Dfa_edge { decision; state; term; target } ->
      [
        ("decision", Json.int decision);
        ("state", Json.int state);
        ("term", Json.int term);
        ("target", Json.int target);
      ]
  | Lazy_sprout { decision; state; term; target } ->
      [
        ("decision", Json.int decision);
        ("state", Json.int state);
        ("term", Json.int term);
        ("target", Json.int target);
      ]
  | Dfa_rebuild { decision } -> [ ("decision", Json.int decision) ]
  | Cache_load { key; hit } ->
      [ ("key", Json.str key); ("hit", Json.bool hit) ]
  | Synpred_enter { rule; pos } ->
      [ ("rule", Json.str rule); ("pos", Json.int pos) ]
  | Synpred_exit { rule; ok; reach; pos } ->
      [
        ("rule", Json.str rule);
        ("ok", Json.bool ok);
        ("reach", Json.int reach);
        ("pos", Json.int pos);
      ]
  | Backtrack { decision; depth } ->
      [ ("decision", Json.int decision); ("depth", Json.int depth) ]
  | Memo_hit { rule; pos } ->
      [ ("rule", Json.str rule); ("pos", Json.int pos) ]
  | Memo_miss { rule; pos } ->
      [ ("rule", Json.str rule); ("pos", Json.int pos) ]
  | Error_sync { rule; skipped; pos } ->
      [
        ("rule", Json.str rule);
        ("skipped", Json.int skipped);
        ("pos", Json.int pos);
      ]
  | Lexer_mode_enter { mode; line; col } ->
      [
        ("mode", Json.str mode);
        ("line", Json.int line);
        ("col", Json.int col);
      ]
  | Lexer_mode_exit { mode; line; col } ->
      [
        ("mode", Json.str mode);
        ("line", Json.int line);
        ("col", Json.int col);
      ]
  | Serve_request { req_id; op; grammar; backend; ok; tokens; wall_us; queue_us }
    ->
      [
        ("req_id", Json.str req_id);
        ("op", Json.str op);
        ("grammar", Json.str grammar);
        ("backend", Json.str backend);
        ("ok", Json.bool ok);
        ("tokens", Json.int tokens);
        ("wall_us", Json.int wall_us);
        ("queue_us", Json.int queue_us);
      ]

(* ------------------------------------------------------------------ *)
(* Monotonic clock.

   [Unix.gettimeofday] is wall-clock: NTP slews and steps can make it jump
   backwards, which breaks span nesting in Chrome traces and makes
   latency-by-subtraction occasionally negative.  The stdlib has no
   monotonic clock we can use on every supported compiler without a new
   dependency, so we emulate one: timestamps are seconds since a
   process-start origin, clamped to be non-decreasing across all callers
   with an atomic max.  A backwards wall-clock step therefore freezes the
   clock until real time catches back up instead of going negative; a
   forward step inflates one interval.  Both are strictly better for
   telemetry than a negative duration.

   This is the default tracer clock and the Chrome sink's time base; the
   serve layer also uses it directly for queue/parse/total latency. *)

let mono_origin = Unix.gettimeofday ()
let mono_last = Atomic.make 0.0

let monotonic_now () : float =
  let raw = Unix.gettimeofday () -. mono_origin in
  let rec clamp () =
    let prev = Atomic.get mono_last in
    if raw <= prev then prev
    else if Atomic.compare_and_set mono_last prev raw then raw
    else clamp ()
  in
  clamp ()

(* ------------------------------------------------------------------ *)
(* Tracer *)

type t = {
  mutable enabled : bool;
  sink : float -> event -> unit; (* receives (timestamp seconds, event) *)
  clock : unit -> float;
}

let on t = t.enabled
let set_on t b = t.enabled <- b

let emit t ev = if t.enabled then t.sink (t.clock ()) ev

let make ?(clock = monotonic_now) (sink : float -> event -> unit) : t =
  { enabled = true; sink; clock }

(* The shared disabled tracer: default for every engine.  Its flag is never
   flipped, so a site guarded by [on] costs a load and a branch. *)
let null : t = { enabled = false; sink = (fun _ _ -> ()); clock = (fun () -> 0.0) }

(* ------------------------------------------------------------------ *)
(* Ring-buffer sink: bounded in-memory capture for tests and diagnostics. *)

module Ring = struct
  type entry = { ts : float; ev : event }

  type buf = {
    data : entry array;
    mutable next : int; (* write cursor *)
    mutable total : int; (* events ever written (drops = total - kept) *)
  }

  let sentinel =
    { ts = 0.0; ev = Dfa_rebuild { decision = -1 } (* never exposed *) }

  let create (capacity : int) : buf =
    { data = Array.make (max 1 capacity) sentinel; next = 0; total = 0 }

  let push (b : buf) (ts : float) (ev : event) : unit =
    b.data.(b.next) <- { ts; ev };
    b.next <- (b.next + 1) mod Array.length b.data;
    b.total <- b.total + 1

  let total (b : buf) = b.total
  let capacity (b : buf) = Array.length b.data

  (* Retained entries, oldest first. *)
  let to_list (b : buf) : entry list =
    let cap = Array.length b.data in
    let kept = min b.total cap in
    let first = (b.next - kept + cap) mod cap in
    List.init kept (fun i -> b.data.((first + i) mod cap))

  let events (b : buf) : event list = List.map (fun e -> e.ev) (to_list b)
  let clear (b : buf) =
    b.next <- 0;
    b.total <- 0
end

let ring (buf : Ring.buf) : t = make (fun ts ev -> Ring.push buf ts ev)

(* ------------------------------------------------------------------ *)
(* JSON-lines sink: one event object per line, timestamps in seconds. *)

let jsonl (oc : out_channel) : t =
  make (fun ts ev ->
      let doc =
        Json.obj
          (("ts", Json.float ts)
          :: ("ev", Json.str (label ev))
          :: args ev)
      in
      output_string oc (Json.to_string doc);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Chrome trace-event sink (the JSON Array Format): load the file in
   Perfetto (ui.perfetto.dev) or chrome://tracing to see a parse as a
   timeline -- decisions and speculation as nested duration slices,
   everything else as instant events.

   [close] finishes the array; call it before reading the file.  Timestamps
   are microseconds relative to sink creation, measured on [monotonic_now]
   so they can never run backwards under NTP adjustment. *)

type chrome = {
  c_oc : out_channel;
  c_t0 : float;
  mutable c_first : bool;
  mutable c_closed : bool;
}

let chrome_event (c : chrome) (ts : float) (ev : event) : unit =
  if not c.c_closed then begin
    let ph =
      match phase ev with `B -> "B" | `E -> "E" | `I -> "i"
    in
    let base =
      [
        ("name", Json.str (span_name ev));
        ("cat", Json.str (label ev));
        ("ph", Json.str ph);
        ("ts", Json.float (max 0.0 ((ts -. c.c_t0) *. 1e6)));
        ("pid", Json.int 1);
        ("tid", Json.int 1);
      ]
    in
    let fields =
      (* instant events need a scope; args carry the payload *)
      (if ph = "i" then base @ [ ("s", Json.str "t") ] else base)
      @ [ ("args", Json.obj (args ev)) ]
    in
    if c.c_first then c.c_first <- false else output_char c.c_oc ',';
    output_char c.c_oc '\n';
    output_string c.c_oc (Json.to_string (Json.obj fields))
  end

let chrome_sink (oc : out_channel) : t * (unit -> unit) =
  let c =
    { c_oc = oc; c_t0 = monotonic_now (); c_first = true; c_closed = false }
  in
  output_string oc "[";
  let tracer = make (fun ts ev -> chrome_event c ts ev) in
  let close () =
    if not c.c_closed then begin
      c.c_closed <- true;
      output_string oc "\n]\n";
      flush oc
    end
  in
  (tracer, close)

(* ------------------------------------------------------------------ *)
(* Well-formedness check over a captured event sequence: every span enter
   has a matching, properly nested exit.  Used by tests and available to
   sinks that buffer. *)

let spans_balanced (evs : event list) : bool =
  let key ev =
    match phase ev with `B | `E -> Some (span_name ev) | `I -> None
  in
  let rec go stack = function
    | [] -> stack = []
    | ev :: rest -> (
        match (phase ev, key ev) with
        | `B, Some k -> go (k :: stack) rest
        | `E, Some k -> (
            match stack with
            | top :: stack' -> if top = k then go stack' rest else false
            | [] -> false)
        | (`B | `E), None | `I, (Some _ | None) -> go stack rest)
  in
  go [] evs
