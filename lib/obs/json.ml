(* Minimal JSON document type and printer for the observability layer.

   The repo deliberately carries no JSON dependency; every machine-readable
   artifact (trace files, metrics snapshots, bench telemetry) goes through
   this module so escaping and number formatting are uniform.  Output is
   deterministic: object fields print in the order they were assembled. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj fields
let list items = List items
let str s = String s
let int n = Int n
let float f = Float f
let bool b = Bool b

(* JSON string escaping: the two mandatory escapes plus control characters
   (RFC 8259 section 7).  Non-ASCII bytes pass through untouched; all our
   producers emit UTF-8 or plain ASCII. *)
let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must stay valid JSON: no [nan]/[infinity] literals, and always a
   decimal point or exponent so readers do not reparse them as integers. *)
let float_repr (f : float) : string =
  match Float.classify_float f with
  | Float.FP_nan -> "null"
  | Float.FP_infinite -> if f > 0.0 then "1e308" else "-1e308"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      if
        String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
      then s
      else s ^ ".0"

let rec write (buf : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A small validating parser.  Not used on any hot path: it exists so tests
   and the CLI can check that emitted artifacts (Chrome traces, telemetry
   documents) are well-formed JSON without an external dependency. *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n'
        || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "truncated escape";
            (match s.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 5 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 2) 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some _ -> Buffer.add_string buf ("\\u" ^ hex)
                | None -> fail "bad \\u escape");
                pos := !pos + 4
            | _ -> fail "bad escape");
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else fail "bad literal"
    | Some _ ->
        let start = !pos in
        if peek () = Some '-' then incr pos;
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
             | _ -> false)
        do
          incr pos
        done;
        let lit = String.sub s start (!pos - start) in
        if lit = "" then fail "unexpected character"
        else (
          match int_of_string_opt lit with
          | Some i -> Int i
          | None -> (
              match float_of_string_opt lit with
              | Some f -> Float f
              | None -> fail "bad number"))
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let is_valid (s : string) : bool =
  match parse s with Ok _ -> true | Error _ -> false

(* Field lookup on parsed documents (tests, schema checks). *)
let member (k : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt k fields | _ -> None
