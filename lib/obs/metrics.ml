(* Metrics registry: named counters and lookahead-depth histograms with
   label sets (grammar, decision, rule, ...).

   This is the aggregation layer under the runtime's [Profile] view and the
   bench telemetry documents.  Design constraints:

   - hot-path friendly: [counter]/[histogram] intern a metric once and hand
     back the mutable cell; recording is then a field update with no string
     hashing ([Profile] caches cells per decision exactly like its old
     per-decision hashtable);
   - snapshotable: [to_json] freezes the whole registry into a stable,
     deterministic document (registration order), which is what benches
     embed in their [--json] output;
   - resettable in place: [reset] zeroes every cell without invalidating
     references held by callers. *)

type labels = (string * string) list

type counter = { mutable count : int }

(* Histograms record small non-negative integers (lookahead depths, state
   counts).  Buckets are powers of two: bucket [i] counts observations [v]
   with [2^(i-1) < v <= 2^i] (bucket 0 counts [v <= 0] and [v = 1] lands in
   bucket 1), the last bucket is unbounded.  Exact sum/max/count ride along
   so averages need no bucket interpolation. *)
let num_buckets = 12 (* .. 1024, then +inf *)

type histogram = {
  mutable n : int;
  mutable sum : int;
  mutable hmax : int;
  buckets : int array;
}

let bucket_of (v : int) : int =
  if v <= 0 then 0
  else begin
    let rec go i bound =
      if i >= num_buckets - 1 then num_buckets - 1
      else if v <= bound then i
      else go (i + 1) (bound * 2)
    in
    go 1 1
  end

(* Durations are [Duration.t] log-linear microsecond histograms (serve
   request latency, queue wait).  They live in the same registry so labels,
   merge, reset and snapshots come for free. *)
type metric =
  | Counter of counter
  | Histogram of histogram
  | Duration of Duration.t

type t = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable order : (string * labels) list; (* reverse registration order *)
}

let create () : t = { tbl = Hashtbl.create 64; order = [] }

let sort_labels (l : labels) : labels =
  List.sort (fun (a, _) (b, _) -> compare a b) l

let register (t : t) (name : string) (labels : labels) (make : unit -> metric)
    : metric =
  let key = (name, sort_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.tbl key m;
      t.order <- key :: t.order;
      m

let counter (t : t) ?(labels : labels = []) (name : string) : counter =
  match register t name labels (fun () -> Counter { count = 0 }) with
  | Counter c -> c
  | Histogram _ | Duration _ ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %s is already another kind" name)

let histogram (t : t) ?(labels : labels = []) (name : string) : histogram =
  match
    register t name labels (fun () ->
        Histogram
          { n = 0; sum = 0; hmax = 0; buckets = Array.make num_buckets 0 })
  with
  | Histogram h -> h
  | Counter _ | Duration _ ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %s is already another kind" name)

let duration (t : t) ?(labels : labels = []) (name : string) : Duration.t =
  match register t name labels (fun () -> Duration (Duration.create ())) with
  | Duration d -> d
  | Counter _ | Histogram _ ->
      invalid_arg
        (Printf.sprintf "Metrics.duration: %s is already another kind" name)

let add (c : counter) (n : int) = c.count <- c.count + n
let incr (c : counter) = add c 1
let value (c : counter) = c.count

let observe (h : histogram) (v : int) =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v > h.hmax then h.hmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let h_count (h : histogram) = h.n
let h_sum (h : histogram) = h.sum
let h_max (h : histogram) = h.hmax
let h_avg (h : histogram) =
  if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n

(* Merge [src] into [into]: counters add, histograms add pointwise
   (count/sum/buckets add, max takes the max).  Metrics missing from
   [into] are registered with [src]'s name and labels, in [src]'s
   registration order, so merging worker registries in worker order
   yields a deterministic combined registry.  This is the join step of
   the batch drivers: each worker records into its own registry with no
   synchronization, and the owner merges after [Exec.Pool.await].  A
   name+labels pair registered as a counter on one side and a histogram
   on the other raises [Invalid_argument]. *)
let merge ~(into : t) (src : t) : unit =
  List.iter
    (fun ((name, labels) as key) ->
      match Hashtbl.find_opt src.tbl key with
      | None -> ()
      | Some (Counter c) -> add (counter into ~labels name) c.count
      | Some (Histogram h) ->
          let dst = histogram into ~labels name in
          dst.n <- dst.n + h.n;
          dst.sum <- dst.sum + h.sum;
          if h.hmax > dst.hmax then dst.hmax <- h.hmax;
          Array.iteri
            (fun i v -> dst.buckets.(i) <- dst.buckets.(i) + v)
            h.buckets
      | Some (Duration d) -> Duration.merge ~into:(duration into ~labels name) d)
    (List.rev src.order)

let reset (t : t) =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Histogram h ->
          h.n <- 0;
          h.sum <- 0;
          h.hmax <- 0;
          Array.fill h.buckets 0 num_buckets 0
      | Duration d -> Duration.reset d)
    t.tbl

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let bucket_bound (i : int) : string =
  if i = 0 then "0"
  else if i = num_buckets - 1 then "+inf"
  else string_of_int (1 lsl (i - 1))

let metric_json (m : metric) : Json.t =
  match m with
  | Counter c -> Json.obj [ ("type", Json.str "counter"); ("value", Json.int c.count) ]
  | Histogram h ->
      Json.obj
        [
          ("type", Json.str "histogram");
          ("count", Json.int h.n);
          ("sum", Json.int h.sum);
          ("max", Json.int h.hmax);
          ("avg", Json.float (h_avg h));
          ( "buckets",
            Json.obj
              (List.init num_buckets (fun i ->
                   (bucket_bound i, Json.int h.buckets.(i)))) );
        ]
  | Duration d -> Duration.to_json d

let labels_json (l : labels) : Json.t =
  Json.obj (List.map (fun (k, v) -> (k, Json.str v)) l)

(* Full registry snapshot: a list of metric points in registration order. *)
let to_json (t : t) : Json.t =
  Json.list
    (List.rev_map
       (fun ((name, labels) as key) ->
         let m = Hashtbl.find t.tbl key in
         let base = [ ("name", Json.str name) ] in
         let base =
           if labels = [] then base
           else base @ [ ("labels", labels_json labels) ]
         in
         Json.obj (base @ [ ("metric", metric_json m) ]))
       t.order)

let fold (f : string -> labels -> metric -> 'a -> 'a) (t : t) (init : 'a) : 'a
    =
  List.fold_left
    (fun acc ((name, labels) as key) ->
      f name labels (Hashtbl.find t.tbl key) acc)
    init (List.rev t.order)

let pp ppf (t : t) =
  fold
    (fun name labels m () ->
      let plabels ppf = function
        | [] -> ()
        | l ->
            Fmt.pf ppf "{%a}"
              (Fmt.list ~sep:(Fmt.any ",") (fun ppf (k, v) ->
                   Fmt.pf ppf "%s=%s" k v))
              l
      in
      match m with
      | Counter c -> Fmt.pf ppf "%s%a %d@." name plabels labels c.count
      | Histogram h ->
          Fmt.pf ppf "%s%a count=%d avg=%.2f max=%d@." name plabels labels h.n
            (h_avg h) h.hmax
      | Duration d -> Fmt.pf ppf "%s%a %a@." name plabels labels Duration.pp d)
    t ()
