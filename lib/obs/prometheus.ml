(* Prometheus text exposition format (v0.0.4) over a [Metrics] registry.

   The stats op speaks [antlrkit-telemetry/2], which nothing standard can
   scrape; this renderer is the bridge to the rest of the world.  Mapping:

   - [Counter]    -> prometheus counter;
   - [Histogram]  -> prometheus histogram: cumulative [le] buckets at the
     power-of-two bounds plus [+Inf], with [_sum]/[_count];
   - [Duration.t] -> prometheus summary: [quantile] labels 0.5/0.9/0.99
     (precomputed estimates, the conventional shape for client-side
     quantiles) with [_sum]/[_count] in microseconds.

   Names are prefixed [antlrkit_] and sanitized to [[a-zA-Z0-9_:]]
   (dots become underscores: [serve.requests] -> [antlrkit_serve_requests]);
   the original dotted name survives in the HELP line.  Label values are
   escaped per the spec (backslash, double-quote, newline).  Output is
   deterministic: families in first-registration order, series in
   registration order within a family, [# HELP]/[# TYPE] emitted once per
   family -- the shape [bench/gate.ml --prom] checks in CI. *)

let sanitize (name : string) : string =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  "antlrkit_" ^ Bytes.to_string b

let escape_label_value (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Render a label set as [{k="v",...}]; extra pairs (le, quantile) are
   appended after the registry labels. *)
let labels_str (labels : Metrics.labels) (extra : (string * string) list) :
    string =
  match labels @ extra with
  | [] -> ""
  | pairs ->
      let body =
        String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             pairs)
      in
      "{" ^ body ^ "}"

type family = {
  f_name : string; (* sanitized, prefixed *)
  f_help : string;
  f_type : string; (* "counter" | "gauge" | "histogram" | "summary" *)
  mutable f_lines : string list; (* series lines, reverse order *)
}

let add_line (f : family) (line : string) = f.f_lines <- line :: f.f_lines

let family_lines (f : family) : string list =
  Printf.sprintf "# HELP %s %s" f.f_name f.f_help
  :: Printf.sprintf "# TYPE %s %s" f.f_name f.f_type
  :: List.rev f.f_lines

let counter_series (f : family) labels (c : Metrics.counter) =
  add_line f
    (Printf.sprintf "%s%s %d" f.f_name (labels_str labels []) (Metrics.value c))

let histogram_series (f : family) labels (h : Metrics.histogram) =
  (* Registry buckets are per-bucket counts at power-of-two bounds; the
     exposition format wants cumulative counts per upper bound. *)
  let cum = ref 0 in
  for i = 0 to Metrics.num_buckets - 1 do
    cum := !cum + h.Metrics.buckets.(i);
    let le =
      if i = Metrics.num_buckets - 1 then "+Inf" else Metrics.bucket_bound i
    in
    add_line f
      (Printf.sprintf "%s_bucket%s %d" f.f_name
         (labels_str labels [ ("le", le) ])
         !cum)
  done;
  add_line f
    (Printf.sprintf "%s_sum%s %d" f.f_name (labels_str labels [])
       (Metrics.h_sum h));
  add_line f
    (Printf.sprintf "%s_count%s %d" f.f_name (labels_str labels [])
       (Metrics.h_count h))

let duration_series (f : family) labels (d : Duration.t) =
  List.iter
    (fun (q, v) ->
      add_line f
        (Printf.sprintf "%s%s %d" f.f_name
           (labels_str labels [ ("quantile", q) ])
           v))
    [ ("0.5", Duration.p50 d); ("0.9", Duration.p90 d); ("0.99", Duration.p99 d) ];
  add_line f
    (Printf.sprintf "%s_sum%s %d" f.f_name (labels_str labels [])
       (Duration.sum_us d));
  add_line f
    (Printf.sprintf "%s_count%s %d" f.f_name (labels_str labels [])
       (Duration.count d))

(* [extra] lets the caller expose point-in-time gauges that live outside
   the registry (daemon uptime, pool queue depth, a constant [up]).  Names
   are taken as-is -- callers pass already-valid metric names. *)
let render ?(extra : (string * string * float) list = []) (m : Metrics.t) :
    string =
  let families : (string, family) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let family name help ftype =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
        let f = { f_name = name; f_help = help; f_type = ftype; f_lines = [] } in
        Hashtbl.add families name f;
        order := f :: !order;
        f
  in
  List.iter
    (fun (name, help, v) ->
      let f = family name help "gauge" in
      add_line f
        (Printf.sprintf "%s %s" name
           (if Float.is_integer v && Float.abs v < 1e15 then
              Printf.sprintf "%.0f" v
            else Printf.sprintf "%g" v)))
    extra;
  Metrics.fold
    (fun name labels metric () ->
      let help = Printf.sprintf "antlrkit metric %s" name in
      match metric with
      | Metrics.Counter c ->
          counter_series (family (sanitize name) help "counter") labels c
      | Metrics.Histogram h ->
          histogram_series (family (sanitize name) help "histogram") labels h
      | Metrics.Duration d ->
          duration_series (family (sanitize name) help "summary") labels d)
    m ();
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        (family_lines f))
    (List.rev !order);
  Buffer.contents buf
