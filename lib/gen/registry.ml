(* Registry of the committed generated parsers, one per bench grammar.

   The parser modules in this directory are emitted by [antlrkit codegen]
   (see lib/codegen) and checked in so the fuzz oracle, the benches and
   the tests can exercise real generated code without a build-time
   generation step.  CI's hygiene job regenerates them and fails on any
   byte difference, so they cannot drift from the emitter; regenerate
   with

     dune exec antlrkit -- codegen --bench MiniJava -o lib/gen \
       --parser-only --module gen_mini_java

   (and likewise for the other five). *)

let parsers : (string * (module Runtime.Generated.PARSER)) list =
  [
    ("MiniJava", (module Gen_mini_java));
    ("RatsC", (module Gen_rats_c));
    ("RatsJava", (module Gen_rats_java));
    ("MiniVB", (module Gen_mini_vb));
    ("MiniSQL", (module Gen_mini_sql));
    ("MiniCSharp", (module Gen_mini_csharp));
  ]

let find (name : string) : (module Runtime.Generated.PARSER) option =
  List.assoc_opt name parsers
