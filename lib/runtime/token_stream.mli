(** Token stream with mark/seek support for speculation.

    LL-star parsing is one-pass and left-to-right (paper section 4): the
    stream only rewinds as far as the most recent mark.  The high-water
    mark records the furthest index examined by lookahead or consumption;
    the profiler uses it to measure speculation depth. *)

type t = {
  mutable toks : Token.t array;
  mutable p : int; (* cursor: next token to consume *)
  mutable hw : int; (* furthest index examined; -1 until the first lookahead *)
}
(** The representation is exposed so generated parsers (lib/codegen's
    emitter) can inline the lookahead/consume hot path as direct field
    accesses.  Everyone else should treat it as abstract and use the
    functions below; any manual update must preserve the invariants they
    maintain (cursor clamped to [0, size], high-water monotone). *)

val of_array : Token.t array -> t

val reset : t -> unit
(** Rewind the cursor and forget the high-water mark, restoring the
    [of_array] post-condition.  Required between independent parses that
    reuse one stream (the serve layer's state-reset contract): without it
    the previous parse's cursor and speculation reach leak into the
    next. *)

val load : t -> Token.t array -> unit
(** Replace the token array and {!reset}: point the stream at the next
    request's tokens without allocating a new stream. *)

val size : t -> int

val index : t -> int
(** Index of the next token to consume. *)

val lt : t -> int -> Token.t
(** [lt t k] is the token [k] ahead (k >= 1); a synthetic EOF token beyond
    the end. *)

val la : t -> int -> int
(** Token type at lookahead offset [k]. *)

val consume : t -> Token.t
(** Consume and return the next token; does not move past EOF. *)

val prev : t -> Token.t option
(** The most recently consumed token. *)

val mark : t -> int

val seek : t -> int -> unit
(** Reposition the cursor.  Out-of-range targets are clamped to
    [0, size] ([size] being the post-EOF position). *)

val at_eof : t -> bool

val high_water : t -> int
(** Furthest index examined so far; [-1] until the first [lt]/[la] call. *)

val set_high_water : t -> int -> unit
