(** Token stream with mark/seek support for speculation.

    LL-star parsing is one-pass and left-to-right (paper section 4): the
    stream only rewinds as far as the oldest live mark.  The high-water
    mark records the furthest index examined by lookahead or consumption;
    the profiler uses it to measure speculation depth.

    The stream has two modes sharing one representation:

    - {b materialized} ({!of_array}/{!load}): the whole token array is
      pinned; [base = 0], [limit] is the array length, and behaviour is
      identical to the historical array-backed stream.
    - {b streaming} ({!of_pull}): [toks] is a sliding window over an
      unbounded token sequence.  Tokens behind the {e release frontier} --
      [min (oldest live mark) (cursor) - 1], everything speculation can no
      longer rewind to -- are reclaimed when the window needs room, so
      live memory is O(window + speculation reach) instead of O(input).
      The public API speaks absolute token indices throughout. *)

type t = {
  mutable toks : Token.t array; (* window; slots [0, limit) are live *)
  mutable p : int; (* cursor, window-relative: next token to consume *)
  mutable hw : int; (* furthest window-relative index examined; -1 initially *)
  mutable limit : int; (* filled prefix of [toks]; always <= length *)
  mutable base : int; (* absolute index of [toks.(0)]; 0 if materialized *)
  mutable src : (unit -> Token.t array) option; (* None: materialized *)
  mutable eof_seen : bool; (* the source returned its last chunk *)
  mutable marks : int list; (* live marks (absolute), newest first *)
  mutable on_release : int -> unit; (* called with the new frontier *)
  mutable window : int; (* target window capacity (streaming) *)
  mutable peak : int; (* max tokens resident at once *)
}
(** The representation is exposed so generated parsers (lib/codegen's
    emitter) can inline the lookahead/consume hot path as direct field
    accesses: [p]/[hw] are window-relative, and a read below [limit] may
    use [Array.unsafe_get].  Everyone else should treat it as abstract and
    use the functions below; any manual update must preserve the
    invariants they maintain (cursor within [0, limit], [limit] within the
    array, high-water monotone between rewinds). *)

exception Released of { frontier : int; requested : int }
(** Raised by {!seek} in streaming mode when the target index has been
    reclaimed: [requested < frontier].  A silent clamp here would corrupt
    the speculation rewind that issued the seek. *)

val of_array : Token.t array -> t

val of_pull : ?window:int -> (unit -> Token.t array) -> t
(** [of_pull pull] is a streaming window over the token chunks produced by
    [pull] ([ [||] ] meaning end of input; exceptions propagate to the
    lookahead call that triggered the pull).  [window] (default 4096)
    sizes the window; it grows -- by doubling -- only when the live span
    (unreleased marks plus lookahead reach) exceeds it. *)

val is_streaming : t -> bool

val reset : t -> unit
(** Rewind the cursor and forget the high-water mark, restoring the
    [of_array] post-condition.  Required between independent parses that
    reuse one stream (the serve layer's state-reset contract): without it
    the previous parse's cursor and speculation reach leak into the next.
    Raises [Invalid_argument] on a streaming stream, which cannot rewind
    past its frontier. *)

val load : t -> Token.t array -> unit
(** Replace the token array and {!reset}: point the stream at the next
    request's tokens without allocating a new stream.  Always leaves the
    stream in materialized mode. *)

val size : t -> int
(** Tokens seen so far: the array length in materialized mode, the total
    pulled count in streaming mode (complete once the source is
    exhausted). *)

val index : t -> int
(** Absolute index of the next token to consume. *)

val lt : t -> int -> Token.t
(** [lt t k] is the token [k] ahead (k >= 1), pulling from the source as
    needed in streaming mode; a synthetic EOF token beyond the end. *)

val la : t -> int -> int
(** Token type at lookahead offset [k]. *)

val la_far : t -> int -> int
(** Out-of-line continuation of the lookahead that generated parsers
    inline: same contract as {!la}, called when [p + k - 1 >= limit]. *)

val consume : t -> Token.t
(** Consume and return the next token; does not move past EOF. *)

val prev : t -> Token.t option
(** The most recently consumed token.  Valid in streaming mode too: the
    window always retains at least one token behind the cursor. *)

val mark : t -> int
(** Record the cursor as a rewind target.  In streaming mode the mark pins
    the window -- tokens from [mark - 1] on are retained -- until the
    matching {!release}. *)

val release : t -> int -> unit
(** Release a mark obtained from {!mark}, allowing the window to slide past
    it.  No-op in materialized mode. *)

val live_marks : t -> int list
(** Outstanding (unreleased) marks, newest first: the debug retention
    check.  A non-empty result after a completed parse is a mark leak --
    the window can never slide past the oldest entry. *)

val seek : t -> int -> unit
(** Reposition the cursor.  Materialized mode clamps out-of-range targets
    to [0, size] ([size] being the post-EOF position); streaming mode
    raises {!Released} for targets behind the frontier and clamps forward
    targets to the filled prefix. *)

val at_eof : t -> bool

val high_water : t -> int
(** Furthest absolute index examined so far; [-1] until the first
    [lt]/[la] call. *)

val set_high_water : t -> int -> unit

val set_release_hook : t -> (int -> unit) -> unit
(** Install a callback invoked with the new frontier whenever the window
    slides.  Memo tables key entries by absolute position and use this to
    evict everything behind the frontier. *)

val peak_live : t -> int
(** Maximum number of tokens resident in the window at once: the live
    memory high-water of a streaming parse (equals {!size} in
    materialized mode). *)

val window_size : t -> int
(** The configured window (0 in materialized mode). *)
