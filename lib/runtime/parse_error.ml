(* Parse errors.  Per the paper's section 4.4, a prediction failure is
   reported at the specific token that led the lookahead DFA into an error
   state (not at the decision's start token), and a failed backtracking
   decision reports the deepest token reached by a failed speculative
   parse. *)

type kind =
  | Mismatched_token of { expected : int }
  | No_viable_alt of { decision : int; depth : int }
    (* the DFA died [depth] tokens into the lookahead *)
  | Failed_predicate of { text : string }
  | Extraneous_input (* tokens remain after the start rule finished *)

type t = {
  kind : kind;
  token : Token.t; (* offending token *)
  rule : int; (* rule being parsed *)
}

exception Error of t

let pp sym ppf e =
  let where ppf (tok : Token.t) =
    if Token.is_eof tok then Fmt.string ppf "at end of input"
    else Fmt.pf ppf "at %d:%d" tok.Token.line tok.Token.col
  in
  let tokstr (tok : Token.t) =
    if Token.is_eof tok then "<EOF>" else Printf.sprintf "%S" tok.Token.text
  in
  match e.kind with
  | Mismatched_token { expected } ->
      Fmt.pf ppf "%a: mismatched input %s, expecting %s (in rule %s)" where
        e.token (tokstr e.token)
        (Grammar.Sym.term_name sym expected)
        (Grammar.Sym.nonterm_name sym e.rule)
  | No_viable_alt { decision; depth } ->
      Fmt.pf ppf
        "%a: no viable alternative at input %s (decision %d, %d token%s of \
         lookahead, in rule %s)"
        where e.token (tokstr e.token) decision depth
        (if depth = 1 then "" else "s")
        (Grammar.Sym.nonterm_name sym e.rule)
  | Failed_predicate { text } ->
      Fmt.pf ppf "%a: predicate {%s}? failed %s (in rule %s)" where e.token
        text (tokstr e.token)
        (Grammar.Sym.nonterm_name sym e.rule)
  | Extraneous_input ->
      Fmt.pf ppf "%a: extraneous input %s after start rule" where e.token
        (tokstr e.token)

let to_string sym e = Fmt.str "%a" (pp sym) e

(* Stable machine-readable tag for telemetry documents and error-rate
   metrics (no symbol table needed). *)
let kind_label e =
  match e.kind with
  | Mismatched_token _ -> "mismatched_token"
  | No_viable_alt _ -> "no_viable_alt"
  | Failed_predicate _ -> "failed_predicate"
  | Extraneous_input -> "extraneous_input"

(* Structured JSON rendering for the serve protocol: everything the [pp]
   text carries, as stable fields a client can dispatch on.  Kind-specific
   payloads ride under their own keys so additive kinds stay
   backward-compatible. *)
let to_json sym (e : t) : Obs.Json.t =
  let message = to_string sym e in
  let open Obs.Json in
  let kind_fields =
    match e.kind with
    | Mismatched_token { expected } ->
        [
          ("expected", str (Grammar.Sym.term_name sym expected));
          ("expected_id", int expected);
        ]
    | No_viable_alt { decision; depth } ->
        [ ("decision", int decision); ("depth", int depth) ]
    | Failed_predicate { text } -> [ ("predicate", str text) ]
    | Extraneous_input -> []
  in
  obj
    ([
       ("kind", str (kind_label e));
       ("message", str message);
       ("rule", str (Grammar.Sym.nonterm_name sym e.rule));
       ( "token",
         obj
           [
             ("index", int e.token.Token.index);
             ("line", int e.token.Token.line);
             ("col", int e.token.Token.col);
             ("text", str e.token.Token.text);
             ("eof", bool (Token.is_eof e.token));
           ] );
     ]
    @ kind_fields)
