(* Runtime decision profiling: the counters behind the paper's Tables 3
   and 4, plus lazy-DFA construction counters.

   Since the observability layer landed, this module is a *view* over an
   [Obs.Metrics] registry rather than a bag of ad-hoc mutable fields: every
   quantity lives in a named counter or histogram (labeled by decision for
   the per-decision stats), so the same numbers that feed [pp] also appear
   verbatim in bench telemetry snapshots ([Obs.Metrics.to_json]).  The hot
   path keeps its old cost: metric cells are interned once and cached, so
   [record] performs one int-keyed hashtable probe plus field updates,
   exactly like the previous hand-rolled implementation.

   A decision *event* is one execution of a prediction (loop decisions fire
   once per iteration).  Two lookahead depths are tracked separately:

   - the *DFA depth*: how many tokens the lookahead DFA itself examined
     ([avg_dfa_k]/[dfa_max_k]);
   - the *effective depth*: the furthest token the decision reached,
     counting speculation for events that evaluated a syntactic predicate
     ([avg_k]/[max_k], the paper's Table 3 "avg k").

   [back_k] averages speculation depth over backtracking events only. *)

module M = Obs.Metrics

(* Per-decision metric cells, interned on first sight of the decision. *)
type dcells = {
  d_events : M.counter;
  d_backtracks : M.counter;
  d_lazy : M.counter;
  d_cached : M.counter;
  d_k : M.histogram; (* effective lookahead depth at this decision *)
}

type t = {
  registry : M.t;
  look : M.histogram; (* effective depth: max(dfa, speculation) *)
  dfa_look : M.histogram; (* DFA-only depth *)
  spec : M.histogram; (* speculation reach, backtracking events only *)
  lazy_states : M.counter; (* DFA states built on demand *)
  cached_states : M.counter; (* DFA states loaded from a cache *)
  parse_us : Obs.Duration.t; (* per-parse wall time, serve layer only *)
  per_decision : (int, dcells) Hashtbl.t;
}

let registry t = t.registry

let create () =
  let registry = M.create () in
  {
    registry;
    look = M.histogram registry "parse_lookahead_k";
    dfa_look = M.histogram registry "parse_dfa_lookahead_k";
    spec = M.histogram registry "parse_speculation_k";
    lazy_states = M.counter registry "dfa_lazy_states";
    cached_states = M.counter registry "dfa_cached_states";
    parse_us = M.duration registry "parse_wall_us";
    per_decision = Hashtbl.create 64;
  }

(* Wall time of one parse, recorded by callers that own a clock (the serve
   handler).  Deliberately absent from [pp]/[to_json]: those outputs are
   diffed byte-for-byte across job counts in CI, so nothing wall-clock
   dependent may appear in them.  The quantiles surface through the
   registry snapshot ([registry] + [Obs.Metrics.to_json]) instead. *)
let observe_parse_us t us = Obs.Duration.observe t.parse_us us

let reset t =
  M.reset t.registry;
  Hashtbl.reset t.per_decision

let dstats_of t decision =
  match Hashtbl.find_opt t.per_decision decision with
  | Some ds -> ds
  | None ->
      let labels = [ ("decision", string_of_int decision) ] in
      let ds =
        {
          d_events = M.counter t.registry ~labels "decision_events";
          d_backtracks = M.counter t.registry ~labels "decision_backtracks";
          d_lazy = M.counter t.registry ~labels "decision_lazy_states";
          d_cached = M.counter t.registry ~labels "decision_cached_states";
          d_k = M.histogram t.registry ~labels "decision_lookahead_k";
        }
      in
      Hashtbl.add t.per_decision decision ds;
      ds

(* Merge a worker's profile into [into] (the batch drivers' join step).
   Merging the registries does the arithmetic: the headline quantities
   below are all views over registry cells.  The per-decision cell cache
   is then re-interned for every decision the worker saw, so
   [decisions_covered] and the per-decision table count merged decisions
   too ([dstats_of] finds the already-merged registry cells by label). *)
let merge ~into (src : t) : unit =
  M.merge ~into:into.registry src.registry;
  Hashtbl.iter (fun d _ -> ignore (dstats_of into d)) src.per_decision

(* [depth] is the DFA lookahead depth alone; [spec_depth] the furthest token
   reached by speculation (0 when [backtracked] is false). *)
let record t ~decision ~depth ~backtracked ~spec_depth =
  M.observe t.dfa_look depth;
  let effective = if backtracked then max depth spec_depth else depth in
  M.observe t.look effective;
  if backtracked then M.observe t.spec spec_depth;
  let ds = dstats_of t decision in
  M.incr ds.d_events;
  M.observe ds.d_k effective;
  if backtracked then M.incr ds.d_backtracks

(* [n] DFA states became available for [decision]: built on demand by the
   lazy engine ([cached=false]) or loaded from a compilation cache. *)
let record_dfa_built t ~decision ~cached ~n =
  if n > 0 then begin
    if cached then M.add t.cached_states n else M.add t.lazy_states n;
    let ds = dstats_of t decision in
    if cached then M.add ds.d_cached n else M.add ds.d_lazy n
  end

(* --- Table 3 quantities --- *)

let events t = M.h_count t.look
let back_events t = M.h_count t.spec
let decisions_covered t = Hashtbl.length t.per_decision
let avg_k t = M.h_avg t.look
let avg_dfa_k t = M.h_avg t.dfa_look
let back_k t = M.h_avg t.spec
let max_k t = M.h_max t.look
let dfa_max_k t = M.h_max t.dfa_look

(* --- Lazy-construction quantities --- *)

let lazy_dfa_states t = M.value t.lazy_states
let cached_dfa_states t = M.value t.cached_states

(* --- Table 4 quantities --- *)

(* Distinct decisions that backtracked at least once. *)
let decisions_that_backtracked t =
  Hashtbl.fold
    (fun _ ds acc -> if M.value ds.d_backtracks > 0 then acc + 1 else acc)
    t.per_decision 0

let backtrack_event_rate t =
  if events t = 0 then 0.0
  else 100.0 *. float_of_int (back_events t) /. float_of_int (events t)

(* Likelihood that an event at a decision that ever backtracks actually
   backtracked (the paper's "back. rate"). *)
let backtrack_rate_at_pbds t =
  let ev, bk =
    Hashtbl.fold
      (fun _ ds (ev, bk) ->
        if M.value ds.d_backtracks > 0 then
          (ev + M.value ds.d_events, bk + M.value ds.d_backtracks)
        else (ev, bk))
      t.per_decision (0, 0)
  in
  if ev = 0 then 0.0 else 100.0 *. float_of_int bk /. float_of_int ev

let pp ppf t =
  Fmt.pf ppf
    "decision events=%d covered=%d avg k=%.2f (dfa %.2f) back k=%.2f max k=%d \
     backtracked=%.2f%% (at PBDs: %.2f%%)"
    (events t) (decisions_covered t) (avg_k t) (avg_dfa_k t) (back_k t)
    (max_k t)
    (backtrack_event_rate t)
    (backtrack_rate_at_pbds t);
  if lazy_dfa_states t > 0 || cached_dfa_states t > 0 then
    Fmt.pf ppf "; dfa states lazy=%d cached=%d" (lazy_dfa_states t)
      (cached_dfa_states t)

(* Verbose per-decision table (the CLI's [--profile -v]): the per-decision
   stats were historically collected but never rendered anywhere. *)
let pp_decisions ppf t =
  let rows =
    Hashtbl.fold (fun d ds acc -> (d, ds) :: acc) t.per_decision []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fmt.pf ppf "%8s %8s %10s %7s %6s %6s %7s@." "decision" "events"
    "backtracks" "avg k" "max k" "lazy" "cached";
  List.iter
    (fun (d, ds) ->
      Fmt.pf ppf "%8d %8d %10d %7.2f %6d %6d %7d@." d (M.value ds.d_events)
        (M.value ds.d_backtracks) (M.h_avg ds.d_k) (M.h_max ds.d_k)
        (M.value ds.d_lazy) (M.value ds.d_cached))
    rows

(* Summary document for telemetry: the headline Table 3/4 quantities plus
   construction counters.  The full registry (per-decision points included)
   is available via [registry] + [Obs.Metrics.to_json]. *)
let to_json t : Obs.Json.t =
  Obs.Json.obj
    [
      ("decision_events", Obs.Json.int (events t));
      ("decisions_covered", Obs.Json.int (decisions_covered t));
      ("avg_k", Obs.Json.float (avg_k t));
      ("max_k", Obs.Json.int (max_k t));
      ("avg_dfa_k", Obs.Json.float (avg_dfa_k t));
      ("dfa_max_k", Obs.Json.int (dfa_max_k t));
      ("back_k", Obs.Json.float (back_k t));
      ("backtrack_events", Obs.Json.int (back_events t));
      ("backtrack_event_pct", Obs.Json.float (backtrack_event_rate t));
      ("backtrack_rate_at_pbds", Obs.Json.float (backtrack_rate_at_pbds t));
      ( "decisions_that_backtracked",
        Obs.Json.int (decisions_that_backtracked t) );
      ("lazy_dfa_states", Obs.Json.int (lazy_dfa_states t));
      ("cached_dfa_states", Obs.Json.int (cached_dfa_states t));
    ]
