(* Runtime decision profiling: the counters behind the paper's Tables 3
   and 4, plus lazy-DFA construction counters.

   A decision *event* is one execution of a prediction (loop decisions fire
   once per iteration).  Two lookahead depths are tracked separately:

   - the *DFA depth*: how many tokens the lookahead DFA itself examined
     ([avg_dfa_k]/[dfa_max_k]);
   - the *effective depth*: the furthest token the decision reached,
     counting speculation for events that evaluated a syntactic predicate
     ([avg_k]/[max_k], the paper's Table 3 "avg k").

   Earlier versions folded speculation reach into the DFA depth inside
   [record], double-counting it when callers pre-mixed the two; the caller
   now reports each depth once and the mixing happens here, in one place.
   [back k] averages speculation depth over backtracking events only. *)

type dstats = {
  mutable d_events : int;
  mutable d_backtracks : int;
  mutable d_lazy_states : int;
  mutable d_cached_states : int;
}

type t = {
  mutable events : int;
  mutable look_sum : int; (* effective depth: max(dfa, speculation) *)
  mutable look_max : int;
  mutable dfa_look_sum : int; (* DFA-only depth *)
  mutable dfa_look_max : int;
  mutable back_events : int;
  mutable back_look_sum : int;
  mutable back_look_max : int;
  mutable dfa_lazy_states : int; (* DFA states built on demand *)
  mutable dfa_cached_states : int; (* DFA states loaded from a cache *)
  per_decision : (int, dstats) Hashtbl.t;
}

let create () =
  {
    events = 0;
    look_sum = 0;
    look_max = 0;
    dfa_look_sum = 0;
    dfa_look_max = 0;
    back_events = 0;
    back_look_sum = 0;
    back_look_max = 0;
    dfa_lazy_states = 0;
    dfa_cached_states = 0;
    per_decision = Hashtbl.create 64;
  }

let reset t =
  t.events <- 0;
  t.look_sum <- 0;
  t.look_max <- 0;
  t.dfa_look_sum <- 0;
  t.dfa_look_max <- 0;
  t.back_events <- 0;
  t.back_look_sum <- 0;
  t.back_look_max <- 0;
  t.dfa_lazy_states <- 0;
  t.dfa_cached_states <- 0;
  Hashtbl.reset t.per_decision

let dstats_of t decision =
  match Hashtbl.find_opt t.per_decision decision with
  | Some ds -> ds
  | None ->
      let ds =
        {
          d_events = 0;
          d_backtracks = 0;
          d_lazy_states = 0;
          d_cached_states = 0;
        }
      in
      Hashtbl.add t.per_decision decision ds;
      ds

(* [depth] is the DFA lookahead depth alone; [spec_depth] the furthest token
   reached by speculation (0 when [backtracked] is false). *)
let record t ~decision ~depth ~backtracked ~spec_depth =
  t.events <- t.events + 1;
  t.dfa_look_sum <- t.dfa_look_sum + depth;
  if depth > t.dfa_look_max then t.dfa_look_max <- depth;
  let effective = if backtracked then max depth spec_depth else depth in
  t.look_sum <- t.look_sum + effective;
  if effective > t.look_max then t.look_max <- effective;
  if backtracked then begin
    t.back_events <- t.back_events + 1;
    t.back_look_sum <- t.back_look_sum + spec_depth;
    if spec_depth > t.back_look_max then t.back_look_max <- spec_depth
  end;
  let ds = dstats_of t decision in
  ds.d_events <- ds.d_events + 1;
  if backtracked then ds.d_backtracks <- ds.d_backtracks + 1

(* [n] DFA states became available for [decision]: built on demand by the
   lazy engine ([cached=false]) or loaded from a compilation cache. *)
let record_dfa_built t ~decision ~cached ~n =
  if n > 0 then begin
    if cached then t.dfa_cached_states <- t.dfa_cached_states + n
    else t.dfa_lazy_states <- t.dfa_lazy_states + n;
    let ds = dstats_of t decision in
    if cached then ds.d_cached_states <- ds.d_cached_states + n
    else ds.d_lazy_states <- ds.d_lazy_states + n
  end

(* --- Table 3 quantities --- *)

let decisions_covered t = Hashtbl.length t.per_decision

let avg_k t =
  if t.events = 0 then 0.0 else float_of_int t.look_sum /. float_of_int t.events

let avg_dfa_k t =
  if t.events = 0 then 0.0
  else float_of_int t.dfa_look_sum /. float_of_int t.events

let back_k t =
  if t.back_events = 0 then 0.0
  else float_of_int t.back_look_sum /. float_of_int t.back_events

let max_k t = t.look_max
let dfa_max_k t = t.dfa_look_max

(* --- Lazy-construction quantities --- *)

let lazy_dfa_states t = t.dfa_lazy_states
let cached_dfa_states t = t.dfa_cached_states

(* --- Table 4 quantities --- *)

(* Distinct decisions that backtracked at least once. *)
let decisions_that_backtracked t =
  Hashtbl.fold
    (fun _ ds acc -> if ds.d_backtracks > 0 then acc + 1 else acc)
    t.per_decision 0

let backtrack_event_rate t =
  if t.events = 0 then 0.0
  else 100.0 *. float_of_int t.back_events /. float_of_int t.events

(* Likelihood that an event at a decision that ever backtracks actually
   backtracked (the paper's "back. rate"). *)
let backtrack_rate_at_pbds t =
  let ev, bk =
    Hashtbl.fold
      (fun _ ds (ev, bk) ->
        if ds.d_backtracks > 0 then (ev + ds.d_events, bk + ds.d_backtracks)
        else (ev, bk))
      t.per_decision (0, 0)
  in
  if ev = 0 then 0.0 else 100.0 *. float_of_int bk /. float_of_int ev

let pp ppf t =
  Fmt.pf ppf
    "decision events=%d covered=%d avg k=%.2f (dfa %.2f) back k=%.2f max k=%d \
     backtracked=%.2f%% (at PBDs: %.2f%%)"
    t.events (decisions_covered t) (avg_k t) (avg_dfa_k t) (back_k t)
    t.look_max
    (backtrack_event_rate t)
    (backtrack_rate_at_pbds t);
  if t.dfa_lazy_states > 0 || t.dfa_cached_states > 0 then
    Fmt.pf ppf "; dfa states lazy=%d cached=%d" t.dfa_lazy_states
      t.dfa_cached_states
