(** Configurable lexer engine: the scanner substrate used by every benchmark
    grammar.

    Literal tokens (keywords and operators) always come from the grammar's
    vocabulary; the configuration maps the common token *classes*
    (identifiers, numbers, strings, characters), comment styles and
    language-specific quirks (single-quoted SQL strings, T-SQL [@vars],
    VB-style newline tokens, case-insensitive keywords).  A word spelled
    exactly like a named token type (e.g. [A]) lexes as that type, which
    keeps abstract vocabularies usable in tests and examples. *)

type config = {
  ident_token : string option;  (** token type for identifiers, e.g. ["ID"] *)
  int_token : string option;
  float_token : string option;
  string_token : string option;
  string_quote : char;  (** ['"'] for C-family, ['\''] for SQL *)
  char_token : string option;  (** single-quoted character literals *)
  at_ident_token : string option;
      (** token type for ['@']-prefixed identifiers (T-SQL variables) *)
  newline_token : string option;
      (** emit one token per newline run (VB-style line-oriented syntax) *)
  line_comments : string list;  (** e.g. [["//"; "--"]] *)
  block_comments : (string * string) list;  (** e.g. [[("/*", "*/")]] *)
  case_insensitive_keywords : bool;
  extra_ident_start : string;  (** additional identifier start characters *)
  extra_ident_cont : string;
}

val default_config : config
(** C-family defaults: [ID]/[INT], [//] and [/* */] comments,
    double-quoted strings disabled until a token name is supplied. *)

type error = { msg : string; line : int; col : int }

val pp_error : Format.formatter -> error -> unit

exception Lex_error of error
(** Raised by {!pull} when the scanner hits a lex error mid-stream. *)

(** {1 Chunked scanning}

    The scanner is incremental: it reads bytes from a pull-based {!reader}
    through a sliding window and yields tokens in chunks, so unbounded
    inputs lex in O(window) memory.  Chunked and whole-string scanning are
    byte-identical: same tokens, indices, positions, trace events and
    errors. *)

type reader = Bytes.t -> int -> int -> int
(** [reader buf off len] reads up to [len] bytes into [buf] at [off] and
    returns the count; 0 means end of input. *)

val reader_of_string : string -> reader

val reader_of_channel : in_channel -> reader

type stream
(** Incremental scanner state: byte window, position, line/col, token
    count.  One value per input; not thread-safe. *)

val stream :
  ?tracer:Obs.Trace.t ->
  ?buf_chars:int ->
  config ->
  Grammar.Sym.t ->
  reader ->
  stream
(** Open an incremental scan of [reader] against a grammar's vocabulary.
    [buf_chars] (default 64 KiB) sizes the byte window; it grows only when
    a single token outlives a full window. *)

val next_chunk : ?max_tokens:int -> stream -> (Token.t array, error) result
(** Scan up to [max_tokens] (default 256) further tokens.  [Ok [||]]
    means the input is exhausted; after an [Error] the stream stays
    failed.  Tokens scanned before a mid-chunk failure are withheld, so a
    failing input yields the same observable outcome as {!tokenize}. *)

val pull : ?chunk_tokens:int -> stream -> unit -> Token.t array
(** [pull s] is a chunk source compatible with [Token_stream.of_pull];
    lex failures raise {!Lex_error} at the lookahead call that pulled
    them. *)

val drain : stream -> (int, error) result
(** Scan the remaining input without retaining tokens: the count of
    remaining tokens, or the first lex error.  Lets a streaming driver
    report the same verdict and token total as the materialized path,
    which always lexes everything first. *)

val produced : stream -> int
(** Tokens produced so far (across all chunks). *)

val tokenize :
  ?tracer:Obs.Trace.t ->
  config ->
  Grammar.Sym.t ->
  string ->
  (Token.t array, error) result
(** Tokenize [src] against a grammar's vocabulary.  Keywords are matched
    before identifiers; operators by maximal munch.  [tracer] receives
    [Lexer_mode_enter]/[Lexer_mode_exit] events around the block-comment,
    string and character sub-scanners. *)

val tokenize_exn :
  ?tracer:Obs.Trace.t -> config -> Grammar.Sym.t -> string -> Token.t array
