(** Configurable lexer engine: the scanner substrate used by every benchmark
    grammar.

    Literal tokens (keywords and operators) always come from the grammar's
    vocabulary; the configuration maps the common token *classes*
    (identifiers, numbers, strings, characters), comment styles and
    language-specific quirks (single-quoted SQL strings, T-SQL [@vars],
    VB-style newline tokens, case-insensitive keywords).  A word spelled
    exactly like a named token type (e.g. [A]) lexes as that type, which
    keeps abstract vocabularies usable in tests and examples. *)

type config = {
  ident_token : string option;  (** token type for identifiers, e.g. ["ID"] *)
  int_token : string option;
  float_token : string option;
  string_token : string option;
  string_quote : char;  (** ['"'] for C-family, ['\''] for SQL *)
  char_token : string option;  (** single-quoted character literals *)
  at_ident_token : string option;
      (** token type for ['@']-prefixed identifiers (T-SQL variables) *)
  newline_token : string option;
      (** emit one token per newline run (VB-style line-oriented syntax) *)
  line_comments : string list;  (** e.g. [["//"; "--"]] *)
  block_comments : (string * string) list;  (** e.g. [[("/*", "*/")]] *)
  case_insensitive_keywords : bool;
  extra_ident_start : string;  (** additional identifier start characters *)
  extra_ident_cont : string;
}

val default_config : config
(** C-family defaults: [ID]/[INT], [//] and [/* */] comments,
    double-quoted strings disabled until a token name is supplied. *)

type error = { msg : string; line : int; col : int }

val pp_error : Format.formatter -> error -> unit

val tokenize :
  ?tracer:Obs.Trace.t ->
  config ->
  Grammar.Sym.t ->
  string ->
  (Token.t array, error) result
(** Tokenize [src] against a grammar's vocabulary.  Keywords are matched
    before identifiers; operators by maximal munch.  [tracer] receives
    [Lexer_mode_enter]/[Lexer_mode_exit] events around the block-comment,
    string and character sub-scanners. *)

val tokenize_exn :
  ?tracer:Obs.Trace.t -> config -> Grammar.Sym.t -> string -> Token.t array
