(* Runtime support for generated parsers.

   [antlrkit codegen] lowers a compiled grammar to a self-contained OCaml
   module: one recursive function per rule, lookahead decisions compiled to
   nested match/if chains over token ids (or a table-driven walk of the
   frozen lookahead DFA for large decisions), syntactic predicates to
   boolean speculation functions over {!Token_stream} marks.  Everything a
   generated module cannot inline -- speculation bookkeeping, the
   memoize-while-speculating cache, error construction, the stuck-loop
   guard, profiling -- lives here, so emitted code stays small and the
   semantics stay in one place, byte-for-byte aligned with {!Interp} (the
   differential oracle; see DESIGN.md, "Code generation").

   The invariants mirrored from the interpreter:

   - errors raised while speculating become {!Spec_fail}, never user-visible
     parse errors;
   - a prediction failure reports the token that killed the DFA, [depth+1]
     tokens ahead (paper section 4.4);
   - rule results are memoized only while speculating (section 6.2), keyed
     by (rule, position, precedence);
   - speculation rewinds the stream but keeps the high-water mark, so
     profiled lookahead depths include speculative reach. *)

type memo_entry = Failed | Succeeded of int (* stop index *)

type st = {
  ts : Token_stream.t;
  env : Interp.env;
  profile : Profile.t option;
  memo_enabled : bool;
  mutable memo : (int, memo_entry) Hashtbl.t option;
      (* keyed by packed (rule, prec, pos); created on first speculative
         use so parses that never speculate pay nothing for memoization *)
  mutable speculating : int;
}

exception Spec_fail
(* Internal: a speculative parse failed to match.  Never escapes [speculate]. *)

(* [make_of_stream] accepts any stream, including a streaming window
   ({!Token_stream.of_pull}); emitted parsers handle both through the same
   inlined fast path (a bounds check against the filled prefix, with an
   out-of-line [Ts.la_far] continuation that pulls more input). *)
let make_of_stream ?(env = Interp.default_env) ?profile ~(memoize : bool)
    (ts : Token_stream.t) : st =
  { ts; env; profile; memo_enabled = memoize; memo = None; speculating = 0 }

let make ?env ?profile ~(memoize : bool) (toks : Token.t array) : st =
  make_of_stream ?env ?profile ~memoize (Token_stream.of_array toks)

(* Reset a parser state for the next request's tokens.  The memo table is
   keyed by (rule, precedence, position) only -- NOT by token content -- so
   an entry from a previous input is indistinguishable from a hit on the
   current one: reusing a state without clearing it lets one request's
   speculation outcomes decide another request's parse (accepting or
   rejecting inputs it never examined).  [Hashtbl.reset] keeps the table's
   backing array, so a long-lived server thread that reuses one [st] pays
   no re-growth cost; [speculating] is forced back to 0 so an exception
   that escaped a previous parse cannot leave the next one permanently
   "speculating" (every error would become a silent [Spec_fail]). *)
let reset (st : st) (toks : Token.t array) : unit =
  Token_stream.load st.ts toks;
  st.speculating <- 0;
  match st.memo with Some tbl -> Hashtbl.reset tbl | None -> ()

(* ------------------------------------------------------------------ *)
(* Errors.  While speculating, every failure is a [Spec_fail]. *)

let error st kind rule =
  if st.speculating > 0 then raise Spec_fail
  else
    raise
      (Parse_error.Error
         Parse_error.{ kind; token = Token_stream.lt st.ts 1; rule })

let mismatched st ~expected ~rule : 'a =
  error st (Parse_error.Mismatched_token { expected }) rule

let failed_pred st ~text ~rule : 'a =
  error st (Parse_error.Failed_predicate { text }) rule

(* [depth] is the DFA walk depth (0-based); the offending token is the one
   that killed the DFA, [depth + 1] tokens ahead. *)
let no_viable st ~decision ~depth ~rule : 'a =
  let tok = Token_stream.lt st.ts (depth + 1) in
  let e =
    Parse_error.
      { kind = No_viable_alt { decision; depth = depth + 1 }; token = tok; rule }
  in
  if st.speculating > 0 then raise Spec_fail else raise (Parse_error.Error e)

(* A loop decision made no progress and has no exit alternative. *)
let stuck_fail st ~decision ~rule : 'a =
  error st (Parse_error.No_viable_alt { decision; depth = 1 }) rule

(* A non-stop state with no outgoing transition: internal error. *)
let dead st ~rule : 'a =
  error st (Parse_error.No_viable_alt { decision = -1; depth = 1 }) rule

(* A decision produced an alternative outside the emitted dispatch range:
   impossible unless the generated module and its DFAs disagree. *)
let bad_alt ~decision (alt : int) : 'a =
  invalid_arg
    (Printf.sprintf "generated parser: decision %d produced alternative %d"
       decision alt)

let unknown_synpred (rule : int) : 'a =
  invalid_arg
    (Printf.sprintf "generated parser: no synpred function for rule %d" rule)

(* ------------------------------------------------------------------ *)
(* Progress guard: if the same decision fires twice at the same input
   position within one rule invocation, force its exit alternative (or
   fail).  [last_pos]/[seen] are per-invocation refs owned by the emitted
   rule body. *)

let stuck st (last_pos : int ref) (seen : int list ref) ~(d : int) : bool =
  let pos = Token_stream.index st.ts in
  if pos <> !last_pos then begin
    last_pos := pos;
    seen := [ d ];
    false
  end
  else if List.mem d !seen then true
  else begin
    seen := d :: !seen;
    false
  end

(* ------------------------------------------------------------------ *)
(* Speculation: run a synpred rule body from the current position as a
   recognizer, rewind, and report success plus the lookahead reach. *)

let speculate st (run : unit -> unit) : bool * int =
  let start = Token_stream.mark st.ts in
  let saved_hw = Token_stream.high_water st.ts in
  (* [start - 1]: the speculation has examined nothing yet, so an empty
     synpred fragment reports a reach of 0, not 1 *)
  Token_stream.set_high_water st.ts (start - 1);
  st.speculating <- st.speculating + 1;
  let ok = match run () with () -> true | exception Spec_fail -> false in
  st.speculating <- st.speculating - 1;
  let reach = max 0 (Token_stream.high_water st.ts - start + 1) in
  Token_stream.seek st.ts start;
  Token_stream.release st.ts start;
  Token_stream.set_high_water st.ts
    (max saved_hw (Token_stream.high_water st.ts));
  (ok, reach)

(* Synpred gate on an alternative's left edge (re-evaluated only when the
   surrounding decision did not just select this alternative). *)
let syn_gate st (run : unit -> unit) : bool = fst (speculate st run)

(* Synpred edge inside a decision: records backtracking for the profile. *)
let syn_pred st ~(bt : bool ref) ~(reach : int ref) ~(depth : int)
    (run : unit -> unit) : bool =
  let ok, r = speculate st run in
  bt := true;
  reach := max !reach (depth + r);
  ok

(* Semantic predicate: sees LT(1), the next input token. *)
let sem st (code : string) : bool =
  st.env.Interp.sem_pred code (Token_stream.lt st.ts 1)

(* Embedded action: runs outside speculation (or always, for the
   always-executed kind); sees the most recently consumed token. *)
let action st (code : string) (always : bool) : unit =
  if st.speculating = 0 || always then
    st.env.Interp.action code (Token_stream.prev st.ts)

let record st ~decision ~depth ~backtracked ~spec_depth : unit =
  match st.profile with
  | Some p when st.speculating = 0 ->
      Profile.record p ~decision ~depth ~backtracked ~spec_depth
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Memoization, only while speculating (paper section 6.2). *)

(* Memo key packing: position in bits 0..29, precedence bound in bits
   30..44, rule id in bits 45..61.  The bounds are far beyond anything a
   real grammar produces (2^30 tokens, prec < 2^15, 2^17 rules); an int
   key keeps the speculation-time lookup allocation-free, and the
   position in the low bits makes windowed eviction a cheap range test
   ({!Interp.memo_key} uses the same packing). *)
let memo_key ~(rule : int) ~(prec : int) ~(pos : int) : int =
  (((rule lsl 15) lor prec) lsl 30) lor pos

let memo_table st : (int, memo_entry) Hashtbl.t =
  match st.memo with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 256 in
      (* Windowed eviction: entries behind the stream's release frontier
         key positions the stream can no longer rewind to, so they can
         never be hit again -- drop them whenever the window slides. *)
      if Token_stream.is_streaming st.ts then
        Token_stream.set_release_hook st.ts (Interp.evict_memo_before tbl);
      st.memo <- Some tbl;
      tbl

let memoized st ~(rule : int) ~(prec : int) (body : unit -> unit) : unit =
  if st.memo_enabled && st.speculating > 0 then begin
      let tbl = memo_table st in
      let key = memo_key ~rule ~prec ~pos:(Token_stream.index st.ts) in
      match Hashtbl.find_opt tbl key with
      | Some Failed -> raise Spec_fail
      | Some (Succeeded stop) ->
          (* valid because speculation builds no tree and runs no actions *)
          Token_stream.seek st.ts stop
      | None -> (
          match body () with
          | () ->
              Hashtbl.replace tbl key (Succeeded (Token_stream.index st.ts))
          | exception Spec_fail ->
              Hashtbl.replace tbl key Failed;
              raise Spec_fail)
    end
  else body ()

(* ------------------------------------------------------------------ *)
(* Table-driven prediction: the fallback for decisions too large to compile
   to nested matches.  A transcription of {!Interp.predict} over a frozen
   (eager) lookahead DFA; [synpred] dispatches a synpred rule id to the
   generated rule function. *)

let predict_table st (dfa : Llstar.Look_dfa.t) ~(prec : int) ~(rule : int)
    ~(synpred : int -> unit) : int =
  let decision = dfa.Llstar.Look_dfa.decision in
  let backtracked = ref false and spec_reach = ref 0 in
  let eval_pred (p : Atn.pred) ~depth : bool =
    match p with
    | Atn.Sem code -> sem st code
    | Atn.Prec n -> prec <= n
    | Atn.Syn r ->
        syn_pred st ~bt:backtracked ~reach:spec_reach ~depth (fun () ->
            synpred r)
  in
  let try_preds state depth =
    let preds = Llstar.Look_dfa.pred_edges_of dfa state in
    if Array.length preds > 0 then begin
      let chosen = ref 0 in
      let i = ref 0 in
      while !chosen = 0 && !i < Array.length preds do
        let e = preds.(!i) in
        let guard_ok =
          match e.Llstar.Look_dfa.guard with
          | [] -> true
          | g -> List.mem (Token_stream.la st.ts (depth + 1)) g
        in
        (if guard_ok then
           match e.Llstar.Look_dfa.pred with
           | None -> chosen := e.Llstar.Look_dfa.alt
           | Some p -> if eval_pred p ~depth then chosen := e.Llstar.Look_dfa.alt);
        incr i
      done;
      if !chosen = 0 then no_viable st ~decision ~depth ~rule
      else (!chosen, depth)
    end
    else no_viable st ~decision ~depth ~rule
  in
  let rec walk state depth =
    match Llstar.Look_dfa.accept_of dfa state with
    | Some alt -> (alt, depth)
    | None -> (
        let term = Token_stream.la st.ts (depth + 1) in
        match Llstar.Look_dfa.lookup_edge dfa state term with
        | Some tgt -> walk tgt (depth + 1)
        | None -> try_preds state depth)
  in
  let alt, depth = walk dfa.Llstar.Look_dfa.start 0 in
  record st ~decision ~depth ~backtracked:!backtracked ~spec_depth:!spec_reach;
  alt

(* ------------------------------------------------------------------ *)
(* Entry points and the oracle contract.

   An [outcome] is the observable behaviour the differential oracle
   compares between a generated parser and {!Interp}: acceptance, the
   first parse error (kind and offending token), and how many tokens were
   consumed when the parse stopped. *)

type outcome = {
  ok : bool;
  error : Parse_error.t option; (* [Some] whenever [ok] is false *)
  consumed : int; (* tokens consumed when the parse stopped *)
}

(* Run an entry point against an existing state (the state-reuse path: the
   caller is responsible for [reset]ting [st] between inputs). *)
let run_st (st : st) ~(start_rule : int) (entry : st -> unit) : outcome =
  match entry st with
  | () ->
      if Token_stream.la st.ts 1 <> Grammar.Sym.eof then
        {
          ok = false;
          error =
            Some
              Parse_error.
                {
                  kind = Extraneous_input;
                  token = Token_stream.lt st.ts 1;
                  rule = start_rule;
                };
          consumed = Token_stream.index st.ts;
        }
      else { ok = true; error = None; consumed = Token_stream.index st.ts }
  | exception Parse_error.Error e ->
      { ok = false; error = Some e; consumed = Token_stream.index st.ts }

let run_recognizer ?(env = Interp.default_env) ?profile ~(memoize : bool)
    ~(start_rule : int) (entry : st -> unit) (toks : Token.t array) : outcome
    =
  run_st (make ~env ?profile ~memoize toks) ~start_rule entry

(* Streaming counterpart: run an emitted parser over a stream (typically a
   {!Token_stream.of_pull} window fed by the chunked lexer).  [consumed]
   stays an absolute token index, so outcomes compare [agree]-equal with
   the materialized path's. *)
let run_recognizer_stream ?(env = Interp.default_env) ?profile
    ~(memoize : bool) ~(start_rule : int) (entry : st -> unit)
    (ts : Token_stream.t) : outcome =
  run_st (make_of_stream ~env ?profile ~memoize ts) ~start_rule entry

let to_result (o : outcome) : (unit, Parse_error.t list) result =
  match o.error with None -> Ok () | Some e -> Error [ e ]

(* The interpreter's view of the same observables, for cross-checking.
   [?tracer] flows into the interpreter so per-request trace capture (the
   serve layer's slow-request sampling) sees decision/speculation events;
   generated parsers have no tracer hook, so their captures carry lexer
   and handler events only. *)
let interp_outcome_stream ?env ?profile ?tracer ?start
    (c : Llstar.Compiled.t) (ts : Token_stream.t) : outcome =
  let t = Interp.create_from_stream ?env ?profile ?tracer c ts in
  let res = Interp.recognize_run t ?start () in
  let consumed = Token_stream.index t.Interp.ts in
  match res with
  | Ok () -> { ok = true; error = None; consumed }
  | Error (e :: _) -> { ok = false; error = Some e; consumed }
  | Error [] -> { ok = false; error = None; consumed }

let interp_outcome ?env ?profile ?tracer ?start (c : Llstar.Compiled.t)
    (toks : Token.t array) : outcome =
  interp_outcome_stream ?env ?profile ?tracer ?start c
    (Token_stream.of_array toks)

(* Structural agreement: same verdict, same consumed count, and on failure
   the same error kind at the same token index. *)
let agree (a : outcome) (b : outcome) : bool =
  a.ok = b.ok && a.consumed = b.consumed
  &&
  match (a.error, b.error) with
  | None, None -> true
  | Some ea, Some eb ->
      ea.Parse_error.kind = eb.Parse_error.kind
      && ea.Parse_error.token.Token.index = eb.Parse_error.token.Token.index
  | None, Some _ | Some _, None -> false

let describe (o : outcome) : string =
  match o.error with
  | None -> Printf.sprintf "accept (consumed %d)" o.consumed
  | Some e ->
      Printf.sprintf "reject %s@tok%d (consumed %d)"
        (Parse_error.kind_label e)
        e.Parse_error.token.Token.index o.consumed

(* Interface every generated (or closure-compiled) parser module
   implements; the registry in [lib/gen] and the CLI drivers work through
   it. *)
module type PARSER = sig
  val grammar_name : string
  val start_rule_name : string

  val token_names : string array
  (** Vocabulary in interned order (0 = EOF, 1 = wildcard): index is the
      token id the parser's match arms test against. *)

  val rule_names : string array

  val outcome :
    ?env:Interp.env -> ?profile:Profile.t -> Token.t array -> outcome

  val outcome_stream :
    ?env:Interp.env -> ?profile:Profile.t -> Token_stream.t -> outcome
  (** Run over a stream (typically a [Token_stream.of_pull] window fed by
      the chunked lexer) in O(window) live memory; same observables as
      {!outcome} on the same token sequence. *)

  val recognize :
    ?env:Interp.env ->
    ?profile:Profile.t ->
    Token.t array ->
    (unit, Parse_error.t list) result
end

(* Reconstruct the vocabulary a generated parser was emitted against from
   its embedded name arrays, so drivers can lex input and print errors
   without the original grammar.  Interning in emission order reproduces
   the exact ids the parser's match arms were compiled with; the check
   guards against a hand-edited vocabulary. *)
let rebuild_sym ~(token_names : string array) ~(rule_names : string array) :
    Grammar.Sym.t =
  let sym = Grammar.Sym.create () in
  Array.iteri
    (fun i name ->
      if i >= 2 then begin
        let id = Grammar.Sym.intern_term sym name in
        if id <> i then
          invalid_arg
            (Printf.sprintf
               "generated parser: token %S interned as %d, expected %d" name
               id i)
      end)
    token_names;
  Array.iter
    (fun name -> ignore (Grammar.Sym.intern_nonterm sym name))
    rule_names;
  Grammar.Sym.freeze sym;
  sym
