(* Batched parsing driver: run one compiled grammar over many inputs,
   optionally across the worker domains of an [Exec.Pool].

   Sharding model ("per-input parser state is naturally isolated"): the
   input list is split into [jobs] contiguous shards; each shard is one
   pool task that owns everything mutable it touches -- its token
   streams, one interpreter per input, its own [Profile] (metrics
   registry) and its own tracer.  The only shared value is the compiled
   grammar, which is read-only by construction once the vocabulary is
   frozen: for that reason a lazy-strategy compilation -- whose per-decision
   engines sprout DFA states at parse time -- is rejected when more than
   one job would share it; callers compile eagerly to batch in
   parallel.

   Determinism: outcomes are written into a result slot per input index
   and shards are awaited in order, so the returned array is in input
   order whatever the interleaving; per-shard metrics registries are
   merged into the caller's profile shard-by-shard in shard order. *)

type input = { name : string; text : string }

type outcome =
  | Parsed of { tokens : int }
  | Lex_error of Lexer_engine.error
  | Parse_errors of { tokens : int; errors : Parse_error.t list }

type result_ = { input : input; outcome : outcome }

let outcome_ok = function Parsed _ -> true | _ -> false

let pp_outcome ppf (sym, r) =
  match r.outcome with
  | Parsed { tokens } -> Fmt.pf ppf "%s: parsed %d tokens" r.input.name tokens
  | Lex_error e ->
      Fmt.pf ppf "%s: lex error: %a" r.input.name Lexer_engine.pp_error e
  | Parse_errors { tokens; errors } ->
      Fmt.pf ppf "%s: %d tokens, %d parse errors:@.  %a" r.input.name tokens
        (List.length errors)
        Fmt.(list ~sep:(any "@.  ") (Parse_error.pp sym))
        errors

(* Parse one input with shard-local state. *)
let run_one ~config ~env ~profile ~recover ?start (c : Llstar.Compiled.t)
    (input : input) : outcome =
  let sym = Llstar.Compiled.sym c in
  match Lexer_engine.tokenize config sym input.text with
  | Error e -> Lex_error e
  | Ok toks -> (
      match Interp.parse ~env ~profile ~recover ?start c toks with
      | Ok _tree -> Parsed { tokens = Array.length toks }
      | Error errors ->
          Parse_errors { tokens = Array.length toks; errors })

(* Parse every input; [pool] shards the list across its workers.  The
   merged per-worker metrics land in [profile] when given.  Raises
   [Invalid_argument] if [c] was compiled with the lazy strategy and the
   pool would actually run shards concurrently (shared engines would be
   mutated cross-domain). *)
let run ?pool ?(config = Lexer_engine.default_config)
    ?(env = Interp.default_env) ?profile ?(recover = false) ?start
    (c : Llstar.Compiled.t) (inputs : input list) : result_ array =
  let jobs = match pool with None -> 1 | Some p -> Exec.Pool.jobs p in
  if jobs > 1 && Llstar.Compiled.strategy c = Llstar.Compiled.Lazy then
    invalid_arg
      "Batch.run: lazy-strategy compilations mutate shared DFA engines at \
       parse time; compile eagerly to batch with --jobs > 1";
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let results : outcome option array = Array.make n None in
  (match pool with
  | Some p when jobs > 1 && n > 1 ->
      let shard (lo, hi) =
        Exec.Pool.submit p (fun () ->
            (* Shard-local profile: no synchronization on the hot path;
               merged below, after the join. *)
            let sp = Profile.create () in
            let outs =
              Array.init (hi - lo) (fun i ->
                  run_one ~config ~env ~profile:sp ~recover ?start c
                    inputs.(lo + i))
            in
            (outs, sp))
      in
      let tasks =
        List.map
          (fun range -> (range, shard range))
          (Exec.Pool.shard_ranges ~shards:jobs n)
      in
      List.iter
        (fun ((lo, _hi), task) ->
          let outs, sp = Exec.Pool.await task in
          Array.iteri (fun i o -> results.(lo + i) <- Some o) outs;
          match profile with
          | Some into -> Profile.merge ~into sp
          | None -> ())
        tasks
  | _ ->
      let sp = match profile with Some p -> p | None -> Profile.create () in
      Array.iteri
        (fun i input ->
          results.(i) <- Some (run_one ~config ~env ~profile:sp ~recover ?start c input))
        inputs);
  Array.mapi
    (fun i input -> { input; outcome = Option.get results.(i) })
    inputs

(* Total token count across successfully lexed inputs, for throughput. *)
let total_tokens (rs : result_ array) : int =
  Array.fold_left
    (fun acc r ->
      match r.outcome with
      | Parsed { tokens } | Parse_errors { tokens; _ } -> acc + tokens
      | Lex_error _ -> acc)
    0 rs

(* Read a file-list argument: "@manifest" names a file with one input path
   per line (blank lines and #-comments skipped); anything else is an
   input path itself. *)
let expand_manifests (args : string list) : (string list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | arg :: rest when String.length arg > 1 && arg.[0] = '@' -> (
        let manifest = String.sub arg 1 (String.length arg - 1) in
        match open_in manifest with
        | exception Sys_error e -> Error e
        | ic ->
            let lines = ref [] in
            (try
               while true do
                 let line = String.trim (input_line ic) in
                 if line <> "" && line.[0] <> '#' then lines := line :: !lines
               done
             with End_of_file -> close_in ic);
            (* [!lines] is already reversed; the final [List.rev] restores
               manifest order. *)
            go (!lines @ acc) rest)
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_inputs (paths : string list) : (input list, string) result =
  match expand_manifests paths with
  | Error e -> Error e
  | Ok paths -> (
      try
        Ok
          (List.map
             (fun p ->
               match read_file p with
               | text -> { name = p; text }
               | exception Sys_error e -> raise (Sys_error e))
             paths)
      with Sys_error e -> Error e)
