(* Batched parsing driver: run one compiled grammar over many inputs,
   optionally across the worker domains of an [Exec.Pool].

   Scheduling model ("per-input parser state is naturally isolated"): the
   input list is split into several chunks per worker
   ([Exec.Pool.chunk_ranges]); each chunk is one pool task that owns
   everything mutable it touches -- its token streams, one interpreter
   per input, its own [Profile] (metrics registry).  Chunks queue in the
   pool's shared run queue, so uneven inputs no longer serialize on the
   slowest shard.  The only shared value is the compiled grammar: eager
   compilations are read-only once the vocabulary is frozen, and
   lazy-strategy engines synchronize internally (mutex-guarded sprouts,
   atomically published snapshots -- see [Llstar.Lazy_dfa]), so both
   strategies batch at any job count with byte-identical results.

   Determinism: outcomes are written into a result slot per input index
   and chunks are awaited in order, so the returned array is in input
   order whatever the interleaving; per-chunk metrics registries are
   merged into the caller's profile in chunk (= input) order.

   Failure contract (fail-fast with a full drain): an exception raised
   while parsing one input stops that chunk at that input; every other
   chunk still runs to completion and is merged, and then the exception
   of the smallest raising input index is re-raised -- the same exception
   a sequential run would have hit first, after all tasks are drained (no
   task is left running against freed state, no completed work is
   silently dropped). *)

type input = { name : string; text : string }

type outcome =
  | Parsed of { tokens : int }
  | Lex_error of Lexer_engine.error
  | Parse_errors of { tokens : int; errors : Parse_error.t list }

type result_ = { input : input; outcome : outcome }

let outcome_ok = function Parsed _ -> true | _ -> false

let pp_outcome ppf (sym, r) =
  match r.outcome with
  | Parsed { tokens } -> Fmt.pf ppf "%s: parsed %d tokens" r.input.name tokens
  | Lex_error e ->
      Fmt.pf ppf "%s: lex error: %a" r.input.name Lexer_engine.pp_error e
  | Parse_errors { tokens; errors } ->
      Fmt.pf ppf "%s: %d tokens, %d parse errors:@.  %a" r.input.name tokens
        (List.length errors)
        Fmt.(list ~sep:(any "@.  ") (Parse_error.pp sym))
        errors

(* Parse one input with shard-local state. *)
let run_one ~config ~env ~profile ~recover ?start (c : Llstar.Compiled.t)
    (input : input) : outcome =
  let sym = Llstar.Compiled.sym c in
  match Lexer_engine.tokenize config sym input.text with
  | Error e -> Lex_error e
  | Ok toks -> (
      match Interp.parse ~env ~profile ~recover ?start c toks with
      | Ok _tree -> Parsed { tokens = Array.length toks }
      | Error errors ->
          Parse_errors { tokens = Array.length toks; errors })

(* Parse every input; [pool] spreads the list across its workers in
   chunks.  The merged per-chunk metrics land in [profile] when given.
   See the header for the scheduling and failure contracts. *)
let run ?pool ?(config = Lexer_engine.default_config)
    ?(env = Interp.default_env) ?profile ?(recover = false) ?start
    (c : Llstar.Compiled.t) (inputs : input list) : result_ array =
  let jobs = match pool with None -> 1 | Some p -> Exec.Pool.jobs p in
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let results : outcome option array = Array.make n None in
  (match pool with
  | Some p when jobs > 1 && n > 1 ->
      let chunk (lo, hi) =
        Exec.Pool.submit p (fun () ->
            (* Chunk-local profile: no synchronization on the hot path;
               merged below, after the join.  A raising input stops this
               chunk (fail-fast) but is reported, not re-raised, so the
               join below can drain and merge every task first. *)
            let sp = Profile.create () in
            let outs = Array.make (hi - lo) None in
            let failure = ref None in
            let i = ref lo in
            while !failure = None && !i < hi do
              (match
                 run_one ~config ~env ~profile:sp ~recover ?start c
                   inputs.(!i)
               with
              | o -> outs.(!i - lo) <- Some o
              | exception e ->
                  failure := Some (!i, e, Printexc.get_raw_backtrace ()));
              incr i
            done;
            (outs, sp, !failure))
      in
      let tasks =
        List.map
          (fun range -> (range, chunk range))
          (Exec.Pool.chunk_ranges ~jobs n)
      in
      (* Drain every task before surfacing any failure: completed outcomes
         are merged whatever happened elsewhere, and the exception raised
         (if any) is the one at the smallest input index -- exactly the
         one a sequential run would have hit first. *)
      let first_failure = ref None in
      let note_failure ((i, _, _) as f) =
        match !first_failure with
        | Some (j, _, _) when j <= i -> ()
        | _ -> first_failure := Some f
      in
      List.iter
        (fun ((lo, _hi), task) ->
          match Exec.Pool.await task with
          | outs, sp, failure ->
              Array.iteri
                (fun i o ->
                  match o with
                  | Some o -> results.(lo + i) <- Some o
                  | None -> ())
                outs;
              (match profile with
              | Some into -> Profile.merge ~into sp
              | None -> ());
              Option.iter note_failure failure
          | exception e ->
              (* Defensive: the chunk body catches per-input exceptions,
                 so a raising await means the task itself died (resource
                 exhaustion); attribute it to the chunk's first input. *)
              note_failure (lo, e, Printexc.get_raw_backtrace ()))
        tasks;
      (match !first_failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
  | _ ->
      let sp = match profile with Some p -> p | None -> Profile.create () in
      Array.iteri
        (fun i input ->
          results.(i) <- Some (run_one ~config ~env ~profile:sp ~recover ?start c input))
        inputs);
  Array.mapi
    (fun i input -> { input; outcome = Option.get results.(i) })
    inputs

(* Total token count across successfully lexed inputs, for throughput. *)
let total_tokens (rs : result_ array) : int =
  Array.fold_left
    (fun acc r ->
      match r.outcome with
      | Parsed { tokens } | Parse_errors { tokens; _ } -> acc + tokens
      | Lex_error _ -> acc)
    0 rs

(* Read a file-list argument: "@manifest" names a file with one input path
   per line (blank lines and #-comments skipped); anything else is an
   input path itself. *)
let expand_manifests (args : string list) : (string list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | arg :: rest when String.length arg > 1 && arg.[0] = '@' -> (
        let manifest = String.sub arg 1 (String.length arg - 1) in
        match open_in manifest with
        | exception Sys_error e -> Error e
        | ic ->
            let lines = ref [] in
            (try
               while true do
                 let line = String.trim (input_line ic) in
                 if line <> "" && line.[0] <> '#' then lines := line :: !lines
               done
             with End_of_file -> close_in ic);
            (* [!lines] is already reversed; the final [List.rev] restores
               manifest order. *)
            go (!lines @ acc) rest)
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_inputs (paths : string list) : (input list, string) result =
  match expand_manifests paths with
  | Error e -> Error e
  | Ok paths -> (
      try
        Ok
          (List.map
             (fun p ->
               match read_file p with
               | text -> { name = p; text }
               | exception Sys_error e -> raise (Sys_error e))
             paths)
      with Sys_error e -> Error e)
