(* Configurable lexer engine: the scanner substrate used by every benchmark
   grammar (ANTLR generates lexers from lexer grammars; our engine covers
   the same token shapes -- keywords, operators, identifiers, numbers,
   strings, characters, comments -- from a declarative configuration plus
   the literal tokens already present in the parser grammar's vocabulary). *)

type config = {
  ident_token : string option; (* token type for identifiers, e.g. "ID" *)
  int_token : string option;
  float_token : string option;
  string_token : string option;
  string_quote : char; (* '"' for C-family, '\'' for SQL *)
  char_token : string option; (* single-quoted *)
  at_ident_token : string option;
    (* token type for '@'-prefixed identifiers (T-SQL variables) *)
  newline_token : string option;
    (* emit a token per newline run (VB-style line-oriented syntax) *)
  line_comments : string list; (* e.g. ["//"; "--"] *)
  block_comments : (string * string) list; (* e.g. [("/*", "*/")] *)
  case_insensitive_keywords : bool; (* SQL/VB style *)
  extra_ident_start : string; (* additional identifier start characters *)
  extra_ident_cont : string;
}

let default_config =
  {
    ident_token = Some "ID";
    int_token = Some "INT";
    float_token = None;
    string_token = None;
    char_token = None;
    string_quote = '"';
    at_ident_token = None;
    newline_token = None;
    line_comments = [ "//" ];
    block_comments = [ ("/*", "*/") ];
    case_insensitive_keywords = false;
    extra_ident_start = "_";
    extra_ident_cont = "_";
  }

type error = { msg : string; line : int; col : int }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.msg

(* Split the grammar's literal tokens into keywords (identifier-shaped) and
   operators (everything else), the latter sorted longest-first for
   maximal-munch matching. *)
let split_literals config (sym : Grammar.Sym.t) =
  let is_word s =
    s <> ""
    &&
    let c = s.[0] in
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let keywords = Hashtbl.create 64 in
  let ops = ref [] in
  List.iter
    (fun (text, id) ->
      if is_word text then
        let key =
          if config.case_insensitive_keywords then String.lowercase_ascii text
          else text
        in
        Hashtbl.replace keywords key id
      else ops := (text, id) :: !ops)
    (Grammar.Sym.literals sym);
  let ops =
    List.sort
      (fun (a, _) (b, _) -> compare (String.length b) (String.length a))
      !ops
  in
  (keywords, ops)

let contains s c = String.contains s c

let tokenize ?(tracer = Obs.Trace.null) (config : config)
    (sym : Grammar.Sym.t) (src : string) : (Token.t array, error) result =
  let keywords, ops = split_literals config sym in
  let find_term name = Grammar.Sym.find_term sym name in
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let out = ref [] and count = ref 0 in
  let err = ref None in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr pos
  in
  let advance_n k =
    for _ = 1 to k do
      advance ()
    done
  in
  let starts_with prefix =
    let pl = String.length prefix in
    !pos + pl <= n && String.sub src !pos pl = prefix
  in
  let is_ident_start c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || contains config.extra_ident_start c
  in
  let is_ident_cont c =
    is_ident_start c || (c >= '0' && c <= '9')
    || contains config.extra_ident_cont c
  in
  let is_digit c = c >= '0' && c <= '9' in
  let emit ttype text l c =
    out := Token.{ ttype; text; line = l; col = c; index = !count } :: !out;
    incr count
  in
  let fail msg = err := Some { msg; line = !line; col = !col } in
  (* Mode-switch tracing: the sub-scanners (block comments, strings,
     characters) are the engine's equivalent of ANTLR lexer modes. *)
  let mode_enter mode =
    if Obs.Trace.on tracer then
      Obs.Trace.emit tracer
        (Obs.Trace.Lexer_mode_enter { mode; line = !line; col = !col })
  in
  let mode_exit mode =
    if Obs.Trace.on tracer then
      Obs.Trace.emit tracer
        (Obs.Trace.Lexer_mode_exit { mode; line = !line; col = !col })
  in
  let token_for_word w =
    let key =
      if config.case_insensitive_keywords then String.lowercase_ascii w else w
    in
    match Hashtbl.find_opt keywords key with
    | Some id -> Some id
    | None -> (
        (* A word spelled exactly like a named token type (uppercase
           initial) lexes as that type -- convenient for abstract
           vocabularies such as [s : A B | C ;] in tests and examples. *)
        match
          if w <> "" && w.[0] >= 'A' && w.[0] <= 'Z' then find_term w
          else None
        with
        | Some id when not (Grammar.Sym.is_literal sym id) -> Some id
        | _ -> (
            match config.ident_token with
            | Some name -> find_term name
            | None -> None))
  in
  while !pos < n && !err = None do
    let c = src.[!pos] in
    let l0 = !line and c0 = !col in
    if c = '\n' && config.newline_token <> None then begin
      (* collapse a run of newlines (and surrounding blank space) into one
         token *)
      while
        !pos < n
        && (src.[!pos] = '\n' || src.[!pos] = '\r' || src.[!pos] = ' '
           || src.[!pos] = '\t')
      do
        advance ()
      done;
      match find_term (Option.get config.newline_token) with
      | Some id -> emit id "\n" l0 c0
      | None -> fail "grammar has no newline token"
    end
    else if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if List.exists starts_with config.line_comments then begin
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    end
    else if
      List.exists (fun (o, _) -> starts_with o) config.block_comments
    then begin
      let o, cl = List.find (fun (o, _) -> starts_with o) config.block_comments in
      mode_enter "block_comment";
      advance_n (String.length o);
      let closed = ref false in
      while (not !closed) && !pos < n do
        if starts_with cl then begin
          advance_n (String.length cl);
          closed := true
        end
        else advance ()
      done;
      mode_exit "block_comment";
      if not !closed then fail "unterminated block comment"
    end
    else if c = '@' && config.at_ident_token <> None then begin
      let start = !pos in
      advance ();
      while !pos < n && is_ident_cont src.[!pos] do
        advance ()
      done;
      let w = String.sub src start (!pos - start) in
      match find_term (Option.get config.at_ident_token) with
      | Some id -> emit id w l0 c0
      | None -> fail "grammar has no @-identifier token"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_cont src.[!pos] do
        advance ()
      done;
      let w = String.sub src start (!pos - start) in
      match token_for_word w with
      | Some id -> emit id w l0 c0
      | None -> fail (Printf.sprintf "unknown word %S" w)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let is_float = ref false in
      (if
         config.float_token <> None
         && !pos + 1 < n
         && src.[!pos] = '.'
         && is_digit src.[!pos + 1]
       then begin
         is_float := true;
         advance ();
         while !pos < n && is_digit src.[!pos] do
           advance ()
         done
       end);
      let w = String.sub src start (!pos - start) in
      let tname = if !is_float then config.float_token else config.int_token in
      match tname with
      | Some name -> (
          match find_term name with
          | Some id -> emit id w l0 c0
          | None -> fail (Printf.sprintf "grammar has no %s token" name))
      | None -> fail "numeric literal not supported by this grammar"
    end
    else if c = config.string_quote && config.string_token <> None then begin
      let buf = Buffer.create 16 in
      mode_enter "string";
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\\' && !pos + 1 < n then begin
          Buffer.add_char buf src.[!pos];
          Buffer.add_char buf src.[!pos + 1];
          advance_n 2
        end
        else if src.[!pos] = config.string_quote then begin
          advance ();
          closed := true
        end
        else begin
          Buffer.add_char buf src.[!pos];
          advance ()
        end
      done;
      mode_exit "string";
      if not !closed then fail "unterminated string literal"
      else
        match find_term (Option.get config.string_token) with
        | Some id -> emit id (Buffer.contents buf) l0 c0
        | None -> fail "grammar has no string token"
    end
    else if c = '\'' && config.char_token <> None then begin
      let buf = Buffer.create 4 in
      mode_enter "char";
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\\' && !pos + 1 < n then begin
          Buffer.add_char buf src.[!pos];
          Buffer.add_char buf src.[!pos + 1];
          advance_n 2
        end
        else if src.[!pos] = '\'' then begin
          advance ();
          closed := true
        end
        else begin
          Buffer.add_char buf src.[!pos];
          advance ()
        end
      done;
      mode_exit "char";
      if not !closed then fail "unterminated character literal"
      else
        match find_term (Option.get config.char_token) with
        | Some id -> emit id (Buffer.contents buf) l0 c0
        | None -> fail "grammar has no char token"
    end
    else begin
      (* operators / punctuation: maximal munch over the literal table *)
      match List.find_opt (fun (o, _) -> starts_with o) ops with
      | Some (o, id) ->
          advance_n (String.length o);
          emit id o l0 c0
      | None -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  match !err with
  | Some e -> Error e
  | None -> Ok (Array.of_list (List.rev !out))

let tokenize_exn ?tracer config sym src =
  match tokenize ?tracer config sym src with
  | Ok toks -> toks
  | Error e -> failwith (Fmt.str "lex error: %a" pp_error e)
