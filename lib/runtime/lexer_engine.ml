(* Configurable lexer engine: the scanner substrate used by every benchmark
   grammar (ANTLR generates lexers from lexer grammars; our engine covers
   the same token shapes -- keywords, operators, identifiers, numbers,
   strings, characters, comments -- from a declarative configuration plus
   the literal tokens already present in the parser grammar's vocabulary).

   The scanner is incremental: it reads from a pull-based byte [reader]
   through a sliding window and produces tokens in chunks, so unbounded
   inputs lex in O(window) memory.  [tokenize] -- the historical
   whole-string entry point -- is a thin wrapper that feeds a string reader
   and concatenates every chunk. *)

type config = {
  ident_token : string option; (* token type for identifiers, e.g. "ID" *)
  int_token : string option;
  float_token : string option;
  string_token : string option;
  string_quote : char; (* '"' for C-family, '\'' for SQL *)
  char_token : string option; (* single-quoted *)
  at_ident_token : string option;
    (* token type for '@'-prefixed identifiers (T-SQL variables) *)
  newline_token : string option;
    (* emit a token per newline run (VB-style line-oriented syntax) *)
  line_comments : string list; (* e.g. ["//"; "--"] *)
  block_comments : (string * string) list; (* e.g. [("/*", "*/")] *)
  case_insensitive_keywords : bool; (* SQL/VB style *)
  extra_ident_start : string; (* additional identifier start characters *)
  extra_ident_cont : string;
}

let default_config =
  {
    ident_token = Some "ID";
    int_token = Some "INT";
    float_token = None;
    string_token = None;
    char_token = None;
    string_quote = '"';
    at_ident_token = None;
    newline_token = None;
    line_comments = [ "//" ];
    block_comments = [ ("/*", "*/") ];
    case_insensitive_keywords = false;
    extra_ident_start = "_";
    extra_ident_cont = "_";
  }

type error = { msg : string; line : int; col : int }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.msg

exception Lex_error of error

let () =
  Printexc.register_printer (function
    | Lex_error e -> Some (Fmt.str "Lexer_engine.Lex_error (%a)" pp_error e)
    | _ -> None)

(* Split the grammar's literal tokens into keywords (identifier-shaped) and
   operators (everything else), the latter sorted longest-first for
   maximal-munch matching. *)
let split_literals config (sym : Grammar.Sym.t) =
  let is_word s =
    s <> ""
    &&
    let c = s.[0] in
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let keywords = Hashtbl.create 64 in
  let ops = ref [] in
  List.iter
    (fun (text, id) ->
      if is_word text then
        let key =
          if config.case_insensitive_keywords then String.lowercase_ascii text
          else text
        in
        Hashtbl.replace keywords key id
      else ops := (text, id) :: !ops)
    (Grammar.Sym.literals sym);
  let ops =
    List.sort
      (fun (a, _) (b, _) -> compare (String.length b) (String.length a))
      !ops
  in
  (keywords, ops)

let contains s c = String.contains s c

(* ------------------------------------------------------------------ *)
(* Pull-based byte sources and the sliding character window. *)

type reader = Bytes.t -> int -> int -> int

let reader_of_string s =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n

let reader_of_channel ic = fun buf off len -> input ic buf off len

(* The window retains bytes from [keep] (the current token's start) on;
   everything before it is dropped at the next refill.  Absolute byte
   offsets throughout; the buffer grows only when a single token outlives
   a full window. *)
type cursor = {
  read : reader;
  mutable buf : Bytes.t;
  mutable len : int; (* filled bytes *)
  mutable off : int; (* absolute offset of buf.[0] *)
  mutable keep : int; (* compaction retains bytes at or above this offset *)
  mutable eof : bool;
}

let refill (cur : cursor) : unit =
  if not cur.eof then begin
    let drop = cur.keep - cur.off in
    if drop > 0 then begin
      Bytes.blit cur.buf drop cur.buf 0 (cur.len - drop);
      cur.off <- cur.keep;
      cur.len <- cur.len - drop
    end;
    if cur.len = Bytes.length cur.buf then begin
      (* the retained span fills the window: a token longer than the
         buffer; grow so scanning can continue *)
      let nb = Bytes.create (2 * Bytes.length cur.buf) in
      Bytes.blit cur.buf 0 nb 0 cur.len;
      cur.buf <- nb
    end;
    let n = cur.read cur.buf cur.len (Bytes.length cur.buf - cur.len) in
    if n = 0 then cur.eof <- true else cur.len <- cur.len + n
  end

(* Byte (as a character code) at absolute offset [pos]; -1 past the end. *)
let rec byte_at (cur : cursor) (pos : int) : int =
  if pos < cur.off + cur.len then
    Char.code (Bytes.unsafe_get cur.buf (pos - cur.off))
  else if cur.eof then -1
  else begin
    refill cur;
    byte_at cur pos
  end

(* Does the input continue with [prefix] at [pos]?  False near EOF when
   fewer than [length prefix] bytes remain, as with the string scanner's
   bounds check. *)
let rec matches_at (cur : cursor) (pos : int) (prefix : string) : bool =
  let pl = String.length prefix in
  if pos + pl <= cur.off + cur.len then begin
    let i = ref 0 in
    let base = pos - cur.off in
    while !i < pl && Bytes.unsafe_get cur.buf (base + !i) = prefix.[!i] do
      incr i
    done;
    !i = pl
  end
  else if cur.eof then false
  else begin
    refill cur;
    matches_at cur pos prefix
  end

(* Text of the byte range [start, stop): only ever the current token, so
   [start >= keep] and the range is resident. *)
let extract (cur : cursor) (start : int) (stop : int) : string =
  Bytes.sub_string cur.buf (start - cur.off) (stop - start)

(* ------------------------------------------------------------------ *)
(* The incremental scanner: one [stream] per input, one token per
   [scan_one] step, state (position, line/col, token count) carried across
   chunks. *)

type state = Running | Failed of error | Done

type stream = {
  config : config;
  sym : Grammar.Sym.t;
  keywords : (string, int) Hashtbl.t;
  ops : (string * int) list;
  tracer : Obs.Trace.t;
  cur : cursor;
  mutable pos : int; (* absolute byte offset of the scan point *)
  mutable line : int;
  mutable col : int;
  mutable count : int; (* tokens produced so far *)
  mutable state : state;
}

let stream ?(tracer = Obs.Trace.null) ?(buf_chars = 65536) (config : config)
    (sym : Grammar.Sym.t) (read : reader) : stream =
  let keywords, ops = split_literals config sym in
  {
    config;
    sym;
    keywords;
    ops;
    tracer;
    cur =
      {
        read;
        buf = Bytes.create (max 64 buf_chars);
        len = 0;
        off = 0;
        keep = 0;
        eof = false;
      };
    pos = 0;
    line = 1;
    col = 1;
    count = 0;
    state = Running;
  }

let produced s = s.count

let advance (s : stream) : unit =
  let b = byte_at s.cur s.pos in
  (if b >= 0 then
     if b = Char.code '\n' then begin
       s.line <- s.line + 1;
       s.col <- 1
     end
     else s.col <- s.col + 1);
  s.pos <- s.pos + 1

let advance_n (s : stream) (k : int) : unit =
  for _ = 1 to k do
    advance s
  done

(* Scan the next token.  [None] means end of input or failure (check
   [s.state]); whitespace and comments are skipped by tail-recursing, so a
   megabyte of blanks costs no stack.  A transcription of the historical
   whole-string loop body: every branch, trace event and error message is
   the same, so chunked and materialized lexing are byte-identical. *)
let rec scan_one (s : stream) : Token.t option =
  match s.state with
  | Failed _ | Done -> None
  | Running ->
      (* nothing before the current token is ever re-examined *)
      s.cur.keep <- s.pos;
      let config = s.config in
      let b = byte_at s.cur s.pos in
      if b < 0 then begin
        s.state <- Done;
        None
      end
      else begin
        let c = Char.chr b in
        let l0 = s.line and c0 = s.col in
        let find_term name = Grammar.Sym.find_term s.sym name in
        let is_ident_start c =
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || contains config.extra_ident_start c
        in
        let is_ident_cont c =
          is_ident_start c
          || (c >= '0' && c <= '9')
          || contains config.extra_ident_cont c
        in
        let is_digit c = c >= '0' && c <= '9' in
        let emit ttype text =
          let tok =
            Token.{ ttype; text; line = l0; col = c0; index = s.count }
          in
          s.count <- s.count + 1;
          Some tok
        in
        let fail msg =
          s.state <- Failed { msg; line = s.line; col = s.col };
          None
        in
        let mode_enter mode =
          if Obs.Trace.on s.tracer then
            Obs.Trace.emit s.tracer
              (Obs.Trace.Lexer_mode_enter { mode; line = s.line; col = s.col })
        in
        let mode_exit mode =
          if Obs.Trace.on s.tracer then
            Obs.Trace.emit s.tracer
              (Obs.Trace.Lexer_mode_exit { mode; line = s.line; col = s.col })
        in
        let token_for_word w =
          let key =
            if config.case_insensitive_keywords then String.lowercase_ascii w
            else w
          in
          match Hashtbl.find_opt s.keywords key with
          | Some id -> Some id
          | None -> (
              (* A word spelled exactly like a named token type (uppercase
                 initial) lexes as that type -- convenient for abstract
                 vocabularies such as [s : A B | C ;] in tests and
                 examples. *)
              match
                if w <> "" && w.[0] >= 'A' && w.[0] <= 'Z' then find_term w
                else None
              with
              | Some id when not (Grammar.Sym.is_literal s.sym id) -> Some id
              | _ -> (
                  match config.ident_token with
                  | Some name -> find_term name
                  | None -> None))
        in
        let is_ws b =
          b = Char.code ' '
          || b = Char.code '\t'
          || b = Char.code '\r'
          || b = Char.code '\n'
        in
        let starts_with prefix = matches_at s.cur s.pos prefix in
        if c = '\n' && config.newline_token <> None then begin
          (* collapse a run of newlines (and surrounding blank space) into
             one token *)
          while
            s.cur.keep <- s.pos;
            is_ws (byte_at s.cur s.pos)
          do
            advance s
          done;
          match find_term (Option.get config.newline_token) with
          | Some id -> emit id "\n"
          | None -> fail "grammar has no newline token"
        end
        else if c = ' ' || c = '\t' || c = '\r' || c = '\n' then begin
          advance s;
          scan_one s
        end
        else if List.exists starts_with config.line_comments then begin
          while
            s.cur.keep <- s.pos;
            let b = byte_at s.cur s.pos in
            b >= 0 && b <> Char.code '\n'
          do
            advance s
          done;
          scan_one s
        end
        else if
          List.exists (fun (o, _) -> starts_with o) config.block_comments
        then begin
          let o, cl =
            List.find (fun (o, _) -> starts_with o) config.block_comments
          in
          mode_enter "block_comment";
          advance_n s (String.length o);
          let closed = ref false in
          while
            s.cur.keep <- s.pos;
            (not !closed) && byte_at s.cur s.pos >= 0
          do
            if matches_at s.cur s.pos cl then begin
              advance_n s (String.length cl);
              closed := true
            end
            else advance s
          done;
          mode_exit "block_comment";
          if not !closed then fail "unterminated block comment"
          else scan_one s
        end
        else if c = '@' && config.at_ident_token <> None then begin
          let start = s.pos in
          advance s;
          while
            let b = byte_at s.cur s.pos in
            b >= 0 && is_ident_cont (Char.chr b)
          do
            advance s
          done;
          let w = extract s.cur start s.pos in
          match find_term (Option.get config.at_ident_token) with
          | Some id -> emit id w
          | None -> fail "grammar has no @-identifier token"
        end
        else if is_ident_start c then begin
          let start = s.pos in
          while
            let b = byte_at s.cur s.pos in
            b >= 0 && is_ident_cont (Char.chr b)
          do
            advance s
          done;
          let w = extract s.cur start s.pos in
          match token_for_word w with
          | Some id -> emit id w
          | None -> fail (Printf.sprintf "unknown word %S" w)
        end
        else if is_digit c then begin
          let start = s.pos in
          while
            let b = byte_at s.cur s.pos in
            b >= 0 && is_digit (Char.chr b)
          do
            advance s
          done;
          let is_float = ref false in
          (if
             config.float_token <> None
             && byte_at s.cur s.pos = Char.code '.'
             &&
             let b1 = byte_at s.cur (s.pos + 1) in
             b1 >= 0 && is_digit (Char.chr b1)
           then begin
             is_float := true;
             advance s;
             while
               let b = byte_at s.cur s.pos in
               b >= 0 && is_digit (Char.chr b)
             do
               advance s
             done
           end);
          let w = extract s.cur start s.pos in
          let tname =
            if !is_float then config.float_token else config.int_token
          in
          match tname with
          | Some name -> (
              match find_term name with
              | Some id -> emit id w
              | None -> fail (Printf.sprintf "grammar has no %s token" name))
          | None -> fail "numeric literal not supported by this grammar"
        end
        else if c = config.string_quote && config.string_token <> None then begin
          let buf = Buffer.create 16 in
          mode_enter "string";
          advance s;
          let closed = ref false in
          while
            s.cur.keep <- s.pos;
            (not !closed) && byte_at s.cur s.pos >= 0
          do
            let b0 = byte_at s.cur s.pos in
            if b0 = Char.code '\\' && byte_at s.cur (s.pos + 1) >= 0 then begin
              Buffer.add_char buf (Char.chr b0);
              Buffer.add_char buf (Char.chr (byte_at s.cur (s.pos + 1)));
              advance_n s 2
            end
            else if b0 = Char.code config.string_quote then begin
              advance s;
              closed := true
            end
            else begin
              Buffer.add_char buf (Char.chr b0);
              advance s
            end
          done;
          mode_exit "string";
          if not !closed then fail "unterminated string literal"
          else
            match find_term (Option.get config.string_token) with
            | Some id -> emit id (Buffer.contents buf)
            | None -> fail "grammar has no string token"
        end
        else if c = '\'' && config.char_token <> None then begin
          let buf = Buffer.create 4 in
          mode_enter "char";
          advance s;
          let closed = ref false in
          while
            s.cur.keep <- s.pos;
            (not !closed) && byte_at s.cur s.pos >= 0
          do
            let b0 = byte_at s.cur s.pos in
            if b0 = Char.code '\\' && byte_at s.cur (s.pos + 1) >= 0 then begin
              Buffer.add_char buf (Char.chr b0);
              Buffer.add_char buf (Char.chr (byte_at s.cur (s.pos + 1)));
              advance_n s 2
            end
            else if b0 = Char.code '\'' then begin
              advance s;
              closed := true
            end
            else begin
              Buffer.add_char buf (Char.chr b0);
              advance s
            end
          done;
          mode_exit "char";
          if not !closed then fail "unterminated character literal"
          else
            match find_term (Option.get config.char_token) with
            | Some id -> emit id (Buffer.contents buf)
            | None -> fail "grammar has no char token"
        end
        else begin
          (* operators / punctuation: maximal munch over the literal
             table *)
          match List.find_opt (fun (o, _) -> starts_with o) s.ops with
          | Some (o, id) ->
              advance_n s (String.length o);
              emit id o
          | None -> fail (Printf.sprintf "unexpected character %C" c)
        end
      end

(* ------------------------------------------------------------------ *)
(* Chunked driving. *)

let next_chunk ?(max_tokens = 256) (s : stream) :
    (Token.t array, error) result =
  match s.state with
  | Failed e -> Error e
  | Done -> Ok [||]
  | Running -> (
      let acc = ref [] in
      let n = ref 0 in
      let more = ref true in
      while !more && !n < max_tokens do
        match scan_one s with
        | Some tok ->
            acc := tok :: !acc;
            incr n
        | None -> more := false
      done;
      match s.state with
      | Failed e -> Error e
      | Running | Done -> Ok (Array.of_list (List.rev !acc)))

(* A {!Token_stream.of_pull}-compatible chunk source; lex failures surface
   as {!Lex_error} at the lookahead call that pulled them. *)
let pull ?chunk_tokens (s : stream) () : Token.t array =
  match next_chunk ?max_tokens:chunk_tokens s with
  | Ok toks -> toks
  | Error e -> raise (Lex_error e)

(* Scan the rest of the input without retaining tokens: the count of
   remaining tokens, or the first lex error.  Streaming drivers use this
   after an early parse verdict so their reported verdict and token total
   match the materialized path, which always lexes everything first. *)
let drain (s : stream) : (int, error) result =
  let n = ref 0 in
  let rec go () =
    match scan_one s with
    | Some _ ->
        incr n;
        go ()
    | None -> ()
  in
  go ();
  match s.state with Failed e -> Error e | Running | Done -> Ok !n

let tokenize ?tracer (config : config) (sym : Grammar.Sym.t) (src : string) :
    (Token.t array, error) result =
  let s = stream ?tracer config sym (reader_of_string src) in
  let chunks = ref [] in
  let rec go () =
    match next_chunk ~max_tokens:max_int s with
    | Error e -> Error e
    | Ok [||] -> Ok (Array.concat (List.rev !chunks))
    | Ok c ->
        chunks := c :: !chunks;
        go ()
  in
  go ()

let tokenize_exn ?tracer config sym src =
  match tokenize ?tracer config sym src with
  | Ok toks -> toks
  | Error e -> failwith (Fmt.str "lex error: %a" pp_error e)
