(* The adaptive LL-star parser interpreter (paper section 4).

   The parser walks the ATN directly: one recursive invocation per rule
   submachine.  At every decision state it consults the decision's lookahead
   DFA, which gracefully throttles up per input sequence: an accept state
   after one token is plain LL(1); deeper or cyclic DFA paths are arbitrary
   regular lookahead; predicate edges evaluate semantic predicates against
   user state or launch a speculative parse of a [__synpredN] fragment
   (backtracking).

   Speculation follows section 4.1/4.3: syntactic predicates are evaluated
   by parsing the fragment with actions disabled (except for the
   always-executed [{{...}}] kind), the stream is rewound afterwards, and --
   per section 6.2 -- rule invocations are memoized *only while speculating*,
   which keeps the memoization cache far smaller than a packrat parser's
   while still bounding backtracking to linear time. *)

type env = {
  sem_pred : string -> Token.t -> bool;
    (* evaluate a semantic predicate's code; the token is LT(1), the next
       input symbol, so predicates like the C grammar's
       [isTypeName(next input symbol)] (section 4.2) can inspect it *)
  action : string -> Token.t option -> unit;
    (* execute an embedded action's code; the token is the most recently
       consumed one, letting symbol-table actions register the identifier
       they follow *)
}

let default_env = { sem_pred = (fun _ _ -> true); action = (fun _ _ -> ()) }

(* Environment whose predicates/actions dispatch by snippet text; unknown
   predicates default to true, unknown actions to no-ops.  The tables are
   interned into hashtables once at construction: dispatch runs on every
   predicate/action event, and the old [List.assoc_opt] walk paid a full
   string comparison per entry on every miss (actions in particular almost
   always miss).  First binding wins, as with [List.assoc_opt]. *)
let env_of_tables ?(preds = []) ?(actions = []) () =
  let tbl_of bindings =
    let tbl = Hashtbl.create (max 8 (2 * List.length bindings)) in
    List.iter
      (fun (code, f) -> Hashtbl.replace tbl code f)
      (List.rev bindings);
    tbl
  in
  let preds = tbl_of preds and actions = tbl_of actions in
  {
    sem_pred =
      (fun code la1 ->
        match Hashtbl.find_opt preds code with Some f -> f la1 | None -> true);
    action =
      (fun code prev ->
        match Hashtbl.find_opt actions code with
        | Some f -> f prev
        | None -> ());
  }

exception Spec_fail
(* Internal: a speculative parse failed to match.  Never escapes. *)

(* Diagnostic tracing (also enabled by the ANTLRKIT_TRACE environment
   variable): prints rule entries, predictions and failures, including those
   inside speculation, to stderr. *)
let trace = ref (Sys.getenv_opt "ANTLRKIT_TRACE" <> None)

type memo_entry = Failed | Succeeded of int (* stop index *)

(* Memo key packing, shared with {!Generated}: position in bits 0..29,
   precedence bound in bits 30..44, rule id in bits 45..61.  An int key
   keeps speculation-time lookups allocation-free, and -- with the
   position in the low bits -- makes windowed eviction a cheap range test
   per entry. *)
let memo_key ~(rule : int) ~(prec : int) ~(pos : int) : int =
  (((rule lsl 15) lor prec) lsl 30) lor pos

let memo_pos (key : int) : int = key land 0x3FFFFFFF

(* Windowed memo eviction: entries keyed at positions behind the release
   frontier can never be hit again (the stream refuses to rewind there),
   so drop them when the stream's window slides.  Polymorphic in the entry
   type: {!Generated} uses the same packing with its own entry type. *)
let evict_memo_before (tbl : (int, 'a) Hashtbl.t) (frontier : int) : unit =
  Hashtbl.filter_map_inplace
    (fun key v -> if memo_pos key < frontier then None else Some v)
    tbl

type t = {
  c : Llstar.Compiled.t;
  env : env;
  ts : Token_stream.t;
  profile : Profile.t option;
  tracer : Obs.Trace.t;
  memo : (int, memo_entry) Hashtbl.t option; (* packed (rule, prec, pos) *)
  mutable speculating : int;
  recover : bool;
  mutable errors : Parse_error.t list;
  (* length of [errors], maintained incrementally: the recovery loop tests
     the cap once per recorded error, and [List.length] there made error
     processing quadratic in the error count *)
  mutable n_errors : int;
  max_errors : int;
  (* lazily computed panic-mode sync sets: rule -> terminals that can
     follow, as a bitset over the token-type universe *)
  follow_cache : (int, Bitset.t) Hashtbl.t;
  (* FIRST/nullability over the prepared grammar's BNF skeleton, computed on
     the first recovery and reused for every sync set, paired with the
     ff-terminal-id -> token-type translation (-1: not a lexed token) *)
  mutable ff : (Grammar.First_follow.t * int array) option;
}

let atn t = t.c.Llstar.Compiled.atn

(* Structured tracing: every emission is guarded by [tr_on] at the call site
   so the disabled path costs one flag read and never allocates an event. *)
let tr_on t = Obs.Trace.on t.tracer
let emit t ev = Obs.Trace.emit t.tracer ev

let error t kind rule =
  let tok = Token_stream.lt t.ts 1 in
  let e = Parse_error.{ kind; token = tok; rule } in
  if !trace then
    Fmt.epr "[trace]%s error @%d: %a@."
      (String.make t.speculating '>')
      (Token_stream.index t.ts)
      (Parse_error.pp (Llstar.Compiled.sym t.c))
      e;
  if t.speculating > 0 then raise Spec_fail else raise (Parse_error.Error e)

(* Offending-token error for prediction: report at the token that killed the
   DFA, [depth] tokens ahead (section 4.4). *)
let prediction_error t ~decision ~depth rule =
  let tok = Token_stream.lt t.ts (depth + 1) in
  let e =
    Parse_error.
      { kind = No_viable_alt { decision; depth = depth + 1 }; token = tok; rule }
  in
  if !trace then
    Fmt.epr "[trace]%s error @%d: %a@."
      (String.make t.speculating '>')
      (Token_stream.index t.ts)
      (Parse_error.pp (Llstar.Compiled.sym t.c))
      e;
  if t.speculating > 0 then raise Spec_fail else raise (Parse_error.Error e)

(* ------------------------------------------------------------------ *)
(* Speculation: evaluate a syntactic predicate by simulating its pseudo-rule
   as a recognizer from the current position, then rewinding.  Returns
   success plus the number of tokens of lookahead the speculation consumed
   (for profiling). *)

let rec eval_synpred t (rule : int) : bool * int =
  let start = Token_stream.mark t.ts in
  if tr_on t then
    emit t
      (Obs.Trace.Synpred_enter { rule = Atn.rule_name (atn t) rule; pos = start });
  let saved_hw = Token_stream.high_water t.ts in
  (* [start - 1]: the speculation has examined nothing yet, so an empty
     synpred fragment reports a reach of 0, not 1 *)
  Token_stream.set_high_water t.ts (start - 1);
  t.speculating <- t.speculating + 1;
  let ok =
    match parse_rule t rule ~prec:0 ~building:false with
    | _ -> true
    | exception Spec_fail -> false
  in
  t.speculating <- t.speculating - 1;
  let reach = max 0 (Token_stream.high_water t.ts - start + 1) in
  Token_stream.seek t.ts start;
  Token_stream.release t.ts start;
  Token_stream.set_high_water t.ts (max saved_hw (Token_stream.high_water t.ts));
  if tr_on t then
    emit t
      (Obs.Trace.Synpred_exit
         { rule = Atn.rule_name (atn t) rule; ok; reach; pos = start });
  (ok, reach)

(* Evaluate a prediction-DFA predicate edge. *)
and eval_pred t (p : Atn.pred) ~prec : bool * int * bool =
  (* returns (holds, speculation reach, was a syntactic predicate) *)
  match p with
  | Atn.Sem code -> (t.env.sem_pred code (Token_stream.lt t.ts 1), 0, false)
  | Atn.Prec n -> (prec <= n, 0, false)
  | Atn.Syn rule ->
      let ok, reach = eval_synpred t rule in
      (ok, reach, true)

(* ------------------------------------------------------------------ *)
(* Prediction (Figure 5): run the decision's lookahead DFA over the input
   from the current position. *)

and predict t (decision : int) ~prec ~rule : int =
  if tr_on t then
    emit t
      (Obs.Trace.Decision_enter
         {
           decision;
           rule = Atn.rule_name (atn t) rule;
           pos = Token_stream.index t.ts;
         });
  let eng = Llstar.Compiled.engine t.c decision in
  let spec_reach = ref 0 in
  let backtracked = ref false in
  (* Ordered predicate edges.  An edge applies when its lookahead guard (if
     any) admits the next token and its predicate (if any) holds; an edge
     with neither is the gated default. *)
  let try_preds dfa state depth =
    let preds = Llstar.Look_dfa.pred_edges_of dfa state in
    if Array.length preds > 0 then begin
      let chosen = ref 0 in
      let i = ref 0 in
      while !chosen = 0 && !i < Array.length preds do
        let e = preds.(!i) in
        let guard_ok =
          match e.Llstar.Look_dfa.guard with
          | [] -> true
          | g -> List.mem (Token_stream.la t.ts (depth + 1)) g
        in
        (if guard_ok then
           match e.Llstar.Look_dfa.pred with
           | None -> chosen := e.Llstar.Look_dfa.alt
           | Some p ->
               let holds, reach, was_syn = eval_pred t p ~prec in
               if was_syn then begin
                 backtracked := true;
                 spec_reach := max !spec_reach (depth + reach);
                 if tr_on t then
                   emit t (Obs.Trace.Backtrack { decision; depth })
               end;
               if holds then chosen := e.Llstar.Look_dfa.alt);
        incr i
      done;
      if !chosen = 0 then prediction_error t ~decision ~depth rule
      else (!chosen, depth)
    end
    else prediction_error t ~decision ~depth rule
  in
  let rec walk dfa state depth =
    match Llstar.Look_dfa.accept_of dfa state with
    | Some alt -> (alt, depth)
    | None -> (
        (* Terminal edges first; predicate edges are the fallback.  States
           resolved purely by predicates have no terminal edges, and
           fragment-end defaults must only fire when lookahead runs off the
           end of a syntactic-predicate fragment. *)
        let term = Token_stream.la t.ts (depth + 1) in
        match Llstar.Look_dfa.lookup_edge dfa state term with
        | Some tgt ->
            if tr_on t then
              emit t (Obs.Trace.Dfa_edge { decision; state; term; target = tgt });
            walk dfa tgt (depth + 1)
        | None -> (
            (* No materialized transition.  In lazy mode ask the engine to
               sprout it before falling through to predicate edges, so the
               walk only ever sees transitions the eager DFA would have.
               [sprout_view] also returns the published snapshot backing
               its answer; the walk always resumes on that DFA, never on
               the possibly stale [dfa] it was on -- another domain may
               have grown (or completed) the engine since it was
               fetched. *)
            match eng with
            | Some e when not (Llstar.Lazy_dfa.is_complete e) -> (
                match Llstar.Lazy_dfa.sprout_view e ~state ~term with
                | Llstar.Lazy_dfa.Edge { target; fresh }, dfa' ->
                    if fresh then begin
                      (match t.profile with
                      | Some p ->
                          Profile.record_dfa_built p ~decision ~cached:false
                            ~n:1
                      | None -> ());
                      if tr_on t then
                        emit t
                          (Obs.Trace.Lazy_sprout { decision; state; term; target })
                    end;
                    walk dfa' target (depth + 1)
                | Llstar.Lazy_dfa.Resolved, dfa' ->
                    (* the state acquired an accept or predicate edges *)
                    walk dfa' state depth
                | Llstar.Lazy_dfa.Rebuilt, dfa' ->
                    (* incremental construction gave way to the full eager
                       fallback DFA (or another domain completed the
                       engine, renumbering states); prediction consumed
                       nothing, so restart the walk from its start state *)
                    if tr_on t then emit t (Obs.Trace.Dfa_rebuild { decision });
                    walk dfa' dfa'.Llstar.Look_dfa.start 0
                | Llstar.Lazy_dfa.No_edge, dfa' -> try_preds dfa' state depth)
            | Some e ->
                (* The engine completed after this walk fetched [dfa]: a
                   stale snapshot may lack transitions or resolutions the
                   final DFA has (and completion may have renumbered
                   states), so restart once on the published result.
                   Physical equality detects staleness -- snapshots are
                   immutable and republished on every change -- and
                   guarantees termination: after one restart the walk is
                   on the final DFA, which never changes again. *)
                let dfa' = Llstar.Lazy_dfa.current e in
                if dfa' == dfa then try_preds dfa state depth
                else begin
                  if tr_on t then emit t (Obs.Trace.Dfa_rebuild { decision });
                  walk dfa' dfa'.Llstar.Look_dfa.start 0
                end
            | None -> try_preds dfa state depth))
  in
  let dfa = Llstar.Compiled.dfa t.c decision in
  let alt, depth =
    try walk dfa dfa.Llstar.Look_dfa.start 0
    with e ->
      (* keep the decision span balanced on the no-viable-alternative path;
         alt 0 marks a failed prediction *)
      if tr_on t then
        emit t
          (Obs.Trace.Decision_exit
             { decision; alt = 0; k = 0; pos = Token_stream.index t.ts });
      raise e
  in
  if tr_on t then
    emit t
      (Obs.Trace.Decision_exit
         { decision; alt; k = depth; pos = Token_stream.index t.ts });
  if !trace then
    Fmt.epr "[trace]%s d%d @%d -> alt %d (k=%d)@."
      (String.make t.speculating '>')
      decision
      (Token_stream.index t.ts)
      alt depth;
  (match t.profile with
  | Some p when t.speculating = 0 ->
      Profile.record p ~decision ~depth ~backtracked:!backtracked
        ~spec_depth:!spec_reach
  | _ -> ());
  alt

(* ------------------------------------------------------------------ *)
(* Rule invocation: simulate the rule's submachine. *)

and parse_rule t (rule : int) ~prec ~building : Tree.t list =
  let a = atn t in
  let ri = a.Atn.rules.(rule) in
  let use_memo = t.speculating > 0 && t.memo <> None in
  let memo_key =
    if use_memo then memo_key ~rule ~prec ~pos:(Token_stream.index t.ts)
    else 0
  in
  let memo_entry =
    if use_memo then Hashtbl.find_opt (Option.get t.memo) memo_key else None
  in
  if use_memo && tr_on t then
    emit t
      (let pos = Token_stream.index t.ts in
       match memo_entry with
       | Some _ -> Obs.Trace.Memo_hit { rule = ri.Atn.r_name; pos }
       | None -> Obs.Trace.Memo_miss { rule = ri.Atn.r_name; pos });
  match memo_entry with
  | Some Failed -> raise Spec_fail
  | Some (Succeeded stop) ->
      (* Valid because speculation builds no tree and runs no actions. *)
      Token_stream.seek t.ts stop;
      []
  | None -> (
      let run () =
        let children = ref [] in
        let add c = if building then children := c :: !children in
        let state = ref ri.Atn.r_entry in
        let chosen_alt = ref 1 in
        (* Set right after a prediction: the chosen alternative's left-edge
           syntactic predicate is subsumed by the decision that selected it
           (the analysis strips predicates from decisions it can resolve,
           section 6.1), so the gate is not re-evaluated. *)
        let fresh_prediction = ref false in
        (* Progress guard: a loop decision whose body matched no input would
           otherwise re-enter forever (e.g. a nullable body under ambiguity
           resolution).  If the same decision fires twice at the same input
           position, force its exit alternative. *)
        let seen_here = ref [] in
        let last_pos = ref (-1) in
        while !state <> ri.Atn.r_stop do
          let s = !state in
          match Atn.decision_of a s with
          | d when d >= 0 ->
              let decision = a.Atn.decisions.(d) in
              let pos = Token_stream.index t.ts in
              let stuck =
                if pos <> !last_pos then begin
                  last_pos := pos;
                  seen_here := [ d ];
                  false
                end
                else if List.mem d !seen_here then true
                else begin
                  seen_here := d :: !seen_here;
                  false
                end
              in
              let alt =
                if stuck then
                  match decision.Atn.d_exit_alt with
                  | Some e -> e
                  | None ->
                      error t
                        (Parse_error.No_viable_alt { decision = d; depth = 1 })
                        rule
                else predict t d ~prec ~rule
              in
              if s = ri.Atn.r_entry then chosen_alt := alt;
              let targets = Atn.decision_alt_targets a decision in
              fresh_prediction := true;
              state := targets.(alt - 1)
          | _ -> (
              match a.Atn.trans.(s) with
              | [||] ->
                  (* dead end that is not the stop state: internal error *)
                  error t (Parse_error.No_viable_alt { decision = -1; depth = 1 }) rule
              | row ->
                  let edge, tgt = row.(0) in
                  let was_fresh = !fresh_prediction in
                  fresh_prediction := false;
                  ignore was_fresh;
                  (match edge with
                  | Atn.Eps -> fresh_prediction := was_fresh; state := tgt
                  | Atn.Term term ->
                      let la1 = Token_stream.la t.ts 1 in
                      let matches =
                        la1 = term
                        || (term = Grammar.Sym.wildcard && la1 <> Grammar.Sym.eof)
                      in
                      if matches then begin
                        let tok = Token_stream.consume t.ts in
                        add (Tree.Leaf tok);
                        state := tgt
                      end
                      else
                        error t
                          (Parse_error.Mismatched_token { expected = term })
                          rule
                  | Atn.Rule { rule = callee; arg } ->
                      let callee_prec = Option.value ~default:0 arg in
                      let sub =
                        parse_rule t callee ~prec:callee_prec ~building
                      in
                      List.iter add sub;
                      state := tgt
                  | Atn.Pred (Atn.Sem code) ->
                      if t.env.sem_pred code (Token_stream.lt t.ts 1) then
                        state := tgt
                      else
                        error t (Parse_error.Failed_predicate { text = code })
                          rule
                  | Atn.Pred (Atn.Prec n) ->
                      if prec <= n then state := tgt
                      else
                        error t
                          (Parse_error.Failed_predicate
                             { text = Printf.sprintf "p <= %d" n })
                          rule
                  | Atn.Pred (Atn.Syn synrule) ->
                      if was_fresh then state := tgt
                      else begin
                        let ok, _ = eval_synpred t synrule in
                        if ok then state := tgt
                        else
                          error t
                            (Parse_error.Failed_predicate
                               { text = Atn.rule_name a synrule })
                            rule
                      end
                  | Atn.Act { id; always } ->
                      let code, _ = a.Atn.actions.(id) in
                      if t.speculating = 0 || always then
                        t.env.action code (Token_stream.prev t.ts);
                      state := tgt))
        done;
        (!chosen_alt, List.rev !children)
      in
      if ri.Atn.r_is_synpred || not building then begin
        match run () with
        | _ ->
            if use_memo then
              Hashtbl.replace (Option.get t.memo) memo_key
                (Succeeded (Token_stream.index t.ts));
            []
        | exception Spec_fail ->
            if use_memo then
              Hashtbl.replace (Option.get t.memo) memo_key Failed;
            raise Spec_fail
      end
      else
        let alt, children = run () in
        [ Tree.Node { rule; alt; children } ])

(* ------------------------------------------------------------------ *)
(* Panic-mode recovery: sync to a token that can follow the current rule. *)

let first_follow t : Grammar.First_follow.t * int array =
  match t.ff with
  | Some pair -> pair
  | None ->
      let a = atn t in
      let ff =
        Grammar.First_follow.compute (Grammar.Bnf.convert a.Atn.grammar)
      in
      (* Translate interned FIRST/FOLLOW terminal ids to the lexer's token
         types once; sync-set construction then unions bitsets without any
         name lookups.  The grammar-level "." maps to the wildcard token. *)
      let map =
        Array.init (Grammar.First_follow.num_terms ff) (fun i ->
            let name = Grammar.First_follow.term_name ff i in
            if name = "." then Grammar.Sym.wildcard
            else
              match Grammar.Sym.find_term a.Atn.sym name with
              | Some id -> id
              | None -> -1)
      in
      t.ff <- Some (ff, map);
      (ff, map)

let follow_set t (rule : int) : Bitset.t =
  match Hashtbl.find_opt t.follow_cache rule with
  | Some s -> s
  | None ->
      let a = atn t in
      let ff, term_map = first_follow t in
      let set = Bitset.create (Grammar.Sym.num_terms a.Atn.sym) in
      Bitset.add set Grammar.Sym.eof;
      let add_first_of callee =
        match Grammar.First_follow.nonterm_id ff (Atn.rule_name a callee) with
        | None -> ()
        | Some n ->
            Bitset.iter
              (fun fid ->
                let sid = term_map.(fid) in
                if sid >= 0 then Bitset.add set sid)
              (Grammar.First_follow.first_ids ff n)
      in
      let callee_nullable callee =
        match Grammar.First_follow.nonterm_id ff (Atn.rule_name a callee) with
        | Some n -> Grammar.First_follow.nullable_id ff n
        | None -> false
      in
      (* Terminals that can appear right after the rule in any calling
         context: walk forward from every call site's follow state.  A
         [Rule] edge contributes the callee's FIRST set and, when the
         callee is nullable, continues past it to the state after the
         call; a stop state continues into every caller of its rule
         (transitive FOLLOW). *)
      let seen = Hashtbl.create 32 in
      let rec go s =
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.add seen s ();
          if Atn.is_stop_state a s then begin
            let r = a.Atn.state_rule.(s) in
            List.iter (fun (f, _) -> go f) a.Atn.callers.(r)
          end
          else
            Array.iter
              (fun (edge, tgt) ->
                match edge with
                | Atn.Term term -> Bitset.add set term
                | Atn.Rule { rule = callee; _ } ->
                    add_first_of callee;
                    if callee_nullable callee then go tgt
                | Atn.Eps | Atn.Pred _ | Atn.Act _ -> go tgt)
              a.Atn.trans.(s)
        end
      in
      List.iter (fun (f, _) -> go f) a.Atn.callers.(rule);
      Hashtbl.replace t.follow_cache rule set;
      set

let recover_to_follow t rule =
  let follow = follow_set t rule in
  (* a wildcard in the sync set means any token can follow the rule *)
  let any = Bitset.mem follow Grammar.Sym.wildcard in
  let skipped = ref 0 in
  let rec skip () =
    let la1 = Token_stream.la t.ts 1 in
    if la1 <> Grammar.Sym.eof && (not any) && not (Bitset.mem follow la1)
    then begin
      ignore (Token_stream.consume t.ts);
      incr skipped;
      skip ()
    end
  in
  skip ();
  if tr_on t then
    emit t
      (Obs.Trace.Error_sync
         {
           rule = Atn.rule_name (atn t) rule;
           skipped = !skipped;
           pos = Token_stream.index t.ts;
         })

(* ------------------------------------------------------------------ *)
(* Entry points *)

(* [create_from_stream] runs the parser over any stream, including a
   streaming window ({!Token_stream.of_pull}); in that case the memo table
   subscribes to the window's release hook so entries behind the frontier
   are evicted as the window slides -- they can never be hit again, because
   the stream refuses to rewind past the frontier. *)
let create_from_stream ?(env = default_env) ?profile ?(tracer = Obs.Trace.null)
    ?(recover = false) ?(max_errors = 25) (c : Llstar.Compiled.t)
    (ts : Token_stream.t) : t =
  let memoize = (Llstar.Compiled.options c).Grammar.Ast.memoize in
  (* A cache-loaded compilation arrives with DFA states already
     materialized (statically, or by earlier runs in lazy mode): credit
     them to the cache so lazy-vs-cached construction work is visible. *)
  (match profile with
  | Some p when Llstar.Compiled.from_cache c ->
      for d = 0 to Llstar.Compiled.num_decisions c - 1 do
        Profile.record_dfa_built p ~decision:d ~cached:true
          ~n:(Llstar.Compiled.dfa c d).Llstar.Look_dfa.nstates
      done
  | _ -> ());
  let memo = if memoize then Some (Hashtbl.create 1024) else None in
  (match memo with
  | Some tbl when Token_stream.is_streaming ts ->
      Token_stream.set_release_hook ts (evict_memo_before tbl)
  | _ -> ());
  {
    c;
    env;
    ts;
    profile;
    tracer;
    memo;
    speculating = 0;
    recover;
    errors = [];
    n_errors = 0;
    max_errors;
    follow_cache = Hashtbl.create 16;
    ff = None;
  }

let create ?env ?profile ?tracer ?recover ?max_errors (c : Llstar.Compiled.t)
    (toks : Token.t array) : t =
  create_from_stream ?env ?profile ?tracer ?recover ?max_errors c
    (Token_stream.of_array toks)

let start_rule_id t = function
  | Some name -> (
      match Atn.rule_by_name (atn t) name with
      | Some r -> r
      | None -> invalid_arg (Printf.sprintf "Interp: no rule '%s'" name))
  | None -> (atn t).Atn.start_rule

let record_error t e =
  t.errors <- e :: t.errors;
  t.n_errors <- t.n_errors + 1

(* Parse from [start] (default: the grammar's start rule) and require EOF.
   With [recover=false] the first error aborts; with [recover=true] the
   parser records the error, resynchronizes, and continues, returning
   [Error] with everything it found.

   The retry loop is iterative: with recovery on, a pathological input can
   produce one error per token, and a recursive attempt per error would
   both grow the stack linearly and (before [n_errors]) scan the error
   list per error, turning recovery quadratic. *)
let run (t : t) ?start () : (Tree.t, Parse_error.t list) result =
  let rule = start_rule_id t start in
  let tree = ref None in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    match parse_rule t rule ~prec:0 ~building:true with
    | [ tr ] ->
        tree := Some tr;
        if Token_stream.la t.ts 1 <> Grammar.Sym.eof then begin
          let tok = Token_stream.lt t.ts 1 in
          let e =
            Parse_error.{ kind = Extraneous_input; token = tok; rule }
          in
          let retry = t.recover && t.n_errors < t.max_errors in
          record_error t e;
          if retry then begin
            ignore (Token_stream.consume t.ts);
            if Token_stream.la t.ts 1 <> Grammar.Sym.eof then
              continue_ := true
          end
        end
    | _ -> tree := None
    | exception Parse_error.Error e ->
        tree := None;
        record_error t e;
        if t.recover && t.n_errors < t.max_errors then begin
          recover_to_follow t e.Parse_error.rule;
          if
            Token_stream.la t.ts 1 <> Grammar.Sym.eof
            && Token_stream.index t.ts < Token_stream.size t.ts
          then continue_ := true
        end
  done;
  match !tree with
  | Some tree when t.errors = [] -> Ok tree
  | _ -> Error (List.rev t.errors)

let parse ?env ?profile ?tracer ?recover ?start (c : Llstar.Compiled.t)
    (toks : Token.t array) : (Tree.t, Parse_error.t list) result =
  let t = create ?env ?profile ?tracer ?recover c toks in
  run t ?start ()

(* Recognizer: no tree construction (used by benchmarks). *)
let recognize_run (t : t) ?start () : (unit, Parse_error.t list) result =
  let rule = start_rule_id t start in
  match parse_rule t rule ~prec:0 ~building:false with
  | _ ->
      if Token_stream.la t.ts 1 <> Grammar.Sym.eof then
        Error
          [
            Parse_error.
              {
                kind = Extraneous_input;
                token = Token_stream.lt t.ts 1;
                rule;
              };
          ]
      else Ok ()
  | exception Parse_error.Error e -> Error [ e ]

let recognize ?env ?profile ?tracer ?start (c : Llstar.Compiled.t)
    (toks : Token.t array) : (unit, Parse_error.t list) result =
  let t = create ?env ?profile ?tracer c toks in
  recognize_run t ?start ()

(* Streaming recognizer: same semantics as {!recognize} over whatever the
   stream yields, in O(window) live memory.  Exceptions from the stream's
   pull function (e.g. {!Lexer_engine.Lex_error}) propagate to the
   caller. *)
let recognize_stream ?env ?profile ?tracer ?start (c : Llstar.Compiled.t)
    (ts : Token_stream.t) : (unit, Parse_error.t list) result =
  let t = create_from_stream ?env ?profile ?tracer c ts in
  recognize_run t ?start ()

(* Number of (rule, position) results currently memoized; the paper's
   section-6.2 point is that memoizing only while speculating keeps this far
   below a packrat parser's table. *)
let memo_entries t = match t.memo with Some tbl -> Hashtbl.length tbl | None -> 0
