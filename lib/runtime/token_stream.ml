(* Token stream with mark/seek support for speculation.

   The LL-star strategy is one-pass and left-to-right (paper section 4), so
   the stream only ever needs to rewind as far as the oldest live mark.  The
   high-water mark records the furthest token index touched by lookahead or
   consumption; the profiler uses it to measure speculation depth.

   Two modes share one representation:

   - *materialized* ([of_array]/[load]): the whole token array is pinned,
     [base = 0], [limit = Array.length toks], no source.  This is the
     historical behaviour and what generated parsers inline against.
   - *streaming* ([of_pull]): [toks] is a sliding window over an unbounded
     token sequence produced by a pull function.  [base] is the absolute
     index of [toks.(0)]; [limit] is the filled prefix.  Tokens below the
     release frontier -- [min (oldest live mark) (cursor) - 1], i.e.
     everything speculation can no longer rewind to -- are reclaimed when
     the window needs room.  The frontier is always [base].

   The cursor [p] and high-water [hw] are window-relative (absolute minus
   [base]); the public API speaks absolute indices.  Keeping [p]/[hw]
   relative is what lets generated parsers inline lookahead and consume as
   direct field accesses in both modes. *)

type t = {
  mutable toks : Token.t array; (* window; slots [0, limit) are live *)
  mutable p : int; (* cursor, window-relative: next token to consume *)
  mutable hw : int; (* furthest window-relative index examined *)
  mutable limit : int; (* filled prefix of [toks]; always <= length *)
  mutable base : int; (* absolute index of [toks.(0)]; 0 if materialized *)
  mutable src : (unit -> Token.t array) option; (* None: materialized *)
  mutable eof_seen : bool; (* the source returned its last chunk *)
  mutable marks : int list; (* live marks (absolute), newest first *)
  mutable on_release : int -> unit; (* called with the new frontier *)
  mutable window : int; (* target window capacity (streaming) *)
  mutable peak : int; (* max tokens resident at once *)
}

exception Released of { frontier : int; requested : int }

let () =
  Printexc.register_printer (function
    | Released { frontier; requested } ->
        Some
          (Printf.sprintf
             "Token_stream.Released { frontier = %d; requested = %d }" frontier
             requested)
    | _ -> None)

(* hw = -1: no index has been examined until the first [lt]/[la] call *)
let of_array toks =
  {
    toks;
    p = 0;
    hw = -1;
    limit = Array.length toks;
    base = 0;
    src = None;
    eof_seen = true;
    marks = [];
    on_release = ignore;
    window = 0;
    peak = Array.length toks;
  }

(* A shared filler for vacated window slots, so reclaimed tokens become
   garbage immediately instead of lingering behind the frontier until the
   slot is overwritten. *)
let filler = Token.eof_token ~index:(-1)

let of_pull ?(window = 4096) pull =
  let window = max 1 window in
  {
    toks = Array.make window filler;
    p = 0;
    hw = -1;
    limit = 0;
    base = 0;
    src = Some pull;
    eof_seen = false;
    marks = [];
    on_release = ignore;
    window;
    peak = 0;
  }

let is_streaming t = t.src <> None

(* Reset for reuse: rewind the cursor and forget the high-water mark, so a
   long-lived consumer (the serve layer's request loop) can run many
   independent parses through one stream value without one parse's
   speculation reach or cursor position leaking into the next.  Only
   meaningful in materialized mode -- a streaming window cannot rewind past
   its frontier, so [reset] refuses rather than silently corrupting the
   cursor. *)
let reset t =
  if is_streaming t then
    invalid_arg "Token_stream.reset: cannot rewind a streaming window";
  t.p <- 0;
  t.hw <- -1

(* Replace the token array and reset: the cross-request reuse entry point.
   Swapping the array (rather than allocating a stream per request) keeps
   the stream identity stable for state that holds a reference to it.  Also
   the escape hatch back to materialized mode for a stream value previously
   pointed at a source. *)
let load t toks =
  t.src <- None;
  t.eof_seen <- true;
  t.base <- 0;
  t.limit <- Array.length toks;
  t.marks <- [];
  t.on_release <- ignore;
  t.window <- 0;
  t.peak <- Array.length toks;
  t.toks <- toks;
  reset t

(* Tokens seen so far: the total count once the source is exhausted, and
   exactly [Array.length toks] in materialized mode. *)
let size t = t.base + t.limit

let index t = t.base + t.p

let touch t i = if i > t.hw then t.hw <- i

(* Release frontier: everything below [min (oldest live mark) (cursor) - 1]
   can never be examined again.  Marks bound speculation rewinds; the
   cursor bounds committed consumption; the extra retained token keeps
   [prev] valid. *)
let frontier_target t =
  let floor = List.fold_left min (t.base + t.p) t.marks - 1 in
  max floor t.base

(* Drop released tokens from the front of the window.  All relative
   coordinates (cursor, high-water, fill limit) shift down together, so
   absolute positions are preserved; vacated slots are cleared so the GC
   can reclaim the tokens. *)
let slide t =
  let drop = frontier_target t - t.base in
  if drop > 0 then begin
    let kept = t.limit - drop in
    Array.blit t.toks drop t.toks 0 kept;
    Array.fill t.toks kept drop filler;
    t.base <- t.base + drop;
    t.p <- t.p - drop;
    t.hw <- t.hw - drop;
    t.limit <- kept;
    t.on_release t.base
  end

(* Make room for [n] more tokens: slide first, grow (amortized doubling)
   only if the live span still does not fit.  The window only outgrows its
   configured size when speculation genuinely needs a longer reach. *)
let room t n =
  if t.limit + n > Array.length t.toks then begin
    slide t;
    if t.limit + n > Array.length t.toks then begin
      let cap = max (2 * Array.length t.toks) (t.limit + n) in
      let toks = Array.make cap filler in
      Array.blit t.toks 0 toks 0 t.limit;
      t.toks <- toks
    end
  end

(* Pull one chunk from the source into the window. *)
let fill_once t =
  match t.src with
  | None -> ()
  | Some pull ->
      if not t.eof_seen then begin
        let chunk = pull () in
        let n = Array.length chunk in
        if n = 0 then t.eof_seen <- true
        else begin
          room t n;
          Array.blit chunk 0 t.toks t.limit n;
          t.limit <- t.limit + n;
          if t.limit > t.peak then t.peak <- t.limit
        end
      end

(* Fill until the window covers relative index [i] (or the source ends).
   Sliding inside [fill_once] may shift [i]; re-deriving it from the
   absolute target keeps the loop correct. *)
let fill_to t i =
  let abs = t.base + i in
  while t.base + t.limit <= abs && not t.eof_seen do
    fill_once t
  done

(* Token at lookahead offset [k] (k >= 1); EOF beyond the end.  The fast
   path is a bounds check against the filled prefix; [lt_slow] pulls from
   the source (streaming) or synthesizes EOF (materialized / exhausted). *)
let lt_slow t k =
  fill_to t (t.p + k - 1);
  let i = t.p + k - 1 in
  touch t i;
  if i < t.limit then t.toks.(i) else Token.eof_token ~index:(t.base + i)

let lt t k =
  let i = t.p + k - 1 in
  if i < t.limit then begin
    touch t i;
    t.toks.(i)
  end
  else lt_slow t k

(* Token type at lookahead offset [k]. *)
let la t k = (lt t k).Token.ttype

(* Out-of-line continuation of the lookahead that generated parsers inline:
   same contract as [la], reached only when [p + k - 1 >= limit]. *)
let la_far t k = la t k

let consume t =
  let tok = lt t 1 in
  if not (Token.is_eof tok) then t.p <- t.p + 1;
  tok

(* Materialized mode clamps to [0, size] ([size] being the legal post-EOF
   cursor): marks always come from [mark]/[index] and are in range, but
   seek is also reachable from memoized stop positions and recovery logic,
   and an out-of-range cursor silently accepted here surfaced later as
   [prev] reading outside the array or lookahead running from a negative
   index.  Streaming mode cannot clamp a below-frontier target -- the
   tokens are gone, and a clamped rewind would silently corrupt the
   speculation it was meant to restore -- so it raises {!Released}. *)
let seek t i =
  match t.src with
  | None -> t.p <- max 0 (min i t.limit)
  | Some _ ->
      if i < t.base then raise (Released { frontier = t.base; requested = i });
      t.p <- min (i - t.base) t.limit

(* Marks pin the window: tokens at or above [oldest mark - 1] survive
   sliding.  Streaming callers must pair every [mark] with [release]; the
   debug retention check ([live_marks]) catches forgotten ones. *)
let mark t =
  let m = t.base + t.p in
  if is_streaming t then t.marks <- m :: t.marks;
  m

let release t m =
  if is_streaming t then
    match t.marks with
    | hd :: tl when hd = m -> t.marks <- tl
    | marks ->
        (* out-of-order release: drop the first matching mark *)
        let rec drop = function
          | [] -> []
          | hd :: tl -> if hd = m then tl else hd :: drop tl
        in
        t.marks <- drop marks

let live_marks t = t.marks

let high_water t = t.base + t.hw

let set_high_water t v = t.hw <- v - t.base

let at_eof t =
  if t.p < t.limit then false
  else begin
    fill_to t t.p;
    t.p >= t.limit
  end

(* Most recently consumed token, if any.  The slide keeps one token behind
   the cursor resident, so [p = 0] implies absolute position 0. *)
let prev t = if t.p > 0 then Some t.toks.(t.p - 1) else None

let set_release_hook t f = t.on_release <- f

let peak_live t = t.peak

let window_size t = t.window
