(* Token stream with mark/seek support for speculation.

   The LL-star strategy is one-pass and left-to-right (paper section 4), so
   the stream only ever needs to rewind as far as the most recent mark.  The
   high-water mark records the furthest token index touched by lookahead or
   consumption; the profiler uses it to measure speculation depth. *)

type t = {
  mutable toks : Token.t array;
  mutable p : int; (* cursor: next token to consume *)
  mutable hw : int; (* furthest index examined *)
}

(* hw = -1: no index has been examined until the first [lt]/[la] call *)
let of_array toks = { toks; p = 0; hw = -1 }

(* Reset for reuse: rewind the cursor and forget the high-water mark, so a
   long-lived consumer (the serve layer's request loop) can run many
   independent parses through one stream value without one parse's
   speculation reach or cursor position leaking into the next.  This is
   the whole state of a stream -- [toks] itself is never mutated -- so
   [reset] restores exactly the [of_array] post-condition. *)
let reset t =
  t.p <- 0;
  t.hw <- -1

(* Replace the token array and reset: the cross-request reuse entry point.
   Swapping the array (rather than allocating a stream per request) keeps
   the stream identity stable for state that holds a reference to it. *)
let load t toks =
  t.toks <- toks;
  reset t

let size t = Array.length t.toks

let index t = t.p

let touch t i = if i > t.hw then t.hw <- i

(* Token at lookahead offset [k] (k >= 1); EOF beyond the end. *)
let lt t k =
  let i = t.p + k - 1 in
  touch t i;
  if i < Array.length t.toks then t.toks.(i) else Token.eof_token ~index:i

(* Token type at lookahead offset [k]. *)
let la t k = (lt t k).Token.ttype

let consume t =
  let tok = lt t 1 in
  if not (Token.is_eof tok) then t.p <- t.p + 1;
  tok

(* Clamp to [0, size]: [size] is the legal post-EOF cursor.  Marks always
   come from [mark]/[index] and are in range, but seek is also reachable
   from memoized stop positions and recovery logic; an out-of-range cursor
   silently accepted here surfaced later as [prev] reading outside the
   array or lookahead running from a negative index. *)
let seek t i = t.p <- max 0 (min i (Array.length t.toks))

let mark t = t.p

let high_water t = t.hw

let set_high_water t v = t.hw <- v

let at_eof t = t.p >= Array.length t.toks

(* Most recently consumed token, if any. *)
let prev t = if t.p > 0 then Some t.toks.(t.p - 1) else None
