(* Blocking line-JSON client for [antlrkit serve]: one socket, requests
   written line-by-line, responses read line-by-line.  Used by the
   [antlrkit client] subcommand, the load bench and the smoke tests; a
   shell script with nc works just as well, which is the point of the
   protocol. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect (addr : Protocol.addr) : t =
  let fd =
    match addr with
    | Protocol.Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Protocol.Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        let ip =
          try Unix.inet_addr_of_string host
          with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
  in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Poll until the server is accepting: daemon startup (grammar compiles,
   cache loads) races the first client in scripts and CI. *)
let connect_retry ?(attempts = 100) ?(delay_s = 0.1)
    (addr : Protocol.addr) : (t, string) result =
  let rec go n last_err =
    if n <= 0 then
      Error
        (Printf.sprintf "could not connect to %s: %s"
           (Protocol.addr_to_string addr) last_err)
    else
      match connect addr with
      | c -> Ok c
      | exception Unix.Unix_error (e, _, _) ->
          Unix.sleepf delay_s;
          go (n - 1) (Unix.error_message e)
      | exception e ->
          Unix.sleepf delay_s;
          go (n - 1) (Printexc.to_string e)
  in
  go attempts "no attempt made"

let send_line (c : t) (line : string) : unit =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv_line (c : t) : string option =
  match input_line c.ic with
  | line -> Some line
  | exception End_of_file -> None

(* One synchronous round trip. *)
let request_line (c : t) (line : string) : (string, string) result =
  send_line c line;
  match recv_line c with
  | Some resp -> Ok resp
  | None -> Error "server closed the connection"

let request (c : t) (j : Obs.Json.t) : (Obs.Json.t, string) result =
  match request_line c (Obs.Json.to_string j) with
  | Error _ as e -> e
  | Ok resp -> (
      match Obs.Json.parse resp with
      | Ok j -> Ok j
      | Error msg -> Error ("invalid response JSON: " ^ msg))

let close (c : t) : unit =
  (try flush c.oc with _ -> ());
  try Unix.close c.fd with _ -> ()
