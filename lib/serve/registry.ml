(* Compiled-grammar registry for the serve daemon: name -> compiled
   grammar, lexer configuration, predicate environment and (when the name
   matches a committed generated parser) the generated backend.

   Compilation goes through [Llstar.Compiled_cache] when the registry was
   created with a cache directory, so a daemon restart pays a blob load
   instead of a full ATN + lookahead-DFA analysis, and opening the
   directory garbage-collects temp files left by crashed writers.  The
   entry list is guarded by a mutex: [find] is on the per-request path of
   many concurrent connection threads while [load]/[evict] mutate.
   Entries themselves are immutable after insertion -- a request thread
   that got an entry keeps a consistent snapshot even if the name is
   concurrently evicted or replaced. *)

type entry = {
  name : string;
  c : Llstar.Compiled.t;
  digest : string; (* Compiled_cache.payload_digest: identity across runs *)
  lexer_config : Runtime.Lexer_engine.config;
  env : Runtime.Interp.env;
  generated : (module Runtime.Generated.PARSER) option;
  cache : Llstar.Compiled_cache.outcome option; (* when a cache dir is set *)
}

type t = {
  lock : Mutex.t;
  mutable entries : (string * entry) list; (* newest binding first *)
  cache_dir : string option;
}

(* The six bench grammars (Figure 12 of the paper), the workloads the
   daemon preloads by default and the smoke tests drive. *)
let builtin_specs : Bench_grammars.Workload.spec list =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let builtin_names : string list =
  List.map (fun (s : Bench_grammars.Workload.spec) -> s.name) builtin_specs

let builtin_spec (name : string) : Bench_grammars.Workload.spec option =
  List.find_opt
    (fun (s : Bench_grammars.Workload.spec) -> s.name = name)
    builtin_specs

let create ?cache_dir () : t =
  (* Sweep crashed writers' temps as soon as the daemon takes ownership
     of the directory, not lazily on the first compile. *)
  (match cache_dir with
  | Some dir -> ignore (Llstar.Compiled_cache.gc_stale_temps ~dir ())
  | None -> ());
  { lock = Mutex.create (); entries = []; cache_dir }

let cache_dir t = t.cache_dir

(* ------------------------------------------------------------------ *)
(* Compilation *)

let compile_source t ?tracer ?pool (src : string) :
    (Llstar.Compiled.t * Llstar.Compiled_cache.outcome option, string) result
    =
  match t.cache_dir with
  | Some dir -> (
      match Llstar.Compiled_cache.of_source ?tracer ?pool ~dir src with
      | Ok (c, outcome) -> Ok (c, Some outcome)
      | Error e -> Error (Fmt.str "%a" Llstar.Compiled.pp_error e))
  | None -> (
      match Llstar.Compiled.of_source ?pool src with
      | Ok c -> Ok (c, None)
      | Error e -> Error (Fmt.str "%a" Llstar.Compiled.pp_error e))

let insert t (e : entry) : unit =
  Mutex.lock t.lock;
  t.entries <- (e.name, e) :: List.remove_assoc e.name t.entries;
  Mutex.unlock t.lock

(* Load a builtin bench grammar: its lexer configuration and semantic
   predicates come from the workload spec, and the committed generated
   parser (if one exists for the name) is registered alongside the
   interpreter. *)
let load_builtin t ?tracer ?pool (name : string) : (entry, string) result =
  match builtin_spec name with
  | None ->
      Error
        (Printf.sprintf "unknown builtin grammar %S (builtins: %s)" name
           (String.concat ", " builtin_names))
  | Some spec -> (
      match compile_source t ?tracer ?pool spec.grammar_text with
      | Error e -> Error (Printf.sprintf "%s: %s" name e)
      | Ok (c, cache) ->
          let e =
            {
              name;
              c;
              digest = Llstar.Compiled_cache.payload_digest c;
              lexer_config = spec.lexer_config;
              env = Bench_grammars.Workload.env_of_spec spec;
              generated = Gen.Registry.find name;
              cache;
            }
          in
          insert t e;
          Ok e)

(* Load ad-hoc grammar text under [name]: default lexer configuration,
   empty predicate environment, interpreter backend only. *)
let load_source t ?tracer ?pool ~(name : string) (src : string) :
    (entry, string) result =
  match compile_source t ?tracer ?pool src with
  | Error e -> Error (Printf.sprintf "%s: %s" name e)
  | Ok (c, cache) ->
      let e =
        {
          name;
          c;
          digest = Llstar.Compiled_cache.payload_digest c;
          lexer_config = Runtime.Lexer_engine.default_config;
          env = Runtime.Interp.default_env;
          generated = None;
          cache;
        }
      in
      insert t e;
      Ok e

let load_builtins t ?tracer ?pool ?(names = builtin_names) () :
    (entry list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match load_builtin t ?tracer ?pool n with
        | Ok e -> go (e :: acc) rest
        | Error _ as e -> e)
  in
  go [] names

(* ------------------------------------------------------------------ *)
(* Lookup *)

let find t (name : string) : entry option =
  Mutex.lock t.lock;
  let r = List.assoc_opt name t.entries in
  Mutex.unlock t.lock;
  r

let evict t (name : string) : bool =
  Mutex.lock t.lock;
  let present = List.mem_assoc name t.entries in
  if present then t.entries <- List.remove_assoc name t.entries;
  Mutex.unlock t.lock;
  present

let list t : entry list =
  Mutex.lock t.lock;
  let es = List.map snd t.entries in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare a.name b.name) es
