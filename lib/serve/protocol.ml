(* Wire protocol for [antlrkit serve]: one JSON object per line, in both
   directions.  Line framing keeps the protocol trivially scriptable
   (printf + nc are a complete client) and makes request boundaries
   unambiguous without a length prefix; the server bounds line length
   (see [Handler.limits]) so a missing newline cannot buffer unboundedly.

   Requests:

     {"op":"ping"}
     {"op":"parse","grammar":"MiniJava","backend":"interp","text":"..."}
     {"op":"parse_stream","grammar":"MiniJava","text":"...","window":4096}
     {"op":"load","grammar":"MiniSQL"}            load a builtin grammar
     {"op":"load","grammar":"my","text":"s:A;"}   compile grammar text
     {"op":"evict","grammar":"my"}
     {"op":"list"}
     {"op":"stats"}                               antlrkit-telemetry/2 doc
     {"op":"metrics"}                             Prometheus text format
     {"op":"health"}                              liveness probe
     {"op":"ready"}                               readiness + pool gauges
     {"op":"shutdown"}                            graceful drain + exit

   Every request may carry an "id" (any JSON value); it is echoed
   verbatim in the response so clients can pipeline over one connection.
   String and integer ids double as the request's correlation id: the
   daemon threads them into trace events and the slow-request log (other
   ids get a generated "r-<seq>").  Responses always carry "ok"; failures
   carry {"error":{"code":...,"message":...}} with machine-stable codes,
   and parse failures additionally carry "errors": structured
   [Parse_error.to_json] objects. *)

type backend = Interp | Generated

let backend_name = function Interp -> "interp" | Generated -> "generated"

let backend_of_string = function
  | "interp" -> Ok Interp
  | "generated" | "gen" -> Ok Generated
  | s -> Error (Printf.sprintf "unknown backend %S (interp|generated)" s)

type request = {
  id : Obs.Json.t; (* echoed verbatim; [Null] when absent *)
  op : string;
  grammar : string option;
  backend : backend;
  text : string option;
  start : string option; (* start rule override (interp backend only) *)
  recover : bool; (* error recovery: collect all errors (interp only) *)
  window : int option; (* token-window size (parse_stream only) *)
}

(* ------------------------------------------------------------------ *)
(* Server addresses *)

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* "host:port" for TCP; anything else is a filesystem socket path. *)
let tcp_of_string (s : string) : (addr, string) result =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some i -> (
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "%S: expected HOST:PORT" s))

(* ------------------------------------------------------------------ *)
(* JSON accessors (the Obs.Json document type is structural) *)

let member_str (k : string) (j : Obs.Json.t) : string option =
  match Obs.Json.member k j with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let member_bool (k : string) (j : Obs.Json.t) : bool option =
  match Obs.Json.member k j with
  | Some (Obs.Json.Bool b) -> Some b
  | _ -> None

let member_int (k : string) (j : Obs.Json.t) : int option =
  match Obs.Json.member k j with
  | Some (Obs.Json.Int i) -> Some i
  | _ -> None

let request_of_json (j : Obs.Json.t) : (request, string) result =
  match j with
  | Obs.Json.Obj _ -> (
      let id = Option.value (Obs.Json.member "id" j) ~default:Obs.Json.Null in
      match member_str "op" j with
      | None -> Error "missing or non-string \"op\""
      | Some op -> (
          let backend =
            match member_str "backend" j with
            | None -> Ok Interp
            | Some s -> backend_of_string s
          in
          match backend with
          | Error e -> Error e
          | Ok backend ->
              Ok
                {
                  id;
                  op;
                  grammar = member_str "grammar" j;
                  backend;
                  text = member_str "text" j;
                  start = member_str "start" j;
                  recover =
                    Option.value (member_bool "recover" j) ~default:false;
                  window = member_int "window" j;
                }))
  | _ -> Error "request must be a JSON object"

let parse_request (line : string) : (request, string) result =
  match Obs.Json.parse line with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> request_of_json j

(* The client-supplied correlation id, when the "id" field is usable as
   one (a string or an integer).  [None] means the handler generates a
   per-daemon sequence id instead. *)
let client_req_id (req : request) : string option =
  match req.id with
  | Obs.Json.String s when s <> "" && String.length s <= 128 -> Some s
  | Obs.Json.Int i -> Some (string_of_int i)
  | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.Float _ | Obs.Json.String _
  | Obs.Json.List _ | Obs.Json.Obj _ ->
      None

(* ------------------------------------------------------------------ *)
(* Response builders.  Field order is fixed (id, ok, op first) so logs
   and test expectations stay stable. *)

let ok_response ~(id : Obs.Json.t) ~(op : string)
    (fields : (string * Obs.Json.t) list) : Obs.Json.t =
  Obs.Json.obj
    (("id", id) :: ("ok", Obs.Json.bool true) :: ("op", Obs.Json.str op)
   :: fields)

(* Stable error codes: bad_request, unknown_op, unknown_grammar,
   unknown_backend, no_generated_parser, lex_error, parse_error,
   too_large, token_budget, time_budget, compile_error, shutting_down. *)
let error_response ~(id : Obs.Json.t) ~(code : string) ~(message : string)
    ?(extra : (string * Obs.Json.t) list = []) () : Obs.Json.t =
  Obs.Json.obj
    (("id", id)
    :: ("ok", Obs.Json.bool false)
    :: ( "error",
         Obs.Json.obj
           [
             ("code", Obs.Json.str code); ("message", Obs.Json.str message);
           ] )
    :: extra)
