(* Minimal HTTP/1.1 listener for scrapers and orchestrators.

   The line-JSON protocol needs an antlrkit client; Prometheus and
   Kubernetes speak HTTP GET.  This module serves exactly three read-only
   paths over a loopback-style listener:

     GET /metrics   Prometheus text format v0.0.4 ([Handler.prometheus])
     GET /health    liveness  ("ok\n")
     GET /ready     readiness ("ready\n")

   It is deliberately not a web server: requests are parsed just enough
   to extract the method and path, responses always close the connection,
   and scrapes are handled one at a time on the listener thread (scrape
   intervals are seconds; a parse-request stall cannot block a scrape
   because scraping never touches the pool, only the metrics mutex).  A
   slow or stuck client is bounded by a receive timeout and a header-size
   cap, so it can delay -- never wedge -- the next scrape.

   Lifecycle mirrors [Server]: a self-pipe multiplexed against the listen
   socket by [select], so [stop] is signal-safe and the thread joins
   promptly.  Bind with [port = 0] to let the kernel choose (tests);
   [port t] reports the actual binding. *)

type t = {
  handler : Handler.t;
  listen_fd : Unix.file_descr;
  http_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable thread : Thread.t option;
}

let max_header_bytes = 8192
let recv_timeout_s = 5.0

let port t = t.http_port

(* ------------------------------------------------------------------ *)
(* Request parsing: the request line is all we need.  Returns the path of
   a well-formed GET, [`Bad_method] for other methods, [`Malformed] for
   anything that is not HTTP. *)

let parse_request_line (data : string) :
    [ `Get of string | `Bad_method | `Malformed ] =
  match String.index_opt data '\n' with
  | None -> `Malformed
  | Some eol -> (
      let line = String.sub data 0 eol in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      match String.split_on_char ' ' line with
      | [ "GET"; target; _http ] -> (
          (* strip any query string: /metrics?x=y scrapes /metrics *)
          match String.index_opt target '?' with
          | Some q -> `Get (String.sub target 0 q)
          | None -> `Get target)
      | [ _; _; _ ] -> `Bad_method
      | _ -> `Malformed)

let response ~(status : string) ~(content_type : string) (body : string) :
    string =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

let prom_content_type = "text/plain; version=0.0.4; charset=utf-8"

let respond_to (h : Handler.t) (path : string) : string =
  match path with
  | "/metrics" ->
      response ~status:"200 OK" ~content_type:prom_content_type
        (Handler.prometheus h)
  | "/health" ->
      response ~status:"200 OK" ~content_type:"text/plain; charset=utf-8"
        "ok\n"
  | "/ready" ->
      response ~status:"200 OK" ~content_type:"text/plain; charset=utf-8"
        "ready\n"
  | _ ->
      response ~status:"404 Not Found"
        ~content_type:"text/plain; charset=utf-8"
        "not found (try /metrics, /health, /ready)\n"

(* Read until the header terminator, the size cap, EOF, or the timeout.
   We never care about a body: these are GETs. *)
let read_request (fd : Unix.file_descr) : string option =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > max_header_bytes then None
    else
      let seen = Buffer.contents buf in
      let have_terminator =
        (* enough to parse once the first line is complete *)
        String.index_opt seen '\n' <> None
      in
      if have_terminator then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if seen = "" then None else Some seen
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error (_, _, _) -> None
  in
  go ()

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 0

let handle_conn (t : t) (fd : Unix.file_descr) : unit =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout_s
   with Unix.Unix_error (_, _, _) -> ());
  (match read_request fd with
  | None -> ()
  | Some data -> (
      match parse_request_line data with
      | `Get path -> write_all fd (respond_to t.handler path)
      | `Bad_method ->
          write_all fd
            (response ~status:"405 Method Not Allowed"
               ~content_type:"text/plain; charset=utf-8" "GET only\n")
      | `Malformed -> ()));
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let listen_loop (t : t) : unit =
  let running = ref true in
  while !running do
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then running := false
        else if List.mem t.listen_fd readable then begin
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (_, _, _) -> ()
          | fd, _ -> handle_conn t fd
        end
  done

(* Bind, spawn the listener thread, return.  [host] defaults to loopback:
   metrics are an operational surface, not a public one; bind 0.0.0.0
   explicitly if a scraper lives off-host. *)
let start ?(host = "127.0.0.1") ~(port : int) (handler : Handler.t) :
    (t, string) result =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let ip =
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (try Unix.bind fd (Unix.ADDR_INET (ip, port))
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    Unix.listen fd 16;
    let http_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    (fd, http_port)
  with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot bind metrics listener on %s:%d: %s" host port
           (Unix.error_message err))
  | listen_fd, http_port ->
      let stop_r, stop_w = Unix.pipe () in
      let t = { handler; listen_fd; http_port; stop_r; stop_w; thread = None } in
      t.thread <- Some (Thread.create (fun () -> listen_loop t) ());
      Ok t

(* Idempotent: joins the listener thread and closes every fd. *)
let stop (t : t) : unit =
  (try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with _ -> ());
  (match t.thread with
  | Some th ->
      t.thread <- None;
      Thread.join th
  | None -> ());
  List.iter
    (fun fd -> try Unix.close fd with _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w ]
