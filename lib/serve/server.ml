(* Socket server for the serve daemon.

   Shape: one accept loop (the caller's thread, inside [run]) multiplexing
   the listen socket against a self-pipe with [select]; one lightweight
   sys-thread per connection reading newline-framed requests and calling
   [Handler.handle]; parse work itself runs on the handler's Exec.Pool, so
   connection threads spend their lives blocked on sockets, not burning
   CPU.

   Graceful shutdown (a shutdown request, [stop], or a signal wired to
   [stop]): the accept loop closes the listen socket, then shuts down the
   *receive* side of every open connection.  An idle connection's reader
   sees EOF and exits; a connection mid-request still owns its send side,
   so the in-flight response is written before the thread exits.  [run]
   then waits for the connection count to drain to zero, joins the
   threads, removes a Unix socket path, and returns -- the caller exits 0
   with no request dropped mid-parse. *)

type conn = { fd : Unix.file_descr; mutable receiving : bool }

type t = {
  handler : Handler.t;
  addr : Protocol.addr;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr; (* self-pipe: anything written means stop *)
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  drained : Condition.t;
  mutable conns : conn list;
  mutable n_conns : int;
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

let listen_on (addr : Protocol.addr) : Unix.file_descr =
  match addr with
  | Protocol.Unix_sock path ->
      (* A stale socket file from a crashed daemon blocks bind; a live
         daemon would still be accepting on it, and two daemons on one
         path is operator error either way. *)
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Protocol.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      fd

let create ~(handler : Handler.t) ~(addr : Protocol.addr) () : t =
  (* A client that disconnects mid-response must cost us an EPIPE write
     error, not a process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let stop_r, stop_w = Unix.pipe () in
  {
    handler;
    addr;
    listen_fd = listen_on addr;
    stop_r;
    stop_w;
    lock = Mutex.create ();
    drained = Condition.create ();
    conns = [];
    n_conns = 0;
    stopping = false;
    threads = [];
  }

(* Signal-safe and idempotent: just makes the self-pipe readable. *)
let stop (t : t) : unit =
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with _ -> ()

(* ------------------------------------------------------------------ *)
(* Bounded line reading.  [carry] holds bytes read past the previous
   newline; a line longer than [max_bytes] is a protocol violation (the
   handler would refuse it anyway) and poisons the framing, so the
   connection is dropped after an error response. *)

let split_line (carry : string ref) : string option =
  match String.index_opt !carry '\n' with
  | None -> None
  | Some i ->
      let line = String.sub !carry 0 i in
      carry :=
        String.sub !carry (i + 1) (String.length !carry - i - 1);
      let line =
        (* tolerate CRLF clients *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line

let read_line_bounded (fd : Unix.file_descr) (carry : string ref)
    (chunk : Bytes.t) ~(max_bytes : int) :
    [ `Line of string | `Eof | `Too_long ] =
  let rec go () =
    match split_line carry with
    | Some line -> `Line line
    | None ->
        if String.length !carry > max_bytes then `Too_long
        else begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
              (* EOF: a trailing unterminated line still gets served --
                 printf-without-newline clients are too common to
                 punish. *)
              if !carry = "" then `Eof
              else begin
                let line = !carry in
                carry := "";
                `Line line
              end
          | n ->
              carry := !carry ^ Bytes.sub_string chunk 0 n;
              go ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _)
            ->
              `Eof
        end
  in
  go ()

let write_all (fd : Unix.file_descr) (s : string) : bool =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd b off (len - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Connection lifecycle *)

let add_conn t (c : conn) : unit =
  Mutex.lock t.lock;
  t.conns <- c :: t.conns;
  t.n_conns <- t.n_conns + 1;
  Mutex.unlock t.lock

let remove_conn t (c : conn) : unit =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c' -> c' != c) t.conns;
  t.n_conns <- t.n_conns - 1;
  if t.n_conns = 0 then Condition.broadcast t.drained;
  Mutex.unlock t.lock

let conn_loop t (c : conn) : unit =
  let max_bytes =
    t.handler.Handler.limits.Handler.max_request_bytes
  in
  let carry = ref "" in
  let chunk = Bytes.create 65536 in
  let continue_ = ref true in
  while !continue_ do
    match read_line_bounded c.fd carry chunk ~max_bytes with
    | `Eof -> continue_ := false
    | `Too_long ->
        ignore
          (write_all c.fd
             (Obs.Json.to_string
                (Protocol.error_response ~id:Obs.Json.Null ~code:"too_large"
                   ~message:
                     (Printf.sprintf "request line exceeds %d bytes"
                        max_bytes)
                   ())
             ^ "\n"));
        continue_ := false
    | `Line "" -> () (* blank keep-alive lines are fine *)
    | `Line line ->
        let resp, action = Handler.handle t.handler line in
        if not (write_all c.fd (resp ^ "\n")) then continue_ := false;
        (match action with
        | `Shutdown ->
            stop t;
            continue_ := false
        | `Continue -> ())
  done;
  c.receiving <- false;
  (try Unix.close c.fd with _ -> ());
  remove_conn t c

(* ------------------------------------------------------------------ *)
(* Accept loop and drain *)

let accept_loop t : unit =
  let running = ref true in
  while !running do
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then running := false
        else if List.mem t.listen_fd readable then begin
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (_, _, _) -> ()
          | fd, _ ->
              let c = { fd; receiving = true } in
              add_conn t c;
              let th = Thread.create (fun () -> conn_loop t c) () in
              Mutex.lock t.lock;
              t.threads <- th :: t.threads;
              Mutex.unlock t.lock
        end
  done

let drain t : unit =
  Mutex.lock t.lock;
  t.stopping <- true;
  (* Poke every open connection's receive side: idle readers see EOF
     immediately; a thread mid-request keeps its send side and finishes
     the response first. *)
  List.iter
    (fun c ->
      if c.receiving then
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with _ -> ())
    t.conns;
  while t.n_conns > 0 do
    Condition.wait t.drained t.lock
  done;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.lock;
  List.iter Thread.join threads

(* Serve until stopped, then drain gracefully.  Returns when every
   accepted request has been answered and every connection closed. *)
let run (t : t) : unit =
  accept_loop t;
  (try Unix.close t.listen_fd with _ -> ());
  drain t;
  (try Unix.close t.stop_r with _ -> ());
  (try Unix.close t.stop_w with _ -> ());
  match t.addr with
  | Protocol.Unix_sock path -> ( try Sys.remove path with _ -> ())
  | Protocol.Tcp _ -> ()
