(* Request handler for the serve daemon: a pure [request line -> response
   line] function over a registry, a pool and shared metrics.  The server
   wraps it in socket plumbing; the tests call it directly.

   State-reset contract (see DESIGN.md, Serve layer): every parse request
   gets freshly created runtime state -- a new [Token_stream], a new
   interpreter (or generated-parser state, and with it an empty
   speculation memo table), and a new [Profile].  Nothing mutable
   outlives a request except the shared [Metrics] registry, which is
   only touched under [m_lock].  The registry's entries (grammar, ATN,
   DFAs, vocabulary) are read-only while the daemon is hot, matching the
   Exec.Pool sharing discipline. *)

type limits = {
  max_request_bytes : int; (* request line length, and text payload size *)
  max_tokens : int; (* lexed-token budget per parse request *)
  time_budget_s : float;
      (* post-hoc wall-clock guard, fuzz-oracle style: the parse is not
         interrupted, but a request that overran reports [time_budget]
         instead of its result, so a client-facing SLA violation is
         visible as a structured error rather than silent latency *)
}

let default_limits =
  { max_request_bytes = 8 * 1024 * 1024; max_tokens = 500_000;
    time_budget_s = 30.0 }

type t = {
  registry : Registry.t;
  pool : Exec.Pool.t;
  limits : limits;
  tracer : Obs.Trace.t;
  metrics : Obs.Metrics.t; (* shared across requests; guard with m_lock *)
  m_lock : Mutex.t;
  started : float;
  slow_log : Slow_log.t option;
      (* tail-sampled flight recorder; [None] disables per-request trace
         capture entirely (the hot-path default) *)
  req_seq : int Atomic.t; (* generated correlation ids: r-1, r-2, ... *)
}

let create ?(limits = default_limits) ?(tracer = Obs.Trace.null) ?slow_log
    ~(registry : Registry.t) ~(pool : Exec.Pool.t) () : t =
  {
    registry;
    pool;
    limits;
    tracer;
    metrics = Obs.Metrics.create ();
    m_lock = Mutex.create ();
    started = Unix.gettimeofday ();
    slow_log;
    req_seq = Atomic.make 0;
  }

let metrics t = t.metrics
let slow_log t = t.slow_log

(* Correlation id: the client's "id" when it is a usable string/int,
   otherwise a daemon-unique sequence id.  Computed once per request and
   threaded into trace events and the slow-request log. *)
let req_id_of h (req : Protocol.request) : string =
  match Protocol.client_req_id req with
  | Some id -> id
  | None -> Printf.sprintf "r-%d" (Atomic.fetch_and_add h.req_seq 1 + 1)

let mono_us () : int =
  int_of_float (Obs.Trace.monotonic_now () *. 1e6)

(* ------------------------------------------------------------------ *)
(* Parse *)

type parse_result = {
  ok : bool;
  errors : Runtime.Parse_error.t list;
  consumed : int;
}

type parse_verdict =
  [ `Lex_error of Runtime.Lexer_engine.error
  | `Token_budget of int
  | `No_generated
  | `Done of parse_result * Runtime.Profile.t * int (* lexed tokens *) ]

(* What the pool hands back: the verdict plus the parse-vs-total latency
   breakdown.  [queue_us] is measured from submit to the instant a worker
   entered the closure; [parse_us] is the closure's own wall time (lex +
   parse).  Request wall minus the two is protocol/dispatch overhead. *)
type parse_work = { verdict : parse_verdict; queue_us : int; parse_us : int }

(* The closure submitted to the pool: lexing and parsing both count
   against the request's budget and both run off the connection thread.
   [tracer] is the per-request capture ring (or [null]); it sees lexer
   mode events from [tokenize] and decision/speculation/memo events from
   the interpreter.  Generated parsers have no tracer hook, so their
   captures carry lexer events only. *)
let parse_work h (entry : Registry.entry) ~(backend : Protocol.backend)
    ~(start : string option) ~(recover : bool) ~(tracer : Obs.Trace.t)
    ~(submitted_us : int) (text : string) () : parse_work =
  let t_start = mono_us () in
  let queue_us = max 0 (t_start - submitted_us) in
  let finish verdict = { verdict; queue_us; parse_us = mono_us () - t_start } in
  let sym = Llstar.Compiled.sym entry.c in
  match Runtime.Lexer_engine.tokenize ~tracer entry.lexer_config sym text with
  | Error le -> finish (`Lex_error le)
  | Ok toks ->
      let n = Array.length toks in
      if n > h.limits.max_tokens then finish (`Token_budget n)
      else
        let profile = Runtime.Profile.create () in
        let result =
          match backend with
          | Protocol.Interp ->
              if recover then
                (* Recovery collects every error; the tree is discarded,
                   only acceptance and the error list travel back. *)
                let tr =
                  Runtime.Interp.create ~env:entry.env ~profile ~tracer
                    ~recover:true entry.c toks
                in
                let res = Runtime.Interp.run tr ?start () in
                let consumed =
                  match res with
                  | Ok _ -> n
                  | Error _ -> n (* recovery consumes to EOF by design *)
                in
                (match res with
                | Ok _ -> Some { ok = true; errors = []; consumed }
                | Error es -> Some { ok = false; errors = es; consumed })
              else
                let o =
                  Runtime.Generated.interp_outcome ~env:entry.env ~profile
                    ~tracer ?start entry.c toks
                in
                Some
                  {
                    ok = o.Runtime.Generated.ok;
                    errors = Option.to_list o.Runtime.Generated.error;
                    consumed = o.Runtime.Generated.consumed;
                  }
          | Protocol.Generated -> (
              match entry.generated with
              | None -> None
              | Some (module P) ->
                  let o = P.outcome ~env:entry.env ~profile toks in
                  Some
                    {
                      ok = o.Runtime.Generated.ok;
                      errors = Option.to_list o.Runtime.Generated.error;
                      consumed = o.Runtime.Generated.consumed;
                    })
        in
        (match result with
        | None -> finish `No_generated
        | Some r ->
            Runtime.Profile.observe_parse_us profile (mono_us () - t_start);
            finish (`Done (r, profile, n)))

(* Record a finished parse request into the shared registry and tracer.
   [tokens = 0] for requests that died before lexing finished.

   Latency goes to three [Duration] summaries (log-linear buckets,
   quantile estimates -- the telemetry/2 fields and the Prometheus
   summary series):

   - [serve.request_us]{op,grammar,backend}: end-to-end request wall;
   - [serve.queue_us]{grammar,backend}: waiting for a pool worker;
   - [serve.parse_us]{grammar,backend}: inside the parse closure
     (lex + parse), so request - queue - parse = dispatch overhead. *)
let record h ~(req_id : string) ~(op : string) ~(grammar : string)
    ~(backend : Protocol.backend) ~(ok : bool) ~(tokens : int)
    ~(wall_us : int) ~(queue_us : int) ~(parse_us : int)
    ~(profile : Runtime.Profile.t option) : unit =
  let backend_l = ("backend", Protocol.backend_name backend) in
  let grammar_l = ("grammar", grammar) in
  Mutex.lock h.m_lock;
  Obs.Metrics.incr
    (Obs.Metrics.counter h.metrics
       ~labels:[ ("op", op); grammar_l; backend_l; ("ok", string_of_bool ok) ]
       "serve.requests");
  Obs.Duration.observe
    (Obs.Metrics.duration h.metrics
       ~labels:[ ("op", op); grammar_l; backend_l ]
       "serve.request_us")
    wall_us;
  Obs.Duration.observe
    (Obs.Metrics.duration h.metrics
       ~labels:[ grammar_l; backend_l ]
       "serve.queue_us")
    queue_us;
  Obs.Duration.observe
    (Obs.Metrics.duration h.metrics
       ~labels:[ grammar_l; backend_l ]
       "serve.parse_us")
    parse_us;
  Obs.Metrics.observe
    (Obs.Metrics.histogram h.metrics ~labels:[ grammar_l ] "serve.tokens")
    tokens;
  (match profile with
  | Some p -> Obs.Metrics.merge ~into:h.metrics (Runtime.Profile.registry p)
  | None -> ());
  Mutex.unlock h.m_lock;
  if Obs.Trace.on h.tracer then
    Obs.Trace.emit h.tracer
      (Obs.Trace.Serve_request
         {
           req_id;
           op;
           grammar;
           backend = Protocol.backend_name backend;
           ok;
           tokens;
           wall_us;
           queue_us;
         })

(* The streaming variant of [parse_work]: the request text feeds the
   chunked scanner, the scanner feeds a bounded token window, and the
   recognizer pulls as it goes -- O(window) live tokens however large the
   payload.  The token budget is enforced incrementally: the pull aborts
   the parse the moment production crosses [max_tokens].  Verdict parity
   with [parse_work] (which lexes everything up front) requires draining
   the scanner afterwards, so a lex error or a budget overrun anywhere in
   the input wins over the parse verdict, with the same total count. *)
let parse_stream_work h (entry : Registry.entry)
    ~(backend : Protocol.backend) ~(start : string option) ~(window : int)
    ~(tracer : Obs.Trace.t) ~(submitted_us : int) (text : string) () :
    parse_work =
  let t_start = mono_us () in
  let queue_us = max 0 (t_start - submitted_us) in
  let finish verdict = { verdict; queue_us; parse_us = mono_us () - t_start } in
  let sym = Llstar.Compiled.sym entry.c in
  let ls =
    Runtime.Lexer_engine.stream ~tracer entry.lexer_config sym
      (Runtime.Lexer_engine.reader_of_string text)
  in
  let exception Over_budget in
  let pull =
    let inner = Runtime.Lexer_engine.pull ls in
    fun () ->
      if Runtime.Lexer_engine.produced ls > h.limits.max_tokens then
        raise Over_budget;
      inner ()
  in
  let ts = Runtime.Token_stream.of_pull ~window pull in
  let profile = Runtime.Profile.create () in
  let run =
    match backend with
    | Protocol.Interp ->
        Some
          (fun () ->
            Runtime.Generated.interp_outcome_stream ~env:entry.env ~profile
              ~tracer ?start entry.c ts)
    | Protocol.Generated -> (
        match entry.generated with
        | None -> None
        | Some (module P) ->
            Some (fun () -> P.outcome_stream ~env:entry.env ~profile ts))
  in
  match run with
  | None -> finish `No_generated
  | Some run -> (
      match run () with
      | exception Runtime.Lexer_engine.Lex_error le -> finish (`Lex_error le)
      | exception Over_budget -> (
          match Runtime.Lexer_engine.drain ls with
          | Error le -> finish (`Lex_error le)
          | Ok _ -> finish (`Token_budget (Runtime.Lexer_engine.produced ls)))
      | o -> (
          match Runtime.Lexer_engine.drain ls with
          | Error le -> finish (`Lex_error le)
          | Ok _ ->
              let n = Runtime.Lexer_engine.produced ls in
              if n > h.limits.max_tokens then finish (`Token_budget n)
              else begin
                Runtime.Profile.observe_parse_us profile
                  (mono_us () - t_start);
                finish
                  (`Done
                    ( {
                        ok = o.Runtime.Generated.ok;
                        errors = Option.to_list o.Runtime.Generated.error;
                        consumed = o.Runtime.Generated.consumed;
                      },
                      profile,
                      n ))
              end))

(* Shared request plumbing and response assembly for parse and
   parse_stream: validation is the caller's job, everything from the
   capture ring to the structured response is identical, so the two ops
   answer byte-identically (modulo the echoed op name). *)
let respond_parse h (req : Protocol.request) ~(op : string)
    ~(entry : Registry.entry) ~(gname : string)
    (work :
      tracer:Obs.Trace.t -> submitted_us:int -> unit -> parse_work) :
    Obs.Json.t =
  let id = req.Protocol.id in
  let fail ?(extra = []) code message =
    Protocol.error_response ~id ~code ~message ~extra ()
  in
  let req_id = req_id_of h req in
  let backend = req.Protocol.backend in
  (* Per-request capture ring: only materialized when the slow
     log is armed, so the disabled path stays allocation-free. *)
  let cap =
    match h.slow_log with
    | Some sl -> Some (Obs.Trace.Ring.create (Slow_log.max_events sl))
    | None -> None
  in
  let rtr =
    match cap with
    | Some buf -> Obs.Trace.ring buf
    | None -> Obs.Trace.null
  in
  let t0 = Obs.Trace.monotonic_now () in
  let submitted_us = int_of_float (t0 *. 1e6) in
  let { verdict; queue_us; parse_us } =
    Exec.Pool.await (Exec.Pool.submit h.pool (work ~tracer:rtr ~submitted_us))
  in
  let finish ~(ok : bool) ~(tokens : int)
      ~(profile : Runtime.Profile.t option) : int * float
      (* wall_us, wall_s *) =
    let wall = Obs.Trace.monotonic_now () -. t0 in
    let wall_us = int_of_float (wall *. 1e6) in
    record h ~req_id ~op ~grammar:gname ~backend ~ok ~tokens ~wall_us
      ~queue_us ~parse_us ~profile;
    (match (h.slow_log, cap) with
    | Some sl, Some buf when Slow_log.should_retain sl ~wall_us ~ok ->
        Slow_log.record sl ~req_id ~op ~grammar:gname
          ~backend:(Protocol.backend_name backend)
          ~ok ~wall_us ~queue_us ~parse_us buf
    | _ -> ());
    (wall_us, wall)
  in
  match verdict with
            | `Lex_error le ->
                let _ = finish ~ok:false ~tokens:0 ~profile:None in
                fail "lex_error"
                  (Fmt.str "%a" Runtime.Lexer_engine.pp_error le)
                  ~extra:
                    [
                      ( "position",
                        Obs.Json.obj
                          [
                            ("line", Obs.Json.int le.Runtime.Lexer_engine.line);
                            ("col", Obs.Json.int le.Runtime.Lexer_engine.col);
                          ] );
                    ]
            | `Token_budget n ->
                let _ = finish ~ok:false ~tokens:n ~profile:None in
                fail "token_budget"
                  (Printf.sprintf "input lexed to %d tokens; limit is %d" n
                     h.limits.max_tokens)
            | `No_generated ->
                fail "no_generated_parser"
                  (Printf.sprintf "grammar %S has no generated parser; use \
                                   backend=interp" gname)
            | `Done (r, profile, tokens) ->
                let wall = Obs.Trace.monotonic_now () -. t0 in
                let over_budget = wall > h.limits.time_budget_s in
                let wall_us, _ =
                  finish ~ok:(r.ok && not over_budget) ~tokens
                    ~profile:(Some profile)
                in
                let base =
                  [
                    ("grammar", Obs.Json.str gname);
                    ( "backend",
                      Obs.Json.str (Protocol.backend_name req.Protocol.backend)
                    );
                    ("tokens", Obs.Json.int tokens);
                    ("wall_us", Obs.Json.int wall_us);
                  ]
                in
                if over_budget then
                  (* Post-hoc guard: the result is withheld, the overrun
                     is the answer (fuzz-oracle time_cap discipline). *)
                  fail "time_budget"
                    (Printf.sprintf
                       "request took %.3fs; budget is %.3fs" wall
                       h.limits.time_budget_s)
                    ~extra:base
                else if r.ok then
                  Protocol.ok_response ~id ~op
                    (base @ [ ("consumed", Obs.Json.int r.consumed) ])
                else
                  let sym = Llstar.Compiled.sym entry.Registry.c in
                  let message =
                    match r.errors with
                    | e :: _ -> Runtime.Parse_error.to_string sym e
                    | [] -> "parse failed"
                  in
                  fail "parse_error" message
                    ~extra:
                      (base
                      @ [
                          ("consumed", Obs.Json.int r.consumed);
                          ( "errors",
                            Obs.Json.list
                              (List.map
                                 (Runtime.Parse_error.to_json sym)
                                 r.errors) );
                        ])

(* Validation shared by parse and parse_stream: both need a loaded
   grammar and a bounded text payload. *)
let with_parse_target h (req : Protocol.request)
    (k : entry:Registry.entry -> gname:string -> text:string -> Obs.Json.t) :
    Obs.Json.t =
  let id = req.Protocol.id in
  let fail code message = Protocol.error_response ~id ~code ~message () in
  match (req.Protocol.grammar, req.Protocol.text) with
  | None, _ -> fail "bad_request" (req.Protocol.op ^ " requires \"grammar\"")
  | _, None -> fail "bad_request" (req.Protocol.op ^ " requires \"text\"")
  | Some gname, Some text -> (
      match Registry.find h.registry gname with
      | None ->
          fail "unknown_grammar"
            (Printf.sprintf
               "grammar %S is not loaded (op=list shows what is; op=load \
                adds one)"
               gname)
      | Some entry ->
          if String.length text > h.limits.max_request_bytes then
            fail "too_large"
              (Printf.sprintf "text is %d bytes; limit is %d"
                 (String.length text) h.limits.max_request_bytes)
          else k ~entry ~gname ~text)

let do_parse h (req : Protocol.request) : Obs.Json.t =
  with_parse_target h req (fun ~entry ~gname ~text ->
      if req.Protocol.backend = Protocol.Generated && req.Protocol.recover
      then
        Protocol.error_response ~id:req.Protocol.id ~code:"bad_request"
          ~message:"error recovery is only supported on the interp backend"
          ()
      else
        respond_parse h req ~op:"parse" ~entry ~gname
          (fun ~tracer ~submitted_us ->
            parse_work h entry ~backend:req.Protocol.backend
              ~start:req.Protocol.start ~recover:req.Protocol.recover ~tracer
              ~submitted_us text))

let default_stream_window = 4096

let do_parse_stream h (req : Protocol.request) : Obs.Json.t =
  with_parse_target h req (fun ~entry ~gname ~text ->
      let fail message =
        Protocol.error_response ~id:req.Protocol.id ~code:"bad_request"
          ~message ()
      in
      let window =
        Option.value req.Protocol.window ~default:default_stream_window
      in
      if req.Protocol.recover then
        fail "parse_stream is recognize-only and does not support recover"
      else if window < 1 then fail "\"window\" must be >= 1"
      else
        respond_parse h req ~op:"parse_stream" ~entry ~gname
          (fun ~tracer ~submitted_us ->
            parse_stream_work h entry ~backend:req.Protocol.backend
              ~start:req.Protocol.start ~window ~tracer ~submitted_us text))

(* ------------------------------------------------------------------ *)
(* Registry ops *)

let entry_json (e : Registry.entry) : Obs.Json.t =
  Obs.Json.obj
    [
      ("name", Obs.Json.str e.Registry.name);
      ("digest", Obs.Json.str e.Registry.digest);
      ("generated", Obs.Json.bool (Option.is_some e.Registry.generated));
      ( "cache",
        match e.Registry.cache with
        | Some Llstar.Compiled_cache.Hit -> Obs.Json.str "hit"
        | Some Llstar.Compiled_cache.Miss -> Obs.Json.str "miss"
        | None -> Obs.Json.Null );
    ]

let do_load h (req : Protocol.request) : Obs.Json.t =
  let id = req.Protocol.id in
  match req.Protocol.grammar with
  | None ->
      Protocol.error_response ~id ~code:"bad_request"
        ~message:"load requires \"grammar\"" ()
  | Some name -> (
      let loaded =
        match req.Protocol.text with
        | Some src when String.length src > h.limits.max_request_bytes ->
            Error
              (Printf.sprintf "grammar text is %d bytes; limit is %d"
                 (String.length src) h.limits.max_request_bytes)
        | Some src ->
            Registry.load_source h.registry ~tracer:h.tracer ~pool:h.pool
              ~name src
        | None ->
            Registry.load_builtin h.registry ~tracer:h.tracer ~pool:h.pool
              name
      in
      match loaded with
      | Ok e ->
          Protocol.ok_response ~id ~op:"load" [ ("grammar", entry_json e) ]
      | Error msg ->
          Protocol.error_response ~id ~code:"compile_error" ~message:msg ())

(* ------------------------------------------------------------------ *)
(* Stats: the same antlrkit-telemetry/2 document shape the benches emit,
   so existing tooling (gate.exe, jq recipes) reads daemon stats
   unchanged.  The serve metrics list now carries [Duration] summaries
   (p50/p90/p99/max fields) for request/queue/parse latency. *)

let stats_doc h : Obs.Json.t =
  let wall_s = Unix.gettimeofday () -. h.started in
  Mutex.lock h.m_lock;
  let metrics_json = Obs.Metrics.to_json h.metrics in
  Mutex.unlock h.m_lock;
  Obs.Telemetry.document ~tool:"antlrkit-serve" ~wall_s
    ~user_s:(Obs.Telemetry.user_time ())
    [
      ("serve", metrics_json);
      ( "registry",
        Obs.Json.list (List.map entry_json (Registry.list h.registry)) );
      ( "pool",
        Obs.Json.obj
          [
            ("backend", Obs.Json.str Exec.Pool.backend);
            ("jobs", Obs.Json.int (Exec.Pool.jobs h.pool));
            ("pending", Obs.Json.int (Exec.Pool.pending h.pool));
          ] );
      ( "slow_log",
        match h.slow_log with
        | None -> Obs.Json.Null
        | Some sl ->
            Obs.Json.obj
              [
                ("threshold_us", Obs.Json.int (Slow_log.threshold_us sl));
                ("written", Obs.Json.int (Slow_log.written sl));
                ("dropped", Obs.Json.int (Slow_log.dropped sl));
              ] );
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus exposition: the whole registry rendered as text-format
   v0.0.4 plus a few point-in-time gauges that live outside it.  Served
   by both the [metrics] protocol op and the [Metrics_http] listener. *)

let prometheus h : string =
  let uptime = Unix.gettimeofday () -. h.started in
  let extra =
    [
      ("antlrkit_up", "daemon liveness (always 1 while answering)", 1.0);
      ("antlrkit_uptime_seconds", "seconds since daemon start", uptime);
      ( "antlrkit_pool_pending_jobs",
        "parse jobs queued but not yet started",
        float_of_int (Exec.Pool.pending h.pool) );
      ( "antlrkit_grammars_loaded",
        "grammars resident in the registry",
        float_of_int (List.length (Registry.list h.registry)) );
    ]
    @
    match h.slow_log with
    | None -> []
    | Some sl ->
        [
          ( "antlrkit_slow_log_records",
            "slow-request records written",
            float_of_int (Slow_log.written sl) );
          ( "antlrkit_slow_log_dropped",
            "slow-request records dropped at the cap",
            float_of_int (Slow_log.dropped sl) );
        ]
  in
  Mutex.lock h.m_lock;
  let body = Obs.Prometheus.render ~extra h.metrics in
  Mutex.unlock h.m_lock;
  body

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let bump_op h (op : string) : unit =
  Mutex.lock h.m_lock;
  Obs.Metrics.incr
    (Obs.Metrics.counter h.metrics ~labels:[ ("op", op) ] "serve.ops");
  Mutex.unlock h.m_lock

(* Orchestration probes.  [health] is pure liveness: answering at all is
   the signal.  [ready] additionally reports what the daemon can serve
   (grammar count, pool backlog) -- a scheduler that wants "loaded and
   not drowning" reads those fields. *)
let health_doc h : (string * Obs.Json.t) list =
  [
    ("healthy", Obs.Json.bool true);
    ( "uptime_s",
      Obs.Json.float (Unix.gettimeofday () -. h.started) );
  ]

let ready_doc h : (string * Obs.Json.t) list =
  [
    ("ready", Obs.Json.bool true);
    ("grammars", Obs.Json.int (List.length (Registry.list h.registry)));
    ("pool_jobs", Obs.Json.int (Exec.Pool.jobs h.pool));
    ("pool_pending", Obs.Json.int (Exec.Pool.pending h.pool));
  ]

let dispatch h (req : Protocol.request) :
    Obs.Json.t * [ `Continue | `Shutdown ] =
  let id = req.Protocol.id in
  match req.Protocol.op with
  | "ping" ->
      (Protocol.ok_response ~id ~op:"ping" [ ("pong", Obs.Json.bool true) ],
       `Continue)
  | "parse" -> (do_parse h req, `Continue)
  | "parse_stream" -> (do_parse_stream h req, `Continue)
  | "load" -> (do_load h req, `Continue)
  | "evict" ->
      ( (match req.Protocol.grammar with
        | None ->
            Protocol.error_response ~id ~code:"bad_request"
              ~message:"evict requires \"grammar\"" ()
        | Some name ->
            Protocol.ok_response ~id ~op:"evict"
              [
                ("grammar", Obs.Json.str name);
                ("evicted", Obs.Json.bool (Registry.evict h.registry name));
              ]),
        `Continue )
  | "list" ->
      ( Protocol.ok_response ~id ~op:"list"
          [
            ( "grammars",
              Obs.Json.list
                (List.map entry_json (Registry.list h.registry)) );
          ],
        `Continue )
  | "stats" ->
      (Protocol.ok_response ~id ~op:"stats" [ ("stats", stats_doc h) ],
       `Continue)
  | "metrics" ->
      ( Protocol.ok_response ~id ~op:"metrics"
          [
            ( "content_type",
              Obs.Json.str "text/plain; version=0.0.4; charset=utf-8" );
            ("body", Obs.Json.str (prometheus h));
          ],
        `Continue )
  | "health" ->
      (Protocol.ok_response ~id ~op:"health" (health_doc h), `Continue)
  | "ready" -> (Protocol.ok_response ~id ~op:"ready" (ready_doc h), `Continue)
  | "shutdown" ->
      ( Protocol.ok_response ~id ~op:"shutdown"
          [ ("stopping", Obs.Json.bool true) ],
        `Shutdown )
  | op ->
      ( Protocol.error_response ~id ~code:"unknown_op"
          ~message:
            (Printf.sprintf
               "unknown op %S \
                (ping|parse|parse_stream|load|evict|list|stats|metrics|health|ready|shutdown)"
               op)
          (),
        `Continue )

(* Ops that may appear as an [op] label value.  Unknown ops are answered
   but never labeled: label values are interned forever (a counter plus a
   multi-KB duration histogram per distinct value), so client-controlled
   garbage must not mint metric series. *)
let known_ops =
  [
    "ping"; "parse"; "parse_stream"; "load"; "evict"; "list"; "stats";
    "metrics"; "health"; "ready"; "shutdown";
  ]

(* Every known op is counted and timed; parse additionally records its
   richer per-grammar/per-backend point inside [do_parse], so only
   non-parse ops land in the op-labeled latency summary here (otherwise
   parse requests would be double-observed). *)
let handle_request h (req : Protocol.request) :
    Obs.Json.t * [ `Continue | `Shutdown ] =
  let known = List.mem req.Protocol.op known_ops in
  if known then bump_op h req.Protocol.op;
  let t0 = mono_us () in
  let resp, action = dispatch h req in
  (if
     known && req.Protocol.op <> "parse" && req.Protocol.op <> "parse_stream"
   then begin
     let wall_us = max 0 (mono_us () - t0) in
     Mutex.lock h.m_lock;
     Obs.Duration.observe
       (Obs.Metrics.duration h.metrics
          ~labels:[ ("op", req.Protocol.op) ]
          "serve.request_us")
       wall_us;
     Mutex.unlock h.m_lock
   end);
  (resp, action)

(* Request line in, response line out (no trailing newline).  Malformed
   input never raises: the connection gets a structured error and stays
   usable. *)
let handle h (line : string) : string * [ `Continue | `Shutdown ] =
  if String.length line > h.limits.max_request_bytes then
    ( Obs.Json.to_string
        (Protocol.error_response ~id:Obs.Json.Null ~code:"too_large"
           ~message:
             (Printf.sprintf "request line exceeds %d bytes"
                h.limits.max_request_bytes)
           ()),
      `Continue )
  else
    match Protocol.parse_request line with
    | Error msg ->
        ( Obs.Json.to_string
            (Protocol.error_response ~id:Obs.Json.Null ~code:"bad_request"
               ~message:msg ()),
          `Continue )
    | Ok req ->
        let resp, action = handle_request h req in
        (Obs.Json.to_string resp, action)
