(* Request handler for the serve daemon: a pure [request line -> response
   line] function over a registry, a pool and shared metrics.  The server
   wraps it in socket plumbing; the tests call it directly.

   State-reset contract (see DESIGN.md, Serve layer): every parse request
   gets freshly created runtime state -- a new [Token_stream], a new
   interpreter (or generated-parser state, and with it an empty
   speculation memo table), and a new [Profile].  Nothing mutable
   outlives a request except the shared [Metrics] registry, which is
   only touched under [m_lock].  The registry's entries (grammar, ATN,
   DFAs, vocabulary) are read-only while the daemon is hot, matching the
   Exec.Pool sharing discipline. *)

type limits = {
  max_request_bytes : int; (* request line length, and text payload size *)
  max_tokens : int; (* lexed-token budget per parse request *)
  time_budget_s : float;
      (* post-hoc wall-clock guard, fuzz-oracle style: the parse is not
         interrupted, but a request that overran reports [time_budget]
         instead of its result, so a client-facing SLA violation is
         visible as a structured error rather than silent latency *)
}

let default_limits =
  { max_request_bytes = 8 * 1024 * 1024; max_tokens = 500_000;
    time_budget_s = 30.0 }

type t = {
  registry : Registry.t;
  pool : Exec.Pool.t;
  limits : limits;
  tracer : Obs.Trace.t;
  metrics : Obs.Metrics.t; (* shared across requests; guard with m_lock *)
  m_lock : Mutex.t;
  started : float;
}

let create ?(limits = default_limits) ?(tracer = Obs.Trace.null)
    ~(registry : Registry.t) ~(pool : Exec.Pool.t) () : t =
  {
    registry;
    pool;
    limits;
    tracer;
    metrics = Obs.Metrics.create ();
    m_lock = Mutex.create ();
    started = Unix.gettimeofday ();
  }

let metrics t = t.metrics

(* ------------------------------------------------------------------ *)
(* Parse *)

type parse_result = {
  ok : bool;
  errors : Runtime.Parse_error.t list;
  consumed : int;
}

type parse_work =
  [ `Lex_error of Runtime.Lexer_engine.error
  | `Token_budget of int
  | `No_generated
  | `Done of parse_result * Runtime.Profile.t * int (* lexed tokens *) ]

(* The closure submitted to the pool: lexing and parsing both count
   against the request's budget and both run off the connection thread. *)
let parse_work h (entry : Registry.entry) ~(backend : Protocol.backend)
    ~(start : string option) ~(recover : bool) (text : string) () :
    parse_work =
  let sym = Llstar.Compiled.sym entry.c in
  match Runtime.Lexer_engine.tokenize entry.lexer_config sym text with
  | Error le -> `Lex_error le
  | Ok toks ->
      let n = Array.length toks in
      if n > h.limits.max_tokens then `Token_budget n
      else
        let profile = Runtime.Profile.create () in
        let result =
          match backend with
          | Protocol.Interp ->
              if recover then
                (* Recovery collects every error; the tree is discarded,
                   only acceptance and the error list travel back. *)
                let tr =
                  Runtime.Interp.create ~env:entry.env ~profile ~recover:true
                    entry.c toks
                in
                let res = Runtime.Interp.run tr ?start () in
                let consumed =
                  match res with
                  | Ok _ -> n
                  | Error _ -> n (* recovery consumes to EOF by design *)
                in
                (match res with
                | Ok _ -> Some { ok = true; errors = []; consumed }
                | Error es -> Some { ok = false; errors = es; consumed })
              else
                let o =
                  Runtime.Generated.interp_outcome ~env:entry.env ~profile
                    ?start entry.c toks
                in
                Some
                  {
                    ok = o.Runtime.Generated.ok;
                    errors = Option.to_list o.Runtime.Generated.error;
                    consumed = o.Runtime.Generated.consumed;
                  }
          | Protocol.Generated -> (
              match entry.generated with
              | None -> None
              | Some (module P) ->
                  let o = P.outcome ~env:entry.env ~profile toks in
                  Some
                    {
                      ok = o.Runtime.Generated.ok;
                      errors = Option.to_list o.Runtime.Generated.error;
                      consumed = o.Runtime.Generated.consumed;
                    })
        in
        (match result with
        | None -> `No_generated
        | Some r -> `Done (r, profile, n))

(* Record a finished parse request into the shared registry and tracer.
   [tokens = 0] for requests that died before lexing finished. *)
let record h ~(grammar : string) ~(backend : Protocol.backend) ~(ok : bool)
    ~(tokens : int) ~(wall_us : int)
    ~(profile : Runtime.Profile.t option) : unit =
  Mutex.lock h.m_lock;
  Obs.Metrics.incr
    (Obs.Metrics.counter h.metrics
       ~labels:
         [
           ("op", "parse");
           ("grammar", grammar);
           ("backend", Protocol.backend_name backend);
           ("ok", string_of_bool ok);
         ]
       "serve.requests");
  Obs.Metrics.observe
    (Obs.Metrics.histogram h.metrics
       ~labels:[ ("grammar", grammar) ]
       "serve.wall_us")
    wall_us;
  Obs.Metrics.observe
    (Obs.Metrics.histogram h.metrics
       ~labels:[ ("grammar", grammar) ]
       "serve.tokens")
    tokens;
  (match profile with
  | Some p -> Obs.Metrics.merge ~into:h.metrics (Runtime.Profile.registry p)
  | None -> ());
  Mutex.unlock h.m_lock;
  if Obs.Trace.on h.tracer then
    Obs.Trace.emit h.tracer
      (Obs.Trace.Serve_request
         {
           op = "parse";
           grammar;
           backend = Protocol.backend_name backend;
           ok;
           tokens;
           wall_us;
         })

let do_parse h (req : Protocol.request) : Obs.Json.t =
  let id = req.Protocol.id in
  let fail ?(extra = []) code message =
    Protocol.error_response ~id ~code ~message ~extra ()
  in
  match (req.Protocol.grammar, req.Protocol.text) with
  | None, _ -> fail "bad_request" "parse requires \"grammar\""
  | _, None -> fail "bad_request" "parse requires \"text\""
  | Some gname, Some text -> (
      match Registry.find h.registry gname with
      | None ->
          fail "unknown_grammar"
            (Printf.sprintf
               "grammar %S is not loaded (op=list shows what is; op=load \
                adds one)"
               gname)
      | Some entry ->
          if String.length text > h.limits.max_request_bytes then
            fail "too_large"
              (Printf.sprintf "text is %d bytes; limit is %d"
                 (String.length text) h.limits.max_request_bytes)
          else if
            req.Protocol.backend = Protocol.Generated && req.Protocol.recover
          then
            fail "bad_request"
              "error recovery is only supported on the interp backend"
          else begin
            let t0 = Unix.gettimeofday () in
            let work =
              parse_work h entry ~backend:req.Protocol.backend
                ~start:req.Protocol.start ~recover:req.Protocol.recover text
            in
            match Exec.Pool.await (Exec.Pool.submit h.pool work) with
            | `Lex_error le ->
                let wall_us =
                  int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
                in
                record h ~grammar:gname ~backend:req.Protocol.backend
                  ~ok:false ~tokens:0 ~wall_us ~profile:None;
                fail "lex_error"
                  (Fmt.str "%a" Runtime.Lexer_engine.pp_error le)
                  ~extra:
                    [
                      ( "position",
                        Obs.Json.obj
                          [
                            ("line", Obs.Json.int le.Runtime.Lexer_engine.line);
                            ("col", Obs.Json.int le.Runtime.Lexer_engine.col);
                          ] );
                    ]
            | `Token_budget n ->
                let wall_us =
                  int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
                in
                record h ~grammar:gname ~backend:req.Protocol.backend
                  ~ok:false ~tokens:n ~wall_us ~profile:None;
                fail "token_budget"
                  (Printf.sprintf "input lexed to %d tokens; limit is %d" n
                     h.limits.max_tokens)
            | `No_generated ->
                fail "no_generated_parser"
                  (Printf.sprintf "grammar %S has no generated parser; use \
                                   backend=interp" gname)
            | `Done (r, profile, tokens) ->
                let wall = Unix.gettimeofday () -. t0 in
                let wall_us = int_of_float (wall *. 1e6) in
                let over_budget = wall > h.limits.time_budget_s in
                record h ~grammar:gname ~backend:req.Protocol.backend
                  ~ok:(r.ok && not over_budget) ~tokens ~wall_us
                  ~profile:(Some profile);
                let base =
                  [
                    ("grammar", Obs.Json.str gname);
                    ( "backend",
                      Obs.Json.str (Protocol.backend_name req.Protocol.backend)
                    );
                    ("tokens", Obs.Json.int tokens);
                    ("wall_us", Obs.Json.int wall_us);
                  ]
                in
                if over_budget then
                  (* Post-hoc guard: the result is withheld, the overrun
                     is the answer (fuzz-oracle time_cap discipline). *)
                  fail "time_budget"
                    (Printf.sprintf
                       "request took %.3fs; budget is %.3fs" wall
                       h.limits.time_budget_s)
                    ~extra:base
                else if r.ok then
                  Protocol.ok_response ~id ~op:"parse"
                    (base @ [ ("consumed", Obs.Json.int r.consumed) ])
                else
                  let sym = Llstar.Compiled.sym entry.Registry.c in
                  let message =
                    match r.errors with
                    | e :: _ -> Runtime.Parse_error.to_string sym e
                    | [] -> "parse failed"
                  in
                  fail "parse_error" message
                    ~extra:
                      (base
                      @ [
                          ("consumed", Obs.Json.int r.consumed);
                          ( "errors",
                            Obs.Json.list
                              (List.map
                                 (Runtime.Parse_error.to_json sym)
                                 r.errors) );
                        ])
          end)

(* ------------------------------------------------------------------ *)
(* Registry ops *)

let entry_json (e : Registry.entry) : Obs.Json.t =
  Obs.Json.obj
    [
      ("name", Obs.Json.str e.Registry.name);
      ("digest", Obs.Json.str e.Registry.digest);
      ("generated", Obs.Json.bool (Option.is_some e.Registry.generated));
      ( "cache",
        match e.Registry.cache with
        | Some Llstar.Compiled_cache.Hit -> Obs.Json.str "hit"
        | Some Llstar.Compiled_cache.Miss -> Obs.Json.str "miss"
        | None -> Obs.Json.Null );
    ]

let do_load h (req : Protocol.request) : Obs.Json.t =
  let id = req.Protocol.id in
  match req.Protocol.grammar with
  | None ->
      Protocol.error_response ~id ~code:"bad_request"
        ~message:"load requires \"grammar\"" ()
  | Some name -> (
      let loaded =
        match req.Protocol.text with
        | Some src when String.length src > h.limits.max_request_bytes ->
            Error
              (Printf.sprintf "grammar text is %d bytes; limit is %d"
                 (String.length src) h.limits.max_request_bytes)
        | Some src ->
            Registry.load_source h.registry ~tracer:h.tracer ~pool:h.pool
              ~name src
        | None ->
            Registry.load_builtin h.registry ~tracer:h.tracer ~pool:h.pool
              name
      in
      match loaded with
      | Ok e ->
          Protocol.ok_response ~id ~op:"load" [ ("grammar", entry_json e) ]
      | Error msg ->
          Protocol.error_response ~id ~code:"compile_error" ~message:msg ())

(* ------------------------------------------------------------------ *)
(* Stats: the same antlrkit-telemetry/1 document shape the benches emit,
   so existing tooling (gate.exe, jq recipes) reads daemon stats
   unchanged. *)

let stats_doc h : Obs.Json.t =
  let wall_s = Unix.gettimeofday () -. h.started in
  Mutex.lock h.m_lock;
  let metrics_json = Obs.Metrics.to_json h.metrics in
  Mutex.unlock h.m_lock;
  Obs.Telemetry.document ~tool:"antlrkit-serve" ~wall_s
    ~user_s:(Obs.Telemetry.user_time ())
    [
      ("serve", metrics_json);
      ( "registry",
        Obs.Json.list (List.map entry_json (Registry.list h.registry)) );
      ( "pool",
        Obs.Json.obj
          [
            ("backend", Obs.Json.str Exec.Pool.backend);
            ("jobs", Obs.Json.int (Exec.Pool.jobs h.pool));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let bump_op h (op : string) : unit =
  Mutex.lock h.m_lock;
  Obs.Metrics.incr
    (Obs.Metrics.counter h.metrics ~labels:[ ("op", op) ] "serve.ops");
  Mutex.unlock h.m_lock

let handle_request h (req : Protocol.request) :
    Obs.Json.t * [ `Continue | `Shutdown ] =
  let id = req.Protocol.id in
  bump_op h req.Protocol.op;
  match req.Protocol.op with
  | "ping" ->
      (Protocol.ok_response ~id ~op:"ping" [ ("pong", Obs.Json.bool true) ],
       `Continue)
  | "parse" -> (do_parse h req, `Continue)
  | "load" -> (do_load h req, `Continue)
  | "evict" ->
      ( (match req.Protocol.grammar with
        | None ->
            Protocol.error_response ~id ~code:"bad_request"
              ~message:"evict requires \"grammar\"" ()
        | Some name ->
            Protocol.ok_response ~id ~op:"evict"
              [
                ("grammar", Obs.Json.str name);
                ("evicted", Obs.Json.bool (Registry.evict h.registry name));
              ]),
        `Continue )
  | "list" ->
      ( Protocol.ok_response ~id ~op:"list"
          [
            ( "grammars",
              Obs.Json.list
                (List.map entry_json (Registry.list h.registry)) );
          ],
        `Continue )
  | "stats" ->
      (Protocol.ok_response ~id ~op:"stats" [ ("stats", stats_doc h) ],
       `Continue)
  | "shutdown" ->
      ( Protocol.ok_response ~id ~op:"shutdown"
          [ ("stopping", Obs.Json.bool true) ],
        `Shutdown )
  | op ->
      ( Protocol.error_response ~id ~code:"unknown_op"
          ~message:
            (Printf.sprintf
               "unknown op %S (ping|parse|load|evict|list|stats|shutdown)" op)
          (),
        `Continue )

(* Request line in, response line out (no trailing newline).  Malformed
   input never raises: the connection gets a structured error and stays
   usable. *)
let handle h (line : string) : string * [ `Continue | `Shutdown ] =
  if String.length line > h.limits.max_request_bytes then
    ( Obs.Json.to_string
        (Protocol.error_response ~id:Obs.Json.Null ~code:"too_large"
           ~message:
             (Printf.sprintf "request line exceeds %d bytes"
                h.limits.max_request_bytes)
           ()),
      `Continue )
  else
    match Protocol.parse_request line with
    | Error msg ->
        ( Obs.Json.to_string
            (Protocol.error_response ~id:Obs.Json.Null ~code:"bad_request"
               ~message:msg ()),
          `Continue )
    | Ok req ->
        let resp, action = handle_request h req in
        (Obs.Json.to_string resp, action)
