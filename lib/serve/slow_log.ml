(* Tail-sampled slow-request log: the daemon's flight recorder.

   Head sampling (trace every Nth request) is useless for latency
   debugging -- the requests worth seeing are precisely the rare slow or
   failing ones.  So the handler captures every parse request's trace
   events into a small per-request ring, then consults this module once
   the outcome is known: the capture is *retained* (serialized as one
   JSON line) only when the request overran [threshold_us] or failed;
   otherwise it is dropped on the floor.  Capture cost is bounded by the
   ring size; retention cost is bounded by [max_records], after which
   further slow requests only bump [dropped] -- a full disk can never be
   the daemon's failure mode.

   One record per line:

     {"req_id":..., "op":..., "grammar":..., "backend":..., "ok":...,
      "wall_us":..., "queue_us":..., "parse_us":...,
      "events_dropped":N, "events":[{"ts_us":..., "ev":..., ...}, ...]}

   [req_id] is the correlation id threaded from [Protocol]; [ts_us] is
   microseconds on [Obs.Trace.monotonic_now]'s process-start origin, so
   event timestamps in one record are non-decreasing and comparable
   across records.  [events_dropped] counts events that overflowed the
   capture ring (oldest are evicted first). *)

type t = {
  oc : out_channel;
  lock : Mutex.t;
  threshold_us : int;
  max_records : int;
  max_events : int; (* per-request capture ring size *)
  mutable written : int;
  mutable dropped : int; (* records suppressed once [max_records] is hit *)
  mutable closed : bool;
}

let create ?(max_records = 10_000) ?(max_events = 256) ~(threshold_us : int)
    (path : string) : t =
  {
    oc = open_out path;
    lock = Mutex.create ();
    threshold_us;
    max_records;
    max_events;
    written = 0;
    dropped = 0;
    closed = false;
  }

let threshold_us t = t.threshold_us
let max_events t = t.max_events

let written t =
  Mutex.lock t.lock;
  let n = t.written in
  Mutex.unlock t.lock;
  n

let dropped t =
  Mutex.lock t.lock;
  let n = t.dropped in
  Mutex.unlock t.lock;
  n

(* The retention decision: slower than the threshold, or failed. *)
let should_retain t ~(wall_us : int) ~(ok : bool) : bool =
  (not ok) || wall_us >= t.threshold_us

let event_json (e : Obs.Trace.Ring.entry) : Obs.Json.t =
  Obs.Json.obj
    (("ts_us", Obs.Json.int (int_of_float (e.Obs.Trace.Ring.ts *. 1e6)))
    :: ("ev", Obs.Json.str (Obs.Trace.label e.Obs.Trace.Ring.ev))
    :: Obs.Trace.args e.Obs.Trace.Ring.ev)

let record t ~(req_id : string) ~(op : string) ~(grammar : string)
    ~(backend : string) ~(ok : bool) ~(wall_us : int) ~(queue_us : int)
    ~(parse_us : int) (buf : Obs.Trace.Ring.buf) : unit =
  let entries = Obs.Trace.Ring.to_list buf in
  let events_dropped =
    Obs.Trace.Ring.total buf - List.length entries
  in
  let doc =
    Obs.Json.obj
      [
        ("req_id", Obs.Json.str req_id);
        ("op", Obs.Json.str op);
        ("grammar", Obs.Json.str grammar);
        ("backend", Obs.Json.str backend);
        ("ok", Obs.Json.bool ok);
        ("wall_us", Obs.Json.int wall_us);
        ("queue_us", Obs.Json.int queue_us);
        ("parse_us", Obs.Json.int parse_us);
        ("events_dropped", Obs.Json.int events_dropped);
        ("events", Obs.Json.list (List.map event_json entries));
      ]
  in
  let line = Obs.Json.to_string doc in
  Mutex.lock t.lock;
  (if t.closed then ()
   else if t.written >= t.max_records then t.dropped <- t.dropped + 1
   else begin
     output_string t.oc line;
     output_char t.oc '\n';
     flush t.oc;
     t.written <- t.written + 1
   end);
  Mutex.unlock t.lock

let close t : unit =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    close_out_noerr t.oc
  end;
  Mutex.unlock t.lock
