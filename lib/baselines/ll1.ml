(* Table-driven LL(1) baseline over the BNF skeleton.

   Classic FIRST/FOLLOW-driven table construction with conflict detection.
   Serves two purposes: a correctness oracle for LL(1) grammars (agreement
   with the LL-star interpreter is property-tested) and a speed baseline
   showing LL-star decisions that are LL(1) cost about the same as a plain
   LL(1) parser.

   The table is a dense [int array] indexed by
   [nonterm_id * num_terms + term_id] over the interned symbol spaces of
   [First_follow]; construction iterates bitsets instead of string sets,
   and the stack machine compares ids.  Conflict reports stay in terms of
   symbol names. *)

module FF = Grammar.First_follow

type conflict = { nonterm : string; term : string; prods : int list }

type t = {
  bnf : Grammar.Bnf.t;
  prods : Grammar.Bnf.prod array;
  ff : FF.t;
  table : int array; (* nonterm_id * num_terms + term_id -> prod, -1 empty *)
  prod_rhs : int list array; (* symbol codes, for the stack machine *)
  conflicts : conflict list;
}

let build (bnf : Grammar.Bnf.t) : t =
  let ff = FF.compute bnf in
  let prods = Array.of_list bnf.prods in
  let nterms = FF.num_terms ff in
  let table = Array.make (FF.num_nonterms ff * nterms) (-1) in
  let conflicts = ref [] in
  let add nt term prod =
    let key = (nt * nterms) + term in
    let other = table.(key) in
    if other < 0 then table.(key) <- prod
    else if other <> prod then
      conflicts :=
        {
          nonterm = FF.nonterm_name ff nt;
          term = FF.term_name ff term;
          prods = [ other; prod ];
        }
        :: !conflicts
  in
  let prod_rhs = Array.map (fun i -> Array.to_list (FF.prod_rhs_ids ff i))
                   (Array.init (FF.num_prods ff) (fun i -> i))
  in
  for i = 0 to FF.num_prods ff - 1 do
    let lhs = FF.prod_lhs_id ff i in
    let first, nullable = FF.first_seq_ids ff (FF.prod_rhs_ids ff i) ~pos:0 in
    Bitset.iter (fun a -> add lhs a i) first;
    if nullable then Bitset.iter (fun a -> add lhs a i) (FF.follow_ids ff lhs)
  done;
  { bnf; prods; ff; table; prod_rhs; conflicts = List.rev !conflicts }

let of_grammar (g : Grammar.Ast.t) : t = build (Grammar.Bnf.convert g)

let is_ll1 t = t.conflicts = []

(* Recognize a sentence of terminal names with the predictive stack machine.
   Input names are interned once up front; a name the grammar never
   mentions gets a sentinel id that matches nothing but the wildcard. *)
let recognize ?(start : string option) (t : t) (input : string array) : bool =
  let ff = t.ff in
  let nterms = FF.num_terms ff in
  let n = Array.length input in
  let ids =
    Array.map
      (fun name -> match FF.term_id ff name with Some i -> i | None -> -2)
      input
  in
  let la i = if i < n then ids.(i) else FF.eof in
  let wild = match FF.term_id ff "." with Some i -> i | None -> -3 in
  let start = match start with Some s -> s | None -> t.bnf.start in
  match FF.nonterm_id ff start with
  | None -> false
  | Some s ->
      let rec go stack i =
        match stack with
        | [] -> i = n
        | c :: rest when FF.is_term_code c ->
            if la i = c || (c = wild && i < n) then go rest (i + 1) else false
        | c :: rest -> (
            let x = FF.nonterm_of_code c in
            let l = la i in
            if l < 0 then false
            else
              match t.table.((x * nterms) + l) with
              | -1 -> false
              | pi -> go (t.prod_rhs.(pi) @ rest) i)
      in
      go [ FF.code_of_nonterm s ] 0

let recognize_tokens ?start (t : t) (sym : Grammar.Sym.t)
    (toks : Runtime.Token.t array) : bool =
  let names =
    Array.map (fun (tok : Runtime.Token.t) -> Grammar.Sym.term_name sym tok.Runtime.Token.ttype) toks
  in
  recognize ?start t names

let pp_conflict ppf c =
  Fmt.pf ppf "LL(1) conflict at (%s, %s): productions %a" c.nonterm c.term
    Fmt.(list ~sep:(any ", ") int)
    c.prods
