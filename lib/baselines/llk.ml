(* Fixed-k LL(k) lookahead analysis: the strategy LL-star supersedes.

   For a rule with multiple productions, computes FIRST_k sequence sets per
   production and reports the smallest k at which they become pairwise
   distinguishable.  The representation is the naive set of k-tuples, whose
   O(|T|^k) growth is precisely the exponential blow-up that made fixed
   super-linear lookahead impractical (paper sections 2 and 7: LPG core
   dumps at large k on the [a : b A+ X | c A+ Y] grammar, while LL-star
   builds a small cyclic DFA).  The [Blowup] escape hatch reproduces that
   failure mode deterministically.

   Sequences are terminal-id tuples ([First_follow.first_k_ids]); the
   per-(k, budget) fixpoint table is shared across the productions of the
   rule instead of being recomputed per production. *)

module SeqSet = Grammar.First_follow.SeqSet
module IdSeqSet = Grammar.First_follow.IdSeqSet

type verdict =
  | Distinguishable of int (* minimal k; the decision is LL(k) *)
  | Not_within of int (* still ambiguous at the given k cap *)
  | Blowup of { k : int; size : int } (* tuple sets exceeded the budget *)

type step = { k : int; set_sizes : int list (* per production *) }

type report = { rule : string; verdict : verdict; steps : step list }

(* Two truncated-sequence sets conflict if some member of one is a prefix of
   (or equal to) a member of the other: with only k tokens of lookahead the
   parser cannot tell them apart. *)
let sets_conflict s1 s2 =
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: xs, y :: ys -> x = y && is_prefix xs ys
    | _ :: _, [] -> false
  in
  IdSeqSet.exists
    (fun x -> IdSeqSet.exists (fun y -> is_prefix x y || is_prefix y x) s2)
    s1

let analyze_rule ?(k_max = 8) ?(max_set_size = 100_000) (g : Grammar.Ast.t)
    (rule_name : string) : report =
  let bnf = Grammar.Bnf.convert g in
  let ff = Grammar.First_follow.compute bnf in
  let code_of = function
    | Grammar.Bnf.T a -> (
        match Grammar.First_follow.term_id ff a with
        | Some id -> Grammar.First_follow.code_of_term id
        | None -> assert false (* BNF terminals are always interned *))
    | Grammar.Bnf.N n -> (
        match Grammar.First_follow.nonterm_id ff n with
        | Some id -> Grammar.First_follow.code_of_nonterm id
        | None -> assert false)
  in
  let prods =
    List.map
      (fun (p : Grammar.Bnf.prod) -> Array.of_list (List.map code_of p.rhs))
      (Grammar.Bnf.prods_of bnf rule_name)
  in
  let steps = ref [] in
  let rec try_k k =
    if k > k_max then Not_within k_max
    else
      match
        List.map
          (fun rhs -> Grammar.First_follow.first_k_ids ~max_set_size ff k rhs)
          prods
      with
      | exception Grammar.First_follow.Blowup size -> Blowup { k; size }
      | sets ->
          steps :=
            { k; set_sizes = List.map IdSeqSet.cardinal sets } :: !steps;
          let arr = Array.of_list sets in
          let ok = ref true in
          for i = 0 to Array.length arr - 1 do
            for j = i + 1 to Array.length arr - 1 do
              if sets_conflict arr.(i) arr.(j) then ok := false
            done
          done;
          if !ok then Distinguishable k else try_k (k + 1)
  in
  let verdict = try_k 1 in
  { rule = rule_name; verdict; steps = List.rev !steps }

let pp_verdict ppf = function
  | Distinguishable k -> Fmt.pf ppf "LL(%d)" k
  | Not_within k -> Fmt.pf ppf "not LL(k) for k <= %d" k
  | Blowup { k; size } ->
      Fmt.pf ppf "tuple-set blow-up at k=%d (%d sequences)" k size

let pp_report ppf r =
  Fmt.pf ppf "rule %s: %a@." r.rule pp_verdict r.verdict;
  List.iter
    (fun s ->
      Fmt.pf ppf "  k=%d: tuple set sizes %a@." s.k
        Fmt.(list ~sep:(any ", ") int)
        s.set_sizes)
    r.steps
