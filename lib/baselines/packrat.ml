(* Packrat / PEG baseline: an ordered-choice backtracking interpreter over
   the surface grammar with full memoization (Ford's packrat parsing).

   This is the comparator the paper positions LL-star against: it speculates
   at *every* choice point, so its memoization table covers every (rule,
   position) pair it touches, whereas the LL-star parser memoizes only
   while evaluating syntactic predicates (section 6.2).  With [memoize:
   false] it exhibits the exponential worst case the paper mentions for
   ANTLR v2-style backtracking.

   PEG semantics implemented: ordered alternatives; greedy ?/*/+ with no
   backtracking into a loop once it exits (standard PEG desugaring);
   syntactic predicates as PEG and-predicates; semantic predicates consult
   the environment; actions are skipped (a packrat parser is always
   speculating, so only {{...}} always-actions run). *)

open Grammar.Ast

type stats = {
  mutable steps : int; (* element-match attempts: work measure *)
  mutable memo_hits : int;
  mutable memo_entries : int;
  mutable max_pos : int; (* deepest token reached (error reporting) *)
}

type t = {
  grammar : Grammar.Ast.t;
  rules : (string, rule) Hashtbl.t;
  memoize : bool;
  memo : (string * int, int option) Hashtbl.t; (* None = fail, Some p = end *)
  stats : stats;
  sem_pred : string -> bool;
  action : string -> unit;
  tracer : Obs.Trace.t;
}

let create ?(memoize = true) ?(sem_pred = fun _ -> true)
    ?(action = fun _ -> ()) ?(tracer = Obs.Trace.null)
    (grammar : Grammar.Ast.t) : t =
  let rules = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace rules r.name r) grammar.rules;
  {
    grammar;
    rules;
    memoize;
    memo = Hashtbl.create 4096;
    stats = { steps = 0; memo_hits = 0; memo_entries = 0; max_pos = 0 };
    sem_pred;
    action;
    tracer;
  }

let reset t =
  Hashtbl.reset t.memo;
  t.stats.steps <- 0;
  t.stats.memo_hits <- 0;
  t.stats.memo_entries <- 0;
  t.stats.max_pos <- 0

exception Give_up
(* raised when a step budget is exceeded (exponential blow-up demos) *)

(* Parse [toks] starting at rule [start]; the tokens must be lexed against
   [sym], the compiled grammar's vocabulary, so terminal ids line up.
   [Some p] means a prefix ending at position [p] matched. *)
let parse ?(budget = max_int) (t : t) (sym : Grammar.Sym.t)
    (toks : Runtime.Token.t array) ?(start : string option) () : int option =
  let n = Array.length toks in
  let ttype pos = if pos < n then toks.(pos).Runtime.Token.ttype else Grammar.Sym.eof in
  let touch pos = if pos > t.stats.max_pos then t.stats.max_pos <- pos in
  let term_cache : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let term_id name =
    match Hashtbl.find_opt term_cache name with
    | Some id -> id
    | None ->
        let id =
          match Grammar.Sym.find_term sym name with Some id -> id | None -> -1
        in
        Hashtbl.add term_cache name id;
        id
  in
  let step () =
    t.stats.steps <- t.stats.steps + 1;
    if t.stats.steps > budget then raise Give_up
  in
  let rec parse_rule name pos : int option =
    let key = (name, pos) in
    if t.memoize then
      match Hashtbl.find_opt t.memo key with
      | Some res ->
          t.stats.memo_hits <- t.stats.memo_hits + 1;
          if Obs.Trace.on t.tracer then
            Obs.Trace.emit t.tracer (Obs.Trace.Memo_hit { rule = name; pos });
          res
      | None ->
          if Obs.Trace.on t.tracer then
            Obs.Trace.emit t.tracer (Obs.Trace.Memo_miss { rule = name; pos });
          let res = parse_rule_raw name pos in
          Hashtbl.replace t.memo key res;
          t.stats.memo_entries <- t.stats.memo_entries + 1;
          res
    else parse_rule_raw name pos
  and parse_rule_raw name pos =
    match Hashtbl.find_opt t.rules name with
    | None -> None
    | Some r -> parse_alts r.rule_alts pos
  and parse_alts alts pos =
    (* ordered choice *)
    List.find_map (fun a -> parse_seq a.elems pos) alts
  and parse_seq elems pos =
    match elems with
    | [] -> Some pos
    | e :: rest -> (
        match parse_elem e pos with
        | Some pos' -> parse_seq rest pos'
        | None -> None)
  and parse_elem e pos : int option =
    step ();
    touch pos;
    match e with
    | Term name ->
        if ttype pos = term_id name then Some (pos + 1) else None
    | Wild -> if ttype pos <> Grammar.Sym.eof then Some (pos + 1) else None
    | Nonterm { name; _ } -> parse_rule name pos
    | Sem_pred code -> if t.sem_pred code then Some pos else None
    | Prec_pred _ -> Some pos (* packrat runs on surface grammars *)
    | Syn_pred alts ->
        (* and-predicate: match without consuming *)
        if parse_alts alts pos <> None then Some pos else None
    | Action { code; always } ->
        if always then t.action code;
        Some pos
    | Block { alts; suffix } -> (
        match suffix with
        | One -> parse_alts alts pos
        | Opt -> ( match parse_alts alts pos with Some p -> Some p | None -> Some pos)
        | Star ->
            let rec loop pos =
              match parse_alts alts pos with
              | Some p when p > pos -> loop p
              | Some _ | None -> Some pos
            in
            loop pos
        | Plus -> (
            match parse_alts alts pos with
            | None -> None
            | Some p ->
                let rec loop pos =
                  match parse_alts alts pos with
                  | Some p when p > pos -> loop p
                  | Some _ | None -> Some pos
                in
                loop p))
  in
  let start = match start with Some s -> s | None -> t.grammar.start in
  parse_rule start 0

(* Recognize the full input (must consume every token). *)
let recognize ?budget t sym toks ?start () : bool =
  reset t;
  match parse ?budget t sym toks ?start () with
  | Some p -> p = Array.length toks
  | None -> false

let stats t = t.stats
