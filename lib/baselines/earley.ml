(* Earley recognizer over the BNF skeleton: the general-CFG baseline standing
   in for GLR in the complexity comparison (DESIGN.md, Substitution 4).
   O(n^3) worst case, O(n^2) for unambiguous grammars, ~O(n) for
   near-deterministic ones -- the same profile the paper quotes for GLR.

   Standard chart parser with the Aycock-Horspool treatment of nullable
   nonterminals (the completer is re-run to a fixpoint per chart set, which
   is simpler than precomputing nullability and adequate for our sizes). *)

type item = {
  prod : int; (* index into prods *)
  dot : int;
  origin : int;
}

type t = {
  bnf : Grammar.Bnf.t;
  prods : Grammar.Bnf.prod array;
  by_lhs : (string, int list) Hashtbl.t;
  mutable items_processed : int; (* work measure for complexity benches *)
}

let create (bnf : Grammar.Bnf.t) : t =
  let prods = Array.of_list bnf.prods in
  let by_lhs = Hashtbl.create 16 in
  Array.iteri
    (fun i (p : Grammar.Bnf.prod) ->
      let cur =
        match Hashtbl.find_opt by_lhs p.lhs with Some l -> l | None -> []
      in
      Hashtbl.replace by_lhs p.lhs (i :: cur))
    prods;
  { bnf; prods; by_lhs; items_processed = 0 }

let of_grammar (g : Grammar.Ast.t) : t = create (Grammar.Bnf.convert g)

exception Give_up
(* raised when the item budget is exceeded (fuel guard for fuzzing) *)

(* Recognize a sentence given as terminal names.
   @raise Give_up when more than [budget] items are processed. *)
let recognize ?(budget = max_int) ?(start : string option) (t : t)
    (input : string array) : bool =
  t.items_processed <- 0;
  let n = Array.length input in
  let start = match start with Some s -> s | None -> t.bnf.start in
  let sets : (item, unit) Hashtbl.t array =
    Array.init (n + 1) (fun _ -> Hashtbl.create 64)
  in
  let queue : item Queue.t = Queue.create () in
  (* [insert] records an item without scheduling it; the scanner uses it
     for set i+1, whose items must only be processed once the loop
     reaches i+1 (enqueueing them here would run their predictor and
     completer against position i, re-consuming the token just
     scanned). [add] is for same-set items, which join the work queue. *)
  let insert i item =
    if Hashtbl.mem sets.(i) item then false
    else begin
      Hashtbl.add sets.(i) item ();
      true
    end
  in
  let add i item = if insert i item then Queue.add item queue in
  let snapshot (set : (item, unit) Hashtbl.t) : item list =
    Hashtbl.fold (fun it () acc -> it :: acc) set []
  in
  let prods_of lhs =
    match Hashtbl.find_opt t.by_lhs lhs with Some l -> l | None -> []
  in
  (* seed *)
  List.iter (fun p -> add 0 { prod = p; dot = 0; origin = 0 }) (prods_of start);
  for i = 0 to n do
    (* re-seed queue with this set's items (scanner additions land in i+1) *)
    Queue.clear queue;
    Hashtbl.iter (fun item () -> Queue.add item queue) sets.(i);
    while not (Queue.is_empty queue) do
      let item = Queue.pop queue in
      t.items_processed <- t.items_processed + 1;
      if t.items_processed > budget then raise Give_up;
      let p = t.prods.(item.prod) in
      let rhs = Array.of_list p.rhs in
      if item.dot >= Array.length rhs then
        (* completer: advance every item waiting on p.lhs at item.origin
           (snapshot first -- when origin = i, [add] mutates the table
           being walked) *)
        List.iter
          (fun (w : item) ->
            let wp = t.prods.(w.prod) in
            let wrhs = Array.of_list wp.rhs in
            if
              w.dot < Array.length wrhs
              &&
              match wrhs.(w.dot) with
              | Grammar.Bnf.N x -> x = p.lhs
              | Grammar.Bnf.T _ -> false
            then add i { w with dot = w.dot + 1 })
          (snapshot sets.(item.origin))
      else
        match rhs.(item.dot) with
        | Grammar.Bnf.N x ->
            List.iter (fun pi -> add i { prod = pi; dot = 0; origin = i }) (prods_of x);
            (* nullable shortcut: if some completed x item already sits in
               this set, advance immediately (Aycock-Horspool) *)
            List.iter
              (fun (c : item) ->
                let cp = t.prods.(c.prod) in
                if
                  cp.lhs = x
                  && c.origin = i
                  && c.dot >= List.length cp.rhs
                then add i { item with dot = item.dot + 1 })
              (snapshot sets.(i))
        | Grammar.Bnf.T a ->
            if i < n && (input.(i) = a || a = ".") then
              ignore (insert (i + 1) { item with dot = item.dot + 1 })
    done
  done;
  (* accept: a completed start production spanning the whole input *)
  let ok = ref false in
  Hashtbl.iter
    (fun (item : item) () ->
      let p = t.prods.(item.prod) in
      if p.lhs = start && item.origin = 0 && item.dot >= List.length p.rhs then
        ok := true)
    sets.(n);
  !ok

let items_processed t = t.items_processed

(* Convenience: recognize a token array lexed against [sym]. *)
let recognize_tokens ?budget ?start (t : t) (sym : Grammar.Sym.t)
    (toks : Runtime.Token.t array) : bool =
  let names =
    Array.map (fun (tok : Runtime.Token.t) -> Grammar.Sym.term_name sym tok.Runtime.Token.ttype) toks
  in
  recognize ?budget ?start t names
