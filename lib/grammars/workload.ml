(* Workload machinery for the benchmark grammars: compiles a grammar spec,
   generates synthetic programs from the grammar (the corpus substitute
   described in DESIGN.md), and assembles corpora of a requested size from
   the handwritten samples plus generated programs.

   Generated programs are validated: a program only enters a corpus if the
   LL-star parser accepts it (PEG-mode ordered choice can reject a random
   CFG derivation, e.g. a derivation that used a lower-priority alternative
   on input the first alternative also matches). *)

type spec = {
  name : string;
  grammar_text : string;
  lexer_config : Runtime.Lexer_engine.config;
  samples : string list; (* handwritten programs *)
  sample_lexeme : int -> string -> string;
    (* [sample_lexeme i token_name] renders the i-th occurrence of a token
       class (ID, INT, STRING, ...) during generation *)
  sem_preds : (string * (Runtime.Token.t -> bool)) list;
    (* semantic-predicate implementations, keyed by snippet text *)
  gen_start : string option; (* start rule for generation *)
}

(* Evaluation environment for a spec's semantic predicates. *)
let env_of_spec (spec : spec) : Runtime.Interp.env =
  Runtime.Interp.env_of_tables ~preds:spec.sem_preds ()

type compiled = {
  spec : spec;
  c : Llstar.Compiled.t;
  gen : Grammar.Sentence_gen.t; (* over the surface grammar *)
}

(* [strategy] selects eager or lazy lookahead-DFA construction (default
   eager); [pool] fans the per-decision analysis out. *)
let compile_result ?pool ?strategy (spec : spec) :
    (compiled, Llstar.Compiled.error) result =
  match Llstar.Compiled.of_source ?pool ?strategy spec.grammar_text with
  | Error e -> Error e
  | Ok c ->
      let surface = c.Llstar.Compiled.surface in
      Ok { spec; c; gen = Grammar.Sentence_gen.prepare surface }

(* Thin wrapper for tests and benches; production callers (the CLI) use
   [compile_result] and surface the error themselves. *)
let compile ?strategy (spec : spec) : compiled =
  match compile_result ?strategy spec with
  | Ok cw -> cw
  | Error e ->
      failwith (Fmt.str "%s: %a" spec.name Llstar.Compiled.pp_error e)

let lex (cw : compiled) (text : string) :
    (Runtime.Token.t array, Runtime.Lexer_engine.error) result =
  Runtime.Lexer_engine.tokenize cw.spec.lexer_config
    (Llstar.Compiled.sym cw.c) text

let lex_exn cw text =
  match lex cw text with
  | Ok toks -> toks
  | Error e ->
      failwith
        (Fmt.str "%s: lex error: %a" cw.spec.name Runtime.Lexer_engine.pp_error
           e)

(* Generate one program of roughly [size] tokens. *)
let generate_program (cw : compiled) ~(rng : Random.State.t) ~(size : int) :
    string option =
  let counter = ref 0 in
  match
    Grammar.Sentence_gen.generate ?start:cw.spec.gen_start cw.gen ~rng ~size
  with
  | exception Grammar.Sentence_gen.Unproductive -> None
  | terms ->
      Some
        (Grammar.Sentence_gen.render
           ~sample:(fun name ->
             incr counter;
             cw.spec.sample_lexeme !counter name)
           terms)

let parses (cw : compiled) (toks : Runtime.Token.t array) : bool =
  let env = env_of_spec cw.spec in
  match Runtime.Interp.recognize ~env cw.c toks with
  | Ok () -> true
  | Error _ -> false

(* Build a corpus of at least [target_tokens] tokens: handwritten samples
   first, then validated generated programs.  Returns the corpus text and
   basic statistics. *)
type corpus = {
  texts : string list; (* one entry per program; each parses from the start rule *)
  text : string; (* concatenation, for line counting and lexing benchmarks *)
  lines : int;
  tokens : int;
  programs : int;
  rejected : int; (* generated programs that failed validation *)
}

let build_corpus ?(seed = 42) ?(chunk = 400) (cw : compiled)
    ~(target_tokens : int) : corpus =
  let rng = Random.State.make [| seed |] in
  let texts = ref [] in
  let tokens = ref 0 and programs = ref 0 and rejected = ref 0 in
  let add_program text =
    match lex cw text with
    | Error _ -> incr rejected
    | Ok toks ->
        if parses cw toks then begin
          texts := text :: !texts;
          tokens := !tokens + Array.length toks;
          incr programs
        end
        else incr rejected
  in
  List.iter add_program cw.spec.samples;
  let attempts = ref 0 in
  while !tokens < target_tokens && !attempts < 10_000 do
    incr attempts;
    match generate_program cw ~rng ~size:chunk with
    | Some text -> add_program text
    | None -> incr rejected
  done;
  let texts = List.rev !texts in
  let text = String.concat "\n" texts in
  {
    texts;
    text;
    lines = Llstar.Report.count_lines text;
    tokens = !tokens;
    programs = !programs;
    rejected = !rejected;
  }
