(* Analysis report: per-decision classification plus the aggregates that the
   paper's Table 1 (Fixed / Cyclic / Backtrack counts, analysis time) and
   Table 2 (lookahead-depth histogram of fixed decisions) summarize.

   Decisions inside [__synpredN] pseudo-rules execute only during
   speculation; like ANTLR we exclude them from the per-grammar counts
   ([counted] = false) while still analyzing them. *)

type decision_report = {
  decision : int;
  rule : string;
  label : string;
  klass : Analysis.decision_class;
  dfa_states : int;
  fallback : bool;
  counted : bool;
  warnings : Analysis.warning list;
}

type t = {
  grammar_name : string;
  grammar_lines : int;
  n : int; (* counted parsing decisions *)
  fixed : int;
  cyclic : int;
  backtrack : int;
  fixed_by_k : (int * int) list; (* lookahead depth -> #decisions *)
  analysis_time : float; (* seconds, filled by Compiled *)
  decisions : decision_report array;
}

let count_lines text =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 1 text

let build ?(grammar_lines = 0) ?(analysis_time = 0.0) (atn : Atn.t)
    (results : Analysis.result array) : t =
  let decisions =
    Array.mapi
      (fun i (r : Analysis.result) ->
        let d = atn.decisions.(i) in
        let rule = atn.rules.(d.d_rule) in
        {
          decision = i;
          rule = rule.r_name;
          label = d.d_label;
          klass = r.klass;
          dfa_states = r.dfa.nstates;
          fallback = r.fallback;
          counted = not rule.r_is_synpred;
          warnings = r.warnings;
        })
      results
  in
  let n = ref 0 and fixed = ref 0 and cyclic = ref 0 and backtrack = ref 0 in
  let by_k = Hashtbl.create 8 in
  Array.iter
    (fun dr ->
      if dr.counted then begin
        incr n;
        match dr.klass with
        | Analysis.Fixed k ->
            incr fixed;
            Hashtbl.replace by_k k
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_k k))
        | Analysis.Cyclic -> incr cyclic
        | Analysis.Backtrack -> incr backtrack
      end)
    decisions;
  let fixed_by_k =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_k [] |> List.sort compare
  in
  {
    grammar_name = atn.grammar.gname;
    grammar_lines;
    n = !n;
    fixed = !fixed;
    cyclic = !cyclic;
    backtrack = !backtrack;
    fixed_by_k;
    analysis_time;
    decisions;
  }

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

(* Percentage of counted decisions that are LL(k) for some fixed k, and
   LL(1) specifically (Table 2's first two columns). *)
let pct_fixed t = pct t.fixed t.n

let pct_ll1 t =
  pct (Option.value ~default:0 (List.assoc_opt 1 t.fixed_by_k)) t.n

(* Machine-readable report snapshot, embedded in bench telemetry documents
   (DFA sizes per decision give the static half of the paper's Table 1). *)
let to_json (t : t) : Obs.Json.t =
  let klass_str = function
    | Analysis.Fixed k -> Printf.sprintf "LL(%d)" k
    | Analysis.Cyclic -> "cyclic"
    | Analysis.Backtrack -> "backtrack"
  in
  Obs.Json.obj
    [
      ("grammar", Obs.Json.str t.grammar_name);
      ("lines", Obs.Json.int t.grammar_lines);
      ("decisions", Obs.Json.int t.n);
      ("fixed", Obs.Json.int t.fixed);
      ("cyclic", Obs.Json.int t.cyclic);
      ("backtrack", Obs.Json.int t.backtrack);
      ( "fixed_by_k",
        Obs.Json.obj
          (List.map
             (fun (k, c) -> (string_of_int k, Obs.Json.int c))
             t.fixed_by_k) );
      ("analysis_s", Obs.Json.float t.analysis_time);
      ( "dfa_states",
        Obs.Json.int
          (Array.fold_left (fun acc d -> acc + d.dfa_states) 0 t.decisions) );
      ( "per_decision",
        Obs.Json.list
          (Array.to_list
             (Array.map
                (fun d ->
                  Obs.Json.obj
                    [
                      ("decision", Obs.Json.int d.decision);
                      ("rule", Obs.Json.str d.rule);
                      ("class", Obs.Json.str (klass_str d.klass));
                      ("dfa_states", Obs.Json.int d.dfa_states);
                      ("counted", Obs.Json.bool d.counted);
                    ])
                t.decisions)) );
    ]

let pp ppf (t : t) =
  Fmt.pf ppf "grammar %s: %d decisions: %d fixed, %d cyclic, %d backtrack@."
    t.grammar_name t.n t.fixed t.cyclic t.backtrack;
  Fmt.pf ppf "  fixed lookahead depths:";
  List.iter (fun (k, c) -> Fmt.pf ppf " k=%d:%d" k c) t.fixed_by_k;
  Fmt.pf ppf "@."

let pp_decisions ?(only_interesting = false) (atn : Atn.t) ppf t =
  Array.iter
    (fun dr ->
      let interesting =
        dr.klass <> Analysis.Fixed 1 || dr.warnings <> [] || dr.fallback
      in
      if dr.counted && ((not only_interesting) || interesting) then begin
        let klass_str =
          match dr.klass with
          | Analysis.Fixed k -> Printf.sprintf "LL(%d)" k
          | Analysis.Cyclic -> "cyclic"
          | Analysis.Backtrack -> "backtrack"
        in
        Fmt.pf ppf "  d%d %-30s %-10s %d DFA states%s@." dr.decision dr.label
          klass_str dr.dfa_states
          (if dr.fallback then " (fallback)" else "");
        List.iter
          (fun w ->
            Fmt.pf ppf "    warning: %a@."
              (Analysis.pp_warning atn.sym atn)
              w)
          dr.warnings
      end)
    t.decisions
