(* LL-star grammar analysis: the modified subset construction that builds a
   lookahead DFA for every parsing decision (paper section 5, Algorithms
   8-11).

   For each decision the algorithm simulates the ATN from the alternatives'
   left-edge states.  DFA states are sets of ATN configurations; [move]
   advances over a terminal, [closure] chases every non-terminal edge,
   simulating rule invocation push/pop with the configuration stack.  A
   newly discovered state that uniquely predicts an alternative becomes an
   accept state and is not expanded further -- this is what makes the DFA
   match minimal lookahead sets LA_i rather than whole regular partitions
   (Definition 5).

   Termination (section 5.3): the LL-regular condition is undecidable, so
   closure bounds recursion with the constant [m]; hitting the bound marks
   the DFA state as overflowed, and the state is then resolved like an
   ambiguous one.  Recursion appearing in more than one alternative aborts
   construction ([Non_ll_regular], section 5.4) and the decision falls back
   to a depth-1 (LL(1)) DFA, resolved with predicates/backtracking when
   available.  A configurable state budget guards against the exponential
   "land mines" the paper mentions; exceeding it also falls back.

   Alternative sets and terminal sets are [Bitset.t] over the decision's
   alternative count and the interned token-type universe respectively:
   the subset construction manipulates these sets on every closure and
   every discovered state, and the flat representation keeps that
   bookkeeping allocation-light.  Closures of already-seen seed
   configurations are memoized per builder (see [closure]). *)

type warning =
  | Ambiguity of { decision : int; alts : int list; path : int list }
    (* conflicting alternatives resolved in favour of the lowest-numbered
       one; [path] is a sample terminal sequence reaching the conflict *)
  | Overflow of { decision : int; path : int list }
    (* recursion bound hit; potential ambiguity resolved by order *)
  | Non_ll_regular of { decision : int }
    (* recursion in more than one alternative: gave up on the full DFA *)
  | Dfa_too_big of { decision : int; limit : int }
  | Dead_alternative of { decision : int; alt : int }

type decision_class =
  | Fixed of int (* pure LL(k) decision: acyclic DFA, max lookahead k *)
  | Cyclic (* cyclic DFA: arbitrary (regular) lookahead *)
  | Backtrack (* at least one syntactic-predicate edge: may speculate *)

type result = {
  dfa : Look_dfa.t;
  klass : decision_class;
  warnings : warning list;
  fallback : bool;
}

type fallback_strategy =
  | Bounded
    (* retry the full construction with the recursion bound as the only
       governor; strictly stronger than LL(1), still terminating *)
  | Ll1 (* the paper's section-5.4 fallback: a depth-1 DFA *)

type options = {
  m : int; (* closure recursion bound *)
  max_states : int; (* DFA state budget per decision *)
  k_cap : int option; (* optional user cap on DFA depth *)
  fallback : fallback_strategy;
    (* what to do when recursion appears in more than one alternative *)
  minimize : bool; (* run Moore minimization over each lookahead DFA *)
}

let default_options =
  { m = 1; max_states = 2000; k_cap = None; fallback = Bounded; minimize = false }

let options_of_grammar (g : Grammar.Ast.t) =
  { default_options with m = g.options.m; k_cap = g.options.k }

exception Non_ll_regular_exn
exception Too_big

(* ------------------------------------------------------------------ *)
(* Mutable DFA states during construction *)

type wstate = {
  id : int;
  mutable configs : Config.t list; (* canonical; resolve may prune *)
  mutable term_edges : (int * int) list; (* reversed *)
  mutable accept : int;
  mutable pred_edges : Look_dfa.pred_edge list;
  mutable overflow : bool;
  depth : int; (* terminal distance from D0, for k-cap enforcement *)
  path : int list; (* sample terminal path from D0, reversed *)
}

(* Cached closure of a single seed configuration: the significant
   configurations its walk reaches, whether the walk hit the recursion
   bound, and the alternatives it found left-recursing.  Only completed
   walks are cached, so a cached entry is independent of the busy-set and
   [allow_multi_recursion] state at the time it was recorded. *)
type closure_memo_entry = {
  cm_reached : Config.t list;
  cm_overflow : bool;
  cm_rec_alts : int list;
}

type builder = {
  atn : Atn.t;
  opts : options;
  decision : Atn.decision;
  mutable states : wstate list; (* reversed *)
  mutable nstates : int;
  dedup : (Config.t list, int) Hashtbl.t;
  by_id : (int, wstate) Hashtbl.t; (* state id -> state, for O(1) lookup *)
  recursive_alts : Bitset.t; (* universe: d_nalts + 1 *)
  closure_memo : (Config.t, closure_memo_entry) Hashtbl.t;
  mutable warnings : warning list;
  mutable uses_synpred : bool;
  mutable allow_multi_recursion : bool;
    (* true in fallback mode; the lazy engine flips it mid-construction to
       continue with the Bounded strategy instead of restarting *)
}

let alt_universe (d : Atn.decision) = d.Atn.d_nalts + 1

let warn b w = b.warnings <- w :: b.warnings

(* ------------------------------------------------------------------ *)
(* Closure (Algorithm 9) *)

(* Compute the closure of [seed] configurations.  [overflowed] is set when
   the recursion bound is reached.  The busy set prevents infinite loops
   through epsilon cycles (EBNF loops) and redundant work.

   Each seed's walk is independent (fresh busy set) and deterministic in
   the seed configuration alone, so completed walks are memoized on the
   builder: distinct (state, terminal) steps that move onto the same
   configuration replay its recorded closure instead of re-walking the
   ATN.  The final [Config.canonicalize] (sort + dedup) makes the
   per-seed decomposition produce exactly the configuration sets the
   shared-walk formulation did.  Walks are not cached while hoisting
   predicates (the start state's closure) -- the [sem]/[free]/[crossed]
   collection differs there and D0 is built once per decision anyway --
   nor when aborted by [Non_ll_regular_exn]. *)
let closure ?(collect_preds = false) (b : builder) (seed : Config.t list) :
    Config.t list * bool =
  let acc = ref [] in
  let overflowed = ref false in
  let atn = b.atn in
  let note_recursion alt =
    Bitset.add b.recursive_alts alt;
    if Bitset.cardinal b.recursive_alts > 1 && not b.allow_multi_recursion
    then raise Non_ll_regular_exn
  in
  (* Predicate hoisting discipline (section 5.5): see the [free] and
     [crossed] flags on configurations.  Semantic predicates are hoisted
     from arbitrarily deep in the derivation chain (that is what makes C's
     isTypeName work); syntactic predicates gate exactly the nested
     alternative they were written on, so they are only collected before
     closure passes a nested decision state.  Neither is collected after a
     configuration escapes its alternative's derivation through an
     empty-stack pop. *)
  let run_seed (seed_c : Config.t) =
    let busy : (Config.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let reached = ref [] in
    let walk_overflow = ref false in
    let rec_alts = ref [] in
    let rec go (c : Config.t) =
    if not (Hashtbl.mem busy c) then begin
      Hashtbl.add busy c ();
      (* Only configurations at *significant* states -- stop states and
         states with outgoing terminal edges -- enter the DFA state's set.
         Pass-through configurations (epsilon, action, predicate and
         rule-call positions) carry no information their successors do not,
         and recording them creates spurious Definition-7 conflicts, e.g. a
         configuration sitting just before its own predicate edge with its
         semantic context not yet collected. *)
      let significant =
        Atn.is_stop_state atn c.state
        || Array.length atn.trans.(c.state) = 0 (* terminal sink, e.g. the
                                                   augmented post-EOF state *)
        || Array.exists
             (fun (edge, _) ->
               match edge with Atn.Term _ -> true | _ -> false)
             atn.trans.(c.state)
      in
      if significant then reached := c :: !reached;
      let c =
        if (not c.crossed) && Atn.decision_of atn c.state >= 0 then
          { c with crossed = true }
        else c
      in
      if Atn.is_stop_state atn c.state then
        (* Submachine stop: pop the return state, or -- with an empty stack,
           the wildcard context -- chase every call site of this rule. *)
        match c.stack with
        | f :: rest -> go { c with state = f; stack = rest }
        | [] ->
            let rule = atn.state_rule.(c.state) in
            List.iter
              (fun (follow, _arg) ->
                go { c with state = follow; stack = []; free = true })
              atn.callers.(rule)
      else
        Array.iter
          (fun (edge, tgt) ->
            match edge with
            | Atn.Term _ -> () (* left for move *)
            | Atn.Eps | Atn.Act _ -> go { c with state = tgt }
            | Atn.Pred p ->
                (* Hoisting is restricted to predicates *visible at the left
                   edge* of the decision (section 5.5): only the start
                   state's closure collects them ([collect_preds]), because
                   a predicate first reached after k tokens of lookahead
                   would be evaluated at the decision point, k tokens too
                   early.  Configurations carry already-collected contexts
                   across moves unchanged. *)
                let collectable =
                  collect_preds
                  &&
                  match p with
                  | Atn.Sem _ | Atn.Prec _ -> not c.free
                  | Atn.Syn _ -> (not c.free) && not c.crossed
                in
                let sem =
                  match c.sem with
                  | None when collectable -> Some p
                  | s -> s
                in
                go { c with state = tgt; sem }
            | Atn.Rule { rule; arg = _ } ->
                let follow = tgt in
                let depth =
                  List.fold_left
                    (fun n f -> if f = follow then n + 1 else n)
                    0 c.stack
                in
                if depth >= 1 then begin
                  rec_alts := c.alt :: !rec_alts;
                  note_recursion c.alt
                end;
                if depth >= b.opts.m then begin
                  walk_overflow := true;
                  (* Keep the cut configuration itself even though its state
                     is a pass-through: it is the only evidence that this
                     alternative remains viable beyond the bound. *)
                  reached := c :: !reached
                end
                else
                  go
                    {
                      c with
                      state = atn.rules.(rule).r_entry;
                      stack = follow :: c.stack;
                    })
          atn.trans.(c.state)
    end
    in
    go seed_c;
    (* the walk completed: safe to cache *)
    if not collect_preds then
      Hashtbl.replace b.closure_memo seed_c
        {
          cm_reached = !reached;
          cm_overflow = !walk_overflow;
          cm_rec_alts = !rec_alts;
        };
    acc := List.rev_append !reached !acc;
    if !walk_overflow then overflowed := true
  in
  List.iter
    (fun c ->
      match
        if collect_preds then None else Hashtbl.find_opt b.closure_memo c
      with
      | Some e ->
          List.iter note_recursion e.cm_rec_alts;
          acc := List.rev_append e.cm_reached !acc;
          if e.cm_overflow then overflowed := true
      | None -> run_seed c)
    seed;
  (Config.canonicalize !acc, !overflowed)

(* ------------------------------------------------------------------ *)
(* Move: configurations reachable on terminal [a] (Algorithm 8's move). *)

let move (atn : Atn.t) (configs : Config.t list) (a : int) : Config.t list =
  List.concat_map
    (fun (c : Config.t) ->
      Array.to_list atn.trans.(c.state)
      |> List.filter_map (fun (edge, tgt) ->
             match edge with
             | Atn.Term t
               when t = a
                    || (t = Grammar.Sym.wildcard && a <> Grammar.Sym.eof
                       && a <> Grammar.Sym.wildcard) ->
                 Some { c with state = tgt }
             | _ -> None))
    configs

(* Terminals with outgoing edges from any configuration of [configs];
   ascending (bitset iteration order). *)
let outgoing_terminals (atn : Atn.t) (configs : Config.t list) : int list =
  let seen = Bitset.create (Grammar.Sym.num_terms atn.sym) in
  List.iter
    (fun (c : Config.t) ->
      Array.iter
        (fun (edge, _) ->
          match edge with Atn.Term t -> Bitset.add seen t | _ -> ())
        atn.trans.(c.state))
    configs;
  Bitset.elements seen

(* ------------------------------------------------------------------ *)
(* Resolve (Algorithms 10 and 11) *)

let viable_alts (b : builder) (configs : Config.t list) : Bitset.t =
  let s = Bitset.create (alt_universe b.decision) in
  List.iter (fun (c : Config.t) -> Bitset.add s c.alt) configs;
  s

(* The conflict set of a configuration set (Definition 7), together with the
   configurations that participate in a conflicting pair. *)
let conflict_info (b : builder) (configs : Config.t list) :
    Bitset.t * (Config.t, unit) Hashtbl.t =
  (* Group by state; within a group, quadratic scan (groups are small). *)
  let by_state = Hashtbl.create 16 in
  List.iter
    (fun (c : Config.t) ->
      let cur =
        match Hashtbl.find_opt by_state c.state with Some l -> l | None -> []
      in
      Hashtbl.replace by_state c.state (c :: cur))
    configs;
  let participants = Hashtbl.create 16 in
  let alts = Bitset.create (alt_universe b.decision) in
  Hashtbl.iter
    (fun _ group ->
      let rec pairs = function
        | [] -> ()
        | c :: rest ->
            List.iter
              (fun c' ->
                if Config.conflicts c c' then begin
                  Hashtbl.replace participants c ();
                  Hashtbl.replace participants c' ();
                  Bitset.add alts c.Config.alt;
                  Bitset.add alts c'.Config.alt
                end)
              rest;
            pairs rest
      in
      pairs group)
    by_state;
  (alts, participants)

let conflict_set b configs = fst (conflict_info b configs)

(* Try to resolve the alternatives in [alts] with predicates
   (Algorithm 11, resolveWithPreds).  Each alternative needs a
   representative configuration carrying a predicate.  Two refinements over
   the paper's pseudocode, both matching the hoisting behaviour sketched in
   section 5.5 and required by the precedence-climbing loops of the
   left-recursion rewrite:

   - gated default: if exactly one conflicting alternative lacks a predicate
     and it is the highest-numbered one (e.g. a loop's implicit exit
     branch), it becomes the default, tested after every real predicate;
   - lookahead gating: each predicate edge carries the set of terminals its
     alternative can actually start with at this state, so a predicate is
     only consulted for inputs on which its alternative is viable (hoisted
     predicates are conjoined with lookahead-membership tests). *)
let debug_resolve = ref false

let resolve_with_preds (b : builder) (d : wstate)
    ?(participants : (Config.t, unit) Hashtbl.t = Hashtbl.create 0)
    (alts : Bitset.t) : bool =
  if !debug_resolve then begin
    Fmt.epr "[resolve] decision %d state %d alts {%a}@." b.decision.d_id d.id
      Fmt.(list ~sep:(any ", ") int) (Bitset.elements alts);
    List.iter
      (fun (c : Config.t) ->
        Fmt.epr "  cfg %a@." (Config.pp b.atn.sym) c)
      d.configs
  end;
  (* A predicate covers an alternative only when every configuration of that
     alternative that participates in a conflict carries it: a predicate
     hoisted from one derivation branch must not gate inputs that reach the
     alternative through unpredicated branches.  Without conflict pairs
     (recursion overflow), every configuration of the alternative counts. *)
  let pred_for alt =
    let relevant =
      let parts =
        List.filter
          (fun (c : Config.t) -> c.alt = alt && Hashtbl.mem participants c)
          d.configs
      in
      if parts <> [] then parts
      else List.filter (fun (c : Config.t) -> c.alt = alt) d.configs
    in
    match relevant with
    | [] -> None
    | first :: rest -> (
        match first.sem with
        | None -> None
        | Some p ->
            if List.for_all (fun (c : Config.t) -> c.sem = Some p) rest then
              Some p
            else None)
  in
  (* Terminals on which alternative [alt] is viable at this state.  On an
     overflowed state the closure was truncated by the recursion bound, so
     the computed set under-approximates and the gate must be dropped
     (matching the paper's Figure 2, whose backtracking state carries
     unguarded predicate edges). *)
  let guard_for alt =
    if d.overflow then []
    else begin
      let set = Bitset.create (Grammar.Sym.num_terms b.atn.sym) in
      List.iter
        (fun (c : Config.t) ->
          if c.alt = alt then
            Array.iter
              (fun (edge, _) ->
                match edge with Atn.Term t -> Bitset.add set t | _ -> ())
              b.atn.trans.(c.state))
        d.configs;
      Bitset.elements set
    end
  in
  let alt_list = Bitset.elements alts in
  let with_preds, without =
    List.partition (fun a -> pred_for a <> None) alt_list
  in
  let edge a : Look_dfa.pred_edge =
    { guard = guard_for a; pred = pred_for a; alt = a }
  in
  match without with
  | [] ->
      d.pred_edges <- List.map edge alt_list;
      true
  | [ dflt ] when Some dflt = Bitset.max_elt_opt alts && with_preds <> [] ->
      d.pred_edges <-
        List.map edge with_preds @ [ { guard = []; pred = None; alt = dflt } ];
      true
  | _ -> false

(* Resolve ambiguities and overflow in a freshly discovered state
   (Algorithm 10).  Mutates the state: either installs predicate edges or
   prunes configurations of losing alternatives. *)
let resolve (b : builder) (d : wstate) : unit =
  let conflicts, participants = conflict_info b d.configs in
  let needs_resolution = (not (Bitset.is_empty conflicts)) || d.overflow in
  if needs_resolution then begin
    let target_alts =
      if Bitset.is_empty conflicts then viable_alts b d.configs else conflicts
    in
    if Bitset.cardinal target_alts <= 1 then ()
    else if resolve_with_preds b d ~participants target_alts then
      List.iter
        (fun (e : Look_dfa.pred_edge) ->
          match e.pred with
          | Some (Atn.Syn _) -> b.uses_synpred <- true
          | _ -> ())
        d.pred_edges
    else begin
      (* Resolve statically in favour of the lowest-numbered alternative.
         Refinement of Algorithm 10: only the configurations that actually
         participate in a conflict are removed (the pseudocode removes every
         configuration of the losing alternatives, which would also destroy
         their unambiguous lookahead paths -- e.g. a loop exit's distinct
         follow terminals when only its wrap-around path conflicts).  On
         recursion overflow there are no conflict pairs, so the losing
         alternatives are pruned wholesale as in the paper. *)
      let keep = Option.get (Bitset.min_elt_opt target_alts) in
      let doomed (c : Config.t) =
        c.alt <> keep
        && Bitset.mem target_alts c.alt
        && (Hashtbl.mem participants c || Bitset.is_empty conflicts)
      in
      d.configs <- List.filter (fun c -> not (doomed c)) d.configs;
      if d.overflow then
        warn b (Overflow { decision = b.decision.d_id; path = List.rev d.path })
      else
        warn b
          (Ambiguity
             {
               decision = b.decision.d_id;
               alts = Bitset.elements target_alts;
               path = List.rev d.path;
             })
    end
  end

(* Alternatives that have run off the end of a syntactic-predicate fragment:
   a configuration at the stop state of a rule with no callers and an empty
   stack.  A syntactic predicate only checks a *prefix* of the remaining
   input (section 4.1), so reaching the fragment's end means the predicate
   holds regardless of what follows; such alternatives become a gated
   default tried after the state's terminal edges. *)
let fragment_end_alts (b : builder) (configs : Config.t list) : Bitset.t =
  let atn = b.atn in
  let acc = Bitset.create (alt_universe b.decision) in
  List.iter
    (fun (c : Config.t) ->
      if c.stack = [] && Atn.is_stop_state atn c.state then begin
        let rule = atn.state_rule.(c.state) in
        if atn.callers.(rule) = [] then Bitset.add acc c.alt
      end)
    configs;
  acc

(* Install the fragment-end default on a state that is not otherwise
   resolved; the state keeps expanding its terminal edges. *)
let attach_fragment_end (b : builder) (d : wstate) : unit =
  if d.accept = 0 && d.pred_edges = [] then
    match Bitset.min_elt_opt (fragment_end_alts b d.configs) with
    | Some alt ->
        let others = viable_alts b d.configs in
        Bitset.remove others alt;
        if not (Bitset.is_empty others) then
          d.pred_edges <- [ { Look_dfa.guard = []; pred = None; alt } ]
    | None -> ()

(* ------------------------------------------------------------------ *)
(* createDFA (Algorithm 8) *)

let state_by_id (b : builder) (id : int) : wstate = Hashtbl.find b.by_id id

let new_wstate (b : builder) ~depth ~path configs overflow : wstate * bool =
  match Hashtbl.find_opt b.dedup configs with
  | Some id -> (state_by_id b id, false)
  | None ->
      if b.nstates >= b.opts.max_states then raise Too_big;
      let d =
        {
          id = b.nstates;
          configs;
          term_edges = [];
          accept = 0;
          pred_edges = [];
          overflow;
          depth;
          path;
        }
      in
      Hashtbl.add b.dedup configs d.id;
      Hashtbl.add b.by_id d.id d;
      b.states <- d :: b.states;
      b.nstates <- b.nstates + 1;
      (d, true)

let freeze (b : builder) ~fallback : Look_dfa.t =
  let states = Array.of_list (List.rev b.states) in
  let n = Array.length states in
  let edges =
    Array.map
      (fun d ->
        let arr = Array.of_list (List.rev d.term_edges) in
        Array.sort compare arr;
        arr)
      states
  in
  let accept = Array.map (fun d -> d.accept) states in
  let preds = Array.map (fun d -> Array.of_list d.pred_edges) states in
  let overflowed = Array.map (fun d -> d.overflow) states in
  let t : Look_dfa.t =
    {
      decision = b.decision.d_id;
      start = 0;
      nstates = n;
      edges;
      accept;
      preds;
      overflowed;
      cyclic = false;
      max_k = None;
      uses_synpred = b.uses_synpred;
      fallback;
    }
  in
  let max_k = Look_dfa.compute_max_k t in
  { t with cyclic = max_k = None; max_k }

(* Build the start state D0: the closure of each alternative's left edge. *)
let build_d0 (b : builder) : wstate =
  let targets = Atn.decision_alt_targets b.atn b.decision in
  let seeds =
    Array.to_list
      (Array.mapi (fun i tgt -> Config.make tgt (i + 1)) targets)
  in
  let configs, overflow = closure ~collect_preds:true b seeds in
  let d, _fresh = new_wstate b ~depth:0 ~path:[] configs overflow in
  resolve b d;
  d

(* A state keeps expanding while some viable alternative is not covered by
   its predicate edges: conflict resolution only predicates the alternatives
   that actually conflict, and an uncovered alternative may still be
   separated by more lookahead (the predicate edges then serve as the
   fallback when no terminal edge matches -- the fragment-end default is the
   degenerate case).  Accepts, and predicate edges covering every viable
   alternative, make a state terminal. *)
let preds_cover_viable (b : builder) (d : wstate) =
  let viable = viable_alts b d.configs in
  List.iter
    (fun (e : Look_dfa.pred_edge) -> Bitset.remove viable e.alt)
    d.pred_edges;
  Bitset.is_empty viable

let should_expand (b : builder) (d : wstate) =
  d.accept = 0 && (d.pred_edges = [] || not (preds_cover_viable b d))

(* ------------------------------------------------------------------ *)
(* Per-state construction steps.

   The subset construction is decomposed into steps shared by the eager
   work-list loop below and the lazy on-demand engine ([Lazy_dfa]), which
   invokes them one (state, terminal) pair at a time from the interpreter's
   prediction loop.  Each step is idempotent: re-stepping an already
   discovered transition dedups against the existing state and edge. *)

(* Finish a freshly discovered state: set the accept when a single
   alternative survives resolution, and attach the fragment-end default. *)
let settle_fresh (b : builder) (d : wstate) : unit =
  resolve b d;
  (match Bitset.elements (viable_alts b d.configs) with
  | [ j ] when d.pred_edges = [] -> d.accept <- j
  | _ -> ());
  attach_fragment_end b d

(* D0 plus the settling the eager construction applies to it.  Note the
   LL(1) fallback deliberately does not attach the fragment-end default to
   its D0; it keeps using [build_d0] directly. *)
let init_d0 (b : builder) : wstate =
  let d0 = build_d0 b in
  (match Bitset.elements (viable_alts b d0.configs) with
  | [ j ] when d0.pred_edges = [] -> d0.accept <- j
  | _ -> ());
  attach_fragment_end b d0;
  d0

(* User-capped depth (the grammar's k option): force a resolution at this
   state instead of expanding it further. *)
let force_cap_resolution (b : builder) (d : wstate) : unit =
  let alts = viable_alts b d.configs in
  if not (resolve_with_preds b d alts) then begin
    d.accept <- Option.get (Bitset.min_elt_opt alts);
    warn b
      (Ambiguity
         {
           decision = b.decision.d_id;
           alts = Bitset.elements alts;
           path = List.rev d.path;
         })
  end

(* One modified-subset-construction step (the body of Algorithm 8's inner
   loop): compute the target of [d] over terminal [a], discovering and
   settling the target state when it is new.  Returns [None] when no
   configuration of [d] moves on [a]. *)
let step_terminal (b : builder) (d : wstate) (a : int) : (wstate * bool) option
    =
  let mv = move b.atn d.configs a in
  if mv = [] then None
  else begin
    let configs, overflow = closure b mv in
    let d', fresh =
      new_wstate b ~depth:(d.depth + 1) ~path:(a :: d.path) configs overflow
    in
    if fresh then settle_fresh b d';
    if not (List.exists (fun (t, _) -> t = a) d.term_edges) then
      d.term_edges <- (a, d'.id) :: d.term_edges;
    Some (d', fresh)
  end

(* Expand one work-list state: force a resolution past the user's k-cap,
   otherwise step every outgoing terminal, queueing fresh expandable
   states. *)
let expand_state (b : builder) (work : wstate Queue.t) (d : wstate) : unit =
  let beyond_cap =
    match b.opts.k_cap with Some k -> d.depth >= k | None -> false
  in
  if beyond_cap then force_cap_resolution b d
  else
    List.iter
      (fun a ->
        match step_terminal b d a with
        | Some (d', fresh) -> if fresh && should_expand b d' then Queue.add d' work
        | None -> ())
      (outgoing_terminals b.atn d.configs)

let create_dfa_exn (b : builder) : Look_dfa.t =
  let d0 = init_d0 b in
  let work = Queue.create () in
  if should_expand b d0 then Queue.add d0 work;
  while not (Queue.is_empty work) do
    expand_state b work (Queue.pop work)
  done;
  freeze b ~fallback:false

(* ------------------------------------------------------------------ *)
(* LL(1) fallback (section 5.4): a depth-1 DFA where every successor of D0
   is forced to a resolution -- by predicates (including the backtracking
   syntactic predicates of PEG mode) when available, by production order
   otherwise. *)

let create_fallback (b : builder) : Look_dfa.t =
  let d0 = build_d0 b in
  (match Bitset.elements (viable_alts b d0.configs) with
  | [ j ] when d0.pred_edges = [] -> d0.accept <- j
  | _ -> ());
  if d0.accept = 0 && d0.pred_edges = [] then
    List.iter
      (fun a ->
        let mv = move b.atn d0.configs a in
        if mv <> [] then begin
          let configs, overflow = closure b mv in
          let d', fresh =
            new_wstate b ~depth:1 ~path:[ a ] configs overflow
          in
          if fresh then begin
            let alts = viable_alts b d'.configs in
            if Bitset.cardinal alts = 1 then
              d'.accept <- Option.get (Bitset.min_elt_opt alts)
            else if resolve_with_preds b d' alts then
              List.iter
                (fun (e : Look_dfa.pred_edge) ->
                  match e.pred with
                  | Some (Atn.Syn _) -> b.uses_synpred <- true
                  | _ -> ())
                d'.pred_edges
            else begin
              d'.accept <- Option.get (Bitset.min_elt_opt alts);
              warn b
                (Ambiguity
                   {
                     decision = b.decision.d_id;
                     alts = Bitset.elements alts;
                     path = [ a ];
                   })
            end
          end;
          d0.term_edges <- (a, d'.id) :: d0.term_edges
        end)
      (outgoing_terminals b.atn d0.configs);
  freeze b ~fallback:true

(* ------------------------------------------------------------------ *)

let make_builder atn opts decision ~allow_multi_recursion =
  {
    atn;
    opts;
    decision;
    states = [];
    nstates = 0;
    dedup = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    recursive_alts = Bitset.create (alt_universe decision);
    closure_memo = Hashtbl.create 256;
    warnings = [];
    uses_synpred = false;
    allow_multi_recursion;
  }

(* Re-insert a previously discovered state into a builder being restored
   from serialized form ([Lazy_dfa.of_portable]).  States must arrive in
   id order so the sequential-id invariant of [new_wstate] holds; the
   dedup and by-id tables are rebuilt here, the closure memo is left cold
   (it is a pure cache and re-fills on demand). *)
let restore_wstate (b : builder) ~configs ~term_edges ~accept ~pred_edges
    ~overflow ~depth ~path : unit =
  let d =
    {
      id = b.nstates;
      configs;
      term_edges;
      accept;
      pred_edges;
      overflow;
      depth;
      path;
    }
  in
  Hashtbl.replace b.dedup configs d.id;
  Hashtbl.replace b.by_id d.id d;
  b.states <- d :: b.states;
  b.nstates <- b.nstates + 1

(* Alternatives that no accept state or predicate edge ever predicts can
   never be chosen: dead productions (section 1.1). *)
let find_dead_alts (b : builder) (dfa : Look_dfa.t) (d : Atn.decision) :
    warning list =
  ignore b;
  let predicted = Array.make (d.d_nalts + 1) false in
  Array.iter (fun a -> if a > 0 && a <= d.d_nalts then predicted.(a) <- true) dfa.accept;
  Array.iter
    (Array.iter (fun (e : Look_dfa.pred_edge) ->
         if e.alt > 0 && e.alt <= d.d_nalts then predicted.(e.alt) <- true))
    dfa.preds;
  let dead = ref [] in
  for alt = d.d_nalts downto 1 do
    if not predicted.(alt) then
      dead := Dead_alternative { decision = d.d_id; alt } :: !dead
  done;
  !dead

let classify (dfa : Look_dfa.t) : decision_class =
  if dfa.uses_synpred then Backtrack
  else if dfa.cyclic then Cyclic
  else Fixed (match dfa.max_k with Some k -> k | None -> 1)

let analyze_decision ?(opts = default_options) (atn : Atn.t)
    (decision : Atn.decision) : result =
  let post dfa = if opts.minimize then Minimize.minimize dfa else dfa in
  let b = make_builder atn opts decision ~allow_multi_recursion:false in
  let fall_back_ll1 reason =
    (* the depth-1 DFA is bounded by the alphabet; don't let a tiny state
       budget (the thing that may have sent us here) starve it *)
    let fb_opts = { opts with max_states = max opts.max_states 10_000 } in
    let fb = make_builder atn fb_opts decision ~allow_multi_recursion:true in
    let dfa = post (create_fallback fb) in
    let warnings =
      (reason :: List.rev fb.warnings) @ find_dead_alts fb dfa decision
    in
    { dfa; klass = classify dfa; warnings; fallback = true }
  in
  (* Recursion in more than one alternative: the decision is extremely
     unlikely to be LL-regular (section 5.4).  The [Bounded] strategy
     retries the full construction with only the recursion bound [m] as
     governor -- the resulting DFA resolves everything fixed lookahead can
     and falls to predicates/order where it cannot; [Ll1] is the paper's
     depth-1 fallback. *)
  let fall_back_bounded reason =
    let fb = make_builder atn opts decision ~allow_multi_recursion:true in
    match post (create_dfa_exn fb) with
    | dfa ->
        let warnings =
          (reason :: List.rev fb.warnings) @ find_dead_alts fb dfa decision
        in
        { dfa; klass = classify dfa; warnings; fallback = true }
    | exception Too_big ->
        fall_back_ll1
          (Dfa_too_big { decision = decision.d_id; limit = opts.max_states })
  in
  match post (create_dfa_exn b) with
  | dfa ->
      let warnings = List.rev b.warnings @ find_dead_alts b dfa decision in
      { dfa; klass = classify dfa; warnings; fallback = false }
  | exception Non_ll_regular_exn -> (
      let reason = Non_ll_regular { decision = decision.d_id } in
      match opts.fallback with
      | Bounded -> fall_back_bounded reason
      | Ll1 -> fall_back_ll1 reason)
  | exception Too_big ->
      fall_back_ll1
        (Dfa_too_big { decision = decision.d_id; limit = opts.max_states })

(* Analyze every decision of an ATN.

   Decisions are analyzed independently: each builder's mutable state
   (work-list states, dedup tables, closure memo, warning list) is local
   to its decision, and the ATN, grammar and interned vocabulary are only
   read.  That makes the fan-out below safe on a worker pool: with [pool]
   (and more than one job) per-decision construction runs across domains,
   and [Exec.Pool.map_array]'s deterministic ordering merges the results
   in decision order -- the output array, and anything derived from it
   (the report, the compilation-cache payload digest), is byte-identical
   to the sequential build.  Callers must freeze the vocabulary
   ([Grammar.Sym.freeze]) before fanning out; [Compiled.compile] does. *)
let analyze_all ?opts ?pool (atn : Atn.t) : result array =
  let opts =
    match opts with
    | Some o -> o
    | None -> options_of_grammar atn.grammar
  in
  let decide d = analyze_decision ~opts atn d in
  match pool with
  | Some p when Exec.Pool.jobs p > 1 -> Exec.Pool.map_array p decide atn.decisions
  | _ -> Array.map decide atn.decisions

(* ------------------------------------------------------------------ *)

let pp_warning sym atn ppf w =
  let dlabel d = (Array.get atn.Atn.decisions d).Atn.d_label in
  let pp_path ppf path =
    Fmt.(list ~sep:sp (fun ppf t -> Fmt.string ppf (Grammar.Sym.term_name sym t)))
      ppf path
  in
  match w with
  | Ambiguity { decision; alts; path } ->
      Fmt.pf ppf
        "decision %d (%s): alternatives %a are ambiguous upon \"%a\"; \
         resolving in favour of alternative %d"
        decision (dlabel decision)
        Fmt.(list ~sep:(any ", ") int)
        alts pp_path path (List.hd alts)
  | Overflow { decision; path } ->
      Fmt.pf ppf
        "decision %d (%s): recursion overflow while computing lookahead upon \
         \"%a\"; resolving potential ambiguity by production order"
        decision (dlabel decision) pp_path path
  | Non_ll_regular { decision } ->
      Fmt.pf ppf
        "decision %d (%s): recursion in more than one alternative; falling \
         back to LL(1)%s"
        decision (dlabel decision)
        " (with backtracking if predicates are available)"
  | Dfa_too_big { decision; limit } ->
      Fmt.pf ppf
        "decision %d (%s): lookahead DFA exceeded %d states; falling back to \
         LL(1)"
        decision (dlabel decision) limit
  | Dead_alternative { decision; alt } ->
      Fmt.pf ppf "decision %d (%s): alternative %d can never be matched"
        decision (dlabel decision) alt
