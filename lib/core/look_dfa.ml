(* Lookahead DFA (paper Definition 4): a DFA over the token alphabet,
   augmented with predicate transitions into accept states, whose accept
   states yield predicted production numbers.

   Frozen representation produced by the analysis; interpretation happens in
   the runtime's prediction engine.  [preds] transitions are ordered; an
   entry with [None] predicate is the gated default ("else") alternative,
   tested after all real predicates fail. *)

type pred_edge = {
  guard : int list;
    (* lookahead gate: terminals the alternative can actually start with at
       this state (the section-5.5 hoisting combines hoisted predicates with
       lookahead membership tests); [] means no gate *)
  pred : Atn.pred option; (* [None] on the gated default ("else") edge *)
  alt : int;
}

type t = {
  decision : int;
  start : int;
  nstates : int;
  edges : (int * int) array array;
    (* per state: (terminal, target), sorted by terminal for binary search *)
  accept : int array; (* per state: predicted alt, or 0 *)
  preds : pred_edge array array; (* per state: ordered predicate edges *)
  overflowed : bool array; (* per state: closure hit the recursion bound *)
  cyclic : bool;
  max_k : int option; (* longest terminal path to an accept; None if cyclic *)
  uses_synpred : bool; (* some predicate edge launches a speculative parse *)
  fallback : bool; (* produced by the LL(1) fallback, not full analysis *)
}

(* Rows are sorted by terminal id (every construction site -- the analysis
   freeze, the minimizer's remap and the lazy engine's snapshots -- sorts
   them), so states with many outgoing terminals bisect instead of paying a
   full scan per lookahead token.  Most rows stay tiny, and there a linear
   scan beats bisection, so small rows keep the scan.  The wildcard edge
   matches any terminal except EOF and, having id 1 (only EOF's 0 sorts
   below it), can only live in one of the first two slots -- the fallback
   checks those directly instead of re-walking the row. *)
let linear_cutoff = 8

let lookup_edge (t : t) (state : int) (term : int) : int option =
  let row = t.edges.(state) in
  let n = Array.length row in
  let wild_fallback () =
    if term = Grammar.Sym.eof then None
    else if n > 0 && fst row.(0) = Grammar.Sym.wildcard then Some (snd row.(0))
    else if n > 1 && fst row.(1) = Grammar.Sym.wildcard then Some (snd row.(1))
    else None
  in
  if n <= linear_cutoff then begin
    let rec go i =
      if i >= n then wild_fallback ()
      else
        let sym, tgt = row.(i) in
        if sym = term then Some tgt else go (i + 1)
    in
    go 0
  end
  else begin
    let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let sym, _ = row.(mid) in
      if sym = term then found := mid
      else if sym < term then lo := mid + 1
      else hi := mid - 1
    done;
    if !found >= 0 then Some (snd row.(!found)) else wild_fallback ()
  end

let accept_of t state = if t.accept.(state) = 0 then None else Some t.accept.(state)
let pred_edges_of t state = t.preds.(state)

let num_edges t =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 t.edges

(* Longest terminal-edge path from [start] to any accepting or predicated
   state; [None] when the reachable graph is cyclic. *)
let compute_max_k (t : t) : int option =
  let visiting = Array.make t.nstates false in
  let memo = Array.make t.nstates (-1) in
  let exception Cyclic in
  let rec go s =
    if visiting.(s) then raise Cyclic;
    if memo.(s) >= 0 then memo.(s)
    else begin
      visiting.(s) <- true;
      let best = ref 0 in
      Array.iter
        (fun (_, tgt) -> best := max !best (1 + go tgt))
        t.edges.(s);
      visiting.(s) <- false;
      memo.(s) <- !best;
      !best
    end
  in
  match go t.start with
  | k -> Some (max 1 k)
  | exception Cyclic -> None

let pp_pred_edge sym ppf (e : pred_edge) =
  (match e.guard with
  | [] -> ()
  | g ->
      Fmt.pf ppf "LA in {%a} & "
        Fmt.(
          list ~sep:(any ", ") (fun ppf t ->
              Fmt.string ppf (Grammar.Sym.term_name sym t)))
        g);
  match e.pred with
  | None -> Fmt.string ppf "else"
  | Some p -> Atn.pp_pred sym ppf p

let pp ?(sym : Grammar.Sym.t option) ppf (t : t) =
  let term_name id =
    match sym with
    | Some s -> Grammar.Sym.term_name s id
    | None -> string_of_int id
  in
  Fmt.pf ppf "DFA d%d: %d states%s%s@." t.decision t.nstates
    (if t.cyclic then " (cyclic)" else "")
    (if t.fallback then " (LL(1) fallback)" else "");
  for s = 0 to t.nstates - 1 do
    let acc =
      if t.accept.(s) <> 0 then Printf.sprintf " => %d" t.accept.(s) else ""
    in
    Fmt.pf ppf "  s%d%s:@." s acc;
    Array.iter
      (fun (sym_id, tgt) ->
        Fmt.pf ppf "    --%s--> s%d@." (term_name sym_id) tgt)
      t.edges.(s);
    Array.iter
      (fun (e : pred_edge) ->
        match sym with
        | Some sy -> Fmt.pf ppf "    --%a--> :%d@." (pp_pred_edge sy) e e.alt
        | None -> Fmt.pf ppf "    --pred--> :%d@." e.alt)
      t.preds.(s)
  done

let to_string ?sym t = Fmt.str "%a" (pp ?sym) t
