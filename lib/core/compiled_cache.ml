(* Persistent compilation cache.

   Compiling a grammar -- ATN construction plus lookahead-DFA analysis --
   dominates cold-start time, and it is fully determined by the grammar AST
   and the analysis options.  This module serializes a whole [Compiled.t]
   (ATN, every materialized DFA state, lazy engines when present, and the
   analysis report) to a versioned binary blob keyed by a content hash of
   the grammar, with load-validate-or-rebuild semantics:

   - the cache key is a digest of the surface AST, the resolved analysis
     options, the compilation strategy, the cache format version and the
     compiler version, so any input that could change the result changes
     the file name;
   - the blob carries a magic string, the key, and a digest of the payload;
     a missing, truncated, corrupted or mismatched blob makes [load] return
     [None] -- the caller recompiles, it never crashes (the payload digest
     is verified *before* unmarshaling, so [Marshal] only ever sees bytes
     this module wrote);
   - writes go through a temp file and an atomic rename, so a crashed or
     concurrent writer can leave a stale temp file but never a torn blob;
   - stale temp files are garbage-collected when a cache directory is
     opened ([gc_stale_temps], called once per directory per process from
     [compile]): a temp whose writer pid is provably dead, or whose mtime
     is older than [stale_temp_age_s], is removed; a live writer's fresh
     temp is never touched, and valid blobs are never candidates (only
     [.<key>.tmp.<pid>]-shaped names are considered).

   A lazy-mode [Compiled.t] can be re-saved after parsing: the blob then
   contains every DFA state materialized so far, and a later [load] resumes
   lazy construction from that warm state. *)

(* Bump whenever the marshaled representation changes shape: any change to
   [Compiled.t] or to a type reachable from it (ASTs, ATN, DFAs, analysis
   results, lazy engines).
   v2: [Grammar.Sym.t] gained the [frozen] field.
   v3: lazy engines are serialized as [Lazy_dfa.portable] (canonical,
   discovery-order independent) alongside an engine-stripped [Compiled.t]
   instead of being marshaled live -- live engines now carry a mutex and
   an atomic, which do not marshal. *)
let format_version = 3

let magic = "ANTLRKIT-CACHE\n"

type outcome = Hit | Miss

(* ------------------------------------------------------------------ *)
(* Keys and paths *)

let resolve_opts ?analysis_opts (g : Grammar.Ast.t) : Analysis.options =
  match analysis_opts with
  | Some o -> o
  | None -> Analysis.options_of_grammar g

let key_of_parts (g : Grammar.Ast.t) (opts : Analysis.options)
    (strategy : Compiled.strategy) : string =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (g, opts, strategy, format_version, Sys.ocaml_version)
          []))

let key ?analysis_opts ?(strategy = Compiled.Eager) (g : Grammar.Ast.t) :
    string =
  key_of_parts g (resolve_opts ?analysis_opts g) strategy

(* The key a compiled value would be stored under.  Uses the options the
   compilation actually resolved, so a warm re-save lands on the same blob
   a later [load]/[compile] with the same inputs will look up. *)
let key_of (c : Compiled.t) : string =
  key_of_parts c.Compiled.surface c.Compiled.opts (Compiled.strategy c)

let cache_file ~dir k = Filename.concat dir (k ^ ".antlrkit-cache")

(* ------------------------------------------------------------------ *)
(* Payload form.

   Live lazy engines hold a mutex, an atomic and derived hash tables,
   none of which [Marshal] accepts, and their builders' raw state depends
   on discovery order.  The marshaled payload is therefore the compiled
   value with [engines] stripped, paired with each engine's canonical
   [Lazy_dfa.portable] form; both halves go through one [Marshal] call so
   structure shared between them (the ATN, interned symbols) is shared in
   the blob too.  Eager compilations pair with [None] and round-trip
   unchanged. *)

type payload = Compiled.t * Lazy_dfa.portable array option

let to_payload (c : Compiled.t) : payload =
  match c.Compiled.engines with
  | None -> (c, None)
  | Some engines ->
      ( { c with Compiled.engines = None },
        Some (Array.map Lazy_dfa.to_portable engines) )

let of_payload ((c, engines) : payload) : Compiled.t =
  match engines with
  | None -> c
  | Some ps ->
      let engines =
        Array.mapi
          (fun i p ->
            Lazy_dfa.of_portable ~opts:c.Compiled.opts c.Compiled.atn
              c.Compiled.atn.Atn.decisions.(i) p)
          ps
      in
      { c with Compiled.engines = Some engines }

(* Digest of the compilation result with the volatile parts normalized
   away: the provenance tag (a cache hit is re-tagged [From_cache]) and
   the report's measured wall-clock analysis time, neither of which is a
   product of the analysis itself.  Because marshaling is deterministic
   for identically constructed values -- and lazy engines are digested in
   their canonical portable form, which is discovery-order independent --
   two compilations of the same grammar agree on this digest iff they
   produced the same ATN, DFAs (or materialized lazy state set), warnings
   and report: the determinism oracle the parallel-analysis tests and the
   scaling bench check against the sequential build.

   The digest marshals with [No_sharing]: default marshaling encodes
   *physical* sharing (two structurally equal values whose internal cons
   cells are shared differently produce different bytes), and sharing of
   config stacks between DFA states is an artifact of closure evaluation
   order -- under concurrent lazy growth it varies with task interleaving
   even when every state is identical.  [No_sharing] makes the bytes a
   pure function of structure.  It would diverge on cyclic input, but
   every type reachable from a payload is an immutable tree (ATN edges
   and config stacks are integer indices, never back-pointers).  The
   on-disk blob in [save] keeps default sharing: there it is a size
   optimization, and round-tripping does not care about bytes. *)
let payload_digest (c : Compiled.t) : string =
  let c = Compiled.with_origin c Compiled.Fresh in
  let c =
    {
      c with
      Compiled.report =
        { c.Compiled.report with Report.analysis_time = 0.0 };
    }
  in
  Digest.to_hex
    (Digest.string (Marshal.to_string (to_payload c) [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Save / load *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Stale temp sweeping.

   [save] names its temp [.<key>-<seq>.tmp.<pid>]; a writer that crashes (or is
   killed) between [open_out_bin] and [Sys.rename] leaves that file behind
   forever -- nothing else ever opens it, so a long-lived process pointing
   many compilations at one cache directory accumulates junk without
   bound.  The sweep removes a temp when its embedded writer pid no longer
   exists (kill 0 -> ESRCH: the writer is gone, the file can never be
   renamed) or, for pids we cannot probe (recycled or unparseable), when
   the file is older than [stale_temp_age_s] -- far beyond any real write,
   which lasts milliseconds.  A concurrent writer's in-flight temp is
   young and its pid alive, so it survives on both counts. *)

let stale_temp_age_s = 3600.0

let temp_writer_pid (name : string) : int option =
  (* [.<hexkey>-<seq>.tmp.<pid>]; only the trailing [.tmp.<pid>] matters *)
  if String.length name = 0 || name.[0] <> '.' then None
  else
    match String.rindex_opt name '.' with
    | None -> None
    | Some i -> (
        let infix_start = i - String.length ".tmp" in
        if infix_start < 0 || String.sub name infix_start 4 <> ".tmp" then None
        else
          match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
          | Some pid when pid > 0 -> Some pid
          | _ -> None)

let pid_alive (pid : int) : bool =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  (* EPERM: the pid exists but belongs to someone else *)
  | exception Unix.Unix_error (_, _, _) -> true

(* Remove stale writer temps from [dir]; returns the removed paths.
   Removal errors are swallowed (another sweeper can win the race), and a
   missing or unreadable directory sweeps nothing. *)
let gc_stale_temps ?(max_age_s = stale_temp_age_s) ~dir () : string list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let now = Unix.gettimeofday () in
      let removed = ref [] in
      Array.iter
        (fun name ->
          match temp_writer_pid name with
          | None -> ()
          | Some pid ->
              let path = Filename.concat dir name in
              let stale =
                if not (pid_alive pid) then true
                else
                  match Unix.stat path with
                  | st -> now -. st.Unix.st_mtime > max_age_s
                  | exception Unix.Unix_error (_, _, _) -> false
              in
              if stale then (
                match Sys.remove path with
                | () -> removed := path :: !removed
                | exception Sys_error _ -> ()))
        names;
      List.rev !removed

(* One sweep per directory per process: [compile] is on the request path
   of a long-lived server, and a readdir per compilation would scale with
   cache size.  The guard is keyed by the raw path string; a directory
   reached through two spellings is swept twice, which is harmless. *)
let swept_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let swept_lock = Mutex.create ()

let sweep_once ~dir : unit =
  let first =
    Mutex.lock swept_lock;
    let f = not (Hashtbl.mem swept_dirs dir) in
    if f then Hashtbl.replace swept_dirs dir ();
    Mutex.unlock swept_lock;
    f
  in
  if first then ignore (gc_stale_temps ~dir ())

(* Distinguishes concurrent writers within one process: the pid suffix
   alone is shared by every domain/thread, and two writers sharing a temp
   path interleave their output -- the rename then publishes a torn blob
   (or fails with ENOENT for the loser). *)
let temp_seq = Atomic.make 0

let save ~dir (c : Compiled.t) : (string, string) result =
  let k = key_of c in
  let path = cache_file ~dir k in
  try
    mkdir_p dir;
    let payload = Marshal.to_string (to_payload c) [] in
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".%s-%d.tmp.%d" k
           (Atomic.fetch_and_add temp_seq 1)
           (Unix.getpid ()))
    in
    let oc = open_out_bin tmp in
    output_string oc magic;
    output_string oc k;
    output_string oc (Digest.to_hex (Digest.string payload));
    output_string oc payload;
    close_out oc;
    Sys.rename tmp path;
    Ok path
  with e -> Error (Printexc.to_string e)

(* Load the blob for key [k]; any validation failure means a rebuild. *)
let load_key ?(tracer = Obs.Trace.null) ~dir (k : string) : Compiled.t option
    =
  let path = cache_file ~dir k in
  let result =
    match open_in_bin path with
    | exception _ -> None
    | ic ->
        let result =
          try
            let m = really_input_string ic (String.length magic) in
            if m <> magic then None
            else
              let file_key = really_input_string ic (String.length k) in
              if file_key <> k then None
              else
                let digest = really_input_string ic 32 in
                let len = in_channel_length ic - pos_in ic in
                if len <= 0 then None
                else
                  let payload = really_input_string ic len in
                  if Digest.to_hex (Digest.string payload) <> digest then None
                  else
                    let p : payload = Marshal.from_string payload 0 in
                    let c = of_payload p in
                    Some (Compiled.with_origin c Compiled.From_cache)
          with _ -> None
        in
        close_in_noerr ic;
        result
  in
  if Obs.Trace.on tracer then
    Obs.Trace.emit tracer
      (Obs.Trace.Cache_load { key = k; hit = result <> None });
  result

let load ?tracer ?analysis_opts ?strategy ~dir (g : Grammar.Ast.t) :
    Compiled.t option =
  load_key ?tracer ~dir (key ?analysis_opts ?strategy g)

(* ------------------------------------------------------------------ *)
(* Load-or-rebuild entry points *)

let compile ?tracer ?analysis_opts ?grammar_source ?pool
    ?(strategy = Compiled.Eager) ~dir (g : Grammar.Ast.t) :
    (Compiled.t * outcome, Compiled.error) result =
  sweep_once ~dir;
  let k = key ?analysis_opts ~strategy g in
  match load_key ?tracer ~dir k with
  | Some c -> Ok (c, Hit)
  | None -> (
      match
        Compiled.compile ?analysis_opts ?grammar_source ?pool ~strategy g
      with
      | Error e -> Error e
      | Ok c ->
          (* Best effort: a read-only or full cache directory must not fail
             the compilation. *)
          ignore (save ~dir c);
          Ok (c, Miss))

let of_source ?tracer ?analysis_opts ?pool ?strategy ~dir (src : string) :
    (Compiled.t * outcome, Compiled.error) result =
  match Grammar.Meta_parser.parse_result src with
  | Error msg -> Error (Compiled.Message msg)
  | Ok surface ->
      compile ?tracer ?analysis_opts ~grammar_source:src ?pool ?strategy ~dir
        surface

let of_source_exn ?analysis_opts ?pool ?strategy ~dir src =
  match of_source ?analysis_opts ?pool ?strategy ~dir src with
  | Ok r -> r
  | Error e -> failwith (Fmt.str "%a" Compiled.pp_error e)
