(* Persistent compilation cache.

   Compiling a grammar -- ATN construction plus lookahead-DFA analysis --
   dominates cold-start time, and it is fully determined by the grammar AST
   and the analysis options.  This module serializes a whole [Compiled.t]
   (ATN, every materialized DFA state, lazy engines when present, and the
   analysis report) to a versioned binary blob keyed by a content hash of
   the grammar, with load-validate-or-rebuild semantics:

   - the cache key is a digest of the surface AST, the resolved analysis
     options, the compilation strategy, the cache format version and the
     compiler version, so any input that could change the result changes
     the file name;
   - the blob carries a magic string, the key, and a digest of the payload;
     a missing, truncated, corrupted or mismatched blob makes [load] return
     [None] -- the caller recompiles, it never crashes (the payload digest
     is verified *before* unmarshaling, so [Marshal] only ever sees bytes
     this module wrote);
   - writes go through a temp file and an atomic rename, so a crashed or
     concurrent writer can leave a stale temp file but never a torn blob.

   A lazy-mode [Compiled.t] can be re-saved after parsing: the blob then
   contains every DFA state materialized so far, and a later [load] resumes
   lazy construction from that warm state. *)

(* Bump whenever the marshaled representation changes shape: any change to
   [Compiled.t] or to a type reachable from it (ASTs, ATN, DFAs, analysis
   results, lazy engines).
   v2: [Grammar.Sym.t] gained the [frozen] field. *)
let format_version = 2

let magic = "ANTLRKIT-CACHE\n"

type outcome = Hit | Miss

(* ------------------------------------------------------------------ *)
(* Keys and paths *)

let resolve_opts ?analysis_opts (g : Grammar.Ast.t) : Analysis.options =
  match analysis_opts with
  | Some o -> o
  | None -> Analysis.options_of_grammar g

let key_of_parts (g : Grammar.Ast.t) (opts : Analysis.options)
    (strategy : Compiled.strategy) : string =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (g, opts, strategy, format_version, Sys.ocaml_version)
          []))

let key ?analysis_opts ?(strategy = Compiled.Eager) (g : Grammar.Ast.t) :
    string =
  key_of_parts g (resolve_opts ?analysis_opts g) strategy

(* The key a compiled value would be stored under.  Uses the options the
   compilation actually resolved, so a warm re-save lands on the same blob
   a later [load]/[compile] with the same inputs will look up. *)
let key_of (c : Compiled.t) : string =
  key_of_parts c.Compiled.surface c.Compiled.opts (Compiled.strategy c)

let cache_file ~dir k = Filename.concat dir (k ^ ".antlrkit-cache")

(* Digest of the compilation result with the volatile parts normalized
   away: the provenance tag (a cache hit is re-tagged [From_cache]) and
   the report's measured wall-clock analysis time, neither of which is a
   product of the analysis itself.  Because marshaling is deterministic
   for identically constructed values, two compilations of the same
   grammar agree on this digest iff they produced the same ATN, DFAs,
   warnings and report -- the determinism oracle the parallel-analysis
   tests and the scaling bench check against the sequential build. *)
let payload_digest (c : Compiled.t) : string =
  let c = Compiled.with_origin c Compiled.Fresh in
  let c =
    {
      c with
      Compiled.report =
        { c.Compiled.report with Report.analysis_time = 0.0 };
    }
  in
  Digest.to_hex (Digest.string (Marshal.to_string c []))

(* ------------------------------------------------------------------ *)
(* Save / load *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir (c : Compiled.t) : (string, string) result =
  let k = key_of c in
  let path = cache_file ~dir k in
  try
    mkdir_p dir;
    let payload = Marshal.to_string c [] in
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".%s.tmp.%d" k (Unix.getpid ()))
    in
    let oc = open_out_bin tmp in
    output_string oc magic;
    output_string oc k;
    output_string oc (Digest.to_hex (Digest.string payload));
    output_string oc payload;
    close_out oc;
    Sys.rename tmp path;
    Ok path
  with e -> Error (Printexc.to_string e)

(* Load the blob for key [k]; any validation failure means a rebuild. *)
let load_key ?(tracer = Obs.Trace.null) ~dir (k : string) : Compiled.t option
    =
  let path = cache_file ~dir k in
  let result =
    match open_in_bin path with
    | exception _ -> None
    | ic ->
        let result =
          try
            let m = really_input_string ic (String.length magic) in
            if m <> magic then None
            else
              let file_key = really_input_string ic (String.length k) in
              if file_key <> k then None
              else
                let digest = really_input_string ic 32 in
                let len = in_channel_length ic - pos_in ic in
                if len <= 0 then None
                else
                  let payload = really_input_string ic len in
                  if Digest.to_hex (Digest.string payload) <> digest then None
                  else
                    let c : Compiled.t = Marshal.from_string payload 0 in
                    Some (Compiled.with_origin c Compiled.From_cache)
          with _ -> None
        in
        close_in_noerr ic;
        result
  in
  if Obs.Trace.on tracer then
    Obs.Trace.emit tracer
      (Obs.Trace.Cache_load { key = k; hit = result <> None });
  result

let load ?tracer ?analysis_opts ?strategy ~dir (g : Grammar.Ast.t) :
    Compiled.t option =
  load_key ?tracer ~dir (key ?analysis_opts ?strategy g)

(* ------------------------------------------------------------------ *)
(* Load-or-rebuild entry points *)

let compile ?tracer ?analysis_opts ?grammar_source ?pool
    ?(strategy = Compiled.Eager) ~dir (g : Grammar.Ast.t) :
    (Compiled.t * outcome, Compiled.error) result =
  let k = key ?analysis_opts ~strategy g in
  match load_key ?tracer ~dir k with
  | Some c -> Ok (c, Hit)
  | None -> (
      match
        Compiled.compile ?analysis_opts ?grammar_source ?pool ~strategy g
      with
      | Error e -> Error e
      | Ok c ->
          (* Best effort: a read-only or full cache directory must not fail
             the compilation. *)
          ignore (save ~dir c);
          Ok (c, Miss))

let of_source ?tracer ?analysis_opts ?pool ?strategy ~dir (src : string) :
    (Compiled.t * outcome, Compiled.error) result =
  match Grammar.Meta_parser.parse_result src with
  | Error msg -> Error (Compiled.Message msg)
  | Ok surface ->
      compile ?tracer ?analysis_opts ~grammar_source:src ?pool ?strategy ~dir
        surface

let of_source_exn ?analysis_opts ?pool ?strategy ~dir src =
  match of_source ?analysis_opts ?pool ?strategy ~dir src with
  | Ok r -> r
  | Error e -> failwith (Fmt.str "%a" Compiled.pp_error e)
