(* End-to-end grammar compilation pipeline:

     validate -> left-recursion rewrite -> PEG mode (if backtrack=true)
       -> syntactic-predicate lifting -> ATN construction
       -> lookahead-DFA analysis for every decision -> report

   The result bundles everything the runtime interpreter needs.

   Two analysis strategies are available.  [Eager] is the paper's static
   analysis: every decision's lookahead DFA is fully materialized up front.
   [Lazy] only builds each decision's start state and hands the runtime a
   [Lazy_dfa] engine per decision; DFA states are then discovered on demand
   at prediction time, which makes cold start proportional to the ATN size
   rather than to the total DFA size.  In lazy mode [results] and [report]
   are the compile-time snapshot (start states only); use the accessors
   [dfa]/[result] for the live view. *)

type error =
  | Validation of Grammar.Validate.issue list
  | Message of string

let pp_error ppf = function
  | Validation issues ->
      Fmt.pf ppf "invalid grammar:@.%a"
        Fmt.(list ~sep:cut Grammar.Validate.pp_issue)
        issues
  | Message m -> Fmt.string ppf m

type strategy = Eager | Lazy

type origin = Fresh | From_cache

type t = {
  surface : Grammar.Ast.t; (* grammar as written *)
  grammar : Grammar.Ast.t; (* prepared grammar the ATN was built from *)
  atn : Atn.t;
  opts : Analysis.options; (* resolved analysis options actually used *)
  results : Analysis.result array; (* per decision; snapshot in lazy mode *)
  report : Report.t;
  engines : Lazy_dfa.t array option; (* per decision, [Lazy] strategy only *)
  origin : origin;
}

let sym t = t.atn.Atn.sym
let options t = t.surface.Grammar.Ast.options
let strategy t = match t.engines with Some _ -> Lazy | None -> Eager
let from_cache t = t.origin = From_cache
let with_origin t origin = { t with origin }
let engine t decision = Option.map (fun e -> e.(decision)) t.engines

(* Live per-decision view: in lazy mode the engine's current (possibly
   partial) DFA, otherwise the statically analyzed one. *)
let result t decision =
  match t.engines with
  | Some e -> Lazy_dfa.result e.(decision)
  | None -> t.results.(decision)

(* The prediction hot path: in lazy mode this must stay lock-free (the
   engine's published snapshot), not go through [result], which takes the
   engine lock to assemble warnings. *)
let dfa t decision =
  match t.engines with
  | Some e -> Lazy_dfa.current e.(decision)
  | None -> t.results.(decision).Analysis.dfa

let num_decisions t = Array.length t.results

(* [pool] fans the per-decision lookahead-DFA work out across a worker
   pool (see [Analysis.analyze_all]); the compiled result is byte-identical
   to the sequential build.  The vocabulary is frozen once the ATN exists,
   so the fan-out shares only provably read-only grammar structures. *)
let compile ?analysis_opts ?grammar_source ?pool ?(strategy = Eager)
    (surface : Grammar.Ast.t) : (t, error) result =
  (* The left-recursion rewrite runs before validation so that immediate
     left recursion -- which the rewrite eliminates -- is not rejected;
     everything it cannot handle still surfaces as a validation error. *)
  let rewritten =
    try Grammar.Leftrec.rewrite surface
    with Invalid_argument _ -> surface
  in
  match Grammar.Validate.errors rewritten with
  | _ :: _ as issues -> Error (Validation issues)
  | [] -> (
      match Grammar.Transform.prepare rewritten with
      | exception Invalid_argument m -> Error (Message m)
      | prepared -> (
          match Atn.Build.build prepared with
          | exception Invalid_argument m -> Error (Message m)
          | atn ->
              (* Interning is complete: close the vocabulary before any
                 analysis work (possibly on worker domains) can reach it. *)
              Grammar.Sym.freeze atn.Atn.sym;
              let opts =
                match analysis_opts with
                | Some o -> o
                | None -> Analysis.options_of_grammar prepared
              in
              let t0 = Unix.gettimeofday () in
              let results, engines =
                match strategy with
                | Eager ->
                    (Analysis.analyze_all ~opts ?pool atn, None)
                | Lazy ->
                    (* Engine creation only builds each decision's start
                       state; they are independent, so the fan-out is the
                       same as the eager one, just over far less work. *)
                    let mk d = Lazy_dfa.create ~opts atn d in
                    let engines =
                      match pool with
                      | Some p when Exec.Pool.jobs p > 1 ->
                          Exec.Pool.map_array p mk atn.Atn.decisions
                      | _ -> Array.map mk atn.Atn.decisions
                    in
                    (Array.map Lazy_dfa.result engines, Some engines)
              in
              let dt = Unix.gettimeofday () -. t0 in
              let grammar_lines =
                match grammar_source with
                | Some src -> Report.count_lines src
                | None -> 0
              in
              let report =
                Report.build ~grammar_lines ~analysis_time:dt atn results
              in
              Ok
                {
                  surface;
                  grammar = prepared;
                  atn;
                  opts;
                  results;
                  report;
                  engines;
                  origin = Fresh;
                }))

let compile_exn ?analysis_opts ?grammar_source ?pool ?strategy surface =
  match compile ?analysis_opts ?grammar_source ?pool ?strategy surface with
  | Ok t -> t
  | Error e -> failwith (Fmt.str "%a" pp_error e)

(* Parse a grammar written in the metalanguage and compile it. *)
let of_source ?analysis_opts ?pool ?strategy (src : string) : (t, error) result
    =
  match Grammar.Meta_parser.parse_result src with
  | Error msg -> Error (Message msg)
  | Ok surface ->
      compile ?analysis_opts ~grammar_source:src ?pool ?strategy surface

let of_source_exn ?analysis_opts ?pool ?strategy src =
  match of_source ?analysis_opts ?pool ?strategy src with
  | Ok t -> t
  | Error e -> failwith (Fmt.str "%a" pp_error e)

(* All analysis warnings across decisions, with their decision ids; the
   live view, so in lazy mode only warnings discovered so far appear. *)
let all_warnings t : Analysis.warning list =
  List.concat_map
    (fun i -> (result t i).Analysis.warnings)
    (List.init (num_decisions t) Fun.id)
