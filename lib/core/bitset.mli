(** Flat [Bytes]-backed bitsets over dense interned-id universes.

    The analysis and runtime hot paths (FIRST/FOLLOW fixpoints, subset
    construction, panic-mode sync sets, LL(1)/LL(k) table building) operate
    on sets of interned symbol ids.  A fixed-universe bitvector makes
    membership, union and intersection O(universe/64) word operations with
    zero allocation on the mutating paths, replacing the tree-backed
    [Set.Make(String)] machinery whose constant factors dominated analysis
    time (cf. LL(finite) and the packrat literature: representation, not
    algorithm, decides the constants).

    All elements live in [0, universe); [add]/[remove] raise
    [Invalid_argument] outside that range, while [mem] simply answers
    [false].  Iteration is always in ascending id order.  The {!Growable}
    variant resizes its universe on demand, for vocabularies still being
    interned while sets are built. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1].  [n >= 0]. *)

val universe : t -> int
val copy : t -> t

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true when every element of [a] is in [b]. *)

val singleton : universe:int -> int -> t
val of_list : universe:int -> int list -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
(** Complement within the universe. *)

val union_into : into:t -> t -> bool
(** [union_into ~into src] adds every element of [src] to [into] in place
    and reports whether [into] changed -- the primitive the FIRST/FOLLOW
    and closure fixpoints iterate on.  Universes must match. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
(** Ascending. *)

val min_elt_opt : t -> int option
val max_elt_opt : t -> int option
val choose_opt : t -> int option

val pp : Format.formatter -> t -> unit

(** Growable-universe variant: [add] beyond the current universe resizes
    the backing store instead of raising.  Used where the id universe is
    still being interned while sets accumulate. *)
module Growable : sig
  type fixed := t
  type t

  val create : ?initial:int -> unit -> t
  val universe : t -> int
  (** Current capacity: one past the largest id ever added, rounded up to
      the allocation granule. *)

  val add : t -> int -> unit
  val mem : t -> int -> bool
  val cardinal : t -> int
  val is_empty : t -> bool
  val iter : (int -> unit) -> t -> unit
  val elements : t -> int list
  val snapshot : universe:int -> t -> fixed
  (** Freeze into a fixed-universe set; elements [>= universe] are dropped. *)
end
