(* Lazy on-demand lookahead-DFA construction.

   The paper's static analysis (section 5) materializes every decision's
   full lookahead DFA before the first parse, which makes cold-start cost
   proportional to grammar size even when a workload exercises only a few
   decisions.  This engine performs the same modified subset construction
   one DFA state at a time, driven by the interpreter at prediction time: a
   prediction that walks off the edge of the materialized DFA asks the
   engine to [sprout] the missing transition, and the discovered state is
   memoized into the same frozen [Look_dfa.t] representation, so warm
   predictions hit the precomputed table path with no lazy-path overhead.

   Equivalence with the eager analysis: all state discovery goes through
   the per-state steps shared with [Analysis] ([init_d0], [step_terminal],
   [settle_fresh], [force_cap_resolution]), and closure behaves identically
   whether or not multi-alternative recursion has been observed yet, so
   every state the engine materializes is exactly the state the eager
   construction (or its Bounded retry) would have built.  The fallback
   ladder mirrors [Analysis.analyze_decision]:

   - recursion in more than one alternative under the [Bounded] strategy
     flips the builder's [allow_multi_recursion] flag and keeps going --
     no restart is needed because the states built so far are identical to
     the ones the eager retry would rebuild;
   - under the [Ll1] strategy, or when the DFA state budget is exhausted,
     the engine abandons incremental construction and installs the result
     of the full eager [analyze_decision] chain ([Rebuilt]).

   [complete] drives the remaining work-list to exhaustion in the same BFS
   order as the eager construction; on a fresh engine it reproduces the
   eager DFA state-for-state, which the test suite pins. *)

type sprout =
  | Edge of { target : int; fresh : bool }
    (* the transition now exists; [fresh] when a new state was discovered *)
  | Resolved
    (* no transition, but the source state acquired an accept or predicate
       edges (k-cap forcing): re-read the state *)
  | No_edge (* nothing moves on this terminal: fall through to predicates *)
  | Rebuilt
    (* incremental construction was abandoned for the full eager fallback:
       restart the prediction walk from the (new) start state *)

type phase =
  | Building of Analysis.builder
  | Done (* complete, or replaced by the eager fallback result *)

type t = {
  atn : Atn.t;
  opts : Analysis.options;
  decision : Atn.decision;
  mutable phase : phase;
  mutable fallback : bool; (* Bounded fallback engaged *)
  mutable pre_warnings : Analysis.warning list;
    (* warnings logically preceding the builder's own, e.g. the
       [Non_ll_regular] reason emitted when the Bounded fallback engages *)
  mutable snapshot : Analysis.result; (* current frozen view *)
  (* observability counters: states discovered at prediction time and
     abandon-to-eager events, surfaced in telemetry snapshots *)
  mutable sprouted : int;
  mutable rebuilds : int;
}

let snapshot_of_builder t (b : Analysis.builder) : Analysis.result =
  (* [~fallback:false]: that flag marks the LL(1) depth-1 fallback DFA
     only; a Bounded retry is still a full subset-construction DFA (the
     eager path does the same), and [result.fallback] records the retry.

     The snapshot's [warnings] are deliberately left empty: warnings live
     in [pre_warnings] and the builder until they are assembled on demand
     ([result]) or once at completion.  Re-concatenating the lists here --
     on every sprout -- made warning bookkeeping quadratic in the number
     of lazily discovered states. *)
  let dfa = Analysis.freeze b ~fallback:false in
  {
    Analysis.dfa;
    klass = Analysis.classify dfa;
    warnings = [];
    fallback = t.fallback;
  }

let refresh t b = t.snapshot <- snapshot_of_builder t b

(* The Bounded-fallback engagement reason.  Set-once: engagement can be
   attempted from several paths (initial D0 construction, a sprout, the
   completion drive), and appending unconditionally would duplicate the
   [Non_ll_regular] warning. *)
let note_non_ll_regular t =
  let w = Analysis.Non_ll_regular { decision = t.decision.Atn.d_id } in
  if not (List.mem w t.pre_warnings) then
    t.pre_warnings <- t.pre_warnings @ [ w ]

let go_eager t : unit =
  let r = Analysis.analyze_decision ~opts:t.opts t.atn t.decision in
  t.phase <- Done;
  t.fallback <- r.Analysis.fallback;
  t.rebuilds <- t.rebuilds + 1;
  t.snapshot <- r

let engage_bounded t (b : Analysis.builder) : unit =
  t.fallback <- true;
  note_non_ll_regular t;
  b.Analysis.allow_multi_recursion <- true

let create ?opts (atn : Atn.t) (decision : Atn.decision) : t =
  let opts =
    match opts with
    | Some o -> o
    | None -> Analysis.options_of_grammar atn.Atn.grammar
  in
  let t =
    {
      atn;
      opts;
      decision;
      phase = Done;
      fallback = false;
      pre_warnings = [];
      snapshot =
        (* placeholder; overwritten below before [create] returns *)
        Analysis.
          {
            dfa =
              Look_dfa.
                {
                  decision = decision.Atn.d_id;
                  start = 0;
                  nstates = 0;
                  edges = [||];
                  accept = [||];
                  preds = [||];
                  overflowed = [||];
                  cyclic = false;
                  max_k = None;
                  uses_synpred = false;
                  fallback = false;
                };
            klass = Fixed 1;
            warnings = [];
            fallback = false;
          };
      sprouted = 0;
      rebuilds = 0;
    }
  in
  let start allow_multi =
    let b =
      Analysis.make_builder atn opts decision
        ~allow_multi_recursion:allow_multi
    in
    ignore (Analysis.init_d0 b);
    t.phase <- Building b;
    refresh t b
  in
  (match start false with
  | () -> ()
  | exception Analysis.Non_ll_regular_exn -> (
      match opts.Analysis.fallback with
      | Analysis.Bounded ->
          t.fallback <- true;
          note_non_ll_regular t;
          start true
      | Analysis.Ll1 -> go_eager t)
  | exception Analysis.Too_big -> go_eager t);
  t

let current t : Look_dfa.t = t.snapshot.Analysis.dfa

(* Assemble warnings on demand while building: the stored snapshot keeps
   them empty (see [snapshot_of_builder]); a completed or eagerly rebuilt
   engine has them baked into the snapshot. *)
let result t : Analysis.result =
  match t.phase with
  | Done -> t.snapshot
  | Building b ->
      {
        t.snapshot with
        Analysis.warnings = t.pre_warnings @ List.rev b.Analysis.warnings;
      }
let is_complete t = match t.phase with Done -> true | Building _ -> false
let materialized t = (current t).Look_dfa.nstates

(* Construction-effort counters for telemetry: states discovered on demand
   at prediction time, and how often incremental construction was abandoned
   for the full eager analysis. *)
let sprouted t = t.sprouted
let rebuilds t = t.rebuilds

(* Materialize the missing transition of [state] over [term], if any. *)
let sprout t ~(state : int) ~(term : int) : sprout =
  match t.phase with
  | Done -> No_edge
  | Building b ->
      let d = Analysis.state_by_id b state in
      if not (Analysis.should_expand b d) then No_edge
      else begin
        let beyond_cap =
          match t.opts.Analysis.k_cap with
          | Some k -> d.Analysis.depth >= k
          | None -> false
        in
        if beyond_cap then begin
          Analysis.force_cap_resolution b d;
          refresh t b;
          Resolved
        end
        else
          let rec attempt retried =
            match Analysis.step_terminal b d term with
            | Some (d', fresh) ->
                refresh t b;
                if fresh then t.sprouted <- t.sprouted + 1;
                Edge { target = d'.Analysis.id; fresh }
            | None -> No_edge
            | exception Analysis.Non_ll_regular_exn ->
                if t.opts.Analysis.fallback = Analysis.Bounded && not retried
                then begin
                  engage_bounded t b;
                  attempt true
                end
                else begin
                  go_eager t;
                  Rebuilt
                end
            | exception Analysis.Too_big ->
                go_eager t;
                Rebuilt
          in
          attempt false
      end

(* Drive the remaining construction to exhaustion, yielding the same
   [Analysis.result] the eager analysis produces (state-for-state identical
   on a fresh engine: the work list visits states in discovery order, which
   is the eager BFS order, and every step is idempotent). *)
let complete t : Analysis.result =
  match t.phase with
  | Done -> t.snapshot
  | Building b ->
      let rec run () =
        match
          let work = Queue.create () in
          List.iter
            (fun d -> if Analysis.should_expand b d then Queue.add d work)
            (List.rev b.Analysis.states);
          while not (Queue.is_empty work) do
            Analysis.expand_state b work (Queue.pop work)
          done
        with
        | () -> ()
        | exception Analysis.Non_ll_regular_exn
          when t.opts.Analysis.fallback = Analysis.Bounded
               && not b.Analysis.allow_multi_recursion ->
            engage_bounded t b;
            run ()
        | exception (Analysis.Non_ll_regular_exn | Analysis.Too_big) ->
            go_eager t
      in
      run ();
      (match t.phase with
      | Done -> () (* eager fallback already installed the result *)
      | Building b ->
          let dfa = Analysis.freeze b ~fallback:false in
          let dfa =
            if t.opts.Analysis.minimize then Minimize.minimize dfa else dfa
          in
          let warnings =
            t.pre_warnings @ List.rev b.Analysis.warnings
            @ Analysis.find_dead_alts b dfa t.decision
          in
          t.snapshot <-
            {
              Analysis.dfa;
              klass = Analysis.classify dfa;
              warnings;
              fallback = t.fallback;
            };
          t.phase <- Done);
      t.snapshot
