(* Lazy on-demand lookahead-DFA construction.

   The paper's static analysis (section 5) materializes every decision's
   full lookahead DFA before the first parse, which makes cold-start cost
   proportional to grammar size even when a workload exercises only a few
   decisions.  This engine performs the same modified subset construction
   one DFA state at a time, driven by the interpreter at prediction time: a
   prediction that walks off the edge of the materialized DFA asks the
   engine to [sprout] the missing transition, and the discovered state is
   memoized into the same frozen [Look_dfa.t] representation, so warm
   predictions hit the precomputed table path with no lazy-path overhead.

   Equivalence with the eager analysis: all state discovery goes through
   the per-state steps shared with [Analysis] ([init_d0], [step_terminal],
   [settle_fresh], [force_cap_resolution]), and closure behaves identically
   whether or not multi-alternative recursion has been observed yet, so
   every state the engine materializes is exactly the state the eager
   construction (or its Bounded retry) would have built.  The fallback
   ladder mirrors [Analysis.analyze_decision]:

   - recursion in more than one alternative under the [Bounded] strategy
     flips the builder's [allow_multi_recursion] flag and keeps going --
     no restart is needed because the states built so far are identical to
     the ones the eager retry would rebuild;
   - under the [Ll1] strategy, or when the DFA state budget is exhausted,
     the engine abandons incremental construction and installs the result
     of the full eager [analyze_decision] chain ([Rebuilt]).

   [complete] drives the remaining work-list to exhaustion in the same BFS
   order as the eager construction; on a fresh engine it reproduces the
   eager DFA state-for-state, which the test suite pins.

   Concurrency (the publication protocol, see DESIGN.md "Execution
   layer"): one engine may be shared by many parsing domains.  All builder
   mutation happens under the engine's mutex; after every mutation a fresh
   immutable snapshot is published through an [Atomic].  Readers
   ([current], [is_complete], the interpreter's table walk) never take the
   lock -- they work off whichever published snapshot they last fetched.
   That is sound because of two invariants that hold while the engine is
   [Building]:

   - state ids are stable and state content only gains information (new
     edges, an accept, predicate edges), so a stale snapshot is a subset
     view: anything it answers, the newest snapshot answers identically;
   - the only discontinuity is the Building -> Done transition (eager
     rebuild or [complete], both of which may renumber states); sprouting
     against a [Done] engine therefore answers [Rebuilt], telling the
     caller to restart its walk from the published start state -- always
     safe, prediction consumes no input.

   [sprout_view] returns the snapshot that backs its answer, so a caller
   resuming its walk is guaranteed a DFA in which the answer (and its own
   state id) is valid, whatever other domains did in between. *)

type sprout =
  | Edge of { target : int; fresh : bool }
    (* the transition now exists; [fresh] when a new state was discovered *)
  | Resolved
    (* no transition, but the source state acquired an accept or predicate
       edges (k-cap forcing): re-read the state *)
  | No_edge (* nothing moves on this terminal: fall through to predicates *)
  | Rebuilt
    (* incremental construction was abandoned for the full eager fallback,
       or completed concurrently: restart the prediction walk from the
       start state of the returned (published) DFA *)

type phase =
  | Building of Analysis.builder
  | Done (* complete, or replaced by the eager fallback result *)

(* What the atomic publishes: the frozen view plus whether construction is
   over.  One immutable record, so a reader always sees a snapshot and its
   phase from the same moment. *)
type view = { snap : Analysis.result; complete : bool }

type t = {
  atn : Atn.t;
  opts : Analysis.options;
  decision : Atn.decision;
  lock : Mutex.t; (* guards every mutable field below *)
  mutable phase : phase;
  mutable fallback : bool; (* Bounded fallback engaged *)
  mutable pre_warnings : Analysis.warning list;
    (* warnings logically preceding the builder's own, e.g. the
       [Non_ll_regular] reason emitted when the Bounded fallback engages *)
  pub : view Atomic.t; (* current frozen view, published for lock-free reads *)
  (* observability counters: states discovered at prediction time and
     abandon-to-eager events, surfaced in telemetry snapshots *)
  mutable sprouted : int;
  mutable rebuilds : int;
}

let snapshot_of_builder t (b : Analysis.builder) : Analysis.result =
  (* [~fallback:false]: that flag marks the LL(1) depth-1 fallback DFA
     only; a Bounded retry is still a full subset-construction DFA (the
     eager path does the same), and [result.fallback] records the retry.

     The snapshot's [warnings] are deliberately left empty: warnings live
     in [pre_warnings] and the builder until they are assembled on demand
     ([result]) or once at completion.  Re-concatenating the lists here --
     on every sprout -- made warning bookkeeping quadratic in the number
     of lazily discovered states. *)
  let dfa = Analysis.freeze b ~fallback:false in
  {
    Analysis.dfa;
    klass = Analysis.classify dfa;
    warnings = [];
    fallback = t.fallback;
  }

(* Publish a fresh frozen view of the builder.  Caller holds the lock. *)
let refresh t b =
  Atomic.set t.pub { snap = snapshot_of_builder t b; complete = false }

(* The Bounded-fallback engagement reason.  Set-once: engagement can be
   attempted from several paths (initial D0 construction, a sprout, the
   completion drive), and appending unconditionally would duplicate the
   [Non_ll_regular] warning. *)
let note_non_ll_regular t =
  let w = Analysis.Non_ll_regular { decision = t.decision.Atn.d_id } in
  if not (List.mem w t.pre_warnings) then
    t.pre_warnings <- t.pre_warnings @ [ w ]

(* Caller holds the lock (or has exclusive access during [create]). *)
let go_eager t : unit =
  let r = Analysis.analyze_decision ~opts:t.opts t.atn t.decision in
  t.phase <- Done;
  t.fallback <- r.Analysis.fallback;
  t.rebuilds <- t.rebuilds + 1;
  Atomic.set t.pub { snap = r; complete = true }

let engage_bounded t (b : Analysis.builder) : unit =
  t.fallback <- true;
  note_non_ll_regular t;
  b.Analysis.allow_multi_recursion <- true

let empty_result (decision : Atn.decision) : Analysis.result =
  Analysis.
    {
      dfa =
        Look_dfa.
          {
            decision = decision.Atn.d_id;
            start = 0;
            nstates = 0;
            edges = [||];
            accept = [||];
            preds = [||];
            overflowed = [||];
            cyclic = false;
            max_k = None;
            uses_synpred = false;
            fallback = false;
          };
      klass = Fixed 1;
      warnings = [];
      fallback = false;
    }

let create ?opts (atn : Atn.t) (decision : Atn.decision) : t =
  let opts =
    match opts with
    | Some o -> o
    | None -> Analysis.options_of_grammar atn.Atn.grammar
  in
  let t =
    {
      atn;
      opts;
      decision;
      lock = Mutex.create ();
      phase = Done;
      fallback = false;
      pre_warnings = [];
      (* placeholder; overwritten below before [create] returns *)
      pub = Atomic.make { snap = empty_result decision; complete = true };
      sprouted = 0;
      rebuilds = 0;
    }
  in
  let start allow_multi =
    let b =
      Analysis.make_builder atn opts decision
        ~allow_multi_recursion:allow_multi
    in
    ignore (Analysis.init_d0 b);
    t.phase <- Building b;
    refresh t b
  in
  (match start false with
  | () -> ()
  | exception Analysis.Non_ll_regular_exn -> (
      match opts.Analysis.fallback with
      | Analysis.Bounded ->
          t.fallback <- true;
          note_non_ll_regular t;
          start true
      | Analysis.Ll1 -> go_eager t)
  | exception Analysis.Too_big -> go_eager t);
  t

(* Lock-free: the latest published frozen DFA. *)
let current t : Look_dfa.t = (Atomic.get t.pub).snap.Analysis.dfa
let is_complete t = (Atomic.get t.pub).complete

(* Assemble warnings on demand while building: the stored snapshot keeps
   them empty (see [snapshot_of_builder]); a completed or eagerly rebuilt
   engine has them baked into the snapshot. *)
let result t : Analysis.result =
  Mutex.lock t.lock;
  let r =
    match t.phase with
    | Done -> (Atomic.get t.pub).snap
    | Building b ->
        {
          (Atomic.get t.pub).snap with
          Analysis.warnings = t.pre_warnings @ List.rev b.Analysis.warnings;
        }
  in
  Mutex.unlock t.lock;
  r

let materialized t = (current t).Look_dfa.nstates

(* Construction-effort counters for telemetry: states discovered on demand
   at prediction time, and how often incremental construction was abandoned
   for the full eager analysis.  Plain word-sized reads; racy by design. *)
let sprouted t = t.sprouted
let rebuilds t = t.rebuilds

(* Materialize the missing transition of [state] over [term], if any.
   Returns the published snapshot backing the answer: the caller resumes
   its prediction walk on that DFA, never on the (possibly stale) one it
   was walking when the lookup missed. *)
let sprout_view t ~(state : int) ~(term : int) : sprout * Look_dfa.t =
  (* Lock-free fast path: another domain may already have sprouted this
     transition, in which case the newest published snapshot answers
     without contending on the lock.  Valid only while building -- state
     ids are stable then; a completed engine may have renumbered
     (minimization, eager rebuild), so the caller must restart rather
     than reuse its state id against the new numbering. *)
  let v = Atomic.get t.pub in
  if v.complete then (Rebuilt, v.snap.Analysis.dfa)
  else
    match Look_dfa.lookup_edge v.snap.Analysis.dfa state term with
    | Some target -> (Edge { target; fresh = false }, v.snap.Analysis.dfa)
    | None -> (
        Mutex.lock t.lock;
        let answer =
          match t.phase with
          | Done -> Rebuilt
          | Building b ->
              let d = Analysis.state_by_id b state in
              if not (Analysis.should_expand b d) then No_edge
              else begin
                let beyond_cap =
                  match t.opts.Analysis.k_cap with
                  | Some k -> d.Analysis.depth >= k
                  | None -> false
                in
                if beyond_cap then begin
                  Analysis.force_cap_resolution b d;
                  refresh t b;
                  Resolved
                end
                else
                  let rec attempt retried =
                    match Analysis.step_terminal b d term with
                    | Some (d', fresh) ->
                        refresh t b;
                        if fresh then t.sprouted <- t.sprouted + 1;
                        Edge { target = d'.Analysis.id; fresh }
                    | None -> No_edge
                    | exception Analysis.Non_ll_regular_exn ->
                        if
                          t.opts.Analysis.fallback = Analysis.Bounded
                          && not retried
                        then begin
                          engage_bounded t b;
                          attempt true
                        end
                        else begin
                          go_eager t;
                          Rebuilt
                        end
                    | exception Analysis.Too_big ->
                        go_eager t;
                        Rebuilt
                  in
                  attempt false
              end
        in
        (* Read the view inside the lock so the returned DFA is the one
           the answer was computed against. *)
        let v = Atomic.get t.pub in
        Mutex.unlock t.lock;
        (answer, v.snap.Analysis.dfa))

let sprout t ~state ~term : sprout = fst (sprout_view t ~state ~term)

(* Drive the remaining construction to exhaustion, yielding the same
   [Analysis.result] the eager analysis produces (state-for-state identical
   on a fresh engine: the work list visits states in discovery order, which
   is the eager BFS order, and every step is idempotent). *)
let complete t : Analysis.result =
  Mutex.lock t.lock;
  let finish () =
    let r = (Atomic.get t.pub).snap in
    Mutex.unlock t.lock;
    r
  in
  match t.phase with
  | Done -> finish ()
  | Building b ->
      let rec run () =
        match
          let work = Queue.create () in
          List.iter
            (fun d -> if Analysis.should_expand b d then Queue.add d work)
            (List.rev b.Analysis.states);
          while not (Queue.is_empty work) do
            Analysis.expand_state b work (Queue.pop work)
          done
        with
        | () -> ()
        | exception Analysis.Non_ll_regular_exn
          when t.opts.Analysis.fallback = Analysis.Bounded
               && not b.Analysis.allow_multi_recursion ->
            engage_bounded t b;
            run ()
        | exception (Analysis.Non_ll_regular_exn | Analysis.Too_big) ->
            go_eager t
      in
      run ();
      (match t.phase with
      | Done -> () (* eager fallback already installed the result *)
      | Building b ->
          let dfa = Analysis.freeze b ~fallback:false in
          let dfa =
            if t.opts.Analysis.minimize then Minimize.minimize dfa else dfa
          in
          let warnings =
            t.pre_warnings @ List.rev b.Analysis.warnings
            @ Analysis.find_dead_alts b dfa t.decision
          in
          Atomic.set t.pub
            {
              snap =
                {
                  Analysis.dfa;
                  klass = Analysis.classify dfa;
                  warnings;
                  fallback = t.fallback;
                };
              complete = true;
            };
          t.phase <- Done);
      finish ()

(* ------------------------------------------------------------------ *)
(* Canonical serialized form.

   An engine contains a mutex, an atomic and derived hash tables -- none
   of which marshal -- and, worse, the builder's raw state is
   discovery-order dependent: two runs that materialize the same state
   *set* through different prediction interleavings (different job
   counts, different input orders) number the states differently and
   record different sample paths.  [to_portable] therefore renumbers
   states canonically -- BFS from the start state following terminal
   edges in sorted order -- recomputes depths and sample paths along that
   BFS tree, and canonically sorts warnings (dropping their sample paths,
   which also record discovery order).  Two engines that materialized the
   same state set serialize identically, whatever order the states were
   discovered in; the warm-blob digest tests pin this.

   Derived tables (dedup, by-id, the closure memo) are dropped and
   rebuilt on load -- the memo cold, it is a pure cache.  Note the
   canonical depth is the BFS distance in the materialized graph; a state
   first discovered through a longer walk keeps that longer depth
   in-process but is normalized on the way to disk (observable only
   through the grammar's optional k-cap, which compares depths). *)

type portable_state = {
  ps_configs : Config.t list;
  ps_term_edges : (int * int) list; (* canonical ids, sorted by terminal *)
  ps_accept : int;
  ps_pred_edges : Look_dfa.pred_edge list;
  ps_overflow : bool;
  ps_depth : int;
  ps_path : int list; (* canonical sample path from D0, reversed *)
}

type portable_building = {
  pb_states : portable_state array; (* canonical BFS order; index = id *)
  pb_recursive_alts : int list;
  pb_warnings : Analysis.warning list; (* canonically sorted, paths dropped *)
  pb_uses_synpred : bool;
  pb_allow_multi : bool;
}

type portable_phase =
  | P_done of Analysis.result
  | P_building of portable_building

type portable = {
  p_decision : int;
  p_fallback : bool;
  p_pre_warnings : Analysis.warning list;
  p_sprouted : int;
  p_rebuilds : int;
  p_phase : portable_phase;
}

let strip_warning_path : Analysis.warning -> Analysis.warning = function
  | Analysis.Ambiguity { decision; alts; path = _ } ->
      Analysis.Ambiguity { decision; alts; path = [] }
  | Analysis.Overflow { decision; path = _ } ->
      Analysis.Overflow { decision; path = [] }
  | w -> w

let canonical_warnings ws =
  List.sort_uniq compare (List.map strip_warning_path ws)

let portable_of_builder (b : Analysis.builder) : portable_building =
  let states = Array.of_list (List.rev b.Analysis.states) in
  let n = Array.length states in
  (* Sorted outgoing edges per original id. *)
  let sorted_edges =
    Array.map
      (fun (d : Analysis.wstate) ->
        List.sort compare (List.rev d.Analysis.term_edges))
      states
  in
  (* BFS from state 0: canonical id, depth and sample path per state. *)
  let canon_of = Array.make n (-1) in
  let order = Array.make n 0 (* canonical id -> original id *) in
  let depth = Array.make n 0 in
  let path = Array.make n [] in
  let next = ref 0 in
  let visit orig ~d ~p =
    canon_of.(orig) <- !next;
    order.(!next) <- orig;
    depth.(!next) <- d;
    path.(!next) <- p;
    incr next
  in
  if n > 0 then begin
    let q = Queue.create () in
    visit 0 ~d:0 ~p:[];
    Queue.add 0 q;
    while not (Queue.is_empty q) do
      let orig = Queue.pop q in
      let c = canon_of.(orig) in
      List.iter
        (fun (term, tgt) ->
          if canon_of.(tgt) < 0 then begin
            visit tgt ~d:(depth.(c) + 1) ~p:(term :: path.(c));
            Queue.add tgt q
          end)
        sorted_edges.(orig)
    done;
    (* Defensive: every state is created as the target of a recorded edge
       (or is D0), so everything is reachable; if that invariant ever
       broke, append the strays in original order rather than losing
       them. *)
    Array.iteri
      (fun orig (d : Analysis.wstate) ->
        if canon_of.(orig) < 0 then
          visit orig ~d:d.Analysis.depth ~p:d.Analysis.path)
      states
  end;
  let pb_states =
    Array.init n (fun cid ->
        let d = states.(order.(cid)) in
        {
          ps_configs = d.Analysis.configs;
          ps_term_edges =
            List.sort compare
              (List.map
                 (fun (term, tgt) -> (term, canon_of.(tgt)))
                 sorted_edges.(order.(cid)));
          ps_accept = d.Analysis.accept;
          ps_pred_edges = d.Analysis.pred_edges;
          ps_overflow = d.Analysis.overflow;
          ps_depth = depth.(cid);
          ps_path = path.(cid);
        })
  in
  {
    pb_states;
    pb_recursive_alts = Bitset.elements b.Analysis.recursive_alts;
    pb_warnings = canonical_warnings b.Analysis.warnings;
    pb_uses_synpred = b.Analysis.uses_synpred;
    pb_allow_multi = b.Analysis.allow_multi_recursion;
  }

let to_portable t : portable =
  Mutex.lock t.lock;
  let p =
    {
      p_decision = t.decision.Atn.d_id;
      p_fallback = t.fallback;
      p_pre_warnings = t.pre_warnings;
      p_sprouted = t.sprouted;
      p_rebuilds = t.rebuilds;
      p_phase =
        (match t.phase with
        | Done -> P_done (Atomic.get t.pub).snap
        | Building b -> P_building (portable_of_builder b));
    }
  in
  Mutex.unlock t.lock;
  p

let of_portable ~(opts : Analysis.options) (atn : Atn.t)
    (decision : Atn.decision) (p : portable) : t =
  let t =
    {
      atn;
      opts;
      decision;
      lock = Mutex.create ();
      phase = Done;
      fallback = p.p_fallback;
      pre_warnings = p.p_pre_warnings;
      pub = Atomic.make { snap = empty_result decision; complete = true };
      sprouted = p.p_sprouted;
      rebuilds = p.p_rebuilds;
    }
  in
  (match p.p_phase with
  | P_done r -> Atomic.set t.pub { snap = r; complete = true }
  | P_building pb ->
      let b =
        Analysis.make_builder atn opts decision
          ~allow_multi_recursion:pb.pb_allow_multi
      in
      Array.iter
        (fun ps ->
          Analysis.restore_wstate b ~configs:ps.ps_configs
            ~term_edges:ps.ps_term_edges ~accept:ps.ps_accept
            ~pred_edges:ps.ps_pred_edges ~overflow:ps.ps_overflow
            ~depth:ps.ps_depth ~path:ps.ps_path)
        pb.pb_states;
      List.iter (Bitset.add b.Analysis.recursive_alts) pb.pb_recursive_alts;
      (* [builder.warnings] is newest-first; the canonical list re-reverses
         to that convention so [result] assembles them in list order. *)
      b.Analysis.warnings <- List.rev pb.pb_warnings;
      b.Analysis.uses_synpred <- pb.pb_uses_synpred;
      t.phase <- Building b;
      refresh t b);
  t
