(* Flat Bytes-backed bitsets over dense interned-id universes.

   Bit [i] lives in byte [i lsr 3] at mask [1 lsl (i land 7)].  The byte
   granularity keeps the representation portable across 32/64-bit words and
   lets union/inter run as straight byte loops the compiler unrolls well;
   universes here are small (symbol vocabularies, alternative counts), so
   the constant factor of byte-at-a-time vs word-at-a-time is irrelevant
   next to the allocation-free membership and in-place-union wins over
   [Set.Make(String)]. *)

type t = { bits : Bytes.t; universe : int }

(* Popcount per byte, for O(bytes) cardinal. *)
let popcount8 =
  let tbl = Bytes.create 256 in
  for i = 0 to 255 do
    let rec count n = if n = 0 then 0 else (n land 1) + count (n lsr 1) in
    Bytes.unsafe_set tbl i (Char.chr (count i))
  done;
  tbl

let nbytes universe = (universe + 7) lsr 3

let create universe =
  if universe < 0 then invalid_arg "Bitset.create: negative universe";
  { bits = Bytes.make (nbytes universe) '\000'; universe }

let universe t = t.universe

let copy t = { bits = Bytes.copy t.bits; universe = t.universe }

let check_range name t i =
  if i < 0 || i >= t.universe then
    invalid_arg
      (Printf.sprintf "Bitset.%s: %d outside universe [0,%d)" name i t.universe)

let add t i =
  check_range "add" t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

let remove t i =
  check_range "remove" t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits b) land lnot (1 lsl (i land 7))))

let mem t i =
  i >= 0 && i < t.universe
  && Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let is_empty t =
  let n = Bytes.length t.bits in
  let rec go i = i >= n || (Bytes.unsafe_get t.bits i = '\000' && go (i + 1)) in
  go 0

let cardinal t =
  let n = Bytes.length t.bits in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      + Char.code (Bytes.unsafe_get popcount8 (Char.code (Bytes.unsafe_get t.bits i)))
  done;
  !acc

let same_universe name a b =
  if a.universe <> b.universe then
    invalid_arg
      (Printf.sprintf "Bitset.%s: universes differ (%d vs %d)" name a.universe
         b.universe)

let equal a b = same_universe "equal" a b; Bytes.equal a.bits b.bits

let subset a b =
  same_universe "subset" a b;
  let n = Bytes.length a.bits in
  let rec go i =
    i >= n
    ||
    let x = Char.code (Bytes.unsafe_get a.bits i) in
    let y = Char.code (Bytes.unsafe_get b.bits i) in
    x land lnot y = 0 && go (i + 1)
  in
  go 0

let singleton ~universe i =
  let t = create universe in
  add t i;
  t

let of_list ~universe xs =
  let t = create universe in
  List.iter (add t) xs;
  t

let map2 name f a b =
  same_universe name a b;
  let n = Bytes.length a.bits in
  let bits = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set bits i
      (Char.unsafe_chr
         (f
            (Char.code (Bytes.unsafe_get a.bits i))
            (Char.code (Bytes.unsafe_get b.bits i))
         land 0xff))
  done;
  { bits; universe = a.universe }

let union a b = map2 "union" (fun x y -> x lor y) a b
let inter a b = map2 "inter" (fun x y -> x land y) a b
let diff a b = map2 "diff" (fun x y -> x land lnot y) a b

(* Complement within the universe: mask the last byte's slack bits so they
   stay zero (iteration and cardinal rely on that invariant). *)
let complement t =
  let n = Bytes.length t.bits in
  let bits = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set bits i
      (Char.unsafe_chr (lnot (Char.code (Bytes.unsafe_get t.bits i)) land 0xff))
  done;
  let slack = t.universe land 7 in
  if slack <> 0 && n > 0 then
    Bytes.unsafe_set bits (n - 1)
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits (n - 1)) land ((1 lsl slack) - 1)));
  { bits; universe = t.universe }

let union_into ~into src =
  same_universe "union_into" into src;
  let n = Bytes.length into.bits in
  let changed = ref false in
  for i = 0 to n - 1 do
    let x = Char.code (Bytes.unsafe_get into.bits i) in
    let y = Char.code (Bytes.unsafe_get src.bits i) in
    let m = x lor y in
    if m <> x then begin
      changed := true;
      Bytes.unsafe_set into.bits i (Char.unsafe_chr m)
    end
  done;
  !changed

let iter f t =
  let n = Bytes.length t.bits in
  for b = 0 to n - 1 do
    let byte = Char.code (Bytes.unsafe_get t.bits b) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then f ((b lsl 3) lor bit)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let min_elt_opt t =
  let exception Found of int in
  match iter (fun i -> raise (Found i)) t with
  | () -> None
  | exception Found i -> Some i

let max_elt_opt t = fold (fun i _ -> Some i) t None

let choose_opt = min_elt_opt

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))

module Growable = struct
  type fixed = t

  let fixed_create = create
  let fixed_add = add

  type t = { mutable bits : Bytes.t; mutable cap : int }

  let granule = 64 (* ids; 8 bytes *)

  let create ?(initial = granule) () =
    let initial = max granule initial in
    { bits = Bytes.make (nbytes initial) '\000'; cap = initial }

  let universe t = t.cap

  let ensure t i =
    if i >= t.cap then begin
      let cap = ref (max t.cap granule) in
      while i >= !cap do
        cap := !cap * 2
      done;
      let bits = Bytes.make (nbytes !cap) '\000' in
      Bytes.blit t.bits 0 bits 0 (Bytes.length t.bits);
      t.bits <- bits;
      t.cap <- !cap
    end

  let add t i =
    if i < 0 then invalid_arg "Bitset.Growable.add: negative id";
    ensure t i;
    let b = i lsr 3 in
    Bytes.unsafe_set t.bits b
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

  let mem t i =
    i >= 0 && i < t.cap
    && Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7))
       <> 0

  let as_fixed t : fixed = { bits = t.bits; universe = t.cap }

  let cardinal t = cardinal (as_fixed t)
  let is_empty t = is_empty (as_fixed t)
  let iter f t = iter f (as_fixed t)
  let elements t = elements (as_fixed t)

  let snapshot ~universe:u t : fixed =
    let s = fixed_create u in
    iter (fun i -> if i < u then fixed_add s i) t;
    s
end
