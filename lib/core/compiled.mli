(** End-to-end grammar compilation: validation, transforms, ATN
    construction and lookahead-DFA analysis for every decision.

    This is the main entry point of the core library:

    {[
      let c = Llstar.Compiled.of_source_exn "grammar T; s : A | B ;" in
      Fmt.pr "%a" Llstar.Report.pp c.report
    ]} *)

type error =
  | Validation of Grammar.Validate.issue list
  | Message of string

val pp_error : Format.formatter -> error -> unit

type strategy =
  | Eager  (** full static analysis of every decision up front *)
  | Lazy
      (** start states only; lookahead DFAs are grown on demand at
          prediction time by per-decision {!Lazy_dfa} engines *)

type origin = Fresh | From_cache

type t = {
  surface : Grammar.Ast.t;  (** the grammar as written *)
  grammar : Grammar.Ast.t;  (** prepared grammar the ATN was built from *)
  atn : Atn.t;
  opts : Analysis.options;  (** resolved analysis options actually used *)
  results : Analysis.result array;
      (** indexed by decision number; in lazy mode this is the compile-time
          snapshot (start states only) -- use {!result}/{!dfa} for the live
          view *)
  report : Report.t;
  engines : Lazy_dfa.t array option;
      (** per-decision lazy engines; [Some] iff compiled with [Lazy] *)
  origin : origin;  (** whether this value was loaded from the cache *)
}

val sym : t -> Grammar.Sym.t
(** The vocabulary: terminal and rule ids shared by the ATN, the DFAs, the
    lexer engine and the parser. *)

val options : t -> Grammar.Ast.options
val strategy : t -> strategy
val from_cache : t -> bool

val with_origin : t -> origin -> t
(** Re-tag the provenance; used by {!Compiled_cache} on load. *)

val engine : t -> int -> Lazy_dfa.t option
(** The lazy engine of a decision, when compiled with [Lazy]. *)

val result : t -> int -> Analysis.result
(** Live analysis result of a decision: the engine's current (possibly
    partial) DFA in lazy mode, the static one otherwise. *)

val dfa : t -> int -> Look_dfa.t
val num_decisions : t -> int

val compile :
  ?analysis_opts:Analysis.options ->
  ?grammar_source:string ->
  ?pool:Exec.Pool.t ->
  ?strategy:strategy ->
  Grammar.Ast.t ->
  (t, error) result
(** Compile a grammar.  [grammar_source] is only used to record the line
    count in the report.  The left-recursion rewrite runs before
    validation, so immediately left-recursive rules are accepted.
    [strategy] defaults to [Eager].  [pool] fans per-decision lookahead-DFA
    analysis out across the pool's workers; the result (and its
    {!Compiled_cache} payload digest) is byte-identical to the sequential
    build, because decisions are independent and merged in decision
    order. *)

val compile_exn :
  ?analysis_opts:Analysis.options ->
  ?grammar_source:string ->
  ?pool:Exec.Pool.t ->
  ?strategy:strategy ->
  Grammar.Ast.t ->
  t

val of_source :
  ?analysis_opts:Analysis.options ->
  ?pool:Exec.Pool.t ->
  ?strategy:strategy ->
  string ->
  (t, error) result
(** Parse metalanguage source and compile it. *)

val of_source_exn :
  ?analysis_opts:Analysis.options ->
  ?pool:Exec.Pool.t ->
  ?strategy:strategy ->
  string ->
  t

val all_warnings : t -> Analysis.warning list
