(** FIRST / FOLLOW / FIRST_k over the BNF skeleton.

    The computation interns every terminal and nonterminal into dense
    integer ids at {!compute} time and runs its fixpoints over
    [Bitset.t] vectors; the string-keyed functions below are thin
    compatibility views kept for validation, pretty-printing and tests.
    Hot paths should use the [_ids] API.

    FIRST_k works with sets of terminal sequences of length <= k under
    truncating concatenation; it is the substrate of the fixed-k LL(k)
    baseline and of the LPG blow-up demonstration (paper section 2). *)

module SS : Set.S with type elt = string

module SeqSet : Set.S with type elt = string list

module IdSeqSet : Set.S with type elt = int list
(** Terminal-id sequences, for the id-based FIRST_k. *)

type t

val eof_name : string

val eof : int
(** Interned terminal id of [eof_name]; always [0]. *)

val compute : Bnf.t -> t

(** {1 Interned symbol spaces}

    Terminals occupy ids [0 .. num_terms-1] (EOF is id 0); nonterminals
    occupy a separate space [0 .. num_nonterms-1].  In compiled
    productions both spaces share one [int] code: a terminal id is coded
    as itself ([>= 0]) and a nonterminal id [n] as [lnot n] ([< 0]). *)

val num_terms : t -> int
val num_nonterms : t -> int
val term_id : t -> string -> int option
val term_name : t -> int -> string
val nonterm_id : t -> string -> int option
val nonterm_name : t -> int -> string

val code_of_term : int -> int
val code_of_nonterm : int -> int
val is_term_code : int -> bool
val nonterm_of_code : int -> int

val num_prods : t -> int
(** Productions are indexed in [Bnf.t.prods] order. *)

val prod_lhs_id : t -> int -> int
val prod_rhs_ids : t -> int -> int array
(** The compiled rhs of production [i]; symbol codes, not to be
    mutated. *)

(** {1 Id-based hot-path API} *)

val nullable_id : t -> int -> bool
val first_ids : t -> int -> Bitset.t
(** FIRST set of a nonterminal id, universe [num_terms].  The returned
    set is the computation's own vector: do not mutate it. *)

val follow_ids : t -> int -> Bitset.t
(** FOLLOW set of a nonterminal id; same ownership rule as
    {!first_ids}. *)

val first_seq_ids : t -> int array -> pos:int -> Bitset.t * bool
(** FIRST of the coded symbol-sequence suffix starting at [pos], plus
    whether that suffix is nullable.  The result is freshly allocated and
    owned by the caller. *)

val first_k_ids : ?max_set_size:int -> t -> int -> int array -> IdSeqSet.t
(** Id-based FIRST_k over a coded symbol sequence.  The per-nonterminal
    fixpoint table is memoized per [(k, max_set_size)] on [t]. *)

(** {1 String-keyed compatibility views} *)

val is_nullable : t -> string -> bool
val first_of : t -> string -> SS.t
val follow_of : t -> string -> SS.t

val first_seq : t -> Bnf.symbol list -> SS.t * bool
(** FIRST of a symbol sequence, plus whether the whole sequence is
    nullable. *)

exception Blowup of int
(** Raised by {!first_k} when an intermediate sequence set exceeds
    [max_set_size]; carries the size reached. *)

val concat_k : int -> SeqSet.t -> SeqSet.t -> SeqSet.t
(** Truncating concatenation of sequence sets. *)

val concat_k_ids : int -> IdSeqSet.t -> IdSeqSet.t -> IdSeqSet.t

val first_k : ?max_set_size:int -> t -> int -> Bnf.symbol list -> SeqSet.t
(** All terminal sequences of length <= k that can begin a derivation of the
    given symbols.  O(|T|^k) in the worst case, by design: the blow-up is
    the phenomenon under study. *)
