(* FIRST / FOLLOW / FIRST_k computation over the BNF skeleton.

   The fixpoints run over interned-id bitsets: every terminal and
   nonterminal of the BNF is interned into a dense integer space at
   [compute] time, productions are compiled to flat int arrays, and the
   FIRST/FOLLOW sets are [Bitset.t] vectors indexed by nonterminal id.
   Membership, union and the change-detection the fixpoints iterate on are
   allocation-free byte operations instead of [Set.Make(String)] tree
   merges; [First_follow_ref] keeps the original string-set implementation
   as the differential-testing oracle.

   The string-keyed API ([first_of], [follow_of], [first_seq], [first_k])
   is retained as a thin compatibility view for validation, pretty-printing
   and tests; hot paths (LL(1)/LL(k) table construction, the interpreter's
   panic-mode sync sets) use the [_ids] API directly.

   FIRST_k works with sets of terminal-id sequences of length <= k,
   combined with the truncating concatenation x (+)_k y (Parr's thesis
   notation); it is the substrate for the fixed-k LL(k) baseline and the
   LPG-style exponential-blow-up demonstration (paper section 2). *)

module SS = Set.Make (String)

module SeqSet = Set.Make (struct
  type t = string list

  let compare = compare
end)

module IdSeqSet = Set.Make (struct
  type t = int list

  let compare = compare
end)

let eof_name = "EOF"
let eof = 0

(* Symbol codes in compiled productions: a terminal id [t] is coded as
   itself (>= 0), a nonterminal id [n] as [lnot n] (< 0).  [unknown_sym]
   codes a query-time nonterminal the grammar does not define (its FIRST_k
   contribution is the empty set, matching the reference semantics). *)
let code_of_term t = t
let code_of_nonterm n = lnot n
let is_term_code c = c >= 0
let nonterm_of_code c = lnot c
let unknown_sym = min_int

type t = {
  bnf : Bnf.t;
  term_ids : (string, int) Hashtbl.t;
  term_names : string array;
  nt_ids : (string, int) Hashtbl.t;
  nt_names : string array;
  nullable : bool array; (* per nonterm id *)
  first : Bitset.t array; (* per nonterm id, universe = num_terms *)
  follow : Bitset.t array;
  prod_lhs : int array; (* aligned with bnf.prods order *)
  prod_rhs : int array array; (* symbol codes *)
  (* FIRST_k fixpoint tables, memoized per (k, max_set_size): LL(k)
     analysis queries every production of a rule at the same k, and the
     table depends only on the grammar, not on the queried sequence *)
  firstk_cache : (int * int, IdSeqSet.t array) Hashtbl.t;
}

let num_terms t = Array.length t.term_names
let num_nonterms t = Array.length t.nt_names
let term_id t name = Hashtbl.find_opt t.term_ids name

let term_name t id =
  if id >= 0 && id < Array.length t.term_names then t.term_names.(id)
  else Printf.sprintf "<term:%d>" id

let nonterm_id t name = Hashtbl.find_opt t.nt_ids name

let nonterm_name t id =
  if id >= 0 && id < Array.length t.nt_names then t.nt_names.(id)
  else Printf.sprintf "<nonterm:%d>" id

let compute (bnf : Bnf.t) : t =
  (* Intern both universes: EOF is terminal 0; nonterminals cover every
     name appearing on either side of a production, so rhs references to
     undefined rules still get (empty, non-nullable) entries like the
     reference implementation gave them. *)
  let term_ids = Hashtbl.create 64 in
  let term_rev = ref [ eof_name ] in
  let term_count = ref 1 in
  Hashtbl.add term_ids eof_name eof;
  let intern_term name =
    match Hashtbl.find_opt term_ids name with
    | Some id -> id
    | None ->
        let id = !term_count in
        Hashtbl.add term_ids name id;
        term_rev := name :: !term_rev;
        incr term_count;
        id
  in
  let nt_ids = Hashtbl.create 64 in
  let nt_rev = ref [] in
  let nt_count = ref 0 in
  let intern_nt name =
    match Hashtbl.find_opt nt_ids name with
    | Some id -> id
    | None ->
        let id = !nt_count in
        Hashtbl.add nt_ids name id;
        nt_rev := name :: !nt_rev;
        incr nt_count;
        id
  in
  List.iter (fun n -> ignore (intern_nt n)) bnf.Bnf.nonterms;
  List.iter (fun a -> ignore (intern_term a)) bnf.Bnf.terms;
  let prods = Array.of_list bnf.Bnf.prods in
  let prod_lhs = Array.map (fun (p : Bnf.prod) -> intern_nt p.lhs) prods in
  let prod_rhs =
    Array.map
      (fun (p : Bnf.prod) ->
        Array.of_list
          (List.map
             (function
               | Bnf.T a -> code_of_term (intern_term a)
               | Bnf.N n -> code_of_nonterm (intern_nt n))
             p.rhs))
      prods
  in
  let nterms = !term_count in
  let nnts = !nt_count in
  let term_names = Array.of_list (List.rev !term_rev) in
  let nt_names = Array.of_list (List.rev !nt_rev) in
  let nullable = Array.make nnts false in
  let first = Array.init nnts (fun _ -> Bitset.create nterms) in
  let follow = Array.init nnts (fun _ -> Bitset.create nterms) in
  let nprods = Array.length prods in
  (* nullable fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to nprods - 1 do
      let lhs = prod_lhs.(i) in
      if not nullable.(lhs) then begin
        let rhs = prod_rhs.(i) in
        let all_nullable =
          let rec go j =
            j >= Array.length rhs
            || (let s = rhs.(j) in
                (not (is_term_code s)) && nullable.(nonterm_of_code s) && go (j + 1))
          in
          go 0
        in
        if all_nullable then begin
          nullable.(lhs) <- true;
          changed := true
        end
      end
    done
  done;
  (* FIRST fixpoint: accumulate straight into the lhs set ([union_into]
     reports changes, so no fresh sets or equality scans per pass) *)
  changed := true;
  while !changed do
    changed := false;
    for i = 0 to nprods - 1 do
      let fs = first.(prod_lhs.(i)) in
      let rhs = prod_rhs.(i) in
      let rec scan j =
        if j < Array.length rhs then
          let s = rhs.(j) in
          if is_term_code s then begin
            if not (Bitset.mem fs s) then begin
              Bitset.add fs s;
              changed := true
            end
          end
          else begin
            let n = nonterm_of_code s in
            if Bitset.union_into ~into:fs first.(n) then changed := true;
            if nullable.(n) then scan (j + 1)
          end
      in
      scan 0
    done
  done;
  (* FOLLOW fixpoint; EOF follows the start symbol. *)
  (match Hashtbl.find_opt nt_ids bnf.Bnf.start with
  | Some s -> Bitset.add follow.(s) eof
  | None -> ());
  changed := true;
  while !changed do
    changed := false;
    for i = 0 to nprods - 1 do
      let lhs = prod_lhs.(i) in
      let rhs = prod_rhs.(i) in
      let len = Array.length rhs in
      for j = 0 to len - 1 do
        let s = rhs.(j) in
        if not (is_term_code s) then begin
          let n = nonterm_of_code s in
          let fl = follow.(n) in
          let rec rest k =
            if k >= len then begin
              if Bitset.union_into ~into:fl follow.(lhs) then changed := true
            end
            else
              let s' = rhs.(k) in
              if is_term_code s' then begin
                if not (Bitset.mem fl s') then begin
                  Bitset.add fl s';
                  changed := true
                end
              end
              else begin
                let n' = nonterm_of_code s' in
                if Bitset.union_into ~into:fl first.(n') then changed := true;
                if nullable.(n') then rest (k + 1)
              end
          in
          rest (j + 1)
        end
      done
    done
  done;
  {
    bnf;
    term_ids;
    term_names;
    nt_ids;
    nt_names;
    nullable;
    first;
    follow;
    prod_lhs;
    prod_rhs;
    firstk_cache = Hashtbl.create 4;
  }

(* ------------------------------------------------------------------ *)
(* Id-based hot-path API *)

let nullable_id t n =
  n >= 0 && n < Array.length t.nullable && t.nullable.(n)

let empty_terms t = Bitset.create (num_terms t)

let first_ids t n =
  if n >= 0 && n < Array.length t.first then t.first.(n) else empty_terms t

let follow_ids t n =
  if n >= 0 && n < Array.length t.follow then t.follow.(n) else empty_terms t

let num_prods t = Array.length t.prod_lhs
let prod_lhs_id t i = t.prod_lhs.(i)
let prod_rhs_ids t i = t.prod_rhs.(i)

(* FIRST of a coded symbol-sequence suffix, plus whether it is nullable;
   the result set is freshly allocated and owned by the caller. *)
let first_seq_ids t (syms : int array) ~(pos : int) : Bitset.t * bool =
  let acc = empty_terms t in
  let len = Array.length syms in
  let rec scan j =
    if j >= len then true
    else
      let s = syms.(j) in
      if is_term_code s then begin
        Bitset.add acc s;
        false
      end
      else begin
        let n = nonterm_of_code s in
        ignore (Bitset.union_into ~into:acc (first_ids t n));
        if nullable_id t n then scan (j + 1) else false
      end
  in
  let nullable = scan pos in
  (acc, nullable)

(* ------------------------------------------------------------------ *)
(* String-keyed compatibility views *)

let to_string_set t (s : Bitset.t) : SS.t =
  Bitset.fold (fun id acc -> SS.add t.term_names.(id) acc) s SS.empty

let is_nullable t name =
  match nonterm_id t name with Some n -> t.nullable.(n) | None -> false

let first_of t name =
  match nonterm_id t name with
  | Some n -> to_string_set t t.first.(n)
  | None -> SS.empty

let follow_of t name =
  match nonterm_id t name with
  | Some n -> to_string_set t t.follow.(n)
  | None -> SS.empty

(* FIRST of a symbol sequence (string view). *)
let first_seq t (syms : Bnf.symbol list) : SS.t * bool =
  let rec scan acc = function
    | [] -> (acc, true)
    | Bnf.T a :: _ -> (SS.add a acc, false)
    | Bnf.N n :: rest ->
        let acc = SS.union (first_of t n) acc in
        if is_nullable t n then scan acc rest else (acc, false)
  in
  scan SS.empty syms

(* ------------------------------------------------------------------ *)
(* FIRST_k: sets of terminal-id sequences of length <= k.

   A sequence shorter than k in the result means derivation ended (reached
   end of all contexts); sequences are truncated at k.  [max_set_size]
   guards the exponential blow-up: when any intermediate set exceeds it,
   [Blowup] is raised carrying the size reached, which the LPG-anecdote
   bench catches and reports. *)

exception Blowup of int

(* Truncating concatenation of id-sequence sets. *)
let concat_k_ids k (a : IdSeqSet.t) (b : IdSeqSet.t) : IdSeqSet.t =
  IdSeqSet.fold
    (fun x acc ->
      if List.length x >= k then IdSeqSet.add x acc
      else
        IdSeqSet.fold
          (fun y acc ->
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | z :: rest -> z :: take (n - 1) rest
            in
            IdSeqSet.add (x @ take (k - List.length x) y) acc)
          b acc)
    a IdSeqSet.empty

(* Truncating concatenation of string-sequence sets (compatibility). *)
let concat_k k (a : SeqSet.t) (b : SeqSet.t) : SeqSet.t =
  SeqSet.fold
    (fun x acc ->
      if List.length x >= k then SeqSet.add x acc
      else
        SeqSet.fold
          (fun y acc ->
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | z :: rest -> z :: take (n - 1) rest
            in
            SeqSet.add (x @ take (k - List.length x) y) acc)
          b acc)
    a SeqSet.empty

(* The per-nonterminal FIRST_k fixpoint table, memoized per
   (k, max_set_size): it depends only on the grammar, so LL(k) analysis
   probing every production of a rule at the same k pays for it once.  A
   blow-up is never cached, so every query over the same parameters raises
   identically. *)
let firstk_table t ~max_set_size k : IdSeqSet.t array =
  match Hashtbl.find_opt t.firstk_cache (k, max_set_size) with
  | Some tbl -> tbl
  | None ->
      let nnts = num_nonterms t in
      let tbl = Array.make nnts IdSeqSet.empty in
      let seq_first (syms : int array) ~pos =
        let len = Array.length syms in
        let rec go acc j =
          if j >= len then acc
          else
            let s =
              let c = syms.(j) in
              if c = unknown_sym then IdSeqSet.empty
              else if is_term_code c then IdSeqSet.singleton [ c ]
              else tbl.(nonterm_of_code c)
            in
            let acc = concat_k_ids k acc s in
            if acc = IdSeqSet.empty then acc
            else if IdSeqSet.for_all (fun x -> List.length x >= k) acc then acc
            else go acc (j + 1)
        in
        go (IdSeqSet.singleton []) pos
      in
      let nprods = num_prods t in
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to nprods - 1 do
          let lhs = t.prod_lhs.(i) in
          let cur = tbl.(lhs) in
          let nw = IdSeqSet.union cur (seq_first t.prod_rhs.(i) ~pos:0) in
          if IdSeqSet.cardinal nw > max_set_size then
            raise (Blowup (IdSeqSet.cardinal nw));
          if not (IdSeqSet.equal nw cur) then begin
            tbl.(lhs) <- nw;
            changed := true
          end
        done
      done;
      Hashtbl.replace t.firstk_cache (k, max_set_size) tbl;
      tbl

(* FIRST_k over coded symbols; sequences are terminal ids. *)
let first_k_ids ?(max_set_size = 200_000) t k (syms : int array) : IdSeqSet.t =
  let tbl = firstk_table t ~max_set_size k in
  let len = Array.length syms in
  let rec go acc j =
    if j >= len then acc
    else
      let s =
        let c = syms.(j) in
        if c = unknown_sym then IdSeqSet.empty
        else if is_term_code c then IdSeqSet.singleton [ c ]
        else tbl.(nonterm_of_code c)
      in
      let acc = concat_k_ids k acc s in
      if acc = IdSeqSet.empty then acc
      else if IdSeqSet.for_all (fun x -> List.length x >= k) acc then acc
      else go acc (j + 1)
  in
  go (IdSeqSet.singleton []) 0

(* String view of FIRST_k.  Query symbols the grammar never mentions are
   given transient ids so unknown terminals still appear in result
   sequences by name, and unknown nonterminals contribute the empty set --
   both matching the reference implementation. *)
let first_k ?max_set_size t k (syms : Bnf.symbol list) : SeqSet.t =
  let extra_ids : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let extra_names : (int, string) Hashtbl.t = Hashtbl.create 4 in
  let next_extra = ref (num_terms t) in
  let code_of = function
    | Bnf.T a -> (
        match term_id t a with
        | Some id -> code_of_term id
        | None -> (
            match Hashtbl.find_opt extra_ids a with
            | Some id -> code_of_term id
            | None ->
                let id = !next_extra in
                incr next_extra;
                Hashtbl.add extra_ids a id;
                Hashtbl.add extra_names id a;
                code_of_term id))
    | Bnf.N n -> (
        match nonterm_id t n with
        | Some id -> code_of_nonterm id
        | None -> unknown_sym)
  in
  let codes = Array.of_list (List.map code_of syms) in
  let ids = first_k_ids ?max_set_size t k codes in
  let name id =
    if id < num_terms t then t.term_names.(id)
    else match Hashtbl.find_opt extra_names id with Some n -> n | None -> term_name t id
  in
  IdSeqSet.fold
    (fun seq acc -> SeqSet.add (List.map name seq) acc)
    ids SeqSet.empty
