(* Random sentence generation from a grammar: the workload substrate used in
   place of the paper's proprietary corpora (DESIGN.md, Substitution 2).

   Generation performs a random leftmost derivation.  A size budget steers
   alternative choice: each rule/alternative has a precomputed minimal
   terminal yield; while the budget lasts, alternatives are chosen uniformly
   at random, and once it is exhausted the cheapest alternative is forced so
   derivations terminate.  Semantic predicates are assumed true; syntactic
   predicates generate nothing (they consume no input). *)

open Ast

type t = {
  grammar : Ast.t;
  min_cost : (string, int) Hashtbl.t; (* rule -> minimal terminal yield *)
}

let big = 1_000_000

let prepare (grammar : Ast.t) : t =
  let min_cost = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace min_cost r.name big) grammar.rules;
  let rule_cost name =
    match Hashtbl.find_opt min_cost name with Some c -> c | None -> big
  in
  let rec elem_cost = function
    | Term _ | Wild -> 1
    | Nonterm { name; _ } -> rule_cost name
    | Sem_pred _ | Prec_pred _ | Syn_pred _ | Action _ -> 0
    | Block { suffix = Opt | Star; _ } -> 0
    | Block { alts; suffix = One | Plus } ->
        List.fold_left (fun m a -> min m (alt_cost a)) big alts
  and alt_cost a =
    List.fold_left (fun acc e -> min big (acc + elem_cost e)) 0 a.elems
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let c = List.fold_left (fun m a -> min m (alt_cost a)) big r.rule_alts in
        if c < rule_cost r.name then begin
          Hashtbl.replace min_cost r.name c;
          changed := true
        end)
      grammar.rules
  done;
  { grammar; min_cost }

(* Every terminal spelling the grammar mentions, in first-occurrence order
   (wildcards excluded): the substitution vocabulary for fuzzing mutations. *)
let vocabulary t : string list =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec elem = function
    | Term name -> add name
    | Wild | Nonterm _ | Sem_pred _ | Prec_pred _ | Action _ -> ()
    | Syn_pred alts | Block { alts; _ } -> List.iter alt alts
  and alt a = List.iter elem a.elems in
  List.iter (fun r -> List.iter alt r.rule_alts) t.grammar.rules;
  List.rev !out

(* Deterministic per-sentence RNG: independent streams for (seed, index), so
   a fuzz run can regenerate sentence [i] without replaying 0..i-1. *)
let rng_of_seed ?(index = 0) seed : Random.State.t =
  Random.State.make [| 0x5eed; seed; index |]

let alt_cost t (a : alt) =
  let rule_cost name =
    match Hashtbl.find_opt t.min_cost name with Some c -> c | None -> big
  in
  let rec elem_cost = function
    | Term _ | Wild -> 1
    | Nonterm { name; _ } -> rule_cost name
    | Sem_pred _ | Prec_pred _ | Syn_pred _ | Action _ -> 0
    | Block { suffix = Opt | Star; _ } -> 0
    | Block { alts; suffix = One | Plus } ->
        List.fold_left (fun m a -> min m (alt_cost a)) big alts
  and alt_cost a =
    List.fold_left (fun acc e -> min big (acc + elem_cost e)) 0 a.elems
  in
  alt_cost a

(* Pick an alternative: random while the budget lasts, cheapest otherwise. *)
let choose_alt t rng budget (alts : alt list) : alt =
  let arr = Array.of_list alts in
  if budget > 0 then arr.(Random.State.int rng (Array.length arr))
  else begin
    let best = ref arr.(0) and best_c = ref (alt_cost t arr.(0)) in
    Array.iter
      (fun a ->
        let c = alt_cost t a in
        if c < !best_c then begin
          best := a;
          best_c := c
        end)
      arr;
    !best
  end

exception Unproductive
(* Raised when generation cannot terminate: every alternative of some rule
   recurses with no finite-yield base case, so forcing the cheapest
   alternative still diverges.  Callers treat the sentence as ungenerable. *)

(* Generate a sentence as a list of terminal spellings.
   @raise Unproductive on grammars with no finite derivation. *)
let generate ?(start : string option) t ~rng ~size : string list =
  let out = ref [] in
  let budget = ref size in
  let hard_floor = -((8 * size) + 64) in
  let steps = ref 0 in
  (* bounds both runaway emission and zero-yield recursion *)
  let max_steps = (64 * size) + 4096 in
  let emit name =
    out := name :: !out;
    decr budget;
    if !budget < hard_floor then raise Unproductive
  in
  let rec gen_rule name =
    incr steps;
    if !steps > max_steps then raise Unproductive;
    match find_rule t.grammar name with
    | None -> ()
    | Some r -> gen_alt (choose_alt t rng !budget r.rule_alts)
  and gen_alt a = List.iter gen_elem a.elems
  and gen_elem = function
    | Term name -> emit name
    | Wild -> emit "." (* callers substitute an arbitrary token *)
    | Nonterm { name; _ } -> gen_rule name
    | Sem_pred _ | Prec_pred _ | Syn_pred _ | Action _ -> ()
    | Block { alts; suffix } -> (
        match suffix with
        | One -> gen_alt (choose_alt t rng !budget alts)
        | Opt -> if !budget > 0 && Random.State.bool rng then
              gen_alt (choose_alt t rng !budget alts)
        | Star ->
            while !budget > 0 && Random.State.int rng 3 > 0 do
              gen_alt (choose_alt t rng !budget alts)
            done
        | Plus ->
            gen_alt (choose_alt t rng !budget alts);
            while !budget > 0 && Random.State.int rng 3 > 0 do
              gen_alt (choose_alt t rng !budget alts)
            done)
  in
  let start = match start with Some s -> s | None -> t.grammar.start in
  gen_rule start;
  List.rev !out

(* Render terminal spellings to program text.  Literal terminals print their
   raw text; other token types are produced by [sample] (e.g. a fresh
   identifier for [ID]).  A newline is inserted after terminals in
   [break_after] so generated programs have realistic line counts. *)
let render ?(break_after = [ ";"; "{"; "}" ]) ~sample (terms : string list) :
    string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      if name <> Sym.eof_name then begin
        let text =
          if Sym.is_literal_name name then Sym.unquote name else sample name
        in
        Buffer.add_string buf text;
        if List.mem text break_after then Buffer.add_char buf '\n'
        else Buffer.add_char buf ' '
      end)
    terms;
  Buffer.contents buf
