(* Symbol vocabulary: interning of terminals (token types) and nonterminals
   (rule names).

   Terminal ids and nonterminal ids live in separate dense integer spaces so
   that both can index arrays directly.  Terminal id 0 is always EOF; terminal
   id 1 is the wildcard placeholder used by the [.] grammar element.

   Terminals come in two flavours:
   - named token types, written with an uppercase initial in the metalanguage
     (e.g. [ID], [INT]);
   - literal tokens, written single-quoted (e.g. ['int'], ['+=']).  A literal
     is interned under its quoted spelling and remembers its raw text so the
     lexer engine can build its keyword/operator tables from the vocabulary. *)

type t = {
  mutable term_names : string array;
  mutable nterm_names : string array;
  term_ids : (string, int) Hashtbl.t;
  nterm_ids : (string, int) Hashtbl.t;
  mutable nterms : int;
  mutable nterms_cap : int;
  mutable terms : int;
  mutable terms_cap : int;
  literal_text : (int, string) Hashtbl.t; (* literal terminal id -> raw text *)
  mutable frozen : bool;
    (* interning is closed: any attempt to add a *new* symbol raises.
       Compilation freezes the vocabulary after ATN construction, before
       analysis work fans out across domains, so the table is provably
       read-only while workers share it (lookups never mutate). *)
}

let eof = 0
let wildcard = 1
let eof_name = "EOF"
let wildcard_name = "."

let create () =
  let t =
    {
      term_names = Array.make 16 "";
      nterm_names = Array.make 16 "";
      term_ids = Hashtbl.create 64;
      nterm_ids = Hashtbl.create 64;
      nterms = 0;
      nterms_cap = 16;
      terms = 0;
      terms_cap = 16;
      literal_text = Hashtbl.create 16;
      frozen = false;
    }
  in
  (* Reserve EOF and the wildcard so their ids are stable. *)
  Hashtbl.add t.term_ids eof_name eof;
  t.term_names.(eof) <- eof_name;
  Hashtbl.add t.term_ids wildcard_name wildcard;
  t.term_names.(wildcard) <- wildcard_name;
  t.terms <- 2;
  t

let grow arr cap used v =
  if used < cap then (arr, cap)
  else begin
    let cap' = cap * 2 in
    let arr' = Array.make cap' v in
    Array.blit arr 0 arr' 0 used;
    (arr', cap')
  end

let is_literal_name name = String.length name >= 2 && name.[0] = '\''

(* ['foo'] -> [foo]; assumes a well-formed quoted spelling. *)
let unquote name =
  if is_literal_name name then String.sub name 1 (String.length name - 2)
  else name

let freeze t = t.frozen <- true
let is_frozen t = t.frozen

let frozen_failure kind name =
  invalid_arg
    (Printf.sprintf
       "Sym: intern of new %s %S after freeze (the vocabulary is closed \
        once analysis begins; pre-intern every symbol before fan-out)"
       kind name)

let intern_term t name =
  match Hashtbl.find_opt t.term_ids name with
  | Some id -> id
  | None when t.frozen -> frozen_failure "terminal" name
  | None ->
      let id = t.terms in
      let arr, cap = grow t.term_names t.terms_cap t.terms "" in
      t.term_names <- arr;
      t.terms_cap <- cap;
      t.term_names.(id) <- name;
      Hashtbl.add t.term_ids name id;
      t.terms <- id + 1;
      if is_literal_name name then Hashtbl.add t.literal_text id (unquote name);
      id

let intern_nonterm t name =
  match Hashtbl.find_opt t.nterm_ids name with
  | Some id -> id
  | None when t.frozen -> frozen_failure "nonterminal" name
  | None ->
      let id = t.nterms in
      let arr, cap = grow t.nterm_names t.nterms_cap t.nterms "" in
      t.nterm_names <- arr;
      t.nterms_cap <- cap;
      t.nterm_names.(id) <- name;
      Hashtbl.add t.nterm_ids name id;
      t.nterms <- id + 1;
      id

let find_term t name = Hashtbl.find_opt t.term_ids name
let find_nonterm t name = Hashtbl.find_opt t.nterm_ids name

let term_name t id =
  if id >= 0 && id < t.terms then t.term_names.(id)
  else Printf.sprintf "<term:%d>" id

let nonterm_name t id =
  if id >= 0 && id < t.nterms then t.nterm_names.(id)
  else Printf.sprintf "<rule:%d>" id

let num_terms t = t.terms
let num_nonterms t = t.nterms
let literal_text t id = Hashtbl.find_opt t.literal_text id
let is_literal t id = Hashtbl.mem t.literal_text id

(* All literal terminals as (raw text, id), for lexer-table construction. *)
let literals t =
  Hashtbl.fold (fun id text acc -> (text, id) :: acc) t.literal_text []
  |> List.sort compare

let pp_term t ppf id = Fmt.string ppf (term_name t id)
let pp_nonterm t ppf id = Fmt.string ppf (nonterm_name t id)
