(** Random sentence generation from a grammar: the workload substrate used
    in place of the paper's proprietary corpora (DESIGN.md, Substitution 2).

    Generation performs a random leftmost derivation.  A size budget steers
    alternative choice: while it lasts alternatives are uniform-random, and
    once exhausted the cheapest (minimal terminal yield) alternative is
    forced so derivations terminate.  Semantic predicates are assumed true;
    syntactic predicates generate nothing. *)

type t

val prepare : Ast.t -> t
(** Precompute minimal terminal yields per rule. *)

val vocabulary : t -> string list
(** Every terminal spelling the grammar mentions, in first-occurrence order
    (wildcards excluded): the substitution vocabulary for fuzzing
    mutations. *)

val rng_of_seed : ?index:int -> int -> Random.State.t
(** Deterministic RNG for sentence [index] of a seeded run: independent
    streams per [(seed, index)] pair. *)

exception Unproductive
(** Raised when generation cannot terminate: some reachable rule has no
    finite-yield derivation. *)

val generate :
  ?start:string -> t -> rng:Random.State.t -> size:int -> string list
(** A sentence as a list of terminal spellings ([ID], ['int'], ...).
    @raise Unproductive on grammars with no finite derivation *)

val render :
  ?break_after:string list -> sample:(string -> string) -> string list -> string
(** Render terminal spellings to program text: literal terminals print
    their raw text; other token classes are produced by [sample].  A
    newline follows any text in [break_after] (default [";"], ["{"], ["}"])
    so generated programs have realistic line counts. *)
