(** Symbol vocabulary: interning of terminals (token types) and nonterminals
    (rule names).

    Terminals and nonterminals live in separate dense integer id spaces.
    Terminal id {!eof} (0) is always the end-of-file token; terminal id
    {!wildcard} (1) is the placeholder matched by the [.] grammar element. *)

type t

val create : unit -> t

val eof : int
(** Terminal id of the implicit end-of-file token. *)

val wildcard : int
(** Terminal id of the wildcard pseudo-terminal used by [.]. *)

val eof_name : string

val intern_term : t -> string -> int
(** [intern_term t name] returns the id for terminal [name], creating it if
    needed.  A single-quoted [name] (e.g. ["'int'"]) is registered as a
    literal token and its raw text recorded for lexer-table construction. *)

val intern_nonterm : t -> string -> int

val freeze : t -> unit
(** Close the vocabulary: after [freeze t], interning a symbol that is not
    already present raises [Invalid_argument] (looking up or re-interning
    an existing symbol stays legal and never mutates).  Compilation
    freezes the vocabulary once ATN construction is done, which makes the
    table safely shareable -- read-only by construction -- across the
    worker domains of the parallel analysis and batch-parse drivers. *)

val is_frozen : t -> bool

val find_term : t -> string -> int option
val find_nonterm : t -> string -> int option
val term_name : t -> int -> string
val nonterm_name : t -> int -> string
val num_terms : t -> int
val num_nonterms : t -> int

val is_literal_name : string -> bool
(** Whether a terminal spelling denotes a literal token (['...']). *)

val unquote : string -> string
(** [unquote "'foo'"] is ["foo"]; other spellings pass through unchanged. *)

val literal_text : t -> int -> string option
(** Raw (unquoted) text of a literal terminal, if [id] is one. *)

val is_literal : t -> int -> bool

val literals : t -> (string * int) list
(** All literal terminals as [(raw text, id)], sorted. *)

val pp_term : t -> Format.formatter -> int -> unit
val pp_nonterm : t -> Format.formatter -> int -> unit
