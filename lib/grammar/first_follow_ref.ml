(* Reference FIRST / FOLLOW / FIRST_k over Set.Make(String): the
   pre-interning implementation, retained verbatim as the oracle for the
   bitset rewrite in [First_follow].

   The live implementation runs the same fixpoints over interned-id bitsets
   (Bitset); this module exists so the differential property tests
   (test/test_bitset.ml) and the hot-path micro-bench (bench/sets.ml) can
   compare the two on identical inputs.  Do not add callers: production
   code must use [First_follow]. *)

module SS = Set.Make (String)

module SeqSet = Set.Make (struct
  type t = string list

  let compare = compare
end)

type t = {
  bnf : Bnf.t;
  nullable : (string, bool) Hashtbl.t;
  first : (string, SS.t) Hashtbl.t;
  follow : (string, SS.t) Hashtbl.t;
}

let eof_name = "EOF"

let is_nullable t n =
  match Hashtbl.find_opt t.nullable n with Some b -> b | None -> false

let first_of t n =
  match Hashtbl.find_opt t.first n with Some s -> s | None -> SS.empty

let follow_of t n =
  match Hashtbl.find_opt t.follow n with Some s -> s | None -> SS.empty

let compute (bnf : Bnf.t) : t =
  let nullable = Hashtbl.create 16 in
  let first = Hashtbl.create 16 in
  let follow = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace nullable n false;
      Hashtbl.replace first n SS.empty;
      Hashtbl.replace follow n SS.empty)
    bnf.nonterms;
  let get tbl n =
    match Hashtbl.find_opt tbl n with Some s -> s | None -> SS.empty
  in
  let nul n =
    match Hashtbl.find_opt nullable n with Some b -> b | None -> false
  in
  (* nullable fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Bnf.prod) ->
        if not (nul p.lhs) then
          let all_nullable =
            List.for_all
              (function Bnf.T _ -> false | Bnf.N n -> nul n)
              p.rhs
          in
          if all_nullable then begin
            Hashtbl.replace nullable p.lhs true;
            changed := true
          end)
      bnf.prods
  done;
  (* FIRST fixpoint *)
  changed := true;
  while !changed do
    changed := false;
    List.iter
      (fun (p : Bnf.prod) ->
        let cur = get first p.lhs in
        let adds = ref SS.empty in
        let rec scan = function
          | [] -> ()
          | Bnf.T a :: _ -> adds := SS.add a !adds
          | Bnf.N n :: rest ->
              adds := SS.union (get first n) !adds;
              if nul n then scan rest
        in
        scan p.rhs;
        let merged = SS.union cur !adds in
        if not (SS.equal merged cur) then begin
          Hashtbl.replace first p.lhs merged;
          changed := true
        end)
      bnf.prods
  done;
  (* FOLLOW fixpoint; EOF follows the start symbol. *)
  Hashtbl.replace follow bnf.start (SS.singleton eof_name);
  changed := true;
  while !changed do
    changed := false;
    List.iter
      (fun (p : Bnf.prod) ->
        let rec scan = function
          | [] -> ()
          | Bnf.T _ :: rest -> scan rest
          | Bnf.N n :: rest ->
              let cur = get follow n in
              let adds = ref SS.empty in
              let rec first_of_rest = function
                | [] -> adds := SS.union (get follow p.lhs) !adds
                | Bnf.T a :: _ -> adds := SS.add a !adds
                | Bnf.N n' :: rest' ->
                    adds := SS.union (get first n') !adds;
                    if nul n' then first_of_rest rest'
              in
              first_of_rest rest;
              let merged = SS.union cur !adds in
              if not (SS.equal merged cur) then begin
                Hashtbl.replace follow n merged;
                changed := true
              end;
              scan rest
        in
        scan p.rhs)
      bnf.prods
  done;
  { bnf; nullable; first; follow }

(* FIRST of a symbol sequence. *)
let first_seq t (syms : Bnf.symbol list) : SS.t * bool =
  let rec scan acc = function
    | [] -> (acc, true)
    | Bnf.T a :: _ -> (SS.add a acc, false)
    | Bnf.N n :: rest ->
        let acc = SS.union (first_of t n) acc in
        if is_nullable t n then scan acc rest else (acc, false)
  in
  scan SS.empty syms

(* ------------------------------------------------------------------ *)
(* FIRST_k: sets of terminal sequences of length <= k.

   A sequence shorter than k in the result means derivation ended (reached
   end of all contexts); sequences are truncated at k.  [max_set_size] guards
   the exponential blow-up: when any intermediate set exceeds it,
   [Blowup] is raised carrying the size reached, which the LPG-anecdote
   bench catches and reports. *)

exception Blowup of int

(* Truncating concatenation of sequence sets. *)
let concat_k k (a : SeqSet.t) (b : SeqSet.t) : SeqSet.t =
  SeqSet.fold
    (fun x acc ->
      if List.length x >= k then SeqSet.add x acc
      else
        SeqSet.fold
          (fun y acc ->
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | z :: rest -> z :: take (n - 1) rest
            in
            SeqSet.add (x @ take (k - List.length x) y) acc)
          b acc)
    a SeqSet.empty

let first_k ?(max_set_size = 200_000) t k (syms : Bnf.symbol list) : SeqSet.t =
  (* Iterative deepening on derivation depth with memo per (nonterm, depth
     budget) would be costly; instead compute FIRST_k per nonterminal by
     fixpoint. *)
  let tbl : (string, SeqSet.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun n -> Hashtbl.replace tbl n SeqSet.empty)
    t.bnf.nonterms;
  let get n =
    match Hashtbl.find_opt tbl n with Some s -> s | None -> SeqSet.empty
  in
  let seq_first syms =
    let rec go acc = function
      | [] -> acc
      | sym :: rest ->
          let s =
            match sym with
            | Bnf.T a -> SeqSet.singleton [ a ]
            | Bnf.N n -> get n
          in
          let acc = concat_k k acc s in
          if acc = SeqSet.empty then acc
          else if SeqSet.for_all (fun x -> List.length x >= k) acc then acc
          else go acc rest
    in
    go (SeqSet.singleton []) syms
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Bnf.prod) ->
        let cur = get p.lhs in
        let nw = SeqSet.union cur (seq_first p.rhs) in
        if SeqSet.cardinal nw > max_set_size then
          raise (Blowup (SeqSet.cardinal nw));
        if not (SeqSet.equal nw cur) then begin
          Hashtbl.replace tbl p.lhs nw;
          changed := true
        end)
      t.bnf.prods
  done;
  seq_first syms
