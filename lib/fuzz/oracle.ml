(* Cross-parser differential oracle.

   Independent recognizers exist for every benchmark grammar: the
   LL-star interpreter over the compiled ATN, the packrat/PEG interpreter
   over the surface grammar, the Earley chart parser over the BNF skeleton,
   (when the skeleton is conflict-free) the table-driven LL(1) parser,
   and the committed generated parser from lib/gen, which must agree with
   the interpreter not just on accept/reject but on error position and
   consumed-token count.
   Agreement between them is the correctness claim of the paper's sections
   6-7, so any *unexplained* disagreement on an input is a bug in one of
   them.  The oracle runs an input through every applicable backend and
   classifies the result.

   Expected (normalized) disagreements -- see DESIGN.md:

   - ordered choice: a PEG-mode or order-resolved grammar deliberately
     accepts a subset of its context-free language, so Earley accepting
     while LL-star/packrat reject is expected; the reverse direction (LL-star
     accepts, Earley rejects) is always a soundness bug;
   - predicates: semantic predicates are erased from the BNF skeleton and
     the packrat baseline cannot evaluate token-context predicates, so
     predicated grammars only get the Earley soundness check and the
     crash/termination guards;
   - fuel: the packrat and Earley baselines run under a step/item budget
     and the LL-star parser under a wall-clock cap, so nontermination and
     super-linear blow-ups surface as flagged guard trips rather than a
     hung fuzzer. *)

module Workload = Bench_grammars.Workload

type verdict = Accept | Reject | Crash of string | Gave_up

let pp_verdict ppf = function
  | Accept -> Fmt.string ppf "accept"
  | Reject -> Fmt.string ppf "reject"
  | Crash m -> Fmt.pf ppf "crash(%s)" m
  | Gave_up -> Fmt.string ppf "gave-up"

type divergence = {
  d_grammar : string;
  d_kind : string; (* machine-readable tag, e.g. "unsound", "peg-mismatch" *)
  d_detail : string;
  d_tokens : string list; (* the offending input, as terminal spellings *)
}

let pp_divergence ppf d =
  Fmt.pf ppf "[%s] %s: %s@.  input: %s" d.d_grammar d.d_kind d.d_detail
    (String.concat " " d.d_tokens)

type outcome = {
  o_llstar : verdict;
  o_packrat : verdict option; (* None: backend not applicable *)
  o_earley : verdict;
  o_ll1 : verdict option;
  o_recovery : verdict option; (* recovery-mode probe, rejected inputs only *)
  o_codegen : verdict option;
      (* committed generated parser (lib/gen), when one exists for the
         grammar; compared outcome-for-outcome against the interpreter *)
  o_stream : verdict option;
      (* streaming LL-star leg (bounded token window), when enabled;
         compared outcome-for-outcome against the materialized run *)
  o_explained : bool; (* an expected disagreement was normalized away *)
}

type t = {
  name : string;
  cw : Workload.compiled;
  env : Runtime.Interp.env;
  peg : bool; (* surface grammar is PEG-mode (backtrack=true) *)
  predicated : bool; (* grammar carries token-context semantic predicates *)
  order_resolved : bool; (* analysis resolved ambiguity by order somewhere *)
  packrat : Baselines.Packrat.t option;
  earley : Baselines.Earley.t;
  ll1 : Baselines.Ll1.t option;
  vocab : string array;
  fuel : int; (* packrat step / Earley item budget *)
  time_cap : float; (* per-backend wall-clock guard, seconds *)
  profile : Runtime.Profile.t option;
    (* when set, the LL-star backend's decision profile accumulates across
       every checked input (the fuzz CLI's --profile/--json) *)
  stream_window : int option;
    (* when set, every input additionally runs through the streaming
       LL-star recognizer with this token-window size *)
}

(* Build an oracle around an already compiled workload; the fuzz driver
   compiles once per spec and shares [cw] across its shard oracles (the
   baseline backends stay shard-private -- they hold mutable parser
   state -- but the LL-star compilation is safely shareable: eager results
   are read-only, lazy engines synchronize internally). *)
let create_with ?(fuel = 3_000_000) ?(time_cap = 2.0) ?profile
    ?stream_window (cw : Workload.compiled) : t =
  let spec = cw.Workload.spec in
  let surface = cw.Workload.c.Llstar.Compiled.surface in
  let peg = surface.Grammar.Ast.options.Grammar.Ast.backtrack in
  let predicated = spec.Workload.sem_preds <> [] in
  let order_resolved =
    (* A lazy compilation's [results] snapshot carries no warnings or
       final classifications yet (start states only), and reading the
       live engines here would make explanations depend on how warm the
       shared engines happen to be -- nondeterministic across job counts.
       Classify from a private eager analysis instead: deterministic
       ground truth, paid once per oracle. *)
    let results =
      match Llstar.Compiled.strategy cw.Workload.c with
      | Llstar.Compiled.Eager -> cw.Workload.c.Llstar.Compiled.results
      | Llstar.Compiled.Lazy ->
          Llstar.Analysis.analyze_all ~opts:cw.Workload.c.Llstar.Compiled.opts
            cw.Workload.c.Llstar.Compiled.atn
    in
    Array.exists
      (fun (r : Llstar.Analysis.result) ->
        r.Llstar.Analysis.klass = Llstar.Analysis.Backtrack
        || r.Llstar.Analysis.warnings <> [])
      results
  in
  let packrat =
    if predicated then None
    else Some (Baselines.Packrat.create ~memoize:true surface)
  in
  let ll1_t = Baselines.Ll1.of_grammar surface in
  let ll1 =
    if Baselines.Ll1.is_ll1 ll1_t && (not predicated) && not peg then
      Some ll1_t
    else None
  in
  {
    name = spec.Workload.name;
    cw;
    env = Workload.env_of_spec spec;
    peg;
    predicated;
    order_resolved;
    packrat;
    earley = Baselines.Earley.of_grammar surface;
    ll1;
    vocab = Array.of_list (Grammar.Sentence_gen.vocabulary cw.Workload.gen);
    fuel;
    time_cap;
    profile;
    stream_window;
  }

let create ?fuel ?time_cap ?profile ?stream_window (spec : Workload.spec) :
    (t, Llstar.Compiled.error) result =
  match Workload.compile_result spec with
  | Error e -> Error e
  | Ok cw -> Ok (create_with ?fuel ?time_cap ?profile ?stream_window cw)

(* Render terminal spellings to a token array against the compiled
   vocabulary, the way corpus construction does: literals carry their raw
   text, token classes (ID, INT, ...) are rendered via the spec's
   [sample_lexeme] so token-context semantic predicates see realistic
   lexemes. *)
let tokens_of_names (t : t) (names : string list) : Runtime.Token.t array =
  let sym = Llstar.Compiled.sym t.cw.Workload.c in
  let occ = ref 0 in
  Array.of_list
    (List.mapi
       (fun i name ->
         let text =
           if Grammar.Sym.is_literal_name name then Grammar.Sym.unquote name
           else begin
             incr occ;
             t.cw.Workload.spec.Workload.sample_lexeme !occ name
           end
         in
         match Grammar.Sym.find_term sym name with
         | Some id -> Runtime.Token.make ~index:i id text
         | None ->
             (* a spelling outside the vocabulary: every backend must
                reject it, so give it an id no DFA edge can match *)
             Runtime.Token.make ~index:i 999_999 text)
       names)

(* Run [f], converting exceptions to [Crash] and noting a wall-clock cap
   trip. *)
let guarded (t : t) (slow : (string * float) list ref) (backend : string)
    (f : unit -> verdict) : verdict =
  let t0 = Unix.gettimeofday () in
  let v =
    try f () with
    | Stack_overflow -> Crash "stack overflow"
    | e -> Crash (Printexc.to_string e)
  in
  let dt = Unix.gettimeofday () -. t0 in
  if dt > t.time_cap then slow := (backend, dt) :: !slow;
  v

let of_bool b = if b then Accept else Reject

(* Run one input (terminal spellings, no EOF) through every applicable
   backend and report the outcome plus any unexplained divergences. *)
let check (t : t) (names : string list) : outcome * divergence list =
  let toks = tokens_of_names t names in
  let name_arr = Array.of_list names in
  let slow = ref [] in
  let divs = ref [] in
  let diverge kind detail =
    divs :=
      { d_grammar = t.name; d_kind = kind; d_detail = detail; d_tokens = names }
      :: !divs
  in
  let llstar =
    guarded t slow "llstar" (fun () ->
        match
          Runtime.Interp.recognize ~env:t.env ?profile:t.profile
            t.cw.Workload.c toks
        with
        | Ok () -> Accept
        | Error _ -> Reject)
  in
  let earley =
    guarded t slow "earley" (fun () ->
        try of_bool (Baselines.Earley.recognize ~budget:t.fuel t.earley name_arr)
        with Baselines.Earley.Give_up -> Gave_up)
  in
  let packrat =
    Option.map
      (fun p ->
        guarded t slow "packrat" (fun () ->
            try
              of_bool
                (Baselines.Packrat.recognize ~budget:t.fuel p
                   (Llstar.Compiled.sym t.cw.Workload.c)
                   toks ())
            with Baselines.Packrat.Give_up -> Gave_up))
      t.packrat
  in
  let ll1 =
    Option.map
      (fun l -> guarded t slow "ll1" (fun () -> of_bool (Baselines.Ll1.recognize l name_arr)))
      t.ll1
  in
  (* Generated-parser differential: the committed codegen output must
     reproduce the interpreter's accept/reject, error position and
     consumed-token count exactly -- not just the verdict.  A mismatch is
     always a codegen bug (or an emitter/interpreter drift), never an
     expected disagreement. *)
  let codegen =
    Option.map
      (fun (module P : Runtime.Generated.PARSER) ->
        guarded t slow "codegen" (fun () ->
            let got = P.outcome ~env:t.env toks in
            let want =
              Runtime.Generated.interp_outcome ~env:t.env t.cw.Workload.c toks
            in
            if not (Runtime.Generated.agree got want) then
              diverge "codegen-mismatch"
                (Printf.sprintf "generated=%s interp=%s"
                   (Runtime.Generated.describe got)
                   (Runtime.Generated.describe want));
            of_bool got.Runtime.Generated.ok))
      (Gen.Registry.find t.name)
  in
  (* Streaming differential: the same tokens re-parsed through a bounded
     window must reproduce the materialized run exactly -- verdict, error
     position and consumed-token count.  Any mismatch is a retention bug
     in the window/memo machinery, never an expected disagreement. *)
  let stream =
    Option.map
      (fun window ->
        guarded t slow "llstar-stream" (fun () ->
            let pos = ref 0 in
            let pull () =
              let n = Array.length toks in
              if !pos >= n then [||]
              else begin
                let len = min (max 1 window) (n - !pos) in
                let a = Array.sub toks !pos len in
                pos := !pos + len;
                a
              end
            in
            let ts = Runtime.Token_stream.of_pull ~window pull in
            let got =
              Runtime.Generated.interp_outcome_stream ~env:t.env
                t.cw.Workload.c ts
            in
            let want =
              Runtime.Generated.interp_outcome ~env:t.env t.cw.Workload.c
                toks
            in
            if not (Runtime.Generated.agree got want) then
              diverge "stream-mismatch"
                (Printf.sprintf "streamed=%s materialized=%s (window %d)"
                   (Runtime.Generated.describe got)
                   (Runtime.Generated.describe want)
                   window);
            of_bool got.Runtime.Generated.ok))
      t.stream_window
  in
  (* Recovery probe on rejected inputs: panic-mode resynchronization must
     neither crash nor hang, whatever it is fed. *)
  let recovery =
    if llstar = Reject then
      Some
        (guarded t slow "llstar-recovery" (fun () ->
             match
               Runtime.Interp.parse ~env:t.env ~recover:true t.cw.Workload.c
                 toks
             with
             | Ok _ -> Accept
             | Error _ -> Reject))
    else None
  in
  (* crashes: never expected, from any backend *)
  let crash backend = function
    | Some (Crash m) -> diverge "crash" (Printf.sprintf "%s: %s" backend m)
    | _ -> ()
  in
  crash "llstar" (Some llstar);
  crash "earley" (Some earley);
  crash "packrat" packrat;
  crash "ll1" ll1;
  crash "codegen" codegen;
  crash "llstar-stream" stream;
  crash "llstar-recovery" recovery;
  (* fuel guard trips: flagged so blow-ups are visible in CI *)
  let fuel backend = function
    | Some Gave_up ->
        diverge "fuel" (Printf.sprintf "%s exhausted %d-step budget" backend t.fuel)
    | _ -> ()
  in
  fuel "earley" (Some earley);
  fuel "packrat" packrat;
  (* wall-clock guard: recovery-mode (and any other) nontermination *)
  List.iter
    (fun (backend, dt) ->
      diverge "slow" (Printf.sprintf "%s took %.2fs (cap %.2fs)" backend dt t.time_cap))
    !slow;
  (* acceptance comparisons *)
  let explained = ref false in
  (match (llstar, earley) with
  | Accept, Reject ->
      diverge "unsound" "LL-star accepted an input outside the CFG language"
  | Reject, Accept ->
      if t.peg || t.predicated || t.order_resolved then explained := true
      else
        diverge "incomplete"
          "LL-star rejected a CFG sentence of a non-PEG, non-predicated, \
           conflict-free grammar"
  | _ -> ());
  (match packrat with
  | Some pk -> (
      match (llstar, pk) with
      | Reject, Accept ->
          (* the one direction PEG-mode LL-star must dominate: everything
             the packrat interpreter accepts, the compiled parser accepts *)
          diverge "peg-mismatch"
            (Fmt.str "LL-star=%a packrat=%a on a PEG-comparable grammar"
               pp_verdict llstar pp_verdict pk)
      | Accept, Reject ->
          (* DFA lookahead resolved a decision PEG prefix-commits on:
             LL-star accepting strictly more is the paper's pitch *)
          explained := true
      | _ -> ())
  | None -> ());
  (match ll1 with
  | Some l1 -> (
      match (llstar, l1) with
      | Accept, Reject | Reject, Accept ->
          diverge "ll1-mismatch"
            (Fmt.str "LL-star=%a LL(1)=%a on an LL(1) grammar" pp_verdict llstar
               pp_verdict l1)
      | _ -> ())
  | None -> ());
  ( {
      o_llstar = llstar;
      o_packrat = packrat;
      o_earley = earley;
      o_ll1 = ll1;
      o_recovery = recovery;
      o_codegen = codegen;
      o_stream = stream;
      o_explained = !explained;
    },
    List.rev !divs )

let failing (t : t) (names : string list) : bool = snd (check t names) <> []

(* Greedy token-delta shrinker (ddmin-style): repeatedly remove the largest
   contiguous chunk that keeps the input failing, halving the chunk size
   when no removal applies.  Deterministic: positions are tried left to
   right. *)
let shrink ~(failing : string list -> bool) (names : string list) :
    string list =
  let rec go names chunk =
    if chunk < 1 then names
    else begin
      let n = List.length names in
      let removed = ref None in
      let i = ref 0 in
      while !removed = None && !i + chunk <= n do
        let cand = List.filteri (fun k _ -> k < !i || k >= !i + chunk) names in
        if failing cand then removed := Some cand;
        incr i
      done;
      match !removed with
      | Some cand -> go cand chunk
      | None -> go names (chunk / 2)
    end
  in
  match names with
  | [] -> []
  | _ -> go names (max 1 (List.length names / 2))
