(* Seeded fuzzing driver: generates sentences from a grammar spec, mutates
   half of them, feeds everything to the differential {!Oracle}, shrinks any
   failure with the greedy token-delta shrinker, and writes reproducer files
   under a corpus directory so failures become permanent regression tests
   (they are replayed by [dune runtest], see test/test_fuzz.ml).

   Determinism: run [i] of a seeded session draws all its randomness from
   [Sentence_gen.rng_of_seed ~index:i seed], so a (seed, run) pair pins the
   entire generate-mutate-check sequence and reproducer files can name the
   exact run that produced them. *)

module Workload = Bench_grammars.Workload

let all_specs : Workload.spec list =
  [
    Bench_grammars.Mini_java.spec;
    Bench_grammars.Rats_c.spec;
    Bench_grammars.Rats_java.spec;
    Bench_grammars.Mini_vb.spec;
    Bench_grammars.Mini_sql.spec;
    Bench_grammars.Mini_csharp.spec;
  ]

let find_spec (name : string) : Workload.spec option =
  List.find_opt (fun (s : Workload.spec) -> s.Workload.name = name) all_specs

type failure = {
  f_divergence : Oracle.divergence;
  f_shrunk : string list; (* minimized input *)
  f_run : int; (* run index that produced it *)
  f_file : string option; (* reproducer path, when a corpus dir was given *)
}

type report = {
  r_grammar : string;
  r_runs : int;
  r_accepted : int; (* LL-star accepted *)
  r_rejected : int;
  r_mutated : int; (* runs that went through the mutation engine *)
  r_explained : int; (* expected disagreements normalized away *)
  r_failures : failure list;
}

let pp_report ppf (r : report) =
  Fmt.pf ppf "%-12s %4d runs: %d accept / %d reject, %d mutated, %d normalized, %d failures"
    r.r_grammar r.r_runs r.r_accepted r.r_rejected r.r_mutated r.r_explained
    (List.length r.r_failures)

(* Reproducer file format: "key: value" header lines, then the minimized
   input as space-separated terminal spellings (no spelling in the
   benchmark grammars contains a space).  Example:

     grammar: mini_java
     seed: 42
     run: 17
     kind: crash
     detail: llstar: Failure("...")
     tokens: 'class' ID '{' '}'
*)
let write_reproducer ~dir ~seed ~run (d : Oracle.divergence)
    (shrunk : string list) : string =
  (* EEXIST-tolerant: two fuzz shards can race on corpus-dir creation. *)
  if not (Sys.file_exists dir) then (
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file =
    Filename.concat dir (Printf.sprintf "%s-seed%d-run%d.txt" d.Oracle.d_grammar seed run)
  in
  let oc = open_out file in
  Printf.fprintf oc "grammar: %s\nseed: %d\nrun: %d\nkind: %s\ndetail: %s\ntokens: %s\n"
    d.Oracle.d_grammar seed run d.Oracle.d_kind d.Oracle.d_detail
    (String.concat " " shrunk);
  close_out oc;
  file

type reproducer = {
  rp_grammar : string;
  rp_kind : string;
  rp_tokens : string list;
}

(* Parse a reproducer file back; tolerant of unknown header keys. *)
let read_reproducer (file : string) : (reproducer, string) result =
  let ic = open_in file in
  let grammar = ref None and kind = ref None and tokens = ref None in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line ':' with
       | None -> ()
       | Some i ->
           let key = String.sub line 0 i in
           let v =
             String.trim (String.sub line (i + 1) (String.length line - i - 1))
           in
           if key = "grammar" then grammar := Some v
           else if key = "kind" then kind := Some v
           else if key = "tokens" then
             tokens :=
               Some (String.split_on_char ' ' v |> List.filter (fun s -> s <> ""))
     done
   with End_of_file -> close_in ic);
  match (!grammar, !kind, !tokens) with
  | Some g, Some k, Some t -> Ok { rp_grammar = g; rp_kind = k; rp_tokens = t }
  | _ -> Error (Printf.sprintf "%s: missing grammar/kind/tokens header" file)

(* Replay a reproducer against a fresh oracle: the input must no longer
   produce any divergence (i.e. the bug it witnessed stays fixed). *)
let replay (o : Oracle.t) (rp : reproducer) : Oracle.divergence list =
  snd (Oracle.check o rp.rp_tokens)

(* Machine-readable session report (the fuzz CLI's --json). *)
let report_to_json ?profile ~seed (r : report) : Obs.Json.t =
  let failure_json (f : failure) =
    Obs.Json.obj
      [
        ("kind", Obs.Json.str f.f_divergence.Oracle.d_kind);
        ("detail", Obs.Json.str f.f_divergence.Oracle.d_detail);
        ("run", Obs.Json.int f.f_run);
        ("shrunk_tokens", Obs.Json.list (List.map Obs.Json.str f.f_shrunk));
        ( "file",
          match f.f_file with
          | Some p -> Obs.Json.str p
          | None -> Obs.Json.Null );
      ]
  in
  Obs.Json.obj
    ([
       ("grammar", Obs.Json.str r.r_grammar);
       ("seed", Obs.Json.int seed);
       ("runs", Obs.Json.int r.r_runs);
       ("accepted", Obs.Json.int r.r_accepted);
       ("rejected", Obs.Json.int r.r_rejected);
       ("mutated", Obs.Json.int r.r_mutated);
       ("normalized", Obs.Json.int r.r_explained);
       ("failures", Obs.Json.list (List.map failure_json r.r_failures));
     ]
    @
    match profile with
    | Some p -> [ ("profile", Runtime.Profile.to_json p) ]
    | None -> [])

(* Per-shard tallies; merged in shard order by [run_spec]. *)
type shard = {
  s_accepted : int;
  s_rejected : int;
  s_mutated : int;
  s_explained : int;
  s_failures : failure list; (* in run order *)
}

(* Fuzz the contiguous run range [lo, hi) against a chunk-private oracle
   over the (shared) compiled workload.  Run [i] draws every random
   choice from [rng_of_seed ~index:i seed], so the tallies depend only on
   the (seed, range) pair -- never on which worker, or how many, executed
   the range. *)
let run_range ?(size = 30) ?(mutate = true) ?fuel ?time_cap ?corpus_dir
    ?profile ?stream_window ~(seed : int) (cw : Workload.compiled) (lo, hi) :
    (shard, Llstar.Compiled.error) result =
  let spec = cw.Workload.spec in
  let o = Oracle.create_with ?fuel ?time_cap ?profile ?stream_window cw in
      let vocab = Oracle.(o.vocab) in
      let accepted = ref 0 and rejected = ref 0 in
      let mutated = ref 0 and explained = ref 0 in
      let failures = ref [] in
      for i = lo to hi - 1 do
        let rng = Grammar.Sentence_gen.rng_of_seed ~index:i seed in
        match
          Grammar.Sentence_gen.generate ?start:spec.Workload.gen_start
            Oracle.(o.cw).Workload.gen ~rng ~size
        with
        | exception Grammar.Sentence_gen.Unproductive -> ()
        | base ->
            (* wildcard positions carry no spelling: substitute a vocabulary
               token so every backend sees a concrete terminal *)
            let base =
              List.map
                (fun s ->
                  if s = "." && Array.length vocab > 0 then
                    vocab.(Random.State.int rng (Array.length vocab))
                  else s)
                base
            in
            let names =
              if mutate && i mod 2 = 1 then begin
                incr mutated;
                let count = 1 + Random.State.int rng 3 in
                let _ops, arr =
                  Mutate.mutate rng ~vocab ~count (Array.of_list base)
                in
                Array.to_list arr
              end
              else base
            in
            let outcome, divs = Oracle.check o names in
            (match outcome.Oracle.o_llstar with
            | Oracle.Accept -> incr accepted
            | _ -> incr rejected);
            if outcome.Oracle.o_explained then incr explained;
            List.iter
              (fun (d : Oracle.divergence) ->
                let shrunk =
                  Oracle.shrink
                    ~failing:(fun cand ->
                      List.exists
                        (fun (d' : Oracle.divergence) ->
                          d'.Oracle.d_kind = d.Oracle.d_kind)
                        (snd (Oracle.check o cand)))
                    d.Oracle.d_tokens
                in
                let file =
                  Option.map
                    (fun dir -> write_reproducer ~dir ~seed ~run:i d shrunk)
                    corpus_dir
                in
                failures :=
                  { f_divergence = d; f_shrunk = shrunk; f_run = i; f_file = file }
                  :: !failures)
              divs
      done;
      Ok
        {
          s_accepted = !accepted;
          s_rejected = !rejected;
          s_mutated = !mutated;
          s_explained = !explained;
          s_failures = List.rev !failures;
        }

(* One fuzzing session over a single grammar spec.  The LL-star compilation
   happens once and is shared by every chunk -- safe for both strategies
   (eager results are read-only; lazy engines synchronize internally), and
   required for lazy determinism: per-chunk compilations would each count
   their own sprouts, making merged profiles depend on the job count.
   [pool] spreads the run indices across workers in several chunks per
   worker ([Exec.Pool.chunk_ranges]; modest granularity -- each chunk
   builds its own oracle around the shared compilation, since the baseline
   backends hold mutable parser state); each chunk also owns a private
   profile, merged on join.  The report is identical for any job count
   because runs are seed-index deterministic and chunks are merged in
   index order.  [strategy] picks the LL-star compilation strategy (default
   eager); lazy fuzzing doubles as a concurrency stress of the shared
   engines' sprout path. *)
let run_spec ?size ?mutate ?fuel ?time_cap ?corpus_dir ?profile ?pool
    ?strategy ?stream_window ~(seed : int) ~(runs : int)
    (spec : Workload.spec) : (report, Llstar.Compiled.error) result =
  match Workload.compile_result ?strategy spec with
  | Error e -> Error e
  | Ok cw -> (
      let jobs = match pool with None -> 1 | Some p -> Exec.Pool.jobs p in
      let shards =
        match pool with
        | Some p when jobs > 1 && runs > 1 ->
            let tasks =
              List.map
                (fun range ->
                  Exec.Pool.submit p (fun () ->
                      let sp =
                        Option.map (fun _ -> Runtime.Profile.create ()) profile
                      in
                      let r =
                        run_range ?size ?mutate ?fuel ?time_cap ?corpus_dir
                          ?profile:sp ?stream_window ~seed cw range
                      in
                      (r, sp)))
                (Exec.Pool.chunk_ranges ~granularity:4 ~jobs runs)
            in
            List.map
              (fun task ->
                let r, sp = Exec.Pool.await task in
                (match (profile, sp) with
                | Some into, Some src -> Runtime.Profile.merge ~into src
                | _ -> ());
                r)
              tasks
        | _ ->
            [
              run_range ?size ?mutate ?fuel ?time_cap ?corpus_dir ?profile
                ?stream_window ~seed cw (0, runs);
            ]
      in
      match
        List.find_map (function Error e -> Some e | Ok _ -> None) shards
      with
      | Some e -> Error e
      | None ->
          let shards =
            List.map (function Ok s -> s | Error _ -> assert false) shards
          in
          Ok
            {
              r_grammar = spec.Workload.name;
              r_runs = runs;
              r_accepted =
                List.fold_left (fun a s -> a + s.s_accepted) 0 shards;
              r_rejected =
                List.fold_left (fun a s -> a + s.s_rejected) 0 shards;
              r_mutated = List.fold_left (fun a s -> a + s.s_mutated) 0 shards;
              r_explained =
                List.fold_left (fun a s -> a + s.s_explained) 0 shards;
              r_failures = List.concat_map (fun s -> s.s_failures) shards;
            })
