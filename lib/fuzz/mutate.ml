(* Token-level mutation engine for the differential fuzzer.

   Inputs are sentences represented as arrays of terminal spellings
   (["'class'"], ["ID"], ...).  Four mutation operators exercise the error
   and recovery paths of every backend: dropping a token, swapping two
   tokens, duplicating a token, and substituting a token with another
   spelling drawn from the grammar's vocabulary
   ([Grammar.Sentence_gen.vocabulary]).  All randomness flows through the
   caller-supplied [Random.State.t], so a (seed, run-index) pair fully
   determines the mutation sequence. *)

type op =
  | Drop of int
  | Swap of int * int
  | Dup of int
  | Subst of int * string

let pp_op ppf = function
  | Drop i -> Fmt.pf ppf "drop@%d" i
  | Swap (i, j) -> Fmt.pf ppf "swap@%d,%d" i j
  | Dup i -> Fmt.pf ppf "dup@%d" i
  | Subst (i, name) -> Fmt.pf ppf "subst@%d=%s" i name

let apply (op : op) (toks : string array) : string array =
  let n = Array.length toks in
  match op with
  | Drop i when i < n ->
      Array.init (n - 1) (fun k -> if k < i then toks.(k) else toks.(k + 1))
  | Swap (i, j) when i < n && j < n ->
      let a = Array.copy toks in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp;
      a
  | Dup i when i < n ->
      Array.init (n + 1) (fun k ->
          if k <= i then toks.(k) else toks.(k - 1))
  | Subst (i, name) when i < n ->
      let a = Array.copy toks in
      a.(i) <- name;
      a
  | _ -> toks (* out-of-range op on a shrunk array: identity *)

(* Draw one operator applicable to [toks]; [None] on an empty sentence
   (every operator needs a position). *)
let random_op (rng : Random.State.t) ~(vocab : string array)
    (toks : string array) : op option =
  let n = Array.length toks in
  if n = 0 then None
  else
    let pos () = Random.State.int rng n in
    let kinds = if Array.length vocab = 0 then 3 else 4 in
    match Random.State.int rng kinds with
    | 0 -> Some (Drop (pos ()))
    | 1 -> Some (Swap (pos (), pos ()))
    | 2 -> Some (Dup (pos ()))
    | _ -> Some (Subst (pos (), vocab.(Random.State.int rng (Array.length vocab))))

(* Apply [count] random operators in sequence; returns the ops actually
   applied (oldest first) and the mutated sentence. *)
let mutate (rng : Random.State.t) ~(vocab : string array) ~(count : int)
    (toks : string array) : op list * string array =
  let ops = ref [] in
  let cur = ref toks in
  for _ = 1 to count do
    match random_op rng ~vocab !cur with
    | None -> ()
    | Some op ->
        ops := op :: !ops;
        cur := apply op !cur
  done;
  (List.rev !ops, !cur)
