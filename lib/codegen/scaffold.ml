(* Workspace scaffolding: wrap an emitted parser module in a buildable
   dune project with a driver executable.

   The driver embeds everything it needs to run standalone: the lexer
   configuration (when the grammar was compiled with one), the surface
   grammar text, and -- through the parser module's metadata arrays --
   the vocabulary, rebuilt id-for-id by {!Runtime.Generated.rebuild_sym}.
   Its [--check] mode recompiles the embedded grammar and replays every
   input through both the generated parser and the ATN interpreter,
   failing loudly on any accept/reject, error-position or consumed-count
   disagreement; CI's codegen-diff job drives exactly that. *)

let spf = Printf.sprintf

(* "MiniJava" -> "minijava": a valid lowercase OCaml module/file stem. *)
let sanitize_module (name : string) : string =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  let s = if s = "" then "parser" else s in
  match s.[0] with 'a' .. 'z' -> s | _ -> "p" ^ s

let capitalize = String.capitalize_ascii

let lexer_config_literal (cfg : Runtime.Lexer_engine.config) : string =
  let so = function None -> "None" | Some s -> spf "Some %S" s in
  let sl l = spf "[ %s ]" (String.concat "; " (List.map (spf "%S") l)) in
  let sl l = if l = [] then "[]" else sl l in
  let pl l =
    spf "[ %s ]"
      (String.concat "; " (List.map (fun (a, b) -> spf "(%S, %S)" a b) l))
  in
  let pl l = if l = [] then "[]" else pl l in
  String.concat "\n"
    [
      "  {";
      spf "    Runtime.Lexer_engine.ident_token = %s;"
        (so cfg.Runtime.Lexer_engine.ident_token);
      spf "    int_token = %s;" (so cfg.Runtime.Lexer_engine.int_token);
      spf "    float_token = %s;" (so cfg.Runtime.Lexer_engine.float_token);
      spf "    string_token = %s;" (so cfg.Runtime.Lexer_engine.string_token);
      spf "    string_quote = %C;" cfg.Runtime.Lexer_engine.string_quote;
      spf "    char_token = %s;" (so cfg.Runtime.Lexer_engine.char_token);
      spf "    at_ident_token = %s;"
        (so cfg.Runtime.Lexer_engine.at_ident_token);
      spf "    newline_token = %s;" (so cfg.Runtime.Lexer_engine.newline_token);
      spf "    line_comments = %s;" (sl cfg.Runtime.Lexer_engine.line_comments);
      spf "    block_comments = %s;"
        (pl cfg.Runtime.Lexer_engine.block_comments);
      spf "    case_insensitive_keywords = %b;"
        cfg.Runtime.Lexer_engine.case_insensitive_keywords;
      spf "    extra_ident_start = %S;"
        cfg.Runtime.Lexer_engine.extra_ident_start;
      spf "    extra_ident_cont = %S;" cfg.Runtime.Lexer_engine.extra_ident_cont;
      "  }";
    ]

let driver_ml (ir : Ir.t) ~(module_name : string) : string =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let p = capitalize module_name in
  line "(* Driver for the generated %s parser -- emitted by [antlrkit codegen]."
    ir.Ir.grammar_name;
  line "   DO NOT EDIT: regenerate instead.";
  line "";
  line "   usage: main.exe [--check] FILE...";
  line "";
  line "   Parses each FILE with the generated parser and prints the outcome.";
  line "   With [--check], additionally recompiles the embedded grammar and";
  line "   replays each input through the ATN/DFA interpreter, exiting";
  line "   nonzero if the two parsers disagree on accept/reject, error";
  line "   position or consumed-token count. *)";
  line "";
  line "module P = %s" p;
  line "module Rt = Runtime.Generated";
  line "";
  (match ir.Ir.grammar_text with
  | Some src -> line "let grammar_source = Some %S" src
  | None -> line "let grammar_source : string option = None");
  line "";
  (match ir.Ir.lexer_hint with
  | Some cfg ->
      line "let lexer_config : Runtime.Lexer_engine.config =";
      Buffer.add_string b (lexer_config_literal cfg);
      Buffer.add_char b '\n'
  | None ->
      line "let lexer_config : Runtime.Lexer_engine.config =";
      line "  Runtime.Lexer_engine.default_config");
  line "";
  line "let sym =";
  line "  Rt.rebuild_sym ~token_names:P.token_names ~rule_names:P.rule_names";
  line "";
  line "let read_file path =";
  line "  let ic = open_in_bin path in";
  line "  let n = in_channel_length ic in";
  line "  let s = really_input_string ic n in";
  line "  close_in ic;";
  line "  s";
  line "";
  line "let lex path text =";
  line "  match Runtime.Lexer_engine.tokenize lexer_config sym text with";
  line "  | Ok toks -> toks";
  line "  | Error e ->";
  line "      Printf.eprintf \"%%s: lex error: %%s\\n\" path";
  line "        (Fmt.str \"%%a\" Runtime.Lexer_engine.pp_error e);";
  line "      exit 1";
  line "";
  line "let () =";
  line "  let args = List.tl (Array.to_list Sys.argv) in";
  line "  let check = List.mem \"--check\" args in";
  line "  let files = List.filter (fun a -> a <> \"--check\") args in";
  line "  if files = [] then begin";
  line "    Printf.eprintf \"usage: %%s [--check] FILE...\\n\" Sys.argv.(0);";
  line "    exit 2";
  line "  end;";
  line "  let oracle =";
  line "    if not check then None";
  line "    else";
  line "      match grammar_source with";
  line "      | None ->";
  line "          Printf.eprintf \"--check: no grammar source was embedded\\n\";";
  line "          exit 2";
  line "      | Some src ->";
  line "          let c = Llstar.Compiled.of_source_exn src in";
  line "          let cs = Llstar.Compiled.sym c in";
  line "          Array.iteri";
  line "            (fun i name ->";
  line "              if Grammar.Sym.term_name cs i <> name then begin";
  line "                Printf.eprintf";
  line "                  \"--check: vocabulary drift at token %%d (%%s)\\n\" i name;";
  line "                exit 2";
  line "              end)";
  line "            P.token_names;";
  line "          Some c";
  line "  in";
  line "  let failures = ref 0 in";
  line "  List.iter";
  line "    (fun path ->";
  line "      let toks = lex path (read_file path) in";
  line "      let got = P.outcome toks in";
  line "      Printf.printf \"%%s: %%s\\n\" path (Rt.describe got);";
  line "      match oracle with";
  line "      | None -> ()";
  line "      | Some c ->";
  line "          let want = Rt.interp_outcome c toks in";
  line "          if not (Rt.agree got want) then begin";
  line "            incr failures;";
  line "            Printf.printf";
  line "              \"%%s: DISAGREEMENT generated=%%s interp=%%s\\n\" path";
  line "              (Rt.describe got) (Rt.describe want)";
  line "          end)";
  line "    files;";
  line "  if !failures > 0 then begin";
  line "    Printf.printf \"%%d disagreement(s)\\n\" !failures;";
  line "    exit 1";
  line "  end";
  Buffer.contents b

let dune_file ~(module_name : string) : string =
  String.concat "\n"
    [
      (* dune's own canonical formatting, so an in-tree generated
         workspace stays clean under `dune build @fmt` *)
      "(executable";
      " (name main)";
      spf " (modules main %s)" module_name;
      " (libraries";
      "  antlrkit.runtime";
      "  antlrkit.llstar";
      "  antlrkit.atn";
      "  antlrkit.grammar";
      "  antlrkit.obs";
      "  fmt))";
      "";
    ]

let dune_project_file : string =
  String.concat "\n" [ "(lang dune 3.0)"; "" ]

(* The full workspace as (relative path, contents) pairs, deterministic
   order.  [samples] become numbered files under samples/. *)
let workspace ?module_name ?(standalone = false) ?(samples = []) (ir : Ir.t) :
    (string * string) list =
  let module_name =
    match module_name with
    | Some m -> sanitize_module m
    | None -> sanitize_module ir.Ir.grammar_name ^ "_parser"
  in
  let files =
    [
      (module_name ^ ".ml", Emit_ocaml.emit ir);
      ("main.ml", driver_ml ir ~module_name);
      ("dune", dune_file ~module_name);
    ]
  in
  let files =
    if standalone then files @ [ ("dune-project", dune_project_file) ]
    else files
  in
  files
  @ List.mapi
      (fun i text -> (spf "samples/%02d.txt" (i + 1), text))
      samples

let write_all ~(dir : string) (files : (string * string) list) : unit =
  let rec mkdirs d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdirs dir;
  List.iter
    (fun (rel, content) ->
      let path = Filename.concat dir rel in
      mkdirs (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc)
    files
